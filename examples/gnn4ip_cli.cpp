// gnn4ip_cli — command-line front end for the library.
//
//   gnn4ip_cli extract <design.v>                 print DFG stats + DOT
//   gnn4ip_cli train <model.txt> [epochs]         train on bundled corpus
//   gnn4ip_cli embed <model.txt> <design.v>       print the h_G vector
//   gnn4ip_cli compare <model.txt> <a.v> <b.v> [delta]
//                                                 Alg. 1 piracy check
//
// Designs are Verilog files (RTL or gate-level netlist). Models are the
// text format of gnn/model_io.h, produced by `train`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/gnn4ip.h"
#include "graph/serialize.h"

namespace {

using namespace gnn4ip;

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gnn4ip_cli extract <design.v>\n"
               "  gnn4ip_cli train <model.txt> [epochs]\n"
               "  gnn4ip_cli embed <model.txt> <design.v>\n"
               "  gnn4ip_cli compare <model.txt> <a.v> <b.v> [delta]\n");
  return 2;
}

int cmd_extract(const std::string& path) {
  const graph::Digraph g = dfg::extract_dfg(read_file(path));
  const dfg::DfgSummary s = dfg::summarize(g);
  std::printf("# %s: %zu nodes, %zu edges, %zu inputs, %zu outputs, "
              "%zu operators\n",
              path.c_str(), s.num_nodes, s.num_edges, s.num_inputs,
              s.num_outputs, s.num_operators);
  std::fputs(graph::to_dot(g).c_str(), stdout);
  return 0;
}

int cmd_train(const std::string& model_path, int epochs) {
  std::fprintf(stderr, "building corpus and training (%d epochs)...\n",
               epochs);
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 8;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::fprintf(stderr, "held-out accuracy %.2f%%, delta %+.3f\n",
               100.0 * eval.confusion.accuracy(), detector.delta());
  detector.save(model_path);
  std::fprintf(stderr, "saved %s\n", model_path.c_str());
  // Record the tuned delta on stdout so scripts can capture it.
  std::printf("%+.6f\n", detector.delta());
  return 0;
}

int cmd_embed(const std::string& model_path, const std::string& design) {
  PiracyDetector detector;
  detector.load(model_path);
  const tensor::Matrix h = detector.embed(read_file(design));
  for (std::size_t c = 0; c < h.cols(); ++c) {
    if (c != 0) std::printf(" ");
    std::printf("%.6f", h.at(0, c));
  }
  std::printf("\n");
  return 0;
}

int cmd_compare(const std::string& model_path, const std::string& a,
                const std::string& b, float delta) {
  PiracyDetector detector;
  detector.load(model_path);
  detector.set_delta(delta);
  const Verdict v = detector.check(read_file(a), read_file(b));
  std::printf("similarity %+.6f  delta %+.3f  verdict %s\n", v.similarity,
              delta, v.is_piracy ? "PIRACY" : "no-piracy");
  return v.is_piracy ? 0 : 1;  // exit code: 0 = flagged, like grep
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "extract" && argc == 3) {
      return cmd_extract(argv[2]);
    }
    if (cmd == "train" && (argc == 3 || argc == 4)) {
      return cmd_train(argv[2], argc == 4 ? std::atoi(argv[3]) : 60);
    }
    if (cmd == "embed" && argc == 4) {
      return cmd_embed(argv[2], argv[3]);
    }
    if (cmd == "compare" && (argc == 5 || argc == 6)) {
      const float delta =
          argc == 6 ? std::strtof(argv[5], nullptr) : 0.5F;
      return cmd_compare(argv[2], argv[3], argv[4], delta);
    }
  } catch (const verilog::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
