// gnn4ip_cli — command-line front end for the library.
//
//   gnn4ip_cli extract <design.v>                 print DFG stats + DOT
//   gnn4ip_cli train <model.txt> [epochs]         train on bundled corpus
//   gnn4ip_cli embed <model.txt> <design.v>       print the h_G vector
//   gnn4ip_cli compare <model.txt> <a.v> <b.v> [delta]
//                                                 Alg. 1 piracy check
//   gnn4ip_cli audit <model.txt> --corpus <lib.v> [--corpus <lib2.v> ...]
//              [--delta <d>] [--top-k <k>] [--max-resident <n>]
//              [--shards <k> | --connect <host:port,...>]
//              [--threads <n>] [--async] [--consumers <n>]
//              [--kernel <scalar|avx2|neon|auto>] [--prefilter]
//              [--load-corpus <dir>] [--save-corpus <dir>]
//              <design.v> [<design2.v> ...]
//                                                 screen designs against
//                                                 a resident IP library
//
// Designs are Verilog files (RTL or gate-level netlist). Models are the
// text format of gnn/model_io.h, produced by `train`. End-to-end piracy
// flows (compare, audit) run through audit::AuditService; a malformed
// design gets a per-file diagnostic and never aborts the batch.
//
// --shards splits the resident corpus across k hash-placed shards and
// --async screens through the audit::AsyncAuditor consumer pool; both
// are transparent to the output — verdicts are bit-identical to the
// single-shard synchronous run. --threads pins the scorer worker count
// and --consumers (implies --async) the screening-consumer count; each
// flag takes precedence over its environment knob (GNN4IP_THREADS /
// GNN4IP_CONSUMERS, which only apply when no explicit count is set).
//
// --kernel forces the SIMD dispatch backend (default: auto-detect; the
// GNN4IP_KERNEL environment variable applies when the flag is absent)
// and --prefilter screens through the int8 quantized tier. Both are
// transparent to the output — verdict similarities are always the exact
// scalar-kernel values, so runs differing only in these flags diff
// clean line for line.
//
// --save-corpus writes the post-screening resident corpus as a
// versioned snapshot directory (docs/FORMATS.md); --load-corpus warm-
// restarts from one before any --corpus additions, standing in for the
// library list entirely (with it, --corpus becomes optional). A
// snapshot is tied to the model that produced it: loading against a
// different model fails with a fingerprint error rather than silently
// scoring mismatched embeddings.
//
// --connect screens against gnn4ip_shardd shard-server processes
// instead of an in-process corpus — one endpoint per shard, same
// placement map, bit-identical verdicts (docs/ARCHITECTURE.md,
// "Distributed screening"). Mutually exclusive with --shards and
// --async. Connection and protocol failures exit 5 so scripts can tell
// "cluster trouble" from "bad design" (3) and "bad snapshot" (4).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "audit/async_auditor.h"
#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "core/snapshot_format.h"
#include "dist/dist_corpus.h"
#include "gnn/model_io.h"
#include "graph/serialize.h"
#include "net/wire_format.h"

namespace {

using namespace gnn4ip;

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gnn4ip_cli extract <design.v>\n"
      "  gnn4ip_cli train <model.txt> [epochs]\n"
      "  gnn4ip_cli embed <model.txt> <design.v>\n"
      "  gnn4ip_cli compare <model.txt> <a.v> <b.v> [delta]\n"
      "  gnn4ip_cli audit <model.txt> --corpus <lib.v> [--corpus ...]\n"
      "             [--delta <d>] [--top-k <k>] [--max-resident <n>]\n"
      "             [--shards <k> | --connect <host:port,...>]\n"
      "             [--threads <n>] [--async]\n"
      "             [--consumers <n>] [--kernel <scalar|avx2|neon|auto>]\n"
      "             [--prefilter]\n"
      "             [--load-corpus <dir>] [--save-corpus <dir>]\n"
      "             <design.v> [...]\n"
      "  (--threads / --consumers override the GNN4IP_THREADS /\n"
      "   GNN4IP_CONSUMERS environment variables; --consumers implies\n"
      "   --async; with --load-corpus, --corpus is optional; --kernel\n"
      "   overrides GNN4IP_KERNEL; --prefilter screens through the int8\n"
      "   quantized tier — identical output, fewer exact cells)\n");
  return 2;
}

int cmd_extract(const std::string& path) {
  const audit::CompileResult compiled = audit::compile_rtl(read_file(path));
  if (!compiled.ok) {
    std::fprintf(stderr, "parse error: %s\n",
                 compiled.error.to_string().c_str());
    return 3;
  }
  const dfg::DfgSummary s = dfg::summarize(compiled.design.dfg);
  std::printf("# %s: %zu nodes, %zu edges, %zu inputs, %zu outputs, "
              "%zu operators\n",
              path.c_str(), s.num_nodes, s.num_edges, s.num_inputs,
              s.num_outputs, s.num_operators);
  std::fputs(graph::to_dot(compiled.design.dfg).c_str(), stdout);
  return 0;
}

int cmd_train(const std::string& model_path, int epochs) {
  std::fprintf(stderr, "building corpus and training (%d epochs)...\n",
               epochs);
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 8;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::fprintf(stderr, "held-out accuracy %.2f%%, delta %+.3f\n",
               100.0 * eval.confusion.accuracy(), detector.delta());
  detector.save(model_path);
  std::fprintf(stderr, "saved %s\n", model_path.c_str());
  // Record the tuned delta on stdout so scripts can capture it.
  std::printf("%+.6f\n", detector.delta());
  return 0;
}

int cmd_embed(const std::string& model_path, const std::string& design) {
  PiracyDetector detector;
  detector.load(model_path);
  const tensor::Matrix h = detector.embed(read_file(design));
  for (std::size_t c = 0; c < h.cols(); ++c) {
    if (c != 0) std::printf(" ");
    std::printf("%.6f", h.at(0, c));
  }
  std::printf("\n");
  return 0;
}

int cmd_compare(const std::string& model_path, const std::string& a,
                const std::string& b, float delta) {
  audit::AuditOptions options;
  options.scorer.delta = delta;
  audit::AuditService service =
      audit::AuditService::from_model_file(model_path, options);
  // Distinct resident names even when both arguments are the same file
  // (submitting a resident name would replace the library row).
  const audit::Submission lib = service.add_library("a:" + a, read_file(a));
  if (!lib.accepted) {
    std::fprintf(stderr, "%s: parse error: %s\n", a.c_str(),
                 lib.error.to_string().c_str());
    return 3;
  }
  (void)service.submit("b:" + b, read_file(b));
  for (const audit::ScreenReport& report : service.screen()) {
    if (!report.submission.accepted) {
      std::fprintf(stderr, "%s: parse error: %s\n", b.c_str(),
                   report.submission.error.to_string().c_str());
      return 3;
    }
    if (!report.best) continue;
    const audit::Verdict& v = *report.best;
    std::printf("similarity %+.6f  delta %+.3f  verdict %s\n", v.similarity,
                delta, v.flagged ? "PIRACY" : "no-piracy");
    return v.flagged ? 0 : 1;  // exit code: 0 = flagged, like grep
  }
  return 3;
}

int cmd_audit(const std::vector<std::string>& args) {
  // args = everything after "audit": model path, flags, incoming files.
  if (args.empty()) return usage();
  const std::string model_path = args[0];
  std::vector<std::string> corpus_files;
  std::vector<std::string> incoming_files;
  audit::AuditOptions options;
  audit::AsyncOptions async_options;
  std::size_t top_k = 0;
  bool use_async = false;
  bool saw_shards = false;
  std::string connect_spec;
  std::string load_dir;
  std::string save_dir;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--corpus") {
      corpus_files.push_back(next_value());
    } else if (arg == "--delta") {
      options.scorer.delta = std::strtof(next_value().c_str(), nullptr);
    } else if (arg == "--top-k") {
      top_k = static_cast<std::size_t>(std::atoi(next_value().c_str()));
    } else if (arg == "--max-resident") {
      options.max_resident =
          static_cast<std::size_t>(std::atoi(next_value().c_str()));
    } else if (arg == "--shards") {
      // Parse as signed so "-1" fails validation instead of wrapping
      // into a huge size_t.
      const long shards = std::strtol(next_value().c_str(), nullptr, 10);
      if (shards <= 0) {
        std::fprintf(stderr, "error: --shards needs a positive count\n");
        return 2;
      }
      options.num_shards = static_cast<std::size_t>(shards);
      saw_shards = true;
    } else if (arg == "--connect") {
      connect_spec = next_value();
    } else if (arg == "--threads") {
      // Explicit worker count: takes precedence over GNN4IP_THREADS
      // (the env knob only resolves when num_threads stays 0).
      const long threads = std::strtol(next_value().c_str(), nullptr, 10);
      if (threads <= 0) {
        std::fprintf(stderr, "error: --threads needs a positive count\n");
        return 2;
      }
      options.scorer.num_threads = static_cast<std::size_t>(threads);
    } else if (arg == "--kernel") {
      // Force the SIMD dispatch backend (scalar | avx2 | neon | auto).
      // Verdict similarities are exact-scalar either way — the backend
      // matters to the int8 prefilter screen and the non-exact float
      // paths, never to the printed values.
      try {
        options.scorer.kernel = core::parse_backend(next_value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      if (!core::backend_supported(options.scorer.kernel)) {
        std::fprintf(stderr, "error: --kernel %s is not supported on this "
                             "host\n",
                     core::backend_name(options.scorer.kernel));
        return 2;
      }
    } else if (arg == "--prefilter") {
      // Screen through the int8 quantized tier: bound-gated pruning with
      // exact rescoring — output identical to the exhaustive scan.
      options.scorer.int8_prefilter = true;
    } else if (arg == "--async") {
      use_async = true;
    } else if (arg == "--load-corpus") {
      load_dir = next_value();
    } else if (arg == "--save-corpus") {
      save_dir = next_value();
    } else if (arg == "--consumers") {
      // Explicit consumer-pool size: takes precedence over
      // GNN4IP_CONSUMERS (the env knob only resolves when
      // num_consumers stays 0). Implies --async — a consumer pool
      // only exists on the async front end.
      const long consumers = std::strtol(next_value().c_str(), nullptr, 10);
      if (consumers <= 0) {
        std::fprintf(stderr, "error: --consumers needs a positive count\n");
        return 2;
      }
      async_options.num_consumers = static_cast<std::size_t>(consumers);
      use_async = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      incoming_files.push_back(arg);
    }
  }
  // A snapshot stands in for the --corpus library list entirely.
  if (corpus_files.empty() && load_dir.empty()) return usage();
  if (incoming_files.empty()) return usage();
  if (!connect_spec.empty() && saw_shards) {
    std::fprintf(stderr, "error: --connect and --shards are mutually "
                         "exclusive (the server count IS the shard count)\n");
    return 2;
  }
  if (!connect_spec.empty() && use_async) {
    std::fprintf(stderr,
                 "error: --connect does not combine with --async yet\n");
    return 2;
  }

  // The async front end owns the service; the sync path stands one up
  // directly. Verdicts are bit-identical either way — --async and
  // --shards only change when and where the screening work runs.
  std::unique_ptr<audit::AsyncAuditor> auditor;
  std::unique_ptr<audit::AuditService> owned_service;
  if (use_async) {
    auditor = audit::AsyncAuditor::from_model_file(model_path, options,
                                                   async_options);
  } else if (!connect_spec.empty()) {
    // Distributed corpus: one gnn4ip_shardd process per endpoint. The
    // handshake pins this model's fingerprint cluster-wide, and the
    // backend's shard count (the server count) overrides --shards.
    gnn::Hw2Vec model = gnn::load_model_file(model_path);
    const std::string fingerprint = gnn::model_fingerprint(model);
    // With --load-corpus the servers may already hold the snapshot's
    // rows (gnn4ip_shardd --load-shard); connect tolerates that and the
    // restore reconciles them (adopt when the tallies match, reset and
    // re-push otherwise).
    auto corpus = dist::DistCorpus::connect(
        dist::parse_endpoints(connect_spec), fingerprint, options.scorer,
        options.shard_budget, /*allow_resident=*/!load_dir.empty());
    owned_service = std::make_unique<audit::AuditService>(
        std::move(model), options, std::move(corpus));
  } else {
    owned_service = std::make_unique<audit::AuditService>(
        gnn::load_model_file(model_path), options);
  }
  audit::AuditService& service =
      use_async ? auditor->service() : *owned_service;

  if (!load_dir.empty()) {
    // Warm restart before any --corpus additions: the snapshot is the
    // baseline library, --corpus files land on top (replacing same-name
    // rows, exactly like re-adding to a warm service).
    service.load_corpus(load_dir);
    std::fprintf(stderr, "loaded corpus snapshot %s (%zu resident)\n",
                 load_dir.c_str(), service.resident());
  }
  for (const std::string& path : corpus_files) {
    const audit::Submission s = service.add_library(path, read_file(path));
    if (!s.accepted) {
      std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                   s.error.to_string().c_str());
      return 3;
    }
  }
  std::fprintf(
      stderr,
      "resident library: %zu design(s), D=%zu, delta %+.3f, %zu shard(s)%s\n",
      service.resident(), service.model().embedding_dim(), service.delta(),
      service.corpus().num_shards(), use_async ? ", async" : "");

  int flagged_designs = 0;
  const auto report_batch =
      [&](const std::vector<audit::ScreenReport>& reports) {
        for (const audit::ScreenReport& report : reports) {
          const audit::Submission& s = report.submission;
          if (!s.accepted) {
            std::printf("%-40s PARSE-ERROR %s\n", s.name.c_str(),
                        s.error.to_string().c_str());
            continue;
          }
          if (!report.verdicts.empty()) {
            ++flagged_designs;
            for (const audit::Verdict& v : report.verdicts) {
              std::printf("%-40s PIRACY     %+0.4f  %s\n", s.name.c_str(),
                          v.similarity, v.matched.c_str());
            }
          } else {
            std::printf("%-40s clean      %+0.4f  (closest: %s)\n",
                        s.name.c_str(),
                        report.best ? report.best->similarity : 0.0F,
                        report.best ? report.best->matched.c_str() : "-");
          }
          if (top_k > 0 && service.contains(s.name)) {
            for (const audit::Verdict& v : service.top_k(s.name, top_k)) {
              std::printf("  top-%zu: %-33s %+0.4f%s\n", top_k,
                          v.matched.c_str(), v.similarity,
                          v.flagged ? "  [!]" : "");
            }
          }
        }
      };

  if (use_async) {
    // Producers hand everything to the daemon and never wait on a batch
    // boundary; futures resolve as the consumer thread screens. Reports
    // print in submission order after quiesce() so top_k sees the final
    // resident corpus (same as the sync path's post-screen queries).
    std::vector<std::future<audit::ScreenReport>> futures;
    futures.reserve(incoming_files.size());
    for (const std::string& path : incoming_files) {
      futures.push_back(auditor->submit(path, read_file(path)));
    }
    auditor->quiesce();
    std::vector<audit::ScreenReport> reports;
    reports.reserve(futures.size());
    for (std::future<audit::ScreenReport>& f : futures) {
      reports.push_back(f.get());
    }
    report_batch(reports);
    std::fprintf(stderr,
                 "async: %zu submission(s) in %zu batch(es), %zu consumer(s)\n",
                 auditor->reported(), auditor->batches(),
                 auditor->consumers());
  } else {
    for (const std::string& path : incoming_files) {
      if (!service.submit(path, read_file(path))) {
        // Bounded queue full: screen (and report) what we have, retry.
        report_batch(service.screen());
        (void)service.submit(path, read_file(path));
      }
    }
    report_batch(service.screen());
  }

  if (!save_dir.empty()) {
    // Quiesce-then-save on the async path (AsyncAuditor::save_corpus);
    // the sync path is already drained. Either way the snapshot holds
    // exactly the post-screening resident corpus.
    if (use_async) {
      auditor->save_corpus(save_dir);
    } else {
      service.save_corpus(save_dir);
    }
    std::fprintf(stderr, "saved corpus snapshot to %s (%zu resident)\n",
                 save_dir.c_str(), service.resident());
  }

  std::printf("%d of %zu design(s) flagged above delta %+.3f\n",
              flagged_designs, incoming_files.size(), service.delta());
  return flagged_designs > 0 ? 0 : 1;  // exit code: 0 = flagged, like grep
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "extract" && argc == 3) {
      return cmd_extract(argv[2]);
    }
    if (cmd == "train" && (argc == 3 || argc == 4)) {
      return cmd_train(argv[2], argc == 4 ? std::atoi(argv[3]) : 60);
    }
    if (cmd == "embed" && argc == 4) {
      return cmd_embed(argv[2], argv[3]);
    }
    if (cmd == "compare" && (argc == 5 || argc == 6)) {
      const float delta =
          argc == 6 ? std::strtof(argv[5], nullptr) : 0.5F;
      return cmd_compare(argv[2], argv[3], argv[4], delta);
    }
    if (cmd == "audit" && argc >= 3) {
      return cmd_audit(std::vector<std::string>(argv + 2, argv + argc));
    }
  } catch (const verilog::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 3;
  } catch (const core::SnapshotError& e) {
    // Every malformed-snapshot case is a typed error, never a crash;
    // give it a distinct exit code so scripts can tell "bad snapshot"
    // from "bad design".
    std::fprintf(stderr, "snapshot error: %s\n", e.what());
    return 4;
  } catch (const net::WireError& e) {
    // Cluster trouble (refused connection, protocol violation, a shard
    // dying mid-screen) is typed end to end; scripts get a distinct
    // exit code instead of a hang or a generic failure.
    std::fprintf(stderr, "connection error: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
