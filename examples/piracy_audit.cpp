// Scenario: an IP vendor audits a portfolio of incoming third-party
// designs against its own IP library — the paper's core use case
// ("an effective IP piracy detection method is crucial for IP providers
// to disclose the theft").
//
// The vendor library holds several in-house designs, pinned into the
// audit service so eviction can never drop them. The incoming batch
// contains (a) an honest unrelated design, (b) a renamed copy of a
// library IP, and (c) a restructured (style-converted) copy — plus one
// malformed file, which gets a per-design diagnostic instead of killing
// the batch. Everything flows through audit::AuditService: submit,
// screen, verdicts.
//
// Part two replays the same portfolio through the production front end:
// a two-shard resident corpus behind audit::AsyncAuditor's consumer
// pool, which screens continuously while producers keep submitting —
// the verdicts come back through futures, bit-identical to part one's.
// Part three turns the volume up: several producer threads race the
// pool with eviction live, the shape a vendor's intake queue actually
// has.
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/async_auditor.h"
#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "data/rtl_designs.h"

int main() {
  using namespace gnn4ip;

  std::printf("training detector on the bundled corpus...\n");
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 60;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%\n\n",
              100.0 * eval.confusion.accuracy());

  // The audit service owns the model, the resident corpus, and the
  // worker pool; δ comes from the shared ScorerOptions. max_resident
  // bounds the cache — pinned library rows don't get evicted, screened
  // submissions do once the bound is hit.
  audit::AuditOptions options;
  options.scorer.delta = detector.delta();
  options.max_resident = 5;
  audit::AuditService service(detector.model(), options);

  // Vendor library (unseen instance seeds), pinned resident IP.
  (void)service.add_library("lib:crc8", data::gen_crc8({0, 7001}));
  (void)service.add_library("lib:uart_tx", data::gen_uart_tx({0, 7002}));
  (void)service.add_library("lib:fifo_ctrl", data::gen_fifo_ctrl({0, 7003}));
  std::printf("library resident: %zu designs (pinned)\n\n",
              service.resident());

  // Incoming portfolio: one honest design, one renamed CRC copy, one
  // style-rewritten UART, one file that does not even parse.
  (void)service.submit("in:pwm (honest)", data::gen_pwm({0, 7004}));
  (void)service.submit("in:crc8-renamed (stolen)", data::gen_crc8({0, 7005}));
  (void)service.submit("in:uart-restyled (stolen)",
                       data::gen_uart_tx({1, 7006}));
  (void)service.submit("in:corrupted", "module broken (input a, ;;;");

  int flagged = 0;
  for (const audit::ScreenReport& report : service.screen()) {
    const audit::Submission& s = report.submission;
    if (!s.accepted) {
      std::printf("%-28s parse error: %s\n", s.name.c_str(),
                  s.error.to_string().c_str());
      continue;
    }
    if (report.verdicts.empty()) {
      std::printf("%-28s clean (closest: %s %+.4f)\n", s.name.c_str(),
                  report.best ? report.best->matched.c_str() : "-",
                  report.best ? report.best->similarity : 0.0F);
      continue;
    }
    for (const audit::Verdict& v : report.verdicts) {
      std::printf("%-28s [!] matches %-14s %+.4f\n", s.name.c_str(),
                  v.matched.c_str(), v.similarity);
      ++flagged;
    }
  }
  std::printf(
      "\n%d pair(s) flagged above delta = %+.3f; resident after eviction: "
      "%zu\n",
      flagged, service.delta(), service.resident());

  // ---- Part two: the same audit as a daemon -----------------------------
  // Production shape: the resident corpus is split across two hash-placed
  // shards, and a pool of AsyncAuditor consumer threads drains the
  // submission queue continuously — producers get a future per design
  // and never wait for a batch boundary. Every submission commits
  // individually in ticket (submission) order, so however the pool
  // happens to batch, the verdicts match part one's bit for bit — with
  // the same real eviction budget as part one, no cache pinning needed.
  std::printf("\n--- async daemon, 2-shard corpus, 2 consumers ---\n");
  audit::AuditOptions async_options = options;  // same max_resident = 5
  async_options.num_shards = 2;
  audit::AsyncOptions pool;
  pool.num_consumers = 2;
  audit::AsyncAuditor auditor(detector.model(), async_options, pool);
  (void)auditor.service().add_library("lib:crc8", data::gen_crc8({0, 7001}));
  (void)auditor.service().add_library("lib:uart_tx",
                                      data::gen_uart_tx({0, 7002}));
  (void)auditor.service().add_library("lib:fifo_ctrl",
                                      data::gen_fifo_ctrl({0, 7003}));

  std::vector<std::future<audit::ScreenReport>> futures;
  futures.push_back(
      auditor.submit("in:pwm (honest)", data::gen_pwm({0, 7004})));
  futures.push_back(
      auditor.submit("in:crc8-renamed (stolen)", data::gen_crc8({0, 7005})));
  futures.push_back(auditor.submit("in:uart-restyled (stolen)",
                                   data::gen_uart_tx({1, 7006})));
  futures.push_back(
      auditor.submit("in:corrupted", "module broken (input a, ;;;"));

  for (std::future<audit::ScreenReport>& future : futures) {
    const audit::ScreenReport report = future.get();
    const audit::Submission& s = report.submission;
    if (!s.accepted) {
      std::printf("%-28s parse error: %s\n", s.name.c_str(),
                  s.error.to_string().c_str());
    } else if (report.verdicts.empty()) {
      std::printf("%-28s clean (closest: %s %+.4f)\n", s.name.c_str(),
                  report.best ? report.best->matched.c_str() : "-",
                  report.best ? report.best->similarity : 0.0F);
    } else {
      for (const audit::Verdict& v : report.verdicts) {
        std::printf("%-28s [!] matches %-14s %+.4f\n", s.name.c_str(),
                    v.matched.c_str(), v.similarity);
      }
    }
  }
  auditor.close();
  std::printf("daemon screened %zu submission(s) in %zu batch(es), "
              "%zu shard(s), %zu consumer(s)\n",
              auditor.reported(), auditor.batches(),
              auditor.service().corpus().num_shards(), auditor.consumers());

  // ---- Part three: concurrent intake under eviction pressure ------------
  // The shape a real intake queue has: several producer threads race
  // each other into the bounded queue while the consumer pool screens
  // and the LRU budget evicts continuously. Interleaving changes which
  // screened designs are co-resident when a given submission commits
  // (so per-run verdict sets differ here, unlike parts one and two
  // where a single producer fixes the ticket order) — but every future
  // resolves, pinned library rows survive every eviction, and the
  // resident bound holds.
  std::printf("\n--- concurrent intake: 3 producers x 2 consumers ---\n");
  audit::AsyncAuditor intake(detector.model(), async_options, pool);
  (void)intake.service().add_library("lib:crc8", data::gen_crc8({0, 7001}));
  (void)intake.service().add_library("lib:uart_tx",
                                     data::gen_uart_tx({0, 7002}));
  (void)intake.service().add_library("lib:fifo_ctrl",
                                     data::gen_fifo_ctrl({0, 7003}));

  std::mutex results_mu;
  std::vector<std::future<audit::ScreenReport>> intake_futures;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int k = 0; k < 4; ++k) {
        const unsigned seed = 8000u + static_cast<unsigned>(p * 4 + k);
        const std::string name =
            "in:p" + std::to_string(p) + "#" + std::to_string(k);
        std::future<audit::ScreenReport> f =
            (k % 2 == 0) ? intake.submit(name, data::gen_pwm({0, seed}))
                         : intake.submit(name, data::gen_crc8({0, seed}));
        std::lock_guard<std::mutex> lock(results_mu);
        intake_futures.push_back(std::move(f));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  intake.quiesce();

  std::size_t piracy_hits = 0;
  for (std::future<audit::ScreenReport>& future : intake_futures) {
    const audit::ScreenReport report = future.get();
    if (report.submission.accepted && !report.verdicts.empty()) ++piracy_hits;
  }
  intake.close();
  std::printf("screened %zu racing submission(s); %zu flagged; resident "
              "%zu (bound %zu), library still pinned: %s\n",
              intake.reported(), piracy_hits, intake.service().resident(),
              async_options.max_resident,
              intake.service().contains("lib:crc8") ? "yes" : "NO");
  return 0;
}
