// Scenario: an IP vendor audits a portfolio of incoming third-party
// designs against its own IP library — the paper's core use case
// ("an effective IP piracy detection method is crucial for IP providers
// to disclose the theft").
//
// The vendor library holds several in-house designs, pinned into the
// audit service so eviction can never drop them. The incoming batch
// contains (a) an honest unrelated design, (b) a renamed copy of a
// library IP, and (c) a restructured (style-converted) copy — plus one
// malformed file, which gets a per-design diagnostic instead of killing
// the batch. Everything flows through audit::AuditService: submit,
// screen, verdicts.
#include <cstdio>
#include <string>
#include <vector>

#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "data/rtl_designs.h"

int main() {
  using namespace gnn4ip;

  std::printf("training detector on the bundled corpus...\n");
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 60;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%\n\n",
              100.0 * eval.confusion.accuracy());

  // The audit service owns the model, the resident corpus, and the
  // worker pool; δ comes from the shared ScorerOptions. max_resident
  // bounds the cache — pinned library rows don't get evicted, screened
  // submissions do once the bound is hit.
  audit::AuditOptions options;
  options.scorer.delta = detector.delta();
  options.max_resident = 5;
  audit::AuditService service(detector.model(), options);

  // Vendor library (unseen instance seeds), pinned resident IP.
  (void)service.add_library("lib:crc8", data::gen_crc8({0, 7001}));
  (void)service.add_library("lib:uart_tx", data::gen_uart_tx({0, 7002}));
  (void)service.add_library("lib:fifo_ctrl", data::gen_fifo_ctrl({0, 7003}));
  std::printf("library resident: %zu designs (pinned)\n\n",
              service.resident());

  // Incoming portfolio: one honest design, one renamed CRC copy, one
  // style-rewritten UART, one file that does not even parse.
  (void)service.submit("in:pwm (honest)", data::gen_pwm({0, 7004}));
  (void)service.submit("in:crc8-renamed (stolen)", data::gen_crc8({0, 7005}));
  (void)service.submit("in:uart-restyled (stolen)",
                       data::gen_uart_tx({1, 7006}));
  (void)service.submit("in:corrupted", "module broken (input a, ;;;");

  int flagged = 0;
  for (const audit::ScreenReport& report : service.screen()) {
    const audit::Submission& s = report.submission;
    if (!s.accepted) {
      std::printf("%-28s parse error: %s\n", s.name.c_str(),
                  s.error.to_string().c_str());
      continue;
    }
    if (report.verdicts.empty()) {
      std::printf("%-28s clean (closest: %s %+.4f)\n", s.name.c_str(),
                  report.best ? report.best->matched.c_str() : "-",
                  report.best ? report.best->similarity : 0.0F);
      continue;
    }
    for (const audit::Verdict& v : report.verdicts) {
      std::printf("%-28s [!] matches %-14s %+.4f\n", s.name.c_str(),
                  v.matched.c_str(), v.similarity);
      ++flagged;
    }
  }
  std::printf(
      "\n%d pair(s) flagged above delta = %+.3f; resident after eviction: "
      "%zu\n",
      flagged, service.delta(), service.resident());
  return 0;
}
