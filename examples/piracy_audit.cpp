// Scenario: an IP vendor audits a portfolio of incoming third-party
// designs against its own IP library — the paper's core use case
// ("an effective IP piracy detection method is crucial for IP providers
// to disclose the theft").
//
// The vendor library holds several in-house designs. The incoming batch
// contains (a) honest unrelated designs, (b) a renamed copy of a library
// IP, and (c) a restructured (style-converted) copy. The audit embeds
// everything once and prints a similarity matrix plus flagged pairs.
#include <cstdio>
#include <string>
#include <vector>

#include "core/gnn4ip.h"
#include "core/pairwise_scorer.h"
#include "data/rtl_designs.h"

int main() {
  using namespace gnn4ip;

  std::printf("training detector on the bundled corpus...\n");
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 60;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%\n\n",
              100.0 * eval.confusion.accuracy());

  struct Ip {
    std::string name;
    std::string verilog;
  };
  // Vendor library (unseen instance seeds).
  const std::vector<Ip> library = {
      {"lib:crc8", data::gen_crc8({0, 7001})},
      {"lib:uart_tx", data::gen_uart_tx({0, 7002})},
      {"lib:fifo_ctrl", data::gen_fifo_ctrl({0, 7003})},
  };
  // Incoming portfolio: one honest design, one renamed CRC copy, one
  // style-rewritten UART.
  const std::vector<Ip> incoming = {
      {"in:pwm (honest)", data::gen_pwm({0, 7004})},
      {"in:crc8-renamed (stolen)", data::gen_crc8({0, 7005})},
      {"in:uart-restyled (stolen)", data::gen_uart_tx({1, 7006})},
  };

  // Embed each design exactly once; every library×incoming score then
  // comes from the cached embeddings via the batched blocked kernel
  // (the naive path would re-embed both members of all 9 pairs).
  core::PairwiseScorer library_scorer;
  core::PairwiseScorer incoming_scorer;
  for (const Ip& lib : library) {
    (void)library_scorer.add(lib.name, detector.embed(lib.verilog));
  }
  for (const Ip& candidate : incoming) {
    (void)incoming_scorer.add(candidate.name,
                              detector.embed(candidate.verilog));
  }
  const tensor::Matrix sims = incoming_scorer.score_against(library_scorer);

  std::printf("%-28s", "similarity");
  for (const Ip& lib : library) std::printf(" %14s", lib.name.c_str());
  std::printf("\n");

  int flagged = 0;
  for (std::size_t row = 0; row < incoming.size(); ++row) {
    std::printf("%-28s", incoming[row].name.c_str());
    for (std::size_t col = 0; col < library.size(); ++col) {
      const float similarity = sims.at(row, col);
      const bool is_piracy = similarity > detector.delta();
      std::printf(" %+9.4f%s", similarity, is_piracy ? " [!] " : "     ");
      if (is_piracy) ++flagged;
    }
    std::printf("\n");
  }
  std::printf("\n%d pair(s) flagged above delta = %+.3f\n", flagged,
              detector.delta());
  return 0;
}
