// Train a detector on the full bundled corpus and persist the weights —
// the deployment workflow: train once, ship the model file, stand the
// audit service up from it (audit::AuditService::from_model_file).
#include <cstdio>
#include <string>

#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "data/rtl_designs.h"

int main(int argc, char** argv) {
  using namespace gnn4ip;
  const std::string path = argc > 1 ? argv[1] : "hw2vec_model.txt";

  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 8;
  std::printf("building corpus and training (this is the slow part)...\n");
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 80;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::printf("held-out accuracy %.2f%%  FNR %.2e  delta %+.3f\n",
              100.0 * eval.confusion.accuracy(),
              eval.confusion.false_negative_rate(), detector.delta());

  detector.save(path);
  std::printf("saved model to %s\n", path.c_str());

  // Stand a fresh audit service up from the saved file and verify the
  // persisted weights reproduce the live model's scores: the resident
  // counter is library IP, a same-design counter variant is screened
  // against it.
  audit::AuditOptions options;
  options.scorer.delta = detector.delta();
  audit::AuditService service =
      audit::AuditService::from_model_file(path, options);
  const std::string a = data::gen_counter({0, 8801});
  const std::string b = data::gen_counter({1, 8802});
  (void)service.add_library("counter#a", a);
  (void)service.submit("counter#b", b);
  for (const audit::ScreenReport& report : service.screen()) {
    if (!report.best) continue;
    std::printf(
        "reloaded model: counter-vs-counter score %+.4f (original %+.4f)\n",
        report.best->similarity, detector.similarity(a, b));
  }
  return 0;
}
