// Scenario: an adversary obfuscates a stolen gate-level netlist
// (inverter pairs, buffer chains, dummy logic, gate decomposition, full
// renaming) to evade detection — the paper's §IV-E experiment. GNN4IP
// still recognizes the original IP because it learns behavior, not
// wire names or gate-level idioms.
#include <cstdio>

#include "core/gnn4ip.h"
#include "data/corpus.h"
#include "data/iscas.h"
#include "data/obfuscate.h"

int main() {
  using namespace gnn4ip;

  std::printf("training detector on the bundled netlist corpus...\n");
  data::NetlistCorpusOptions corpus;
  corpus.instances_per_family = 8;
  corpus.iscas_obfuscated_per_benchmark = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 120;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_netlist_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%\n\n",
              100.0 * eval.confusion.accuracy());
  // Use the Eq. 7 margin as the decision boundary: the accuracy-tuned δ
  // from a small corpus is tight around the training distribution, while
  // heavy obfuscation legitimately costs some similarity. δ = margin is
  // the principled "how much similarity counts as piracy" default.
  detector.set_delta(0.5F);

  // The "stolen" IP: the c880-style 8-bit ALU stand-in.
  const data::Netlist original = data::build_c880_alu8();
  std::printf("original IP: %s (%zu gates)\n",
              original.module_name.c_str(), original.num_gates());

  util::Rng rng(99);
  for (int level = 1; level <= 3; ++level) {
    data::ObfuscationConfig config;
    config.inverter_pair_rate = 0.04 * level;
    config.buffer_rate = 0.04 * level;
    config.decompose_rate = 0.15 * level;
    config.dummy_gates = 6 * level;
    const data::Netlist stolen = data::obfuscate(original, config, rng);
    const Verdict v =
        detector.check(original.to_verilog(), stolen.to_verilog());
    std::printf(
        "obfuscation level %d: %4zu gates (+%3zu)  score %+.4f -> %s\n",
        level, stolen.num_gates(), stolen.num_gates() - original.num_gates(),
        v.similarity, v.is_piracy ? "PIRACY DETECTED" : "missed");
  }

  // Contrast: a genuinely different circuit scores low.
  const data::Netlist different = data::build_c432_interrupt_controller();
  const Verdict v =
      detector.check(original.to_verilog(), different.to_verilog());
  std::printf("\nunrelated design (c432-style):            score %+.4f -> %s\n",
              v.similarity, v.is_piracy ? "piracy?!" : "no piracy");
  return 0;
}
