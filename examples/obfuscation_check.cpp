// Scenario: an adversary obfuscates a stolen gate-level netlist
// (inverter pairs, buffer chains, dummy logic, gate decomposition, full
// renaming) to evade detection — the paper's §IV-E experiment. GNN4IP
// still recognizes the original IP because it learns behavior, not
// wire names or gate-level idioms. The original IP sits pinned in an
// audit::AuditService; each obfuscated variant is screened against it.
#include <cstdio>

#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "data/corpus.h"
#include "data/iscas.h"
#include "data/obfuscate.h"

int main() {
  using namespace gnn4ip;

  std::printf("training detector on the bundled netlist corpus...\n");
  data::NetlistCorpusOptions corpus;
  corpus.instances_per_family = 8;
  corpus.iscas_obfuscated_per_benchmark = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 120;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_netlist_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%\n\n",
              100.0 * eval.confusion.accuracy());

  // Use the Eq. 7 margin as the decision boundary: the accuracy-tuned δ
  // from a small corpus is tight around the training distribution, while
  // heavy obfuscation legitimately costs some similarity. δ = margin is
  // the principled "how much similarity counts as piracy" default.
  // max_resident = 1 keeps only the pinned library IP resident: every
  // screened variant is scored, reported, and then evicted, so each
  // level is judged against the original alone.
  audit::AuditOptions options;
  options.scorer.delta = 0.5F;
  options.max_resident = 1;
  audit::AuditService service(detector.model(), options);

  // The "stolen" IP: the c880-style 8-bit ALU stand-in, pinned as the
  // vendor's resident library entry.
  const data::Netlist original = data::build_c880_alu8();
  std::printf("original IP: %s (%zu gates)\n",
              original.module_name.c_str(), original.num_gates());
  (void)service.add_library("c880_alu8", original.to_verilog());

  util::Rng rng(99);
  for (int level = 1; level <= 3; ++level) {
    data::ObfuscationConfig obf;
    obf.inverter_pair_rate = 0.04 * level;
    obf.buffer_rate = 0.04 * level;
    obf.decompose_rate = 0.15 * level;
    obf.dummy_gates = 6 * level;
    const data::Netlist stolen = data::obfuscate(original, obf, rng);
    (void)service.submit("obfuscated-L" + std::to_string(level),
                         stolen.to_verilog());
    for (const audit::ScreenReport& report : service.screen()) {
      if (!report.best) continue;
      std::printf(
          "obfuscation level %d: %4zu gates (+%3zu)  score %+.4f -> %s\n",
          level, stolen.num_gates(),
          stolen.num_gates() - original.num_gates(),
          report.best->similarity,
          report.best->flagged ? "PIRACY DETECTED" : "missed");
    }
  }

  // Contrast: a genuinely different circuit scores low.
  const data::Netlist different = data::build_c432_interrupt_controller();
  (void)service.submit("c432_interrupt", different.to_verilog());
  for (const audit::ScreenReport& report : service.screen()) {
    if (!report.best) continue;
    std::printf(
        "\nunrelated design (c432-style):            score %+.4f -> %s\n",
        report.best->similarity,
        report.best->flagged ? "piracy?!" : "no piracy");
  }
  return 0;
}
