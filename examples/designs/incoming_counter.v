// Incoming third-party design: an honest 8-bit up/down counter,
// unrelated to any library IP. An audit should pass it as clean.
module COUNTER8 (input clk, input rst, input en, input up,
                 output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'h00;
    else if (en) begin
      if (up) q <= q + 8'h01;
      else q <= q - 8'h01;
    end
  end
endmodule
