// Incoming third-party design: behavioral rewrite of the library adder
// (paper Fig. 1 "Adder1") — same design, different source style. An
// audit should flag this against lib_adder.v.
module FA_UNIT (input Num1, input Num2, input Cin,
                output reg Sum, output reg Cout);
  always @(Num1, Num2, Cin) begin
    Sum <= ((Num1 ^ Num2) ^ Cin);
    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
  end
endmodule
