// Vendor library IP: 4:1 multiplexer.
module MUX4 (input [3:0] d, input [1:0] sel, output y);
  assign y = (sel == 2'b00) ? d[0] :
             (sel == 2'b01) ? d[1] :
             (sel == 2'b10) ? d[2] : d[3];
endmodule
