// Deliberately malformed: exercises the per-design diagnostic path —
// the audit batch must survive this file and still screen the others.
module BROKEN (input a, input b
  assign x = a &
endmodule
