// Vendor library IP: gate-level full adder (paper Fig. 1 "Adder2").
module ADDER (Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule
