// Quickstart: detect piracy between Verilog designs in ~30 lines.
//
// The two adders below are the paper's Fig. 1 motivational example —
// different source codes (behavioral vs gate-level) implementing the
// same full-adder design. After training, the adder goes into an
// audit::AuditService as resident library IP; screening the gate-level
// rewrite should flag it as piracy, and an unrelated mux should pass.
#include <cstdio>

#include "audit/audit_service.h"
#include "core/gnn4ip.h"

int main() {
  using namespace gnn4ip;

  const std::string adder_behavioral = R"(
module ADDER (input Num1, input Num2, input Cin,
              output reg Sum, output reg Cout);
  always @(Num1, Num2, Cin) begin
    Sum <= ((Num1 ^ Num2) ^ Cin);
    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
  end
endmodule
)";

  const std::string adder_structural = R"(
module ADDER (Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule
)";

  const std::string unrelated_mux = R"(
module MUX4 (input [3:0] d, input [1:0] sel, output y);
  assign y = (sel == 2'b00) ? d[0] :
             (sel == 2'b01) ? d[1] :
             (sel == 2'b10) ? d[2] : d[3];
endmodule
)";

  // Train a small detector on the bundled synthetic corpus. (For real
  // use you would train once, detector.save() the weights, and build the
  // service with AuditService::from_model_file — see
  // examples/train_and_save.cpp.)
  std::printf("training hw2vec on the bundled RTL corpus...\n");
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 60;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%, decision boundary delta = %+.3f\n\n",
              100.0 * eval.confusion.accuracy(), detector.delta());

  // RTL in, verdicts out: the service owns the model and the resident
  // library; screen() parses, embeds, and scores each submission.
  audit::AuditOptions options;
  options.scorer.delta = detector.delta();
  audit::AuditService service(detector.model(), options);
  (void)service.add_library("adder (behavioral)", adder_behavioral);
  (void)service.submit("adder (gate-level)", adder_structural);
  (void)service.submit("4:1 mux", unrelated_mux);

  for (const audit::ScreenReport& report : service.screen()) {
    if (!report.best) continue;
    std::printf("%-20s vs %-20s score %+.4f -> %s\n",
                report.submission.name.c_str(), report.best->matched.c_str(),
                report.best->similarity,
                report.best->flagged ? "PIRACY" : "no piracy");
  }
  return 0;
}
