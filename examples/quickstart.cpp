// Quickstart: detect piracy between two Verilog designs in ~30 lines.
//
// The two adders below are the paper's Fig. 1 motivational example —
// different source codes (behavioral vs gate-level) implementing the
// same full-adder design. A detector trained on the bundled corpus
// should score them as highly similar, and score an unrelated ALU low.
#include <cstdio>

#include "core/gnn4ip.h"

int main() {
  using namespace gnn4ip;

  const std::string adder_behavioral = R"(
module ADDER (input Num1, input Num2, input Cin,
              output reg Sum, output reg Cout);
  always @(Num1, Num2, Cin) begin
    Sum <= ((Num1 ^ Num2) ^ Cin);
    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
  end
endmodule
)";

  const std::string adder_structural = R"(
module ADDER (Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule
)";

  const std::string unrelated_mux = R"(
module MUX4 (input [3:0] d, input [1:0] sel, output y);
  assign y = (sel == 2'b00) ? d[0] :
             (sel == 2'b01) ? d[1] :
             (sel == 2'b10) ? d[2] : d[3];
endmodule
)";

  // Train a small detector on the bundled synthetic corpus. (For real
  // use you would train once and detector.save()/load() the weights —
  // see examples/train_and_save.cpp.)
  std::printf("training hw2vec on the bundled RTL corpus...\n");
  data::RtlCorpusOptions corpus;
  corpus.instances_per_family = 6;
  DetectorConfig config;
  config.model.seed = 5;
  PiracyDetector detector(config);
  train::TrainConfig tc;
  tc.epochs = 60;
  tc.learning_rate = 3e-3F;
  const auto eval = detector.train_on(
      make_graph_entries(data::build_rtl_corpus(corpus)), tc);
  std::printf("held-out accuracy %.1f%%, decision boundary delta = %+.3f\n\n",
              100.0 * eval.confusion.accuracy(), detector.delta());

  const Verdict same = detector.check(adder_behavioral, adder_structural);
  std::printf("behavioral adder vs gate-level adder: score %+.4f -> %s\n",
              same.similarity, same.is_piracy ? "PIRACY" : "no piracy");

  const Verdict diff = detector.check(adder_behavioral, unrelated_mux);
  std::printf("behavioral adder vs 4:1 mux:          score %+.4f -> %s\n",
              diff.similarity, diff.is_piracy ? "PIRACY" : "no piracy");
  return 0;
}
