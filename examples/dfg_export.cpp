// Inspect the DFG pipeline: compile a design through the audit front
// half (audit::compile_rtl — the paper's Fig. 2 stages plus
// featurization) and export GraphViz DOT for visualization. Pass a
// Verilog file path to process your own design; without arguments the
// Fig. 1 adder is used. Malformed input is reported as a per-design
// diagnostic with its source location, not an exception.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "audit/pipeline.h"
#include "dfg/node_kind.h"
#include "graph/serialize.h"

int main(int argc, char** argv) {
  using namespace gnn4ip;

  std::string source;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  } else {
    source = R"(
module ADDER (Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule
)";
  }

  const audit::CompileResult compiled = audit::compile_rtl(source);
  if (!compiled.ok) {
    std::fprintf(stderr, "parse error: %s\n",
                 compiled.error.to_string().c_str());
    return 1;
  }
  const graph::Digraph& g = compiled.design.dfg;
  const dfg::DfgSummary s = dfg::summarize(g);
  std::printf("DFG: %zu nodes, %zu edges — %zu inputs, %zu outputs, "
              "%zu operators\n",
              s.num_nodes, s.num_edges, s.num_inputs, s.num_outputs,
              s.num_operators);
  std::printf("featurized: X is %zu x %zu\n",
              compiled.design.tensors.x.rows(),
              compiled.design.tensors.x.cols());
  std::printf("\nnode listing:\n");
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto id = static_cast<graph::NodeId>(v);
    std::printf("  [%2zu] %-12s kind=%s  out-deg=%zu\n", v,
                g.node(id).name.c_str(),
                dfg::to_string(static_cast<dfg::NodeKind>(g.node(id).kind)),
                g.out_degree(id));
  }
  const std::string dot_path = "dfg.dot";
  std::ofstream dot(dot_path);
  dot << graph::to_dot(g, "dfg");
  std::printf("\nwrote %s — render with: dot -Tpng dfg.dot -o dfg.png\n",
              dot_path.c_str());
  return 0;
}
