// gnn4ip_shardd — one corpus shard server process.
//
//   gnn4ip_shardd --listen <port> [--load-shard <file>]
//                 [--fingerprint <fp>] [--kernel <scalar|avx2|neon|auto>]
//
// Binds 127.0.0.1:<port> (0 = ephemeral), prints the chosen address on
// stdout as "gnn4ip_shardd listening on 127.0.0.1:<port>" (flushed, so
// launch scripts can grep it), then serves G4IPWIRE requests until
// SIGINT/SIGTERM. --load-shard warm-starts the store from one binary
// shard file of a corpus snapshot (docs/FORMATS.md); --fingerprint pins
// the model fingerprint this shard will accept at Hello time (default:
// adopt the first client's).
//
// Exit codes match gnn4ip_cli: 2 usage, 3 error, 4 snapshot error,
// 5 connection/wire error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/simd_dispatch.h"
#include "core/snapshot_format.h"
#include "dist/shard_server.h"
#include "net/wire_format.h"

namespace {

using namespace gnn4ip;

// Written by the signal handler, polled by main — the handler itself
// must stay async-signal-safe, so it only flips this flag.
volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: gnn4ip_shardd --listen <port> [--load-shard <file>]\n"
               "                     [--fingerprint <fp>]\n"
               "                     [--kernel <scalar|avx2|neon|auto>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long port = -1;
  std::string shard_file;
  dist::ShardServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      port = std::strtol(next_value(), nullptr, 10);
    } else if (arg == "--load-shard") {
      shard_file = next_value();
    } else if (arg == "--fingerprint") {
      options.fingerprint = next_value();
    } else if (arg == "--kernel") {
      try {
        options.kernel = core::parse_backend(next_value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      if (!core::backend_supported(options.kernel)) {
        std::fprintf(stderr, "error: --kernel %s is not supported on this "
                             "host\n",
                     core::backend_name(options.kernel));
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return usage();
    }
  }
  if (port < 0 || port > 65535) return usage();

  try {
    dist::ShardServer server(static_cast<std::uint16_t>(port), options);
    if (!shard_file.empty()) {
      server.load_shard(shard_file);
      std::fprintf(stderr, "loaded shard file %s\n", shard_file.c_str());
    }
    std::printf("gnn4ip_shardd listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::thread serving([&server] { server.serve(); });
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    serving.join();
    std::fprintf(stderr, "gnn4ip_shardd: stopped\n");
    return 0;
  } catch (const core::SnapshotError& e) {
    std::fprintf(stderr, "snapshot error: %s\n", e.what());
    return 4;
  } catch (const net::WireError& e) {
    std::fprintf(stderr, "connection error: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
