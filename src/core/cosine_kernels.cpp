#include "core/cosine_kernels.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::core {

float row_norm(std::span<const float> row) {
  float sq = 0.0F;
  for (const float v : row) sq += v * v;
  return std::sqrt(sq);
}

std::vector<float> row_norms(std::span<const float> data, std::size_t rows,
                             std::size_t dim) {
  GNN4IP_ENSURE(data.size() == rows * dim,
                "row_norms: buffer size does not match rows × dim");
  std::vector<float> norms(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    norms[i] = row_norm(data.subspan(i * dim, dim));
  }
  return norms;
}

float cosine_pair(std::span<const float> a, std::span<const float> b) {
  GNN4IP_ENSURE(a.size() == b.size(), "cosine_pair: row lengths differ");
  // Three independent ascending-k accumulators: the dot product matches
  // the cosine_rows cell, and each sum of squares matches row_norm, so
  // this fused loop is bit-identical to the precomputed-norm kernels.
  float ab = 0.0F;
  float aa = 0.0F;
  float bb = 0.0F;
  for (std::size_t k = 0; k < a.size(); ++k) {
    ab += a[k] * b[k];
    aa += a[k] * a[k];
    bb += b[k] * b[k];
  }
  const float denom = std::max(std::sqrt(aa) * std::sqrt(bb), kNormFloor);
  return std::clamp(ab / denom, -1.0F, 1.0F);
}

tensor::Matrix cosine_rows(std::span<const float> a, std::size_t a_rows,
                           std::span<const float> b, std::size_t b_rows,
                           std::size_t dim, const ScorerOptions& options) {
  GNN4IP_ENSURE(a.size() == a_rows * dim && b.size() == b_rows * dim,
                "cosine_rows: buffer size does not match rows × dim");
  tensor::Matrix result(a_rows, b_rows);
  if (a_rows == 0 || b_rows == 0) return result;

  const std::vector<float> norms_a = row_norms(a, a_rows, dim);
  const std::vector<float> norms_b = row_norms(b, b_rows, dim);
  const std::size_t block = std::max<std::size_t>(options.block_rows, 1);
  const std::size_t row_tiles = (a_rows + block - 1) / block;
  const std::size_t col_tiles = (b_rows + block - 1) / block;

  // Exact scoring pins the scalar sweep (a loop over cosine_cell —
  // today's bits); opting out dispatches the tile inner loop to the
  // resolved SIMD backend.
  const KernelOps& ops = kernel_ops(
      options.exact_scoring ? KernelBackend::kScalar : options.kernel);
  const auto run_tile = [&](std::size_t tile) {
    const std::size_t i0 = (tile / col_tiles) * block;
    const std::size_t j0 = (tile % col_tiles) * block;
    const std::size_t i1 = std::min(i0 + block, a_rows);
    const std::size_t j1 = std::min(j0 + block, b_rows);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* ra = a.data() + i * dim;
      const std::span<float> out = result.row(i);
      ops.cosine_sweep(ra, norms_a[i], b.data() + j0 * dim, norms_b.data() + j0,
                       j1 - j0, dim, out.data() + j0);
    }
  };
  util::parallel_for(row_tiles * col_tiles, options.num_threads, run_tile);
  return result;
}

tensor::Matrix cosine_rows(const tensor::Matrix& a, const tensor::Matrix& b,
                           const ScorerOptions& options) {
  GNN4IP_ENSURE(a.cols() == b.cols(),
                "cosine_rows: dimension mismatch " + a.shape_string() +
                    " vs " + b.shape_string());
  if (a.rows() == 0 || b.rows() == 0) return tensor::Matrix(a.rows(), b.rows());
  return cosine_rows(a.data(), a.rows(), b.data(), b.rows(), a.cols(),
                     options);
}

}  // namespace gnn4ip::core
