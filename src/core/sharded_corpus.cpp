#include "core/sharded_corpus.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "core/snapshot_format.h"
#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::core {

ShardedCorpus::ShardedCorpus(std::size_t num_shards,
                             const ScorerOptions& options,
                             std::size_t shard_budget)
    : options_(options), shard_budget_(shard_budget) {
  GNN4IP_ENSURE(num_shards > 0, "ShardedCorpus: need at least one shard");
  shards_.resize(num_shards);
  globals_.resize(num_shards);
  stripes_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    stripes_.push_back(
        std::make_unique<util::SharedMutex>(util::lock_rank::stripe(s)));
  }
}

std::size_t ShardedCorpus::placement(std::string_view name,
                                     std::size_t num_shards) {
  GNN4IP_ENSURE(num_shards > 0, "ShardedCorpus: need at least one shard");
  // FNV-1a, 64-bit: stable across processes and platforms (std::hash is
  // not), so a design's shard is a durable property of its name.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h % num_shards);
}

ShardedCorpus::StripeGuard ShardedCorpus::lock_all_stripes_shared() const {
  return StripeGuard(stripes_);
}

std::size_t ShardedCorpus::add(std::string name,
                               const tensor::Matrix& embedding) {
  GNN4IP_ENSURE(!embedding.empty(), "ShardedCorpus: empty embedding");
  util::ReaderLock epoch(epoch_mu_);
  // The admission ticket: whoever wins index_mu_ next gets the next
  // global id, so interleaved admissions from several consumers fold
  // into one deterministic insertion order. The placed shard's stripe
  // nests inside (index before stripe everywhere), blocking only that
  // shard's readers for the append.
  util::WriterLock index(index_mu_);
  if (dim_ == 0) {
    dim_ = embedding.size();
  } else {
    GNN4IP_ENSURE(embedding.size() == dim_,
                  "ShardedCorpus: embedding dim " +
                      std::to_string(embedding.size()) + " != corpus dim " +
                      std::to_string(dim_));
  }
  const std::size_t s = placement(name, shards_.size());
  const std::size_t global = entries_.size();
  {
    util::WriterLock stripe(*stripes_[s]);
    const std::size_t local = shards_[s].add(std::move(name), embedding);
    entries_.push_back({s, local});
    globals_[s].push_back(global);
  }
  ++live_count_;
  return global;
}

std::size_t ShardedCorpus::size() const {
  util::ReaderLock index(index_mu_);
  return entries_.size();
}

std::size_t ShardedCorpus::dim() const {
  util::ReaderLock index(index_mu_);
  return dim_;
}

std::size_t ShardedCorpus::live_count() const {
  util::ReaderLock index(index_mu_);
  return live_count_;
}

const std::string& ShardedCorpus::name(std::size_t i) const {
  util::ReaderLock epoch(epoch_mu_);
  util::ReaderLock index(index_mu_);
  GNN4IP_ENSURE(i < entries_.size(), "ShardedCorpus: index out of range");
  // Names are stable between compacts (EmbeddingStore::add never moves
  // the std::string storage of earlier names), so returning the
  // reference after dropping the locks is safe until the next compact().
  return shards_[entries_[i].shard].name(entries_[i].local);
}

std::span<const float> ShardedCorpus::row(std::size_t i) const {
  util::ReaderLock epoch(epoch_mu_);
  util::ReaderLock index(index_mu_);
  GNN4IP_ENSURE(i < entries_.size(), "ShardedCorpus: row index out of range");
  const EntryRef e = entries_[i];
  util::ReaderLock stripe(*stripes_[e.shard]);
  return row_nolock(e);
}

void ShardedCorpus::remove(std::size_t i) {
  util::ReaderLock epoch(epoch_mu_);
  util::WriterLock index(index_mu_);
  GNN4IP_ENSURE(i < entries_.size(), "ShardedCorpus: remove out of range");
  const EntryRef e = entries_[i];
  {
    util::WriterLock stripe(*stripes_[e.shard]);
    shards_[e.shard].remove(e.local);
  }
  --live_count_;
}

bool ShardedCorpus::live(std::size_t i) const {
  util::ReaderLock epoch(epoch_mu_);
  util::ReaderLock index(index_mu_);
  GNN4IP_ENSURE(i < entries_.size(), "ShardedCorpus: index out of range");
  const EntryRef e = entries_[i];
  util::ReaderLock stripe(*stripes_[e.shard]);
  return shards_[e.shard].live(e.local);
}

std::vector<std::size_t> ShardedCorpus::compact() {
  // The global epoch: exclusive over every reader and admitter, so the
  // dense renumbering below can never be observed half-applied. The
  // index lock is still needed on top: size()/dim()/live_count()/
  // shard_of() read under index_mu_ alone (they never touch row data,
  // so they skip the epoch), and entries_/live_count_/globals_ are
  // about to be rewritten.
  util::WriterLock epoch(epoch_mu_);
  util::WriterLock index(index_mu_);
  // Compact each shard, then renumber the survivors densely in global
  // insertion order — the numbering a single-shard compact() would have
  // produced, so the mapping values never depend on the shard count.
  std::vector<std::vector<std::size_t>> local_maps(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    local_maps[s] = shards_[s].compact();
  }
  std::vector<std::size_t> mapping(entries_.size(), kNoIndex);
  std::vector<EntryRef> survivors;
  survivors.reserve(live_count_);
  for (std::size_t g = 0; g < entries_.size(); ++g) {
    const EntryRef& e = entries_[g];
    const std::size_t new_local = local_maps[e.shard][e.local];
    if (new_local == kNoIndex) continue;
    mapping[g] = survivors.size();
    survivors.push_back({e.shard, new_local});
  }
  entries_ = std::move(survivors);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    globals_[s].assign(shards_[s].size(), kNoIndex);
  }
  for (std::size_t g = 0; g < entries_.size(); ++g) {
    globals_[entries_[g].shard][entries_[g].local] = g;
  }
  live_count_ = entries_.size();
  return mapping;
}

std::size_t ShardedCorpus::shard_of(std::size_t i) const {
  util::ReaderLock index(index_mu_);
  GNN4IP_ENSURE(i < entries_.size(), "ShardedCorpus: index out of range");
  return entries_[i].shard;
}

std::size_t ShardedCorpus::shard_live_count(std::size_t s) const {
  GNN4IP_ENSURE(s < shards_.size(), "ShardedCorpus: shard out of range");
  // Epoch shared: compact() rewrites the shard stores under the epoch
  // alone (it already excludes every stripe holder), so a bare stripe
  // lock would race with it.
  util::ReaderLock epoch(epoch_mu_);
  util::ReaderLock stripe(*stripes_[s]);
  return shards_[s].live_count();
}

const EmbeddingStore& ShardedCorpus::shard(std::size_t s) const {
  GNN4IP_ENSURE(s < shards_.size(), "ShardedCorpus: shard out of range");
  return shards_[s];
}

float ShardedCorpus::score(std::size_t i, std::size_t j) const {
  util::ReaderLock epoch(epoch_mu_);
  EntryRef a;
  EntryRef b;
  {
    util::ReaderLock index(index_mu_);
    GNN4IP_ENSURE(i < entries_.size() && j < entries_.size(),
                  "ShardedCorpus: pair index out of range");
    a = entries_[i];
    b = entries_[j];
  }
  const StripeGuard stripes = lock_all_stripes_shared();
  return cosine_pair(row_nolock(a), row_nolock(b));
}

tensor::Matrix ShardedCorpus::score_new_rows(std::size_t first_new) const {
  util::ReaderLock epoch(epoch_mu_);
  // Snapshot the index under index_mu_, then scan under the shard
  // stripes: rows admitted after the snapshot (global id ≥ n, or a
  // local slot past the snapshot of its shard) are skipped, so the
  // matrix is exactly the corpus as of entry.
  std::vector<EntryRef> query_refs;
  std::size_t n = 0;
  {
    util::ReaderLock index(index_mu_);
    GNN4IP_ENSURE(first_new <= entries_.size(),
                  "score_new_rows: first_new past the corpus end");
    n = entries_.size();
    query_refs.assign(entries_.begin() +
                          static_cast<std::ptrdiff_t>(first_new),
                      entries_.end());
  }
  const std::size_t new_rows = n - first_new;
  tensor::Matrix result(new_rows, n);
  if (new_rows == 0) return result;
  const StripeGuard stripes = lock_all_stripes_shared();
  // Query rows and norms resolve once on the coordinating thread (the
  // per-global row() lookup is a bounds-checked double indirection —
  // too heavy for the inner loop of the hot screening path); each shard
  // task then fills only the columns of its own entries (tombstones
  // included — this kernel is positional, like the single-shard one).
  // Every cell is written exactly once from the same two rows and the
  // same ascending-k arithmetic as PairwiseScorer::score_new_rows, so
  // the matrix is bit-identical for any shard count × worker count.
  const std::size_t d =
      query_refs.empty() ? 0 : row_nolock(query_refs[0]).size();
  std::vector<std::span<const float>> query_rows(new_rows);
  std::vector<float> query_norms(new_rows);
  for (std::size_t r = 0; r < new_rows; ++r) {
    query_rows[r] = row_nolock(query_refs[r]);
    // The store caches fl(row_norm) at add time — the same bits the old
    // per-call recomputation produced.
    query_norms[r] =
        shards_[query_refs[r].shard].norm(query_refs[r].local);
  }
  // Exact mode pins the scalar sweep (a loop over cosine_cell — the
  // same bits as always); exact_scoring == false dispatches the fused
  // row sweep to the resolved SIMD backend. Each shard sweeps its
  // contiguous row block into a scratch vector, then scatters by global
  // index — same cells, better locality than per-cell indirection.
  const KernelOps& ops = kernel_ops(
      options_.exact_scoring ? KernelBackend::kScalar : options_.kernel);
  const auto run_shard = [&](std::size_t s) {
    const EmbeddingStore& store = shards_[s];
    // Rows admitted after the snapshot form a suffix of the shard
    // (globals_[s] is ascending), so trimming the tail leaves exactly
    // the snapshot's rows, tombstones included (this kernel is
    // positional, like the single-shard one).
    std::size_t limit = store.size();
    while (limit > 0 && globals_[s][limit - 1] >= n) --limit;
    if (limit == 0) return;
    std::vector<float> sims(limit);
    for (std::size_t r = 0; r < new_rows; ++r) {
      ops.cosine_sweep(query_rows[r].data(), query_norms[r],
                       store.rows().data(), store.norms().data(), limit, d,
                       sims.data());
      const std::span<float> out = result.row(r);
      for (std::size_t local = 0; local < limit; ++local) {
        out[globals_[s][local]] = sims[local];
      }
    }
  };
  fan_out(shards_.size(), run_shard);
  return result;
}

std::vector<ScreenRow> ShardedCorpus::screen_new_rows(std::size_t first_new,
                                                      float delta) const {
  util::ReaderLock epoch(epoch_mu_);
  std::vector<EntryRef> query_refs;
  std::size_t n = 0;
  {
    util::ReaderLock index(index_mu_);
    GNN4IP_ENSURE(first_new <= entries_.size(),
                  "screen_new_rows: first_new past the corpus end");
    n = entries_.size();
    query_refs.assign(entries_.begin() +
                          static_cast<std::ptrdiff_t>(first_new),
                      entries_.end());
  }
  const std::size_t new_rows = n - first_new;
  std::vector<ScreenRow> result(new_rows);
  if (new_rows == 0) return result;
  const StripeGuard stripes = lock_all_stripes_shared();
  const std::size_t d = row_nolock(query_refs[0]).size();
  std::vector<std::span<const float>> query_rows(new_rows);
  std::vector<float> query_norms(new_rows);
  std::vector<QuantGate> query_gates(new_rows);
  for (std::size_t r = 0; r < new_rows; ++r) {
    const EntryRef& e = query_refs[r];
    query_rows[r] = row_nolock(e);
    query_norms[r] = shards_[e.shard].norm(e.local);
    query_gates[r] = make_quant_gate(shards_[e.shard].quant_view(e.local), d);
  }
  const bool prefilter = options_.int8_prefilter;
  // Integer kernels are bit-identical across backends, so the int8
  // screen always uses the resolved backend — exact_scoring only pins
  // *float* arithmetic, and every float cell below is the scalar
  // cosine_cell regardless.
  const KernelOps& ops = kernel_ops(options_.kernel);

  // A candidate the bounds proved can neither flag nor (yet) be best;
  // kept with its shard address so the best phase can rescore it
  // without re-resolving global ids (the index lock is off-limits while
  // the stripes are held — admitters take index before stripe).
  struct PrunedCand {
    std::size_t g = 0;
    float ub = 0.0F;
    EntryRef ref;
  };
  struct ShardPartial {
    std::vector<ScreenMatch> flagged;  // exact sims > delta, ascending g
    std::optional<ScreenMatch> best;   // best among this shard's rescored
    std::vector<PrunedCand> pruned;
    std::size_t scanned = 0;
    std::size_t rescored = 0;
  };
  std::vector<std::vector<ShardPartial>> partials(
      shards_.size(), std::vector<ShardPartial>(new_rows));

  const auto run_shard = [&](std::size_t s) {
    const EmbeddingStore& store = shards_[s];
    // Candidates are live rows admitted before first_new — an ascending
    // prefix of the shard, exactly like the score_new_rows snapshot.
    std::size_t limit = store.size();
    while (limit > 0 && globals_[s][limit - 1] >= first_new) --limit;
    const double delta_d = delta;
    if (!prefilter) {
      for (std::size_t local = 0; local < limit; ++local) {
        if (!store.live(local)) continue;
        const std::size_t g = globals_[s][local];
        const float* rb = store.row(local).data();
        const float norm_b = store.norm(local);
        for (std::size_t r = 0; r < new_rows; ++r) {
          ShardPartial& p = partials[s][r];
          ++p.scanned;
          ++p.rescored;
          const float sim = cosine_cell(query_rows[r].data(), rb, d,
                                        query_norms[r] * norm_b);
          if (sim > delta) p.flagged.push_back({g, sim});
          if (!p.best || sim > p.best->similarity) {
            p.best = ScreenMatch{g, sim};
          }
        }
      }
      return;
    }
    // Prefilter sweeps: the candidate-side gate stats live in the
    // store's incrementally maintained SoA (quant_stats — no per-call
    // rebuild); each query row then costs one fused quant_screen_sweep
    // over the shard's contiguous int8 block, and the scalar walks only
    // ever visit the compacted hit lists the kernels emit. Dead rows
    // burn a sweep lane but are skipped in the walks. Scratch buffers
    // are allocated uninitialized — every lane is written by the sweep
    // before any walk reads it.
    const QuantStatsSoa soa = store.quant_stats();
    std::size_t live_n = 0;
    for (std::size_t local = 0; local < limit; ++local) {
      live_n += store.live(local) ? 1 : 0;
    }
    const auto dots = std::make_unique_for_overwrite<std::int32_t[]>(limit);
    const auto num = std::make_unique_for_overwrite<double[]>(limit);
    const auto den = std::make_unique_for_overwrite<double[]>(limit);
    const auto hits = std::make_unique_for_overwrite<std::uint32_t[]>(limit);
    const std::int8_t* qbase = limit > 0 ? store.qrow(0).data() : nullptr;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    // Pruning compares the bound numerator against t·denominator — the
    // *unclamped* bound against t. The exact cell clamps into [-1, 1],
    // so the comparison only implies `exact ≤ t` for t ≥ −1; a
    // sub-range delta disables pruning (−inf: every row is a hit and
    // rescores — the exact sweep).
    const double prune_max = delta >= -1.0F ? delta_d : -kInf;
    for (std::size_t r = 0; r < new_rows; ++r) {
      ShardPartial& p = partials[s][r];
      p.scanned += live_n;
      if (limit == 0) continue;
      const QuantGate& ga = query_gates[r];
      const QuantSweepQuery qc = make_sweep_query(ga);
      // Pass 1 — one fused sweep computes every candidate's int8 dot and
      // margin test, emitting the rescore class: every candidate the
      // bounds could not prune gets the exact scalar cell (flags + best
      // + a lower bound on the best similarity for pass 2).
      const std::size_t n_rescore = ops.quant_screen_sweep(
          qc, ga.q, qbase, d, soa, limit, prune_max, dots.get(), num.get(),
          den.get(), hits.get());
      float best_lb = -2.0F;
      std::size_t rescored = 0;
      for (std::size_t h = 0; h < n_rescore; ++h) {
        const std::size_t local = hits[h];
        if (!store.live(local)) continue;
        ++rescored;
        const std::size_t g = globals_[s][local];
        const float sim =
            cosine_cell(query_rows[r].data(), store.row(local).data(), d,
                        query_norms[r] * soa.normf[local]);
        if (sim > delta) p.flagged.push_back({g, sim});
        if (!p.best || sim > p.best->similarity) p.best = ScreenMatch{g, sim};
        if (sim > best_lb) best_lb = sim;
      }
      p.rescored += rescored;
      // Pass 2 — the best band among the pruned: only candidates whose
      // upper bound reaches best_lb can still win the best slot. A
      // candidate below the scan's threshold loses strictly to the row
      // that set best_lb (exact ≤ num/den < best_lb ≤ its similarity),
      // index tie-breaks never come into play — sound only on the
      // clamped range, hence the > −1 guard (−inf keeps everything).
      const double keep_lb = best_lb > -1.0F ? best_lb : -kInf;
      double best_lb_d = best_lb;
      const std::size_t n_band = ops.quant_survivor_scan(
          num.get(), den.get(), limit, keep_lb, hits.get());
      for (std::size_t h = 0; h < n_band; ++h) {
        const std::size_t local = hits[h];
        if (!store.live(local)) continue;
        const double nm = num[local];
        const double dn = den[local];
        // Skip the rescore class (already handled in pass 1), and keep
        // tightening: candidates rejected against the *running* best_lb
        // drop without being stored, same witness argument as the scan.
        if (nm > prune_max * dn) continue;
        if (best_lb > -1.0F && nm < best_lb_d * dn) continue;
        const CosineBounds bounds = quant_gate_bounds(
            ga, make_quant_gate(store.quant_view(local), d), dots[local]);
        p.pruned.push_back({globals_[s][local], bounds.ub, {s, local}});
        if (bounds.lb > best_lb) {
          best_lb = bounds.lb;
          best_lb_d = bounds.lb;
        }
      }
    }
  };
  fan_out(shards_.size(), run_shard);

  for (std::size_t r = 0; r < new_rows; ++r) {
    ScreenRow& out = result[r];
    std::optional<ScreenMatch> best;
    std::vector<PrunedCand> pruned;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardPartial& p = partials[s][r];
      out.scanned += p.scanned;
      out.rescored += p.rescored;
      out.flagged.insert(out.flagged.end(), p.flagged.begin(),
                         p.flagged.end());
      if (p.best && (!best || p.best->similarity > best->similarity ||
                     (p.best->similarity == best->similarity &&
                      p.best->index < best->index))) {
        best = p.best;
      }
      pruned.insert(pruned.end(), p.pruned.begin(), p.pruned.end());
    }
    std::sort(out.flagged.begin(), out.flagged.end(),
              [](const ScreenMatch& x, const ScreenMatch& y) {
                return x.index < y.index;
              });
    // Best phase: descend the pruned candidates by upper bound and stop
    // as soon as no remaining bound can beat (or index-tie-break) the
    // best exact value — every rescore is the scalar cosine_cell, so
    // the winner is bit-identical to the exact sweep's first-max.
    std::sort(pruned.begin(), pruned.end(),
              [](const PrunedCand& x, const PrunedCand& y) {
                if (x.ub != y.ub) return x.ub > y.ub;
                return x.g < y.g;
              });
    for (const PrunedCand& c : pruned) {
      if (best) {
        if (c.ub < best->similarity) break;
        if (c.ub == best->similarity && c.g > best->index) continue;
      }
      const EmbeddingStore& store = shards_[c.ref.shard];
      ++out.rescored;
      const float sim =
          cosine_cell(query_rows[r].data(), store.row(c.ref.local).data(), d,
                      query_norms[r] * store.norm(c.ref.local));
      if (!best || sim > best->similarity ||
          (sim == best->similarity && c.g < best->index)) {
        best = ScreenMatch{c.g, sim};
      }
    }
    out.best = best;
  }
  return result;
}

std::vector<PairScore> ShardedCorpus::top_k(std::size_t i,
                                            std::size_t k) const {
  util::ReaderLock epoch(epoch_mu_);
  EntryRef query_ref;
  std::size_t n = 0;
  std::size_t live_now = 0;
  {
    util::ReaderLock index(index_mu_);
    GNN4IP_ENSURE(i < entries_.size(), "top_k: row index out of range");
    query_ref = entries_[i];
    n = entries_.size();
    live_now = live_count_;
  }
  const StripeGuard stripes = lock_all_stripes_shared();
  GNN4IP_ENSURE(shards_[query_ref.shard].live(query_ref.local),
                "top_k: row has been removed");
  const std::span<const float> query = row_nolock(query_ref);
  const std::size_t d = query.size();
  const float query_norm = shards_[query_ref.shard].norm(query_ref.local);
  const auto closer = [](const PairScore& x, const PairScore& y) {
    if (x.similarity != y.similarity) return x.similarity > y.similarity;
    return x.b < y.b;
  };

  if (options_.int8_prefilter) {
    // Two-phase ranking: the int8 screen assigns every candidate a
    // rigorous upper bound; exact (scalar-kernel) rescoring then walks
    // the candidates in descending-bound order and stops once the k-th
    // exact similarity provably beats every remaining bound. Equal
    // bounds still rescore — an exact tie displaces on the ascending-
    // index tie-break — so the kept set and its order are bit-identical
    // to the exhaustive scan.
    struct Cand {
      std::size_t g = 0;
      float ub = 0.0F;
      EntryRef ref;
    };
    const QuantRowView query_view =
        shards_[query_ref.shard].quant_view(query_ref.local);
    const KernelOps& ops = kernel_ops(options_.kernel);
    std::vector<std::vector<Cand>> cand_buckets(shards_.size());
    const auto bound_shard = [&](std::size_t s) {
      const EmbeddingStore& store = shards_[s];
      for (std::size_t local = 0; local < store.size(); ++local) {
        const std::size_t g = globals_[s][local];
        if (g >= n || g == i || !store.live(local)) continue;
        const QuantRowView qv = store.quant_view(local);
        const std::int32_t dot = ops.dot_i8(query_view.q, qv.q, d);
        const CosineBounds bounds =
            quantized_cosine_bounds(query_view, qv, dot, d);
        cand_buckets[s].push_back({g, bounds.ub, {s, local}});
      }
    };
    fan_out(shards_.size(), bound_shard);
    std::vector<Cand> cands;
    cands.reserve(live_now > 0 ? live_now - 1 : 0);
    for (std::vector<Cand>& bucket : cand_buckets) {
      cands.insert(cands.end(), bucket.begin(), bucket.end());
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
      if (x.ub != y.ub) return x.ub > y.ub;
      return x.g < y.g;
    });
    const std::size_t keep = std::min(k, cands.size());
    std::vector<PairScore> result;
    if (keep == 0) return result;
    result.reserve(keep + 1);
    for (const Cand& c : cands) {
      // Every later candidate's bound is ≤ c.ub; once the ranking is
      // full and even c's bound sits strictly below the k-th exact
      // value, nothing left can enter it.
      if (result.size() == keep && c.ub < result.back().similarity) break;
      const EmbeddingStore& store = shards_[c.ref.shard];
      const PairScore scored{
          i, c.g,
          cosine_cell(query.data(), store.row(c.ref.local).data(), d,
                      query_norm * store.norm(c.ref.local))};
      const auto pos =
          std::lower_bound(result.begin(), result.end(), scored, closer);
      result.insert(pos, scored);
      if (result.size() > keep) result.pop_back();
    }
    return result;
  }

  // Each shard scans its own live rows in parallel; the merge comparator
  // (similarity desc, global index asc) is a total order over candidates
  // with distinct global indices, so the merged prefix is the same no
  // matter how candidates were bucketed. Each cell divides by the cached
  // norms — the same bits cosine_pair recomputes.
  std::vector<std::vector<PairScore>> buckets(shards_.size());
  const auto scan_shard = [&](std::size_t s) {
    const EmbeddingStore& store = shards_[s];
    for (std::size_t local = 0; local < store.size(); ++local) {
      const std::size_t g = globals_[s][local];
      if (g >= n || g == i || !store.live(local)) continue;
      buckets[s].push_back(
          {i, g,
           cosine_cell(query.data(), store.row(local).data(), d,
                       query_norm * store.norm(local))});
    }
  };
  fan_out(shards_.size(), scan_shard);

  std::vector<PairScore> neighbours;
  neighbours.reserve(live_now > 0 ? live_now - 1 : 0);
  for (std::vector<PairScore>& bucket : buckets) {
    neighbours.insert(neighbours.end(), bucket.begin(), bucket.end());
  }
  const std::size_t keep = std::min(k, neighbours.size());
  std::partial_sort(neighbours.begin(),
                    neighbours.begin() + static_cast<std::ptrdiff_t>(keep),
                    neighbours.end(), closer);
  neighbours.resize(keep);
  return neighbours;
}

std::vector<PairScore> ShardedCorpus::score_all_pairs() const {
  util::ReaderLock epoch(epoch_mu_);
  // Fan out over the first member of each pair; worker w writes only
  // per_a[w], and the buckets concatenate in ascending-a order — the
  // exact pair order of the single-shard path. Rows and norms resolve
  // once up front (the store's cached norms carry the same ascending-k
  // row_norm bits the matrix kernel computes, so each cell stays
  // bit-identical to PairwiseScorer::score_all_pairs) instead of three
  // fused accumulators per pair recomputing every norm N−1 times.
  std::vector<std::size_t> live_ids;
  std::vector<EntryRef> live_refs;
  {
    util::ReaderLock index(index_mu_);
    live_ids.reserve(live_count_);
    live_refs.reserve(live_count_);
    for (std::size_t g = 0; g < entries_.size(); ++g) {
      const EntryRef& e = entries_[g];
      live_ids.push_back(g);  // liveness filtered under the stripes below
      live_refs.push_back(e);
    }
  }
  const StripeGuard stripes = lock_all_stripes_shared();
  std::size_t kept = 0;
  for (std::size_t idx = 0; idx < live_ids.size(); ++idx) {
    const EntryRef& e = live_refs[idx];
    if (!shards_[e.shard].live(e.local)) continue;
    live_ids[kept] = live_ids[idx];
    live_refs[kept] = e;
    ++kept;
  }
  live_ids.resize(kept);
  live_refs.resize(kept);
  const std::size_t d = live_refs.empty() ? 0 : row_nolock(live_refs[0]).size();
  std::vector<std::span<const float>> live_rows(live_ids.size());
  std::vector<float> norms(live_ids.size());
  for (std::size_t a = 0; a < live_ids.size(); ++a) {
    live_rows[a] = row_nolock(live_refs[a]);
    norms[a] = shards_[live_refs[a].shard].norm(live_refs[a].local);
  }
  std::vector<std::vector<PairScore>> per_a(live_ids.size());
  const auto score_row = [&](std::size_t a) {
    per_a[a].reserve(live_ids.size() - a - 1);
    const float* ra = live_rows[a].data();
    for (std::size_t b = a + 1; b < live_ids.size(); ++b) {
      per_a[a].push_back(
          {live_ids[a], live_ids[b],
           cosine_cell(ra, live_rows[b].data(), d, norms[a] * norms[b])});
    }
  };
  fan_out(live_ids.size(), score_row);
  std::vector<PairScore> pairs;
  pairs.reserve(kept * (kept > 0 ? kept - 1 : 0) / 2);
  for (std::vector<PairScore>& bucket : per_a) {
    pairs.insert(pairs.end(), bucket.begin(), bucket.end());
  }
  return pairs;
}

void ShardedCorpus::fan_out(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (options_.num_threads > 1) {
    // Concurrent consumers may race the first fan_out; the spawn is
    // one-time, so a plain mutex around the check is cheap enough. The
    // raw pointer is captured *under* the lock: the unique_ptr is
    // guarded, never reset once set, and outlives every fan-out, so the
    // pointee is safe to use after release.
    util::ThreadPool* pool = nullptr;
    {
      util::MutexLock lock(pool_mu_);
      if (!pool_) {
        pool_ = std::make_unique<util::ThreadPool>(options_.num_threads);
      }
      pool = pool_.get();
    }
    pool->parallel_for(count, fn);
    return;
  }
  // 0 = shared pool, 1 = inline — util::parallel_for already does the
  // right (transient-pool-free) thing for both.
  util::parallel_for(count, options_.num_threads, fn);
}

namespace {

/// Everything the text manifest records, parsed and range-checked
/// before any in-memory state is touched.
struct ManifestData {
  std::string fingerprint;
  std::size_t dim = 0;
  std::size_t shards = 0;
  std::vector<std::size_t> order;  // global index -> shard id
};

ManifestData parse_manifest(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw SnapshotIoError("cannot open corpus manifest '" + path.string() +
                          "' for reading");
  }
  std::string line;
  if (!std::getline(is, line)) {
    throw SnapshotTruncatedError("corpus manifest is empty");
  }
  {
    std::istringstream ls(line);
    std::string magic;
    std::string version;
    ls >> magic >> version;
    if (magic != kManifestMagic) {
      throw SnapshotMagicError("not a corpus manifest (missing '" +
                               std::string(kManifestMagic) + "' magic)");
    }
    const std::string expected =
        "v" + std::to_string(kManifestFormatVersion);
    if (version != expected) {
      throw SnapshotVersionError("unsupported corpus manifest version '" +
                                 version + "'; this build reads " + expected);
    }
  }
  ManifestData manifest;
  const auto next_line = [&](const char* field) -> std::istringstream {
    if (!std::getline(is, line)) {
      throw SnapshotTruncatedError(
          std::string("corpus manifest truncated before the ") + field +
          " line");
    }
    return std::istringstream(line);
  };
  {
    std::istringstream ls = next_line("model");
    std::string tag;
    if (!(ls >> tag >> manifest.fingerprint) || tag != "model") {
      throw SnapshotManifestError("bad manifest model line: '" + line + "'");
    }
  }
  {
    std::istringstream ls = next_line("placement");
    std::string tag;
    std::string scheme;
    if (!(ls >> tag >> scheme) || tag != "placement") {
      throw SnapshotManifestError("bad manifest placement line: '" + line +
                                  "'");
    }
    if (scheme != kPlacementScheme) {
      throw SnapshotManifestError(
          "unknown placement scheme '" + scheme + "'; this build places by " +
          kPlacementScheme);
    }
  }
  {
    std::istringstream ls = next_line("dim");
    std::string tag;
    if (!(ls >> tag >> manifest.dim) || tag != "dim") {
      throw SnapshotManifestError("bad manifest dim line: '" + line + "'");
    }
  }
  {
    std::istringstream ls = next_line("shards");
    std::string tag;
    if (!(ls >> tag >> manifest.shards) || tag != "shards" ||
        manifest.shards == 0) {
      throw SnapshotManifestError("bad manifest shards line: '" + line + "'");
    }
  }
  std::size_t entries = 0;
  {
    std::istringstream ls = next_line("entries");
    std::string tag;
    if (!(ls >> tag >> entries) || tag != "entries") {
      throw SnapshotManifestError("bad manifest entries line: '" + line +
                                  "'");
    }
  }
  {
    std::istringstream ls = next_line("order");
    std::string tag;
    if (!(ls >> tag) || tag != "order") {
      throw SnapshotManifestError("bad manifest order line: '" + line + "'");
    }
    manifest.order.reserve(entries);
    std::size_t shard = 0;
    while (ls >> shard) {
      if (shard >= manifest.shards) {
        throw SnapshotManifestError(
            "manifest order references shard " + std::to_string(shard) +
            " but only " + std::to_string(manifest.shards) +
            " shards are declared");
      }
      manifest.order.push_back(shard);
    }
    if (manifest.order.size() != entries) {
      throw SnapshotManifestError(
          "manifest declares " + std::to_string(entries) +
          " entries but the order line lists " +
          std::to_string(manifest.order.size()));
    }
  }
  if (!std::getline(is, line) || line != "end") {
    throw SnapshotTruncatedError(
        "corpus manifest is missing its 'end' sentinel (truncated?)");
  }
  return manifest;
}

}  // namespace

void ShardedCorpus::save(const std::string& dir,
                         std::string_view model_fingerprint) const {
  // Epoch exclusive: every operation (reads, admissions, compaction)
  // holds the epoch shared, so an exclusive hold is a full quiesce of
  // the corpus — the snapshot is one consistent instant. The index lock
  // is redundant under that quiesce (no writer can be inside it), but
  // dim_/entries_ are read below and GUARDED_BY(index_mu_): taking it
  // shared makes the guard explicit instead of an argument in a
  // comment, for the analysis and the next reader alike.
  util::WriterLock epoch(epoch_mu_);
  util::ReaderLock index(index_mu_);
  const std::filesystem::path root(dir);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    throw SnapshotIoError("cannot create snapshot directory '" + dir +
                          "': " + ec.message());
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::filesystem::path path = root / shard_file_name(s);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SnapshotIoError("cannot open '" + path.string() +
                            "' for writing");
    }
    shards_[s].save(os);
    if (!os) {
      throw SnapshotIoError("short write to '" + path.string() + "'");
    }
  }
  const std::filesystem::path manifest_path = root / kManifestFileName;
  std::ofstream os(manifest_path, std::ios::trunc);
  if (!os) {
    throw SnapshotIoError("cannot open '" + manifest_path.string() +
                          "' for writing");
  }
  os << kManifestMagic << " v" << kManifestFormatVersion << '\n';
  os << "model " << model_fingerprint << '\n';
  os << "placement " << kPlacementScheme << '\n';
  os << "dim " << dim_ << '\n';
  os << "shards " << shards_.size() << '\n';
  os << "entries " << entries_.size() << '\n';
  os << "order";
  for (const EntryRef& e : entries_) os << ' ' << e.shard;
  os << '\n';
  os << "end\n";
  if (!os) {
    throw SnapshotIoError("short write to '" + manifest_path.string() + "'");
  }
}

void ShardedCorpus::restore(const std::string& dir,
                            std::string_view expected_fingerprint) {
  const std::filesystem::path root(dir);
  const ManifestData manifest = parse_manifest(root / kManifestFileName);
  if (!expected_fingerprint.empty() &&
      manifest.fingerprint != expected_fingerprint) {
    throw SnapshotFingerprintError(
        "snapshot was written against model fingerprint " +
        manifest.fingerprint + " but this corpus expects " +
        std::string(expected_fingerprint) +
        " — refusing to score rows from a different embedder");
  }
  // Load and cross-check everything into locals first: a snapshot that
  // fails any typed check leaves the in-memory corpus untouched.
  std::vector<EmbeddingStore> stores;
  stores.reserve(manifest.shards);
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    const std::filesystem::path path = root / shard_file_name(s);
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      if (!std::filesystem::exists(path)) {
        throw SnapshotManifestError(
            "manifest declares " + std::to_string(manifest.shards) +
            " shards but '" + shard_file_name(s) +
            "' is missing (shard-count mismatch?)");
      }
      throw SnapshotIoError("cannot open '" + path.string() +
                            "' for reading");
    }
    stores.push_back(EmbeddingStore::load(is, manifest.dim));
  }
  // The manifest's global order must tally with the shard files: every
  // shard row is referenced exactly once, in shard-local insertion
  // order, and the recorded shard must match what placement() derives
  // from the row's name — a poisoned or mixed-up snapshot fails loudly.
  std::vector<std::vector<std::size_t>> globals(manifest.shards);
  std::vector<EntryRef> entries;
  entries.reserve(manifest.order.size());
  for (std::size_t g = 0; g < manifest.order.size(); ++g) {
    const std::size_t s = manifest.order[g];
    const std::size_t local = globals[s].size();
    if (local >= stores[s].size()) {
      throw SnapshotManifestError(
          "manifest order assigns more rows to shard " + std::to_string(s) +
          " than its file holds (" + std::to_string(stores[s].size()) + ")");
    }
    if (placement(stores[s].name(local), manifest.shards) != s) {
      throw SnapshotManifestError(
          "row '" + stores[s].name(local) + "' is recorded in shard " +
          std::to_string(s) + " but places in shard " +
          std::to_string(placement(stores[s].name(local), manifest.shards)) +
          " (placement drift)");
    }
    globals[s].push_back(g);
    entries.push_back({s, local});
  }
  std::size_t live = 0;
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    if (stores[s].size() != 0 && stores[s].dim() != manifest.dim) {
      throw SnapshotDimError(
          "shard " + std::to_string(s) + " has dim " +
          std::to_string(stores[s].dim()) + " but the manifest declares " +
          std::to_string(manifest.dim) + " (dim drift)");
    }
    if (globals[s].size() != stores[s].size()) {
      throw SnapshotManifestError(
          "shard " + std::to_string(s) + " holds " +
          std::to_string(stores[s].size()) +
          " rows but the manifest order references " +
          std::to_string(globals[s].size()));
    }
    live += stores[s].live_count();
  }
  // Swap in under the epoch: identical discipline to compact(), the
  // other whole-corpus rewrite.
  util::WriterLock epoch(epoch_mu_);
  util::WriterLock index(index_mu_);
  shards_ = std::move(stores);
  entries_ = std::move(entries);
  globals_ = std::move(globals);
  dim_ = manifest.dim;
  live_count_ = live;
  while (stripes_.size() < shards_.size()) {
    stripes_.push_back(std::make_unique<util::SharedMutex>(
        util::lock_rank::stripe(stripes_.size())));
  }
  stripes_.resize(shards_.size());
}

std::unique_ptr<CorpusBackend> ShardedCorpus::restored(
    const std::string& dir, std::string_view expected_fingerprint) const {
  // restore() adopts the snapshot's shard count and dim, so a fresh
  // single-shard corpus is the universal starting point; options and
  // the per-shard budget carry over from the receiver.
  auto fresh = std::make_unique<ShardedCorpus>(1, options_, shard_budget_);
  fresh->restore(dir, expected_fingerprint);
  return fresh;
}

std::string ShardedCorpus::snapshot_fingerprint(const std::string& dir) {
  return parse_manifest(std::filesystem::path(dir) / kManifestFileName)
      .fingerprint;
}

std::vector<PairScore> ShardedCorpus::flag(float delta) const {
  if (options_.int8_prefilter) return flag_prefiltered(delta);
  std::vector<PairScore> pairs = score_all_pairs();
  std::erase_if(pairs,
                [delta](const PairScore& p) { return p.similarity <= delta; });
  std::sort(pairs.begin(), pairs.end(), flag_order);
  return pairs;
}

std::vector<PairScore> ShardedCorpus::flag_prefiltered(float delta) const {
  // Same fan-out shape as score_all_pairs, but each pair passes the int8
  // bound gate before the exact cell: a pair is skipped only when its
  // upper bound proves similarity ≤ delta — which the exact sweep would
  // have discarded anyway — and every surviving pair rescores with the
  // scalar kernel, so the flagged set is bit-identical to the exact
  // path's.
  util::ReaderLock epoch(epoch_mu_);
  std::vector<std::size_t> live_ids;
  std::vector<EntryRef> live_refs;
  {
    util::ReaderLock index(index_mu_);
    live_ids.reserve(live_count_);
    live_refs.reserve(live_count_);
    for (std::size_t g = 0; g < entries_.size(); ++g) {
      live_ids.push_back(g);  // liveness filtered under the stripes below
      live_refs.push_back(entries_[g]);
    }
  }
  const StripeGuard stripes = lock_all_stripes_shared();
  std::size_t kept = 0;
  for (std::size_t idx = 0; idx < live_ids.size(); ++idx) {
    const EntryRef& e = live_refs[idx];
    if (!shards_[e.shard].live(e.local)) continue;
    live_ids[kept] = live_ids[idx];
    live_refs[kept] = e;
    ++kept;
  }
  live_ids.resize(kept);
  live_refs.resize(kept);
  const std::size_t d = live_refs.empty() ? 0 : row_nolock(live_refs[0]).size();
  std::vector<std::span<const float>> live_rows(kept);
  std::vector<float> norms(kept);
  std::vector<QuantGate> gates(kept);
  std::vector<double> cd_scale(kept), cd_sq(kept), cd_e(kept), cd_norm(kept);
  for (std::size_t a = 0; a < kept; ++a) {
    const EntryRef& e = live_refs[a];
    live_rows[a] = row_nolock(e);
    norms[a] = shards_[e.shard].norm(e.local);
    gates[a] = make_quant_gate(shards_[e.shard].quant_view(e.local), d);
    cd_scale[a] = gates[a].scale;
    cd_sq[a] = gates[a].sq;
    cd_e[a] = gates[a].e;
    cd_norm[a] = gates[a].norm;
  }
  const QuantStatsSoa soa{cd_scale.data(), cd_sq.data(), cd_e.data(),
                          cd_norm.data(), norms.data()};
  const KernelOps& ops = kernel_ops(options_.kernel);
  // Same caveat as screen_new_rows: the margin sweep compares the
  // *unclamped* bound against delta, which only implies `exact ≤ delta`
  // for delta ≥ −1; below that every pair rescores (prune_max = −inf
  // makes everything a hit), which is exactly what the clamp demands.
  const double prune_max =
      delta >= -1.0F ? static_cast<double>(delta)
                     : -std::numeric_limits<double>::infinity();
  std::vector<std::vector<PairScore>> per_a(kept);
  const auto screen_row = [&](std::size_t a) {
    const float* ra = live_rows[a].data();
    const QuantGate& ga = gates[a];
    const std::size_t tail = kept - a - 1;
    if (tail == 0) return;
    // Rows of different shards are not contiguous, so the dots fill
    // stays per-pair; the bound test and hit compaction are one
    // vectorized sweep over the tail b ∈ (a, kept).
    std::vector<std::int32_t> dots(tail);
    std::vector<double> num(tail);
    std::vector<double> den(tail);
    std::vector<std::uint32_t> hits(tail);
    for (std::size_t b = a + 1; b < kept; ++b) {
      dots[b - a - 1] = ops.dot_i8(ga.q, gates[b].q, d);
    }
    const QuantStatsSoa tail_soa{soa.scale + a + 1, soa.sq + a + 1,
                                 soa.e + a + 1, soa.normd + a + 1,
                                 soa.normf + a + 1};
    const std::size_t n_hits =
        ops.quant_margin_sweep(make_sweep_query(ga), tail_soa, dots.data(),
                               tail, prune_max, num.data(), den.data(),
                               hits.data());
    for (std::size_t h = 0; h < n_hits; ++h) {
      const std::size_t b = a + 1 + hits[h];
      const float sim =
          cosine_cell(ra, live_rows[b].data(), d, norms[a] * norms[b]);
      if (sim > delta) per_a[a].push_back({live_ids[a], live_ids[b], sim});
    }
  };
  fan_out(kept, screen_row);
  std::vector<PairScore> pairs;
  for (std::vector<PairScore>& bucket : per_a) {
    pairs.insert(pairs.end(), bucket.begin(), bucket.end());
  }
  std::sort(pairs.begin(), pairs.end(), flag_order);
  return pairs;
}

}  // namespace gnn4ip::core
