// Contiguous embedding-row storage — the resident half of a corpus.
//
// One design = one D-float row plus its name. The store keeps rows in a
// single row-major buffer (cache-friendly for the blocked kernels, and
// zero-copy viewable through row()/rows()), and stays bounded through
// the two-phase removal API: remove(i) tombstones a row (cheap,
// batchable), compact() erases every tombstoned row in one pass and
// reports the old→new index remapping.
//
// The store holds no scoring logic and no locks — it is the shard
// unit, guarded *externally* by whoever owns it: ShardedCorpus holds
// one SharedMutex stripe per store (rank 110+shard in the global lock
// order, src/util/lock_order.h) and every access to shards_[s] happens
// under stripes_[s]. That per-element guard is outside what the static
// capability analysis can express, which is why none of these fields
// carry GNN4IP_GUARDED_BY — the runtime lock-order validator covers
// the stripes instead. PairwiseScorer wraps exactly one store (the
// single-shard view kept for tests and benches); ShardedCorpus owns K
// of them and merges across; audit::AuditService sits on top of the
// latter.
//
// The store is also the unit of persistence: save()/load() round-trip
// the rows, names, and tombstones through the binary shard format of
// core/snapshot_format.h (byte-level spec in docs/FORMATS.md). Floats
// are written as their exact bytes, so a loaded store scores
// bit-identically to the one that was saved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/cosine_kernels.h"
#include "tensor/matrix.h"

namespace gnn4ip::core {

class EmbeddingStore {
 public:
  /// "No such row": returned by compact() for removed rows.
  static constexpr std::size_t kNoIndex =
      std::numeric_limits<std::size_t>::max();

  /// Append one design's embedding (a 1×D matrix, or any shape viewed as
  /// a flat D-vector; D is fixed by the first add). Returns its index.
  std::size_t add(std::string name, const tensor::Matrix& embedding);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] bool empty() const { return names_.empty(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const std::string& name(std::size_t i) const;

  /// Zero-copy view of row `i` of the store (length dim()).
  /// Invalidated by add/compact, like a vector iterator.
  [[nodiscard]] std::span<const float> row(std::size_t i) const;

  /// Zero-copy view of the whole store as a flat row-major size()×dim()
  /// buffer. Same invalidation rules as row().
  [[nodiscard]] std::span<const float> rows() const { return data_; }

  // ---- Cached norms and the int8 quantized tier -------------------------
  // Maintained incrementally by add()/compact() and rebuilt (or verified
  // against the optional QNT8 snapshot section) by load(): each float
  // row x decomposes as x = scale·q + e with int8 q and |e[k]| ≤
  // scale/2, alongside the exact float row_norm every scoring kernel
  // divides by — together exactly what quantized_cosine_bounds needs to
  // enclose an exact cosine cell without touching the float row.

  /// fl(row_norm(row(i))) — cached at add time with the exact kernel
  /// arithmetic, so norm(i) is bit-identical to recomputing it.
  [[nodiscard]] float norm(std::size_t i) const;

  /// All cached norms as a contiguous size()-length span (row order).
  [[nodiscard]] std::span<const float> norms() const { return norms_; }

  /// Zero-copy view of row i's int8 quantized components (length dim()).
  [[nodiscard]] std::span<const std::int8_t> qrow(std::size_t i) const;

  /// Row i's quant-tier summary for the bound kernel (pointer valid
  /// under the same invalidation rules as row()).
  [[nodiscard]] QuantRowView quant_view(std::size_t i) const;

  /// SoA view over all rows' candidate-side gate terms, exactly the
  /// doubles make_quant_gate derives (scale, s·‖q‖, ‖e‖, double(norm))
  /// plus the float norms — maintained incrementally so prefilter
  /// sweeps never rebuild per-row stats per call. Same invalidation
  /// rules as row(); tombstoned rows keep stale-but-finite entries
  /// (callers filter on live()).
  [[nodiscard]] QuantStatsSoa quant_stats() const {
    return {gate_scale_.data(), gate_sq_.data(), gate_e_.data(),
            gate_normd_.data(), norms_.data()};
  }

  /// Tombstone row `i`: it keeps its index (and name(i)) — and its data
  /// stays positionally addressable through row() — but it is skipped by
  /// live-row consumers and erased by the next compact().
  void remove(std::size_t i);

  /// True while row `i` has not been removed.
  [[nodiscard]] bool live(std::size_t i) const;

  /// Rows not yet removed.
  [[nodiscard]] std::size_t live_count() const { return live_count_; }

  /// Erase every removed row in one pass. Returns the index remapping:
  /// result[old_index] is the row's new index, or kNoIndex if it was
  /// removed. No-op (identity mapping) when nothing is removed.
  std::vector<std::size_t> compact();

  /// The stored embeddings as an N×D row matrix (copy; prefer rows()/
  /// row() when a view suffices).
  [[nodiscard]] tensor::Matrix embedding_matrix() const;

  // ---- Persistence (binary shard format v1) -----------------------------
  /// Write the store — header, exact float bytes, live flags, name
  /// table — to `os` (caller opens the stream in binary mode).
  void save(std::ostream& os) const;

  /// Reconstruct a store saved by save(). With `expected_dim` > 0 the
  /// on-disk dimensionality must match it. Throws the typed errors of
  /// snapshot_format.h: SnapshotMagicError, SnapshotVersionError,
  /// SnapshotByteOrderError, SnapshotDimError, SnapshotTruncatedError,
  /// SnapshotManifestError (header/payload disagreement).
  [[nodiscard]] static EmbeddingStore load(std::istream& is,
                                           std::size_t expected_dim = 0);

 private:
  /// Recompute row i's cached norm and quant-tier entries from data_.
  void requantize_row(std::size_t i);

  std::size_t dim_ = 0;
  std::vector<std::string> names_;
  std::vector<float> data_;  // row-major N×dim_
  std::vector<bool> dead_;   // tombstones; erased by compact()
  std::size_t live_count_ = 0;
  // Quant tier, parallel to data_ (row i owns qdata_[i*dim_..), one
  // scalar per row in the others). Rebuilt deterministically from the
  // float rows, so a loaded store's tier matches the saved one exactly.
  std::vector<std::int8_t> qdata_;  // row-major N×dim_
  std::vector<float> scales_;       // per-row symmetric scale (max|x|/127)
  std::vector<float> norms_;        // fl(row_norm) — exact denominators
  std::vector<float> qnorms_;       // upper bound on ‖q‖₂
  std::vector<float> enorms_;       // upper bound on ‖x − scale·q‖₂
  // Candidate-side gate terms (quant_stats()), derived from the floats
  // above with make_quant_gate's exact arithmetic.
  std::vector<double> gate_scale_;  // double(scale)
  std::vector<double> gate_sq_;     // double(scale)·qnorm
  std::vector<double> gate_e_;      // double(enorm)
  std::vector<double> gate_normd_;  // double(norm)
};

}  // namespace gnn4ip::core
