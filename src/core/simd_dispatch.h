// Runtime-dispatched SIMD kernel backends for the cosine hot loops.
//
// The scoring layers funnel every float cell through the scalar kernels
// of cosine_kernels.h — that scalar arithmetic IS the determinism
// contract, so it can never change. This header adds the fast lane
// around it: a small table of function pointers (KernelOps) with one
// implementation per backend, selected at runtime by CPU feature
// detection (CPUID-backed __builtin_cpu_supports on x86, compile-time
// NEON on aarch64) or forced through ScorerOptions::kernel /
// the GNN4IP_KERNEL environment variable.
//
// Bit-level rules per kernel family:
//   * float kernels (cosine_sweep, dot_f32, row_norm_f32): the scalar
//     backend reproduces cosine_kernels.h bit-for-bit (it is a thin loop
//     over cosine_cell/row_norm). AVX2/NEON reassociate the float adds,
//     so they are only eligible when the caller opted out of exact
//     scoring (ScorerOptions::exact_scoring == false); results agree
//     with scalar to ~1e-6, not to the bit.
//   * int8 kernels (dot_i8): integer addition is associative, so every
//     backend returns the exact same integer — the quantized prefilter
//     can use the widest vector unit available without perturbing
//     verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gnn4ip::core {

/// Which kernel implementation services the dispatched paths.
/// kAuto resolves through GNN4IP_KERNEL (scalar|avx2|neon|auto), then
/// CPU detection; forcing an unsupported backend is a hard error, never
/// a silent fallback.
enum class KernelBackend : std::uint8_t { kAuto, kScalar, kAvx2, kNeon };

/// Stable lowercase name ("auto", "scalar", "avx2", "neon").
[[nodiscard]] const char* backend_name(KernelBackend backend);

/// Parse a backend name (the GNN4IP_KERNEL / --kernel vocabulary).
/// Throws util::ContractViolation on anything else.
[[nodiscard]] KernelBackend parse_backend(std::string_view name);

/// True when this process can execute `backend` (kAuto and kScalar are
/// always supported; kAvx2 needs AVX2+FMA at runtime; kNeon needs an
/// aarch64 build).
[[nodiscard]] bool backend_supported(KernelBackend backend);

/// The best supported backend on this host (never kAuto).
[[nodiscard]] KernelBackend detect_backend();

/// Resolve a request to a concrete backend: an explicit request must be
/// supported (hard error otherwise); kAuto defers to GNN4IP_KERNEL when
/// set (same strictness), else detect_backend().
[[nodiscard]] KernelBackend resolve_backend(KernelBackend requested);

/// Query-side constants of the quantized-bound margin sweep, hoisted
/// once per (query row, block). Built by make_sweep_query()
/// (cosine_kernels.h) from the query's QuantGate.
struct QuantSweepQuery {
  double c_scale = 0.0;  // query scale — multiplies scale[j]·dots[j]
  double c_e = 0.0;      // (s·‖q‖ + ‖e‖)·margin — multiplies e[j]
  double c_sq = 0.0;     // ‖e‖·margin — multiplies sq[j]
  double c_norm = 0.0;   // dim·2·eps·‖x‖·margin — multiplies normd[j]
  double c_abs = 0.0;    // absolute margin floor
  double floor = 0.0;    // denominator floor (kNormFloor as double)
  float qnorm = 0.0F;    // fl(row_norm) — the float denominator factor
};

/// SoA view of a candidate block's cached quantization stats, one entry
/// per row, as the margin sweep consumes them. Built per shard by the
/// caller from EmbeddingStore's cached per-row values.
struct QuantStatsSoa {
  const double* scale = nullptr;  // per-row quantization scale s
  const double* sq = nullptr;     // s·‖q‖
  const double* e = nullptr;      // ‖e‖ upper bound
  const double* normd = nullptr;  // double(fl(row_norm))
  const float* normf = nullptr;   // fl(row_norm) — float denominator factor
};

/// One backend's kernel table. All pointers are non-null.
struct KernelOps {
  KernelBackend backend = KernelBackend::kScalar;

  /// Fused dot+clamp row sweep: for j in [0, n),
  ///   out[j] = clamp(dot(q, rows + j*dim) /
  ///                  max(qnorm * norms[j], kNormFloor), -1, 1).
  /// The scalar backend is a loop over cosine_cell — bit-identical to
  /// every exact scoring path.
  void (*cosine_sweep)(const float* q, float qnorm, const float* rows,
                       const float* norms, std::size_t n, std::size_t dim,
                       float* out) = nullptr;

  /// Plain dot product of two D-rows.
  float (*dot_f32)(const float* a, const float* b, std::size_t dim) = nullptr;

  /// Euclidean norm of one D-row.
  float (*row_norm_f32)(const float* a, std::size_t dim) = nullptr;

  /// Exact int32 dot product of two int8 D-rows (identical across
  /// backends — integer adds are associative).
  std::int32_t (*dot_i8)(const std::int8_t* a, const std::int8_t* b,
                         std::size_t dim) = nullptr;

  /// dot_i8 of q against every row of a contiguous int8 row block:
  ///   out[j] = dot_i8(q, rows + j*dim) for j in [0, n).
  /// One call per (query, block) amortizes the dispatch indirection out
  /// of the prefilter's candidate sweep; same exactness guarantee as
  /// dot_i8 (bit-identical across backends).
  void (*dot_i8_sweep)(const std::int8_t* q, const std::int8_t* rows,
                       std::size_t n, std::size_t dim,
                       std::int32_t* out) = nullptr;

  /// Quantized-bound margin sweep (the prefilter's per-candidate test,
  /// vectorized): for j in [0, n),
  ///   num[j] = qc.c_scale·scale[j]·dots[j] + qc.c_e·e[j] +
  ///            qc.c_sq·sq[j] + qc.c_norm·normd[j] + qc.c_abs
  ///   den[j] = max(double(qc.qnorm · normf[j]), qc.floor)
  /// and every j with num[j] > prune_max·den[j] is appended (ascending)
  /// to hits; the return value is the hit count. num/den is an upper
  /// bound on the exact (unclamped) cosine cell — the query-side
  /// coefficients carry the same rigor margins as quant_gate_spread,
  /// which dominate any mul/add-vs-FMA reassociation, so
  /// `num ≤ t·den` always soundly implies `exact cosine ≤ t` for
  /// t ≥ −1 (pass prune_max = −inf to make every row a hit). Unlike the
  /// int8 kernels, num is NOT bit-pinned across backends (FMA vs
  /// mul+add) — callers may only use it for conservative pruning, never
  /// for output values. den IS bit-identical everywhere: a float
  /// product then a double max, on every backend.
  std::size_t (*quant_margin_sweep)(const QuantSweepQuery& qc,
                                    const QuantStatsSoa& rows,
                                    const std::int32_t* dots, std::size_t n,
                                    double prune_max, double* num,
                                    double* den,
                                    std::uint32_t* hits) = nullptr;

  /// The fused prefilter fast path: dot_i8_sweep + quant_margin_sweep in
  /// one pass over a contiguous int8 row block, with the per-row dots
  /// also written out (retained-candidate walks still need them for
  /// quant_gate_bounds). Exactly equivalent to
  ///   dot_i8_sweep(q, rows, n, dim, dots);
  ///   quant_margin_sweep(qc, stats, dots, n, prune_max, num, den, hits);
  /// — dots and den are bit-identical across backends, num carries the
  /// same not-bit-pinned caveat as quant_margin_sweep. Fusing keeps the
  /// 4-row dot reductions in registers instead of round-tripping each
  /// dot through memory, which is where the screen's candidate sweep
  /// spends its time.
  std::size_t (*quant_screen_sweep)(const QuantSweepQuery& qc,
                                    const std::int8_t* q,
                                    const std::int8_t* rows, std::size_t dim,
                                    const QuantStatsSoa& stats, std::size_t n,
                                    double prune_max, std::int32_t* dots,
                                    double* num, double* den,
                                    std::uint32_t* hits) = nullptr;

  /// Second-phase scan over a margin sweep's outputs: appends to hits
  /// (ascending) every j with num[j] ≥ keep_lb·den[j] — the candidates
  /// whose upper bound can still contend once a lower bound keep_lb on
  /// the best similarity is known — and returns the hit count. Pure
  /// comparisons on the caller's arrays, so decisions are deterministic
  /// for whatever num/den the margin sweep produced.
  std::size_t (*quant_survivor_scan)(const double* num, const double* den,
                                     std::size_t n, double keep_lb,
                                     std::uint32_t* hits) = nullptr;
};

/// The kernel table for `requested` after resolve_backend(). The tables
/// are static — the reference is valid for the process lifetime.
[[nodiscard]] const KernelOps& kernel_ops(KernelBackend requested);

}  // namespace gnn4ip::core
