#include "core/pairwise_scorer.h"

#include <algorithm>

#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::core {

PairwiseScorer::PairwiseScorer(const ScorerOptions& options)
    : options_(options) {}

PairwiseScorer PairwiseScorer::from_entries(
    gnn::Hw2Vec& model, std::span<const train::GraphEntry> entries,
    const ScorerOptions& options) {
  PairwiseScorer scorer(options);
  // Graphs are independent, so the embedding phase fans out over the
  // worker pool; each worker fills only its own slot and the rows are
  // appended in corpus order afterwards, so the cache is bit-identical
  // for any worker count. Inference only reads the model weights, which
  // makes the shared `model` safe to use concurrently.
  // Each worker thread reuses one tape across all the graphs it claims
  // (reset() keeps the node vector's capacity), rather than paying a
  // fresh tape allocation per graph.
  std::vector<tensor::Matrix> embeddings(entries.size());
  const auto embed_one = [&](std::size_t i) {
    static thread_local tensor::Tape tape;
    embeddings[i] = model.embed_inference(tape, entries[i].tensors);
  };
  util::parallel_for(entries.size(), options.num_threads, embed_one);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    scorer.add(entries[i].name, embeddings[i]);
  }
  return scorer;
}

std::size_t PairwiseScorer::add(std::string name,
                                const tensor::Matrix& embedding) {
  return store_.add(std::move(name), embedding);
}

tensor::Matrix PairwiseScorer::score_matrix() const {
  return cosine_rows(rows(), size(), rows(), size(), dim(), options_);
}

tensor::Matrix PairwiseScorer::score_against(
    const PairwiseScorer& other) const {
  // Either side empty: a correctly shaped all-zero result, regardless of
  // which side has not fixed its dim yet.
  if (empty() || other.empty()) return tensor::Matrix(size(), other.size());
  GNN4IP_ENSURE(dim() == other.dim(), "score_against: corpus dims differ");
  return cosine_rows(rows(), size(), other.rows(), other.size(), dim(),
                     options_);
}

tensor::Matrix PairwiseScorer::score_new_rows(std::size_t first_new) const {
  GNN4IP_ENSURE(first_new <= size(),
                "score_new_rows: first_new past the corpus end");
  const std::size_t n = size();
  const std::size_t d = dim();
  const std::size_t new_rows = n - first_new;
  tensor::Matrix result(new_rows, n);
  if (new_rows == 0) return result;
  // Rows are read straight out of the resident cache — no N×D copy — so
  // screening ΔN incoming designs really is O(ΔN·N·D). The store's
  // cached norms carry the same ascending-k row_norm bits the old
  // per-call recomputation produced, and exact mode pins the scalar
  // sweep (a loop over cosine_cell), keeping the rows bit-identical to
  // the matching score_matrix() rows; exact_scoring == false dispatches
  // the fused sweep to the resolved SIMD backend.
  const std::span<const float> norms = store_.norms();
  const float* data = rows().data();
  const KernelOps& ops = kernel_ops(
      options_.exact_scoring ? KernelBackend::kScalar : options_.kernel);
  for (std::size_t r = 0; r < new_rows; ++r) {
    ops.cosine_sweep(data + (first_new + r) * d, norms[first_new + r], data,
                     norms.data(), n, d, result.row(r).data());
  }
  return result;
}

std::vector<PairScore> PairwiseScorer::top_k(std::size_t i,
                                             std::size_t k) const {
  GNN4IP_ENSURE(i < size(), "top_k: row index out of range");
  GNN4IP_ENSURE(live(i), "top_k: row has been removed");
  // One row against the cache via the same per-cell arithmetic as
  // score() / cosine_rows, so retrieval agrees bit-for-bit with the
  // batch paths. Removed rows are not valid neighbours.
  std::vector<PairScore> neighbours;
  neighbours.reserve(live_count() > 0 ? live_count() - 1 : 0);
  for (std::size_t j = 0; j < size(); ++j) {
    if (j == i || !live(j)) continue;
    neighbours.push_back({i, j, score(i, j)});
  }
  const std::size_t keep = std::min(k, neighbours.size());
  const auto closer = [](const PairScore& x, const PairScore& y) {
    if (x.similarity != y.similarity) return x.similarity > y.similarity;
    return x.b < y.b;
  };
  std::partial_sort(neighbours.begin(),
                    neighbours.begin() + static_cast<std::ptrdiff_t>(keep),
                    neighbours.end(), closer);
  neighbours.resize(keep);
  return neighbours;
}

std::vector<PairScore> PairwiseScorer::score_all_pairs() const {
  // The symmetric matrix computes both triangles; at D = 16 the kernel is
  // cheap enough that halving it is not worth a second code path.
  const tensor::Matrix scores = score_matrix();
  std::vector<PairScore> pairs;
  pairs.reserve(live_count() * (live_count() > 0 ? live_count() - 1 : 0) / 2);
  for (std::size_t i = 0; i < size(); ++i) {
    if (!live(i)) continue;
    const std::span<const float> row = scores.row(i);
    for (std::size_t j = i + 1; j < size(); ++j) {
      if (!live(j)) continue;
      pairs.push_back({i, j, row[j]});
    }
  }
  return pairs;
}

std::vector<PairScore> PairwiseScorer::flag(float delta) const {
  std::vector<PairScore> pairs = score_all_pairs();
  std::erase_if(pairs,
                [delta](const PairScore& p) { return p.similarity <= delta; });
  std::sort(pairs.begin(), pairs.end(), flag_order);
  return pairs;
}

float PairwiseScorer::score(std::size_t i, std::size_t j) const {
  GNN4IP_ENSURE(i < size() && j < size(),
                "PairwiseScorer: pair index out of range");
  return cosine_pair(row(i), row(j));
}

}  // namespace gnn4ip::core
