#include "core/pairwise_scorer.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::core {
namespace {

/// Guard on the norm *product*, exactly like PiracyDetector::similarity:
/// all-zero embeddings score 0 instead of NaN, and the result is clamped
/// into the documented [-1, 1] so the two paths agree bit-for-bit on
/// degenerate inputs too.
constexpr float kNormFloor = 1e-8F;

[[nodiscard]] std::vector<float> row_norms(std::span<const float> data,
                                           std::size_t rows,
                                           std::size_t dim) {
  std::vector<float> norms(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = data.data() + i * dim;
    float sq = 0.0F;
    for (std::size_t k = 0; k < dim; ++k) sq += row[k] * row[k];
    norms[i] = std::sqrt(sq);
  }
  return norms;
}

}  // namespace

tensor::Matrix cosine_rows(std::span<const float> a, std::size_t a_rows,
                           std::span<const float> b, std::size_t b_rows,
                           std::size_t dim, const ScorerOptions& options) {
  GNN4IP_ENSURE(a.size() == a_rows * dim && b.size() == b_rows * dim,
                "cosine_rows: buffer size does not match rows × dim");
  tensor::Matrix result(a_rows, b_rows);
  if (a_rows == 0 || b_rows == 0) return result;

  const std::vector<float> norms_a = row_norms(a, a_rows, dim);
  const std::vector<float> norms_b = row_norms(b, b_rows, dim);
  const std::size_t block = std::max<std::size_t>(options.block_rows, 1);
  const std::size_t row_tiles = (a_rows + block - 1) / block;
  const std::size_t col_tiles = (b_rows + block - 1) / block;

  const auto run_tile = [&](std::size_t tile) {
    const std::size_t i0 = (tile / col_tiles) * block;
    const std::size_t j0 = (tile % col_tiles) * block;
    const std::size_t i1 = std::min(i0 + block, a_rows);
    const std::size_t j1 = std::min(j0 + block, b_rows);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* ra = a.data() + i * dim;
      const std::span<float> out = result.row(i);
      for (std::size_t j = j0; j < j1; ++j) {
        const float* rb = b.data() + j * dim;
        float acc = 0.0F;
        for (std::size_t k = 0; k < dim; ++k) acc += ra[k] * rb[k];
        const float denom = std::max(norms_a[i] * norms_b[j], kNormFloor);
        out[j] = std::clamp(acc / denom, -1.0F, 1.0F);
      }
    }
  };
  util::parallel_for(row_tiles * col_tiles, options.num_threads, run_tile);
  return result;
}

tensor::Matrix cosine_rows(const tensor::Matrix& a, const tensor::Matrix& b,
                           const ScorerOptions& options) {
  GNN4IP_ENSURE(a.cols() == b.cols(),
                "cosine_rows: dimension mismatch " + a.shape_string() +
                    " vs " + b.shape_string());
  if (a.rows() == 0 || b.rows() == 0) return tensor::Matrix(a.rows(), b.rows());
  return cosine_rows(a.data(), a.rows(), b.data(), b.rows(), a.cols(),
                     options);
}

PairwiseScorer::PairwiseScorer(const ScorerOptions& options)
    : options_(options) {}

PairwiseScorer PairwiseScorer::from_entries(
    gnn::Hw2Vec& model, std::span<const train::GraphEntry> entries,
    const ScorerOptions& options) {
  PairwiseScorer scorer(options);
  scorer.names_.reserve(entries.size());
  // Graphs are independent, so the embedding phase fans out over the
  // worker pool; each worker fills only its own slot and the rows are
  // appended in corpus order afterwards, so the cache is bit-identical
  // for any worker count. Inference only reads the model weights, which
  // makes the shared `model` safe to use concurrently.
  // Each worker thread reuses one tape across all the graphs it claims
  // (reset() keeps the node vector's capacity), rather than paying a
  // fresh tape allocation per graph.
  std::vector<tensor::Matrix> embeddings(entries.size());
  const auto embed_one = [&](std::size_t i) {
    static thread_local tensor::Tape tape;
    embeddings[i] = model.embed_inference(tape, entries[i].tensors);
  };
  util::parallel_for(entries.size(), options.num_threads, embed_one);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    scorer.add(entries[i].name, embeddings[i]);
  }
  return scorer;
}

std::size_t PairwiseScorer::add(std::string name,
                                const tensor::Matrix& embedding) {
  GNN4IP_ENSURE(!embedding.empty(), "PairwiseScorer: empty embedding");
  if (dim_ == 0) {
    dim_ = embedding.size();
  } else {
    GNN4IP_ENSURE(embedding.size() == dim_,
                  "PairwiseScorer: embedding dim " +
                      std::to_string(embedding.size()) +
                      " != corpus dim " + std::to_string(dim_));
  }
  const std::span<const float> flat = embedding.data();
  data_.insert(data_.end(), flat.begin(), flat.end());
  names_.push_back(std::move(name));
  dead_.push_back(false);
  ++live_count_;
  return names_.size() - 1;
}

const std::string& PairwiseScorer::name(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "PairwiseScorer: index out of range");
  return names_[i];
}

std::span<const float> PairwiseScorer::row(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "PairwiseScorer: row index out of range");
  return std::span<const float>(data_).subspan(i * dim_, dim_);
}

void PairwiseScorer::remove(std::size_t i) {
  GNN4IP_ENSURE(i < names_.size(), "PairwiseScorer: remove out of range");
  GNN4IP_ENSURE(!dead_[i], "PairwiseScorer: row already removed");
  dead_[i] = true;
  --live_count_;
}

bool PairwiseScorer::live(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "PairwiseScorer: index out of range");
  return !dead_[i];
}

std::vector<std::size_t> PairwiseScorer::compact() {
  std::vector<std::size_t> mapping(names_.size(), kNoIndex);
  std::size_t next = 0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (dead_[i]) continue;
    mapping[i] = next;
    if (next != i) {
      names_[next] = std::move(names_[i]);
      std::copy(data_.begin() + static_cast<std::ptrdiff_t>(i * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>(next * dim_));
    }
    ++next;
  }
  names_.resize(next);
  data_.resize(next * dim_);
  dead_.assign(next, false);
  live_count_ = next;
  return mapping;
}

tensor::Matrix PairwiseScorer::embedding_matrix() const {
  tensor::Matrix m(names_.size(), dim_);
  std::copy(data_.begin(), data_.end(), m.data().begin());
  return m;
}

tensor::Matrix PairwiseScorer::score_matrix() const {
  return cosine_rows(rows(), size(), rows(), size(), dim_, options_);
}

tensor::Matrix PairwiseScorer::score_against(
    const PairwiseScorer& other) const {
  // Either side empty: a correctly shaped all-zero result, regardless of
  // which side has not fixed its dim yet.
  if (empty() || other.empty()) return tensor::Matrix(size(), other.size());
  GNN4IP_ENSURE(dim_ == other.dim_, "score_against: corpus dims differ");
  return cosine_rows(rows(), size(), other.rows(), other.size(), dim_,
                     options_);
}

tensor::Matrix PairwiseScorer::score_new_rows(std::size_t first_new) const {
  GNN4IP_ENSURE(first_new <= size(),
                "score_new_rows: first_new past the corpus end");
  const std::size_t n = size();
  const std::size_t new_rows = n - first_new;
  tensor::Matrix result(new_rows, n);
  if (new_rows == 0) return result;
  // Rows are read straight out of the resident cache — no N×D copy — so
  // screening ΔN incoming designs really is O(ΔN·N·D). Norms and dot
  // products use the same accumulation order as cosine_rows, keeping the
  // rows bit-identical to the matching score_matrix() rows.
  const std::vector<float> norms = row_norms(data_, n, dim_);
  for (std::size_t r = 0; r < new_rows; ++r) {
    const float* ra = data_.data() + (first_new + r) * dim_;
    const std::span<float> out = result.row(r);
    for (std::size_t j = 0; j < n; ++j) {
      const float* rb = data_.data() + j * dim_;
      float acc = 0.0F;
      for (std::size_t k = 0; k < dim_; ++k) acc += ra[k] * rb[k];
      const float denom =
          std::max(norms[first_new + r] * norms[j], kNormFloor);
      out[j] = std::clamp(acc / denom, -1.0F, 1.0F);
    }
  }
  return result;
}

std::vector<PairScore> PairwiseScorer::top_k(std::size_t i,
                                             std::size_t k) const {
  GNN4IP_ENSURE(i < size(), "top_k: row index out of range");
  GNN4IP_ENSURE(!dead_[i], "top_k: row has been removed");
  // One row against the cache via the same per-cell arithmetic as
  // score() / cosine_rows, so retrieval agrees bit-for-bit with the
  // batch paths. Removed rows are not valid neighbours.
  std::vector<PairScore> neighbours;
  neighbours.reserve(live_count_ > 0 ? live_count_ - 1 : 0);
  for (std::size_t j = 0; j < size(); ++j) {
    if (j == i || dead_[j]) continue;
    neighbours.push_back({i, j, score(i, j)});
  }
  const std::size_t keep = std::min(k, neighbours.size());
  const auto closer = [](const PairScore& x, const PairScore& y) {
    if (x.similarity != y.similarity) return x.similarity > y.similarity;
    return x.b < y.b;
  };
  std::partial_sort(neighbours.begin(),
                    neighbours.begin() + static_cast<std::ptrdiff_t>(keep),
                    neighbours.end(), closer);
  neighbours.resize(keep);
  return neighbours;
}

std::vector<PairScore> PairwiseScorer::score_all_pairs() const {
  // The symmetric matrix computes both triangles; at D = 16 the kernel is
  // cheap enough that halving it is not worth a second code path.
  const tensor::Matrix scores = score_matrix();
  std::vector<PairScore> pairs;
  pairs.reserve(live_count_ * (live_count_ > 0 ? live_count_ - 1 : 0) / 2);
  for (std::size_t i = 0; i < size(); ++i) {
    if (dead_[i]) continue;
    const std::span<const float> row = scores.row(i);
    for (std::size_t j = i + 1; j < size(); ++j) {
      if (dead_[j]) continue;
      pairs.push_back({i, j, row[j]});
    }
  }
  return pairs;
}

std::vector<PairScore> PairwiseScorer::flag(float delta) const {
  std::vector<PairScore> pairs = score_all_pairs();
  std::erase_if(pairs,
                [delta](const PairScore& p) { return p.similarity <= delta; });
  std::sort(pairs.begin(), pairs.end(),
            [](const PairScore& x, const PairScore& y) {
              return x.similarity > y.similarity;
            });
  return pairs;
}

float PairwiseScorer::score(std::size_t i, std::size_t j) const {
  GNN4IP_ENSURE(i < size() && j < size(),
                "PairwiseScorer: pair index out of range");
  const float* ri = data_.data() + i * dim_;
  const float* rj = data_.data() + j * dim_;
  float ab = 0.0F;
  float aa = 0.0F;
  float bb = 0.0F;
  for (std::size_t k = 0; k < dim_; ++k) {
    ab += ri[k] * rj[k];
    aa += ri[k] * ri[k];
    bb += rj[k] * rj[k];
  }
  const float denom = std::max(std::sqrt(aa) * std::sqrt(bb), kNormFloor);
  return std::clamp(ab / denom, -1.0F, 1.0F);
}

}  // namespace gnn4ip::core
