// Single-shard pairwise similarity view — one EmbeddingStore plus the
// cosine kernels, batched.
//
// GNN4IP's pair check (Alg. 1) is cosine(h_A, h_B); auditing a corpus of
// N designs needs all N·(N−1)/2 pairs. The naive pattern re-runs the
// whole embedding pipeline for both members of every pair, i.e. N−1
// embeddings per design. PairwiseScorer instead embeds each design
// exactly once into a cached N×D row store (core::EmbeddingStore) and
// scores every pair from that cache with the blocked, multi-threaded
// cosine kernels of core/cosine_kernels.h — turning an O(N²·embed)
// workload into O(N·embed + N²·D).
//
// Scores are bit-identical for any thread count: each output cell is
// computed independently from the same cached rows, so the arithmetic
// order inside a cell never depends on the schedule.
//
// This is the single-shard reference path, kept for tests, benches, and
// small hand-wired flows. Production screening layers a
// core::ShardedCorpus (K stores, same kernels, same bits) under
// audit::AuditService; this class must stay bit-identical to it for
// num_shards == anything, which the sharding tests assert.
//
// Typical use:
//   core::PairwiseScorer scorer;
//   for (const auto& e : entries) scorer.add(e.name, model.embed_inference(e.tensors));
//   auto flagged = scorer.flag();
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/cosine_kernels.h"
#include "core/embedding_store.h"
#include "gnn/hw2vec.h"
#include "tensor/matrix.h"
#include "train/dataset.h"

namespace gnn4ip::core {

class PairwiseScorer {
 public:
  /// "No such row": returned by compact() for removed rows.
  static constexpr std::size_t kNoIndex = EmbeddingStore::kNoIndex;

  explicit PairwiseScorer(const ScorerOptions& options = {});

  /// Embed every entry once through `model` (fanned out over the worker
  /// pool; graphs are independent) and cache the rows in corpus order.
  [[nodiscard]] static PairwiseScorer from_entries(
      gnn::Hw2Vec& model, std::span<const train::GraphEntry> entries,
      const ScorerOptions& options = {});

  /// Append one design's embedding (a 1×D matrix, or any shape viewed as
  /// a flat D-vector; D is fixed by the first add). Returns its index.
  std::size_t add(std::string name, const tensor::Matrix& embedding);

  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] bool empty() const { return store_.empty(); }
  [[nodiscard]] std::size_t dim() const { return store_.dim(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return store_.name(i);
  }
  [[nodiscard]] const ScorerOptions& options() const { return options_; }

  /// The resident row storage itself (shard-unit introspection).
  [[nodiscard]] const EmbeddingStore& store() const { return store_; }

  /// Zero-copy view of row `i` of the resident cache (length dim()).
  /// Invalidated by add/compact, like a vector iterator.
  [[nodiscard]] std::span<const float> row(std::size_t i) const {
    return store_.row(i);
  }

  /// Zero-copy view of the whole resident cache as a flat row-major
  /// size()×dim() buffer. Same invalidation rules as row().
  [[nodiscard]] std::span<const float> rows() const { return store_.rows(); }

  /// Tombstone row `i`: it keeps its index (and name(i)) but is skipped
  /// by top_k / score_all_pairs / flag, and erased by the next compact().
  /// The positional kernels (score_matrix, score_new_rows, score,
  /// score_against) still include tombstoned rows — compact() first when
  /// exact shapes matter.
  void remove(std::size_t i) { store_.remove(i); }

  /// True while row `i` has not been removed.
  [[nodiscard]] bool live(std::size_t i) const { return store_.live(i); }

  /// Rows not yet removed.
  [[nodiscard]] std::size_t live_count() const { return store_.live_count(); }

  /// Erase every removed row in one pass. Returns the index remapping:
  /// result[old_index] is the row's new index, or kNoIndex if it was
  /// removed. No-op (identity mapping) when nothing is removed.
  std::vector<std::size_t> compact() { return store_.compact(); }

  /// The cached embeddings as an N×D row matrix (copy; prefer rows()/
  /// row() when a view suffices).
  [[nodiscard]] tensor::Matrix embedding_matrix() const {
    return store_.embedding_matrix();
  }

  /// Full N×N symmetric cosine matrix.
  [[nodiscard]] tensor::Matrix score_matrix() const;

  /// Incremental-audit scoring: cosine of every row appended at or after
  /// index `first_new` against the whole resident corpus, as an
  /// (N − first_new) × N matrix (row r is corpus row first_new + r).
  /// Screening a stream of incoming designs therefore costs O(ΔN·N·D)
  /// per batch instead of recomputing the N×N matrix; the rows are
  /// bit-identical to the corresponding rows of score_matrix().
  [[nodiscard]] tensor::Matrix score_new_rows(std::size_t first_new) const;

  /// The k live corpus entries most similar to row `i` (i itself and
  /// removed rows excluded), sorted by descending similarity with
  /// ascending-index tie-break; fewer than k results when the corpus is
  /// small. Each result has a == i and b == the neighbour.
  [[nodiscard]] std::vector<PairScore> top_k(std::size_t i,
                                             std::size_t k) const;

  /// Rectangular cross-corpus scores: result(i, j) = cosine of this
  /// corpus's row i against `other`'s row j. Dims must match.
  [[nodiscard]] tensor::Matrix score_against(const PairwiseScorer& other) const;

  /// All unordered pairs of live rows, scored from the cache.
  [[nodiscard]] std::vector<PairScore> score_all_pairs() const;

  /// Live pairs with similarity > delta (Alg. 1's decision boundary),
  /// sorted by descending similarity with ascending (a, b) tie-break —
  /// the fixed order every sharded path reproduces. The overload without
  /// an argument uses options().delta.
  [[nodiscard]] std::vector<PairScore> flag(float delta) const;
  [[nodiscard]] std::vector<PairScore> flag() const {
    return flag(options_.delta);
  }

  /// Single cached pair, for spot checks against the per-pair path.
  [[nodiscard]] float score(std::size_t i, std::size_t j) const;

 private:
  ScorerOptions options_;
  EmbeddingStore store_;
};

}  // namespace gnn4ip::core
