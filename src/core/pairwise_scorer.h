// Batched pairwise similarity engine — the corpus-scale hot path.
//
// GNN4IP's pair check (Alg. 1) is cosine(h_A, h_B); auditing a corpus of
// N designs needs all N·(N−1)/2 pairs. The naive pattern re-runs the
// whole embedding pipeline for both members of every pair, i.e. N−1
// embeddings per design. PairwiseScorer instead embeds each design
// exactly once into a cached N×D row matrix and scores every pair from
// that cache with a blocked, multi-threaded cosine kernel — turning an
// O(N²·embed) workload into O(N·embed + N²·D).
//
// Scores are bit-identical for any thread count: each output cell is
// computed independently from the same cached rows, so the arithmetic
// order inside a cell never depends on the schedule.
//
// A long-running corpus is kept bounded with the two-phase removal API:
// remove(i) tombstones a row (cheap, batchable), compact() erases every
// tombstoned row in one pass and reports the old→new index remapping.
// audit::AuditService drives this from its eviction policy.
//
// Typical use:
//   core::PairwiseScorer scorer;
//   for (const auto& e : entries) scorer.add(e.name, model.embed_inference(e.tensors));
//   auto flagged = scorer.flag();
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "gnn/hw2vec.h"
#include "tensor/matrix.h"
#include "train/dataset.h"

namespace gnn4ip::core {

/// Scoring knobs shared by every layer that scores pairs: the blocked
/// kernel, PairwiseScorer, and audit::AuditService all read this one
/// struct instead of re-declaring thread/block/threshold fields.
struct ScorerOptions {
  /// Worker threads for the embedding fan-out and the blocked kernel.
  /// 0 = the shared util::ThreadPool (GNN4IP_THREADS, else hardware
  /// concurrency). Results are bit-identical for any value.
  std::size_t num_threads = 0;
  /// Rows per tile of the blocked kernel. Tiles are the unit of work
  /// handed to threads; 64 rows of a 16-wide embedding fit comfortably
  /// in L1 alongside the column tile.
  std::size_t block_rows = 64;
  /// Decision boundary δ (Alg. 1): a pair is piracy when Ŷ > delta.
  float delta = 0.5F;
};

/// One scored unordered pair (indices into the scorer's corpus).
struct PairScore {
  std::size_t a = 0;
  std::size_t b = 0;
  float similarity = 0.0F;  // Ŷ ∈ [−1, 1]
};

/// Cosine similarity between every row of `a` and every row of `b`
/// (result is a.rows() × b.rows()). The blocked kernel behind
/// PairwiseScorer, exposed for reuse and benchmarking. Zero rows score 0.
[[nodiscard]] tensor::Matrix cosine_rows(const tensor::Matrix& a,
                                         const tensor::Matrix& b,
                                         const ScorerOptions& options = {});

/// Same kernel over raw row-major buffers (`a` is a_rows×dim, `b` is
/// b_rows×dim) — lets PairwiseScorer score straight out of its resident
/// cache without materializing an N×D Matrix copy per call.
[[nodiscard]] tensor::Matrix cosine_rows(std::span<const float> a,
                                         std::size_t a_rows,
                                         std::span<const float> b,
                                         std::size_t b_rows, std::size_t dim,
                                         const ScorerOptions& options = {});

class PairwiseScorer {
 public:
  /// "No such row": returned by compact() for removed rows.
  static constexpr std::size_t kNoIndex =
      std::numeric_limits<std::size_t>::max();

  explicit PairwiseScorer(const ScorerOptions& options = {});

  /// Embed every entry once through `model` (fanned out over the worker
  /// pool; graphs are independent) and cache the rows in corpus order.
  [[nodiscard]] static PairwiseScorer from_entries(
      gnn::Hw2Vec& model, std::span<const train::GraphEntry> entries,
      const ScorerOptions& options = {});

  /// Append one design's embedding (a 1×D matrix, or any shape viewed as
  /// a flat D-vector; D is fixed by the first add). Returns its index.
  std::size_t add(std::string name, const tensor::Matrix& embedding);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] bool empty() const { return names_.empty(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const std::string& name(std::size_t i) const;
  [[nodiscard]] const ScorerOptions& options() const { return options_; }

  /// Zero-copy view of row `i` of the resident cache (length dim()).
  /// Invalidated by add/compact, like a vector iterator.
  [[nodiscard]] std::span<const float> row(std::size_t i) const;

  /// Zero-copy view of the whole resident cache as a flat row-major
  /// size()×dim() buffer. Same invalidation rules as row().
  [[nodiscard]] std::span<const float> rows() const { return data_; }

  /// Tombstone row `i`: it keeps its index (and name(i)) but is skipped
  /// by top_k / score_all_pairs / flag, and erased by the next compact().
  /// The positional kernels (score_matrix, score_new_rows, score,
  /// score_against) still include tombstoned rows — compact() first when
  /// exact shapes matter.
  void remove(std::size_t i);

  /// True while row `i` has not been removed.
  [[nodiscard]] bool live(std::size_t i) const;

  /// Rows not yet removed.
  [[nodiscard]] std::size_t live_count() const { return live_count_; }

  /// Erase every removed row in one pass. Returns the index remapping:
  /// result[old_index] is the row's new index, or kNoIndex if it was
  /// removed. No-op (identity mapping) when nothing is removed.
  std::vector<std::size_t> compact();

  /// The cached embeddings as an N×D row matrix (copy; prefer rows()/
  /// row() when a view suffices).
  [[nodiscard]] tensor::Matrix embedding_matrix() const;

  /// Full N×N symmetric cosine matrix.
  [[nodiscard]] tensor::Matrix score_matrix() const;

  /// Incremental-audit scoring: cosine of every row appended at or after
  /// index `first_new` against the whole resident corpus, as an
  /// (N − first_new) × N matrix (row r is corpus row first_new + r).
  /// Screening a stream of incoming designs therefore costs O(ΔN·N·D)
  /// per batch instead of recomputing the N×N matrix; the rows are
  /// bit-identical to the corresponding rows of score_matrix().
  [[nodiscard]] tensor::Matrix score_new_rows(std::size_t first_new) const;

  /// The k live corpus entries most similar to row `i` (i itself and
  /// removed rows excluded), sorted by descending similarity with
  /// ascending-index tie-break; fewer than k results when the corpus is
  /// small. Each result has a == i and b == the neighbour.
  [[nodiscard]] std::vector<PairScore> top_k(std::size_t i,
                                             std::size_t k) const;

  /// Rectangular cross-corpus scores: result(i, j) = cosine of this
  /// corpus's row i against `other`'s row j. Dims must match.
  [[nodiscard]] tensor::Matrix score_against(const PairwiseScorer& other) const;

  /// All unordered pairs of live rows, scored from the cache.
  [[nodiscard]] std::vector<PairScore> score_all_pairs() const;

  /// Live pairs with similarity > delta (Alg. 1's decision boundary),
  /// sorted by descending similarity. The overload without an argument
  /// uses options().delta.
  [[nodiscard]] std::vector<PairScore> flag(float delta) const;
  [[nodiscard]] std::vector<PairScore> flag() const {
    return flag(options_.delta);
  }

  /// Single cached pair, for spot checks against the per-pair path.
  [[nodiscard]] float score(std::size_t i, std::size_t j) const;

 private:
  ScorerOptions options_;
  std::size_t dim_ = 0;
  std::vector<std::string> names_;
  std::vector<float> data_;  // row-major N×dim_
  std::vector<bool> dead_;   // tombstones; erased by compact()
  std::size_t live_count_ = 0;
};

}  // namespace gnn4ip::core
