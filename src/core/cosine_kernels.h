// Free-function cosine kernels and the scoring knobs they share.
//
// Every layer that scores embeddings — the single-shard PairwiseScorer,
// the ShardedCorpus, and audit::AuditService — funnels through these
// kernels, so the arithmetic (accumulation order, norm floor, clamping)
// is defined exactly once. That single definition is what makes the
// repo's determinism guarantee composable: any path that scores the same
// two rows produces the same bits, no matter which layer asked.
//
// Per-cell arithmetic: dot product accumulated in ascending-k order,
// norms as sqrt of an ascending-k sum of squares, denominator floored at
// kNormFloor (all-zero embeddings score 0 instead of NaN), result
// clamped into [-1, 1].
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace gnn4ip::core {

/// Scoring knobs shared by every layer that scores pairs: the blocked
/// kernel, PairwiseScorer, ShardedCorpus, and audit::AuditService all
/// read this one struct instead of re-declaring thread/block/threshold
/// fields.
struct ScorerOptions {
  /// Worker threads for the embedding fan-out and the blocked kernel.
  /// 0 = the shared util::ThreadPool (GNN4IP_THREADS, else hardware
  /// concurrency). Results are bit-identical for any value.
  std::size_t num_threads = 0;
  /// Rows per tile of the blocked kernel. Tiles are the unit of work
  /// handed to threads; 64 rows of a 16-wide embedding fit comfortably
  /// in L1 alongside the column tile.
  std::size_t block_rows = 64;
  /// Decision boundary δ (Alg. 1): a pair is piracy when Ŷ > delta.
  float delta = 0.5F;
};

/// One scored unordered pair (indices into the owning corpus).
struct PairScore {
  std::size_t a = 0;
  std::size_t b = 0;
  float similarity = 0.0F;  // Ŷ ∈ [−1, 1]
};

/// Fixed result order shared by every flag() implementation: descending
/// similarity, then ascending (a, b) — a total order over distinct
/// pairs, so sorted output is identical no matter which layer (or shard
/// bucketing) produced the candidates.
[[nodiscard]] inline bool flag_order(const PairScore& x, const PairScore& y) {
  if (x.similarity != y.similarity) return x.similarity > y.similarity;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// Guard on the norm *product*, exactly like PiracyDetector::similarity:
/// all-zero embeddings score 0 instead of NaN, and the result is clamped
/// into the documented [-1, 1] so every path agrees bit-for-bit on
/// degenerate inputs too.
inline constexpr float kNormFloor = 1e-8F;

/// Euclidean norm of one row (ascending-k sum of squares, then sqrt) —
/// the exact norm arithmetic of every kernel below.
[[nodiscard]] float row_norm(std::span<const float> row);

/// One cell of the batched kernels: ascending-k dot of two D-rows over a
/// precomputed norm product, floored and clamped. THE per-cell
/// definition — every loop that scores rows against precomputed norms
/// (cosine_rows, the score_new_rows paths, ShardedCorpus's pair sweep)
/// must call this so the cross-layer bit-identity contract has exactly
/// one implementation to drift from.
[[nodiscard]] inline float cosine_cell(const float* a, const float* b,
                                       std::size_t dim, float norm_product) {
  float acc = 0.0F;
  for (std::size_t k = 0; k < dim; ++k) acc += a[k] * b[k];
  return std::clamp(acc / std::max(norm_product, kNormFloor), -1.0F, 1.0F);
}

/// row_norm of every row of a flat row-major rows×dim buffer.
[[nodiscard]] std::vector<float> row_norms(std::span<const float> data,
                                           std::size_t rows, std::size_t dim);

/// Cosine of two equal-length rows, bit-identical to a cell of
/// cosine_rows on the same inputs.
[[nodiscard]] float cosine_pair(std::span<const float> a,
                                std::span<const float> b);

/// Cosine similarity between every row of `a` and every row of `b`
/// (result is a.rows() × b.rows()). The blocked kernel behind
/// PairwiseScorer, exposed for reuse and benchmarking. Zero rows score 0.
[[nodiscard]] tensor::Matrix cosine_rows(const tensor::Matrix& a,
                                         const tensor::Matrix& b,
                                         const ScorerOptions& options = {});

/// Same kernel over raw row-major buffers (`a` is a_rows×dim, `b` is
/// b_rows×dim) — lets a resident cache score straight out of its rows
/// without materializing an N×D Matrix copy per call.
[[nodiscard]] tensor::Matrix cosine_rows(std::span<const float> a,
                                         std::size_t a_rows,
                                         std::span<const float> b,
                                         std::size_t b_rows, std::size_t dim,
                                         const ScorerOptions& options = {});

}  // namespace gnn4ip::core
