// Free-function cosine kernels and the scoring knobs they share.
//
// Every layer that scores embeddings — the single-shard PairwiseScorer,
// the ShardedCorpus, and audit::AuditService — funnels through these
// kernels, so the arithmetic (accumulation order, norm floor, clamping)
// is defined exactly once. That single definition is what makes the
// repo's determinism guarantee composable: any path that scores the same
// two rows produces the same bits, no matter which layer asked.
//
// Per-cell arithmetic: dot product accumulated in ascending-k order,
// norms as sqrt of an ascending-k sum of squares, denominator floored at
// kNormFloor (all-zero embeddings score 0 instead of NaN), result
// clamped into [-1, 1].
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/simd_dispatch.h"
#include "tensor/matrix.h"

namespace gnn4ip::core {

/// Scoring knobs shared by every layer that scores pairs: the blocked
/// kernel, PairwiseScorer, ShardedCorpus, and audit::AuditService all
/// read this one struct instead of re-declaring thread/block/threshold
/// fields.
struct ScorerOptions {
  /// Worker threads for the embedding fan-out and the blocked kernel.
  /// 0 = the shared util::ThreadPool (GNN4IP_THREADS, else hardware
  /// concurrency). Results are bit-identical for any value.
  std::size_t num_threads = 0;
  /// Rows per tile of the blocked kernel. Tiles are the unit of work
  /// handed to threads; 64 rows of a 16-wide embedding fit comfortably
  /// in L1 alongside the column tile.
  std::size_t block_rows = 64;
  /// Decision boundary δ (Alg. 1): a pair is piracy when Ŷ > delta.
  float delta = 0.5F;
  /// Kernel backend for the dispatched paths (simd_dispatch.h). The
  /// int8 prefilter screen uses it unconditionally (integer kernels are
  /// bit-identical across backends); float scoring uses it only when
  /// exact_scoring is off.
  KernelBackend kernel = KernelBackend::kAuto;
  /// true (default): every float similarity is computed by the scalar
  /// reference kernels — the cross-layer bit-identity contract. false:
  /// float sweeps may use the resolved SIMD backend, which reassociates
  /// the adds (≈1e-6 agreement with scalar, no bit guarantee). Verdict
  /// paths (AuditService, screen_new_rows rescoring) ignore this and
  /// always score exact.
  bool exact_scoring = true;
  /// Enable the int8 quantized prefilter tier in
  /// ShardedCorpus::screen_new_rows / top_k / flag: candidates are
  /// screened by an int8 dot product with rigorous cosine bounds, and
  /// only candidates whose bound straddles the decision boundary are
  /// rescored exactly — outputs are bit-identical to the exact sweep.
  bool int8_prefilter = false;
};

/// One scored unordered pair (indices into the owning corpus).
struct PairScore {
  std::size_t a = 0;
  std::size_t b = 0;
  float similarity = 0.0F;  // Ŷ ∈ [−1, 1]
};

/// Fixed result order shared by every flag() implementation: descending
/// similarity, then ascending (a, b) — a total order over distinct
/// pairs, so sorted output is identical no matter which layer (or shard
/// bucketing) produced the candidates.
[[nodiscard]] inline bool flag_order(const PairScore& x, const PairScore& y) {
  if (x.similarity != y.similarity) return x.similarity > y.similarity;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// Guard on the norm *product*, exactly like PiracyDetector::similarity:
/// all-zero embeddings score 0 instead of NaN, and the result is clamped
/// into the documented [-1, 1] so every path agrees bit-for-bit on
/// degenerate inputs too.
inline constexpr float kNormFloor = 1e-8F;

/// Euclidean norm of one row (ascending-k sum of squares, then sqrt) —
/// the exact norm arithmetic of every kernel below.
[[nodiscard]] float row_norm(std::span<const float> row);

/// One cell of the batched kernels: ascending-k dot of two D-rows over a
/// precomputed norm product, floored and clamped. THE per-cell
/// definition — every loop that scores rows against precomputed norms
/// (cosine_rows, the score_new_rows paths, ShardedCorpus's pair sweep)
/// must call this so the cross-layer bit-identity contract has exactly
/// one implementation to drift from.
[[nodiscard]] inline float cosine_cell(const float* a, const float* b,
                                       std::size_t dim, float norm_product) {
  float acc = 0.0F;
  for (std::size_t k = 0; k < dim; ++k) acc += a[k] * b[k];
  return std::clamp(acc / std::max(norm_product, kNormFloor), -1.0F, 1.0F);
}

/// row_norm of every row of a flat row-major rows×dim buffer.
[[nodiscard]] std::vector<float> row_norms(std::span<const float> data,
                                           std::size_t rows, std::size_t dim);

/// Cosine of two equal-length rows, bit-identical to a cell of
/// cosine_rows on the same inputs.
[[nodiscard]] float cosine_pair(std::span<const float> a,
                                std::span<const float> b);

/// Cosine similarity between every row of `a` and every row of `b`
/// (result is a.rows() × b.rows()). The blocked kernel behind
/// PairwiseScorer, exposed for reuse and benchmarking. Zero rows score 0.
[[nodiscard]] tensor::Matrix cosine_rows(const tensor::Matrix& a,
                                         const tensor::Matrix& b,
                                         const ScorerOptions& options = {});

/// Same kernel over raw row-major buffers (`a` is a_rows×dim, `b` is
/// b_rows×dim) — lets a resident cache score straight out of its rows
/// without materializing an N×D Matrix copy per call.
[[nodiscard]] tensor::Matrix cosine_rows(std::span<const float> a,
                                         std::size_t a_rows,
                                         std::span<const float> b,
                                         std::size_t b_rows, std::size_t dim,
                                         const ScorerOptions& options = {});

// ---- Quantized prefilter math --------------------------------------------
// One row of the int8 tier, as the bound kernel consumes it. The store
// decomposes each float row x as x = scale·q + e (symmetric per-row
// quantization, |e[k]| ≤ scale/2) and caches upper bounds on ‖q‖ and
// ‖e‖ plus the exact float row_norm the scoring kernels divide by.

struct QuantRowView {
  const std::int8_t* q = nullptr;  // dim int8 components
  float scale = 0.0F;              // max|x| / 127
  float qnorm = 0.0F;              // upper bound on ‖q‖₂
  float enorm = 0.0F;              // upper bound on ‖e‖₂ = ‖x − scale·q‖₂
  float norm = 0.0F;               // fl(row_norm(x)) — the exact denominator
};

/// Rigorous enclosure of one exact cosine cell.
struct CosineBounds {
  float lb = 0.0F;
  float ub = 0.0F;
};

/// Per-row constants of the bound arithmetic below, hoisted so candidate
/// sweeps pay only the pair-dependent multiplies. Building one gate per
/// row once (make_quant_gate) and combining gates per pair keeps the
/// screen's inner loop at ~a dozen double ops with no division — the
/// full CosineBounds (division + outward float rounding) is only needed
/// for the few candidates a sweep actually retains.
struct QuantGate {
  const std::int8_t* q = nullptr;  // dim int8 components
  double scale = 0.0;              // s = max|x| / 127
  double sq = 0.0;                 // s·‖q‖ — multiplies the other row's enorm
  double e = 0.0;                  // upper bound on ‖e‖₂
  double slack = 0.0;              // dim·1.2e-7·‖x‖ — accumulation slack factor
  float norm = 0.0F;               // fl(row_norm(x)) — the exact denominator
};

[[nodiscard]] inline QuantGate make_quant_gate(const QuantRowView& v,
                                               std::size_t dim) {
  QuantGate g;
  g.q = v.q;
  g.scale = v.scale;
  g.sq = static_cast<double>(v.scale) * v.qnorm;
  g.e = v.enorm;
  g.slack = static_cast<double>(dim) * 1.2e-7 * v.norm;
  g.norm = v.norm;
  return g;
}

/// Margin added around sa·sb·dot_i8 so the enclosure covers both the
/// quantization residual (Cauchy–Schwarz on dot(a,b) = sa·sb·(qa·qb) +
/// sa·qa·eb + sb·qb·ea + ea·eb) and the float rounding of the exact
/// kernel's ascending-k accumulation (γ_dim ≈ dim·2⁻²⁴, widened to
/// 2·dim·eps). Everything runs in double: these margins dominate any
/// double rounding by many orders of magnitude, so the enclosure stays
/// rigorous without per-operation directed rounding.
[[nodiscard]] inline double quant_gate_spread(const QuantGate& a,
                                              const QuantGate& b) {
  const double residual = a.sq * b.e + b.sq * a.e + a.e * b.e;
  const double slack = a.slack * b.norm + 1e-30;
  return (residual + slack) * 1.000001 + 1e-12;
}

/// The query-side coefficients of KernelOps::quant_margin_sweep —
/// algebraically `approx + quant_gate_spread` with the a-row terms
/// factored out and the 1.000001 margin distributed onto each
/// coefficient: num = c_scale·s_b·dot + c_e·e_b + c_sq·(s_b·‖q_b‖) +
/// c_norm·‖x_b‖ + c_abs. Distribution and FMA change the rounding by a
/// few ulps at most, which the same margins absorb, so num/den stays a
/// rigorous upper bound on the exact (unclamped) cosine cell.
[[nodiscard]] inline QuantSweepQuery make_sweep_query(const QuantGate& a) {
  QuantSweepQuery qc;
  qc.c_scale = a.scale;
  qc.c_e = (a.sq + a.e) * 1.000001;
  qc.c_sq = a.e * 1.000001;
  qc.c_norm = a.slack * 1.000001;
  qc.c_abs = 1e-30 * 1.000001 + 1e-12;
  qc.floor = static_cast<double>(kNormFloor);
  qc.qnorm = a.norm;
  return qc;
}

/// EXACTLY the denominator cosine_cell divides by: a float product of
/// the cached norms, floored (in double, but the float floor value).
[[nodiscard]] inline double quant_gate_denom(const QuantGate& a,
                                             const QuantGate& b) {
  const float norm_product = a.norm * b.norm;
  return std::max(static_cast<double>(norm_product),
                  static_cast<double>(kNormFloor));
}

/// Bounds on cosine_cell(a, b, dim, a.norm * b.norm) from the int8 dot
/// product `dot_i8` = Σ qa[k]·qb[k] alone: the *computed* cosine_cell
/// value always lies in [lb, ub] — the guarantee that makes bound-based
/// pruning provably verdict-preserving.
[[nodiscard]] inline CosineBounds quant_gate_bounds(const QuantGate& a,
                                                    const QuantGate& b,
                                                    std::int32_t dot_i8) {
  const double approx = a.scale * b.scale * dot_i8;
  const double spread = quant_gate_spread(a, b);
  const double denom = quant_gate_denom(a, b);
  const double lb = std::clamp((approx - spread) / denom, -1.0, 1.0);
  const double ub = std::clamp((approx + spread) / denom, -1.0, 1.0);
  // Round the enclosure outward when narrowing to float, then re-clamp:
  // the exact cell is clamped into [-1, 1], so ±1 stay valid bounds.
  CosineBounds bounds;
  bounds.lb = std::max(-1.0F, std::nextafterf(static_cast<float>(lb), -2.0F));
  bounds.ub = std::min(1.0F, std::nextafterf(static_cast<float>(ub), 2.0F));
  return bounds;
}

/// Convenience form over raw row views — builds both gates in place.
/// Hot sweeps should hoist the gates instead and combine them per pair.
[[nodiscard]] inline CosineBounds quantized_cosine_bounds(
    const QuantRowView& a, const QuantRowView& b, std::int32_t dot_i8,
    std::size_t dim) {
  return quant_gate_bounds(make_quant_gate(a, dim), make_quant_gate(b, dim),
                           dot_i8);
}

}  // namespace gnn4ip::core
