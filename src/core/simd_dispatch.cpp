#include "core/simd_dispatch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "core/cosine_kernels.h"
#include "util/contract.h"

#if defined(__x86_64__) || defined(__i386__)
#define GNN4IP_HAVE_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define GNN4IP_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace gnn4ip::core {
namespace {

// ---- Scalar backend ------------------------------------------------------
// Thin loops over the cosine_kernels.h arithmetic: these must stay
// bit-identical to cosine_cell / row_norm — they are the oracle every
// vector backend is tested against, and the implementation behind every
// exact-scoring path.

float dot_f32_scalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0F;
  for (std::size_t k = 0; k < dim; ++k) acc += a[k] * b[k];
  return acc;
}

float row_norm_scalar(const float* a, std::size_t dim) {
  float sq = 0.0F;
  for (std::size_t k = 0; k < dim; ++k) sq += a[k] * a[k];
  return std::sqrt(sq);
}

void cosine_sweep_scalar(const float* q, float qnorm, const float* rows,
                         const float* norms, std::size_t n, std::size_t dim,
                         float* out) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = cosine_cell(q, rows + j * dim, dim, qnorm * norms[j]);
  }
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t dim) {
  std::int32_t acc = 0;
  for (std::size_t k = 0; k < dim; ++k) {
    acc += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(b[k]);
  }
  return acc;
}

void dot_i8_sweep_scalar(const std::int8_t* q, const std::int8_t* rows,
                         std::size_t n, std::size_t dim, std::int32_t* out) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = dot_i8_scalar(q, rows + j * dim, dim);
  }
}

std::size_t quant_margin_sweep_scalar(const QuantSweepQuery& qc,
                                      const QuantStatsSoa& rows,
                                      const std::int32_t* dots, std::size_t n,
                                      double prune_max, double* num,
                                      double* den, std::uint32_t* hits) {
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    num[j] = qc.c_scale * rows.scale[j] * dots[j] + qc.c_e * rows.e[j] +
             qc.c_sq * rows.sq[j] + qc.c_norm * rows.normd[j] + qc.c_abs;
    const float norm_product = qc.qnorm * rows.normf[j];
    den[j] = std::max(static_cast<double>(norm_product), qc.floor);
    if (num[j] > prune_max * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

std::size_t quant_screen_sweep_scalar(const QuantSweepQuery& qc,
                                      const std::int8_t* q,
                                      const std::int8_t* rows, std::size_t dim,
                                      const QuantStatsSoa& stats, std::size_t n,
                                      double prune_max, std::int32_t* dots,
                                      double* num, double* den,
                                      std::uint32_t* hits) {
  dot_i8_sweep_scalar(q, rows, n, dim, dots);
  return quant_margin_sweep_scalar(qc, stats, dots, n, prune_max, num, den,
                                   hits);
}

std::size_t quant_survivor_scan_scalar(const double* num, const double* den,
                                       std::size_t n, double keep_lb,
                                       std::uint32_t* hits) {
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (num[j] >= keep_lb * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

// ---- AVX2+FMA backend ----------------------------------------------------
// Function-level target attributes instead of a -march build flag: the
// whole library stays runnable on pre-AVX2 hosts, and only the resolved
// dispatch table ever jumps into this code.

#if GNN4IP_HAVE_X86

__attribute__((target("avx2,fma"))) float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

__attribute__((target("avx2,fma"))) float dot_f32_avx2(const float* a,
                                                       const float* b,
                                                       std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t k = 0;
  for (; k + 8 <= dim; k += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + k), _mm256_loadu_ps(b + k), acc);
  }
  float sum = hsum256(acc);
  for (; k < dim; ++k) sum += a[k] * b[k];
  return sum;
}

__attribute__((target("avx2,fma"))) float row_norm_avx2(const float* a,
                                                        std::size_t dim) {
  return std::sqrt(dot_f32_avx2(a, a, dim));
}

__attribute__((target("avx2,fma"))) void cosine_sweep_avx2(
    const float* q, float qnorm, const float* rows, const float* norms,
    std::size_t n, std::size_t dim, float* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const float dot = dot_f32_avx2(q, rows + j * dim, dim);
    out[j] = std::clamp(dot / std::max(qnorm * norms[j], kNormFloor), -1.0F,
                        1.0F);
  }
}

__attribute__((target("avx2"))) std::int32_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b,
                                                         std::size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t k = 0;
  for (; k + 16 <= dim; k += 16) {
    // Widen to int16 lanes, then madd: |q| ≤ 127, so each int16 product
    // pair sums into int32 without overflow — exact integer arithmetic,
    // bit-identical to the scalar reference.
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + k)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + k)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  std::int32_t sum = _mm_cvtsi128_si32(lo);
  for (; k < dim; ++k) {
    sum += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(b[k]);
  }
  return sum;
}

__attribute__((target("avx2"))) void dot_i8_sweep_avx2(
    const std::int8_t* q, const std::int8_t* rows, std::size_t n,
    std::size_t dim, std::int32_t* out) {
  // Same target attribute as dot_i8_avx2, so the per-row call inlines
  // and the sweep pays one dispatch indirection per block, not per row.
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = dot_i8_avx2(q, rows + j * dim, dim);
  }
}

__attribute__((target("avx2,fma"))) std::size_t quant_margin_sweep_avx2(
    const QuantSweepQuery& qc, const QuantStatsSoa& rows,
    const std::int32_t* dots, std::size_t n, double prune_max, double* num,
    double* den, std::uint32_t* hits) {
  const __m256d vc_scale = _mm256_set1_pd(qc.c_scale);
  const __m256d vc_e = _mm256_set1_pd(qc.c_e);
  const __m256d vc_sq = _mm256_set1_pd(qc.c_sq);
  const __m256d vc_norm = _mm256_set1_pd(qc.c_norm);
  const __m256d vc_abs = _mm256_set1_pd(qc.c_abs);
  const __m256d vfloor = _mm256_set1_pd(qc.floor);
  const __m128 vqnorm = _mm_set1_ps(qc.qnorm);
  const __m256d vprune = _mm256_set1_pd(prune_max);
  std::size_t count = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dots_d = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dots + j)));
    // FMA reassociates vs the scalar mul+add — covered by the rigor
    // margins baked into the coefficients, and num is documented as
    // not bit-pinned across backends.
    __m256d acc = _mm256_fmadd_pd(
        _mm256_mul_pd(vc_scale, _mm256_loadu_pd(rows.scale + j)), dots_d,
        vc_abs);
    acc = _mm256_fmadd_pd(vc_e, _mm256_loadu_pd(rows.e + j), acc);
    acc = _mm256_fmadd_pd(vc_sq, _mm256_loadu_pd(rows.sq + j), acc);
    acc = _mm256_fmadd_pd(vc_norm, _mm256_loadu_pd(rows.normd + j), acc);
    _mm256_storeu_pd(num + j, acc);
    // den stays bit-pinned: a float multiply (same rounding as the
    // scalar kernel), widened exactly, floored with max.
    const __m128 nf = _mm_mul_ps(vqnorm, _mm_loadu_ps(rows.normf + j));
    const __m256d dn = _mm256_max_pd(_mm256_cvtps_pd(nf), vfloor);
    _mm256_storeu_pd(den + j, dn);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(acc, _mm256_mul_pd(vprune, dn), _CMP_GT_OQ));
    if (mask != 0) {
      for (int b = 0; b < 4; ++b) {
        if ((mask & (1 << b)) != 0) {
          hits[count++] = static_cast<std::uint32_t>(j + b);
        }
      }
    }
  }
  for (; j < n; ++j) {
    num[j] = qc.c_scale * rows.scale[j] * dots[j] + qc.c_e * rows.e[j] +
             qc.c_sq * rows.sq[j] + qc.c_norm * rows.normd[j] + qc.c_abs;
    const float norm_product = qc.qnorm * rows.normf[j];
    den[j] = std::max(static_cast<double>(norm_product), qc.floor);
    if (num[j] > prune_max * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

__attribute__((target("avx2,fma"))) std::size_t quant_screen_sweep_avx2(
    const QuantSweepQuery& qc, const std::int8_t* q, const std::int8_t* rows,
    std::size_t dim, const QuantStatsSoa& stats, std::size_t n,
    double prune_max, std::int32_t* dots, double* num, double* den,
    std::uint32_t* hits) {
  if (dim == 0 || dim % 16 != 0) {
    // Odd dims take the unfused pair — correct for any dim, and the
    // fused path below then never needs a scalar dot tail that would
    // break its 4-row reduction tree.
    dot_i8_sweep_avx2(q, rows, n, dim, dots);
    return quant_margin_sweep_avx2(qc, stats, dots, n, prune_max, num, den,
                                   hits);
  }
  const __m256d vc_scale = _mm256_set1_pd(qc.c_scale);
  const __m256d vc_e = _mm256_set1_pd(qc.c_e);
  const __m256d vc_sq = _mm256_set1_pd(qc.c_sq);
  const __m256d vc_norm = _mm256_set1_pd(qc.c_norm);
  const __m256d vc_abs = _mm256_set1_pd(qc.c_abs);
  const __m256d vfloor = _mm256_set1_pd(qc.floor);
  const __m128 vqnorm = _mm_set1_ps(qc.qnorm);
  const __m256d vprune = _mm256_set1_pd(prune_max);
  std::size_t count = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // Four rows' dots at once: per 16-wide chunk each row gets a widen +
    // madd into its own int32 accumulator, then one hadd tree reduces
    // all four accumulators to a single [d0 d1 d2 d3] vector — integer
    // adds in any order, so the dots are bit-identical to the scalar
    // reference and never leave registers before the margin test.
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    const std::int8_t* r0 = rows + j * dim;
    for (std::size_t k = 0; k < dim; k += 16) {
      // No lambda for the repeated widen-load: a lambda body would be a
      // separate function without this function's target attribute.
      const __m256i vq = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + k)));
      const __m256i v0 = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + k)));
      const __m256i v1 = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + dim + k)));
      const __m256i v2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(r0 + 2 * dim + k)));
      const __m256i v3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(r0 + 3 * dim + k)));
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(vq, v0));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(vq, v1));
      acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(vq, v2));
      acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(vq, v3));
    }
    const __m256i t01 = _mm256_hadd_epi32(acc0, acc1);
    const __m256i t23 = _mm256_hadd_epi32(acc2, acc3);
    const __m256i t = _mm256_hadd_epi32(t01, t23);
    const __m128i s = _mm_add_epi32(_mm256_castsi256_si128(t),
                                    _mm256_extracti128_si256(t, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dots + j), s);
    // From here on, the quant_margin_sweep_avx2 body verbatim, fed from
    // the in-register dots.
    const __m256d dots_d = _mm256_cvtepi32_pd(s);
    __m256d acc = _mm256_fmadd_pd(
        _mm256_mul_pd(vc_scale, _mm256_loadu_pd(stats.scale + j)), dots_d,
        vc_abs);
    acc = _mm256_fmadd_pd(vc_e, _mm256_loadu_pd(stats.e + j), acc);
    acc = _mm256_fmadd_pd(vc_sq, _mm256_loadu_pd(stats.sq + j), acc);
    acc = _mm256_fmadd_pd(vc_norm, _mm256_loadu_pd(stats.normd + j), acc);
    _mm256_storeu_pd(num + j, acc);
    const __m128 nf = _mm_mul_ps(vqnorm, _mm_loadu_ps(stats.normf + j));
    const __m256d dn = _mm256_max_pd(_mm256_cvtps_pd(nf), vfloor);
    _mm256_storeu_pd(den + j, dn);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(acc, _mm256_mul_pd(vprune, dn), _CMP_GT_OQ));
    if (mask != 0) {
      for (int b = 0; b < 4; ++b) {
        if ((mask & (1 << b)) != 0) {
          hits[count++] = static_cast<std::uint32_t>(j + b);
        }
      }
    }
  }
  for (; j < n; ++j) {
    dots[j] = dot_i8_avx2(q, rows + j * dim, dim);
    num[j] = qc.c_scale * stats.scale[j] * dots[j] + qc.c_e * stats.e[j] +
             qc.c_sq * stats.sq[j] + qc.c_norm * stats.normd[j] + qc.c_abs;
    const float norm_product = qc.qnorm * stats.normf[j];
    den[j] = std::max(static_cast<double>(norm_product), qc.floor);
    if (num[j] > prune_max * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

__attribute__((target("avx2"))) std::size_t quant_survivor_scan_avx2(
    const double* num, const double* den, std::size_t n, double keep_lb,
    std::uint32_t* hits) {
  const __m256d vkeep = _mm256_set1_pd(keep_lb);
  std::size_t count = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vn = _mm256_loadu_pd(num + j);
    const __m256d vd = _mm256_loadu_pd(den + j);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(vn, _mm256_mul_pd(vkeep, vd), _CMP_GE_OQ));
    if (mask != 0) {
      for (int b = 0; b < 4; ++b) {
        if ((mask & (1 << b)) != 0) {
          hits[count++] = static_cast<std::uint32_t>(j + b);
        }
      }
    }
  }
  for (; j < n; ++j) {
    if (num[j] >= keep_lb * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

#endif  // GNN4IP_HAVE_X86

// ---- NEON backend (aarch64) ----------------------------------------------

#if GNN4IP_HAVE_NEON

float dot_f32_neon(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0F);
  std::size_t k = 0;
  for (; k + 4 <= dim; k += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + k), vld1q_f32(b + k));
  }
  float sum = vaddvq_f32(acc);
  for (; k < dim; ++k) sum += a[k] * b[k];
  return sum;
}

float row_norm_neon(const float* a, std::size_t dim) {
  return std::sqrt(dot_f32_neon(a, a, dim));
}

void cosine_sweep_neon(const float* q, float qnorm, const float* rows,
                       const float* norms, std::size_t n, std::size_t dim,
                       float* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const float dot = dot_f32_neon(q, rows + j * dim, dim);
    out[j] = std::clamp(dot / std::max(qnorm * norms[j], kNormFloor), -1.0F,
                        1.0F);
  }
}

std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b,
                         std::size_t dim) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t k = 0;
  for (; k + 8 <= dim; k += 8) {
    const int16x8_t wa = vmovl_s8(vld1_s8(a + k));
    const int16x8_t wb = vmovl_s8(vld1_s8(b + k));
    // |q| ≤ 127 keeps every int16 product in range; vpadalq folds the
    // pairs into int32 lanes — exact, scalar-identical integers.
    acc = vpadalq_s16(acc, vmulq_s16(wa, wb));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; k < dim; ++k) {
    sum += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(b[k]);
  }
  return sum;
}

void dot_i8_sweep_neon(const std::int8_t* q, const std::int8_t* rows,
                       std::size_t n, std::size_t dim, std::int32_t* out) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = dot_i8_neon(q, rows + j * dim, dim);
  }
}

std::size_t quant_margin_sweep_neon(const QuantSweepQuery& qc,
                                    const QuantStatsSoa& rows,
                                    const std::int32_t* dots, std::size_t n,
                                    double prune_max, double* num, double* den,
                                    std::uint32_t* hits) {
  // The margin arithmetic is bandwidth-light next to the int8 sweep; a
  // scalar loop (which the compiler may pair into 2-wide float64x2)
  // keeps this backend simple while preserving the one-call-per-block
  // shape.
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    num[j] = qc.c_scale * rows.scale[j] * dots[j] + qc.c_e * rows.e[j] +
             qc.c_sq * rows.sq[j] + qc.c_norm * rows.normd[j] + qc.c_abs;
    const float norm_product = qc.qnorm * rows.normf[j];
    den[j] = std::max(static_cast<double>(norm_product), qc.floor);
    if (num[j] > prune_max * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

std::size_t quant_screen_sweep_neon(const QuantSweepQuery& qc,
                                    const std::int8_t* q,
                                    const std::int8_t* rows, std::size_t dim,
                                    const QuantStatsSoa& stats, std::size_t n,
                                    double prune_max, std::int32_t* dots,
                                    double* num, double* den,
                                    std::uint32_t* hits) {
  dot_i8_sweep_neon(q, rows, n, dim, dots);
  return quant_margin_sweep_neon(qc, stats, dots, n, prune_max, num, den,
                                 hits);
}

std::size_t quant_survivor_scan_neon(const double* num, const double* den,
                                     std::size_t n, double keep_lb,
                                     std::uint32_t* hits) {
  std::size_t count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (num[j] >= keep_lb * den[j]) {
      hits[count++] = static_cast<std::uint32_t>(j);
    }
  }
  return count;
}

#endif  // GNN4IP_HAVE_NEON

}  // namespace

const char* backend_name(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto:
      return "auto";
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kNeon:
      return "neon";
  }
  GNN4IP_ENSURE(false, "backend_name: unknown KernelBackend");
  return "";
}

KernelBackend parse_backend(std::string_view name) {
  if (name == "auto") return KernelBackend::kAuto;
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "avx2") return KernelBackend::kAvx2;
  if (name == "neon") return KernelBackend::kNeon;
  GNN4IP_ENSURE(false, "unknown kernel backend '" + std::string(name) +
                           "' (expected scalar|avx2|neon|auto)");
  return KernelBackend::kAuto;
}

bool backend_supported(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto:
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if GNN4IP_HAVE_X86
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case KernelBackend::kNeon:
#if GNN4IP_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

KernelBackend detect_backend() {
  if (backend_supported(KernelBackend::kAvx2)) return KernelBackend::kAvx2;
  if (backend_supported(KernelBackend::kNeon)) return KernelBackend::kNeon;
  return KernelBackend::kScalar;
}

KernelBackend resolve_backend(KernelBackend requested) {
  if (requested != KernelBackend::kAuto) {
    GNN4IP_ENSURE(backend_supported(requested),
                  std::string("kernel backend '") + backend_name(requested) +
                      "' is not supported on this host");
    return requested;
  }
  // Re-read the environment on every resolve: tests flip GNN4IP_KERNEL
  // between calls, and getenv is far cheaper than anything a resolved
  // backend goes on to do.
  if (const char* env = std::getenv("GNN4IP_KERNEL")) {
    const KernelBackend from_env = parse_backend(env);
    if (from_env != KernelBackend::kAuto) {
      GNN4IP_ENSURE(backend_supported(from_env),
                    std::string("GNN4IP_KERNEL requests '") +
                        backend_name(from_env) +
                        "' but this host does not support it");
      return from_env;
    }
  }
  return detect_backend();
}

const KernelOps& kernel_ops(KernelBackend requested) {
  static const KernelOps scalar_ops = {KernelBackend::kScalar,
                                       &cosine_sweep_scalar,
                                       &dot_f32_scalar,
                                       &row_norm_scalar,
                                       &dot_i8_scalar,
                                       &dot_i8_sweep_scalar,
                                       &quant_margin_sweep_scalar,
                                       &quant_screen_sweep_scalar,
                                       &quant_survivor_scan_scalar};
#if GNN4IP_HAVE_X86
  static const KernelOps avx2_ops = {KernelBackend::kAvx2,
                                     &cosine_sweep_avx2,
                                     &dot_f32_avx2,
                                     &row_norm_avx2,
                                     &dot_i8_avx2,
                                     &dot_i8_sweep_avx2,
                                     &quant_margin_sweep_avx2,
                                     &quant_screen_sweep_avx2,
                                     &quant_survivor_scan_avx2};
#endif
#if GNN4IP_HAVE_NEON
  static const KernelOps neon_ops = {KernelBackend::kNeon,
                                     &cosine_sweep_neon,
                                     &dot_f32_neon,
                                     &row_norm_neon,
                                     &dot_i8_neon,
                                     &dot_i8_sweep_neon,
                                     &quant_margin_sweep_neon,
                                     &quant_screen_sweep_neon,
                                     &quant_survivor_scan_neon};
#endif
  switch (resolve_backend(requested)) {
    case KernelBackend::kAvx2:
#if GNN4IP_HAVE_X86
      return avx2_ops;
#else
      break;
#endif
    case KernelBackend::kNeon:
#if GNN4IP_HAVE_NEON
      return neon_ops;
#else
      break;
#endif
    case KernelBackend::kScalar:
      return scalar_ops;
    case KernelBackend::kAuto:
      break;  // resolve_backend never returns kAuto
  }
  GNN4IP_ENSURE(false, "kernel_ops: resolve_backend returned an unusable "
                       "backend (dispatch bug)");
  return scalar_ops;
}

}  // namespace gnn4ip::core
