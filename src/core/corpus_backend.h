// core::CorpusBackend — the resident-corpus seam of the audit layer.
//
// audit::AuditService drives exactly one corpus surface: admissions
// (add/remove/compact), verdict-shaped screening (screen_new_rows),
// ranking (top_k/flag), pair scoring, shard introspection for the
// eviction budgets, snapshot save/restore, and the worker fan-out its
// batch phases ride. This interface names that surface, so the commit
// turnstile, eviction, and snapshot layers run unchanged on top of any
// implementation:
//
//   * core::ShardedCorpus — K EmbeddingStore shards in-process (the
//     reference implementation every other one must match bit-for-bit);
//   * dist::DistCorpus  — the same K shards as remote gnn4ip_shardd
//     processes behind the G4IPWIRE protocol (src/dist/dist_corpus.h).
//
// The contract is behavioural, not just syntactic: every float
// similarity an implementation reports must be the scalar cosine_cell
// value of the same row bytes, and every merged result must use the
// fixed tie-breaks of cosine_kernels.h (flag_order; descending
// similarity then ascending index) — that is what keeps verdicts
// bit-identical across implementations, shard counts, and process
// counts, and the distributed test suite holds DistCorpus to it
// against ShardedCorpus cell by cell.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cosine_kernels.h"
#include "tensor/matrix.h"

namespace gnn4ip::core {

/// One screened candidate: a live corpus row and its *exact* similarity
/// (always computed by the scalar reference kernel, whatever produced
/// the candidacy).
struct ScreenMatch {
  std::size_t index = 0;
  float similarity = 0.0F;
};

/// What screening one incoming row actually needs — the flagged matches
/// and the best match, with exact similarities — instead of the full
/// 1×N matrix. Identical with the int8 prefilter on or off; the
/// scanned/rescored tallies expose how much exact work the prefilter
/// saved (and, for a distributed corpus, how much never crossed the
/// wire).
struct ScreenRow {
  /// Live candidates with similarity > delta, ascending corpus index.
  std::vector<ScreenMatch> flagged;
  /// The most similar live candidate (ties: lowest index); unset when
  /// there are no candidates.
  std::optional<ScreenMatch> best;
  /// Live candidates considered.
  std::size_t scanned = 0;
  /// Candidates whose exact similarity was computed (== scanned on the
  /// exact path; typically far fewer with the prefilter).
  std::size_t rescored = 0;
};

class CorpusBackend {
 public:
  /// "No such row": returned by compact() for removed rows.
  static constexpr std::size_t kNoIndex =
      std::numeric_limits<std::size_t>::max();

  virtual ~CorpusBackend() = default;

  // ---- Global index space (insertion order, dense after compact) --------
  virtual std::size_t add(std::string name,
                          const tensor::Matrix& embedding) = 0;
  virtual void remove(std::size_t i) = 0;
  /// result[old_global] = new_global or kNoIndex, shard-count-invariant.
  virtual std::vector<std::size_t> compact() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t dim() const = 0;
  [[nodiscard]] virtual std::size_t live_count() const = 0;
  [[nodiscard]] virtual bool live(std::size_t i) const = 0;
  [[nodiscard]] virtual const std::string& name(std::size_t i) const = 0;

  // ---- Shard introspection (eviction budgets) ---------------------------
  [[nodiscard]] virtual std::size_t num_shards() const = 0;
  [[nodiscard]] virtual std::size_t shard_of(std::size_t i) const = 0;
  [[nodiscard]] virtual std::size_t shard_live_count(std::size_t s) const = 0;
  [[nodiscard]] virtual std::size_t shard_budget() const = 0;

  // ---- Scoring (bit-identical across implementations) -------------------
  [[nodiscard]] virtual float score(std::size_t i, std::size_t j) const = 0;
  [[nodiscard]] virtual std::vector<ScreenRow> screen_new_rows(
      std::size_t first_new, float delta) const = 0;
  [[nodiscard]] virtual std::vector<PairScore> top_k(std::size_t i,
                                                     std::size_t k) const = 0;
  [[nodiscard]] virtual std::vector<PairScore> flag(float delta) const = 0;

  // ---- Persistence ------------------------------------------------------
  virtual void save(const std::string& dir,
                    std::string_view model_fingerprint) const = 0;

  /// Build a fresh, fully validated corpus of this implementation's kind
  /// from a snapshot directory — the load half of the warm-restart path.
  /// Every malformed-snapshot case throws a distinct typed SnapshotError
  /// before any state (local or remote) is touched; the caller swaps the
  /// returned corpus in only after its own cross-checks pass. The
  /// receiver's configuration (ScorerOptions, shard budget, and for the
  /// distributed corpus its shard connections) carries over.
  [[nodiscard]] virtual std::unique_ptr<CorpusBackend> restored(
      const std::string& dir, std::string_view expected_fingerprint) const = 0;

  /// Run fn(i) for i in [0, count) on this corpus's worker resolution
  /// (owned pool / shared pool / inline — see ScorerOptions::num_threads).
  /// Exposed so the audit layer's batch fan-outs ride the same pool as
  /// the scoring ones.
  virtual void fan_out(std::size_t count,
                       const std::function<void(std::size_t)>& fn) const = 0;
};

}  // namespace gnn4ip::core
