// GNN4IP public facade — the one header downstream users include.
//
// Implements Algorithm 1 of the paper end to end:
//   hw2vec(p):  DFG extraction → GCN propagation → top-k pooling →
//               readout → graph embedding h_G
//   gnn4ip(p1, p2):  cosine similarity of the two embeddings, thresholded
//                    against the decision boundary δ.
//
// Typical use:
//   gnn4ip::PiracyDetector detector;                 // paper hyperparams
//   detector.train_on(graph_entries, train_config);  // or load a model
//   auto verdict = detector.check(verilog_a, verilog_b);
//   if (verdict.is_piracy) ...
#pragma once

#include <string>
#include <vector>

#include "data/corpus.h"
#include "dfg/pipeline.h"
#include "gnn/featurize.h"
#include "gnn/hw2vec.h"
#include "train/dataset.h"
#include "train/trainer.h"

namespace gnn4ip {

/// Convert one corpus item (Verilog text + labels) into a featurized
/// dataset entry. Throws verilog::ParseError on malformed sources.
[[nodiscard]] train::GraphEntry make_graph_entry(
    const data::CorpusItem& item,
    const dfg::PipelineOptions& pipeline = {},
    const gnn::FeaturizeOptions& featurize = {});

[[nodiscard]] std::vector<train::GraphEntry> make_graph_entries(
    const std::vector<data::CorpusItem>& items,
    const dfg::PipelineOptions& pipeline = {},
    const gnn::FeaturizeOptions& featurize = {});

struct DetectorConfig {
  gnn::Hw2VecConfig model;         // paper §IV defaults
  dfg::PipelineOptions pipeline;
  gnn::FeaturizeOptions featurize;
  float delta = 0.5F;              // decision boundary δ
  /// Pair-set construction for train_on; defaults to the paper's
  /// ~3.49:1 different:similar ratio (§IV-A).
  train::PairDataset::PairOptions pair_options{3.49, 97};
};

/// Pair verdict (Alg. 1 output plus the raw score Ŷ).
struct Verdict {
  float similarity = 0.0F;  // Ŷ ∈ [−1, 1]
  bool is_piracy = false;   // Ŷ > δ
};

class PiracyDetector {
 public:
  explicit PiracyDetector(const DetectorConfig& config = {});

  /// Train hw2vec on labeled graph entries; returns the held-out
  /// evaluation (δ is re-tuned on the training split).
  train::EvalResult train_on(std::vector<train::GraphEntry> entries,
                             const train::TrainConfig& train_config = {});

  /// Embed a Verilog source (RTL or netlist).
  [[nodiscard]] tensor::Matrix embed(const std::string& verilog_source);
  [[nodiscard]] tensor::Matrix embed(const train::GraphEntry& entry);

  /// Similarity score Ŷ for two sources (Eq. 6).
  [[nodiscard]] float similarity(const std::string& verilog_a,
                                 const std::string& verilog_b);

  /// Full Alg. 1 check.
  [[nodiscard]] Verdict check(const std::string& verilog_a,
                              const std::string& verilog_b);

  [[nodiscard]] float delta() const { return config_.delta; }
  void set_delta(float delta) { config_.delta = delta; }

  [[nodiscard]] gnn::Hw2Vec& model() { return model_; }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }

  /// Weight persistence (see gnn/model_io.h for the format).
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  DetectorConfig config_;
  gnn::Hw2Vec model_;
};

}  // namespace gnn4ip
