#include "core/snapshot_format.h"

#include <istream>
#include <ostream>

namespace gnn4ip::core {

std::string shard_file_name(std::size_t shard) {
  return "shard-" + std::to_string(shard) + ".bin";
}

void write_u32(std::ostream& os, std::uint32_t value) {
  write_bytes(os, &value, sizeof(value));
}

void write_u64(std::ostream& os, std::uint64_t value) {
  write_bytes(os, &value, sizeof(value));
}

void write_bytes(std::ostream& os, const void* data, std::size_t size) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(size));
}

std::uint32_t read_u32(std::istream& is, const char* field) {
  std::uint32_t value = 0;
  read_bytes(is, &value, sizeof(value), field);
  return value;
}

std::uint64_t read_u64(std::istream& is, const char* field) {
  std::uint64_t value = 0;
  read_bytes(is, &value, sizeof(value), field);
  return value;
}

void read_bytes(std::istream& is, void* data, std::size_t size,
                const char* field) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(is.gcount()) != size) {
    throw SnapshotTruncatedError(
        std::string("snapshot stream truncated while reading ") + field);
  }
}

void expect_eof(std::istream& is, const char* artifact) {
  if (is.peek() != std::istream::traits_type::eof()) {
    throw SnapshotTruncatedError(std::string(artifact) +
                                 ": trailing bytes past the declared "
                                 "payload (mismatched or corrupt file)");
  }
}

}  // namespace gnn4ip::core
