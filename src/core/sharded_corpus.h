// Sharded resident corpus: K EmbeddingStore shards behind one index.
//
// One contiguous N×D cache stops scaling long before the corpus does —
// a single allocation, a single compaction pass, and a single consumer
// own every row. ShardedCorpus splits the resident rows across K
// EmbeddingStore shards by a deterministic hash of the design *name*
// (FNV-1a — stable across runs, platforms, and shard-local history), so
// placement never depends on arrival order, and per-shard work (scoring
// columns, compaction, eviction budgets) can proceed independently.
//
// Callers never see shard-local indices. Every public index is a
// *global* id assigned in insertion order, exactly like a single
// PairwiseScorer: add() returns N, remove(i) tombstones, compact()
// remaps to a dense 0..live−1 numbering in insertion order. Because the
// global index space, the per-cell kernel arithmetic (cosine_kernels.h),
// and the merge tie-breaks are all shard-count-independent,
// score()/score_new_rows()/top_k()/flag() are bit-identical to the
// single-shard PairwiseScorer path for any shard count × worker count —
// the sharding test suite asserts this, and audit::AuditService relies
// on it.
//
// score_new_rows and top_k fan the shards out over util::ThreadPool
// (each shard's task writes only its own entries' cells), so screening
// scales across cores without a determinism tax.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/cosine_kernels.h"
#include "core/embedding_store.h"
#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace gnn4ip::core {

class ShardedCorpus {
 public:
  /// "No such row": returned by compact() for removed rows.
  static constexpr std::size_t kNoIndex = EmbeddingStore::kNoIndex;

  /// `num_shards` stores (≥ 1). `shard_budget` is the per-shard live-row
  /// budget eviction layers enforce (0 = unbounded); the corpus itself
  /// only records and reports it — see audit::AuditService.
  explicit ShardedCorpus(std::size_t num_shards = 1,
                         const ScorerOptions& options = {},
                         std::size_t shard_budget = 0);

  /// Deterministic shard placement: FNV-1a of `name`, mod `num_shards`.
  /// Pure function of the name, so the same design always lands in the
  /// same shard regardless of arrival order or corpus history.
  [[nodiscard]] static std::size_t placement(std::string_view name,
                                             std::size_t num_shards);

  /// Append one design's embedding. Returns its global index (insertion
  /// order, dense after compact()).
  std::size_t add(std::string name, const tensor::Matrix& embedding);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const std::string& name(std::size_t i) const;
  [[nodiscard]] const ScorerOptions& options() const { return options_; }

  /// Zero-copy view of the row behind global index `i` (length dim()).
  /// Invalidated by add/compact, like a vector iterator.
  [[nodiscard]] std::span<const float> row(std::size_t i) const;

  /// Tombstone global row `i` (skipped by top_k/flag, erased by the next
  /// compact; still positionally included by score/score_new_rows).
  void remove(std::size_t i);
  [[nodiscard]] bool live(std::size_t i) const;
  [[nodiscard]] std::size_t live_count() const { return live_count_; }

  /// Compact every shard and renumber the global index space densely in
  /// insertion order. Returns result[old_global] = new_global or
  /// kNoIndex — the same contract as PairwiseScorer::compact(), and the
  /// same mapping values for any shard count.
  std::vector<std::size_t> compact();

  // ---- Shard introspection ----------------------------------------------
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(std::size_t i) const;
  [[nodiscard]] std::size_t shard_live_count(std::size_t s) const;
  [[nodiscard]] std::size_t shard_budget() const { return shard_budget_; }
  [[nodiscard]] const EmbeddingStore& shard(std::size_t s) const;

  // ---- Scoring (bit-identical to the single-shard PairwiseScorer) -------
  /// Single pair of global rows (tombstoned rows still addressable).
  [[nodiscard]] float score(std::size_t i, std::size_t j) const;

  /// Cosine of every row with global index ≥ `first_new` against the
  /// whole corpus, as an (N − first_new) × N matrix — the incremental
  /// screening kernel. Shards fan out over the worker pool; each cell is
  /// written by exactly one worker from the same two rows the
  /// single-shard path reads, so the result is bit-identical to
  /// PairwiseScorer::score_new_rows for any shard count × worker count.
  [[nodiscard]] tensor::Matrix score_new_rows(std::size_t first_new) const;

  /// The k live entries most similar to global row `i` (i itself and
  /// removed rows excluded), descending similarity with ascending-index
  /// tie-break. Per-shard candidate scans fan out over the pool; the
  /// merge comparator is a total order (no two candidates share a global
  /// index), so the merged result is independent of shard count, worker
  /// count, and merge arrival order.
  [[nodiscard]] std::vector<PairScore> top_k(std::size_t i,
                                             std::size_t k) const;

  /// All unordered pairs of live rows (ascending (a, b) global order).
  [[nodiscard]] std::vector<PairScore> score_all_pairs() const;

  /// Live pairs with similarity > delta, in flag_order (descending
  /// similarity, ascending (a, b) tie-break) — bit-identical to
  /// PairwiseScorer::flag. The overload without an argument uses
  /// options().delta.
  [[nodiscard]] std::vector<PairScore> flag(float delta) const;
  [[nodiscard]] std::vector<PairScore> flag() const {
    return flag(options_.delta);
  }

  /// Run fn(i) for i in [0, count) on this corpus's worker resolution:
  /// an explicit num_threads > 1 uses one lazily-spawned owned pool
  /// (screening is a hot loop — no transient pool spawn/join per call),
  /// 0 the process-wide shared pool, 1 runs inline. Exposed so the
  /// audit layer's batch fan-outs ride the same pool as the scoring
  /// ones. Like every scoring call, consumer-thread-only (the lazy
  /// spawn is unsynchronized).
  void fan_out(std::size_t count,
               const std::function<void(std::size_t)>& fn) const;

 private:
  /// Where a global index lives: which shard, and which local row.
  struct EntryRef {
    std::size_t shard = 0;
    std::size_t local = 0;
  };

  ScorerOptions options_;
  std::size_t shard_budget_ = 0;
  std::size_t dim_ = 0;
  std::size_t live_count_ = 0;
  /// Owned workers for explicit num_threads > 1, spawned on first
  /// fan_out (0 defers to ThreadPool::shared(), which needs no owner).
  mutable std::unique_ptr<util::ThreadPool> pool_;
  std::vector<EmbeddingStore> shards_;
  std::vector<EntryRef> entries_;  // global index -> (shard, local)
  // Per shard: local index -> global index (rebuilt by compact()).
  std::vector<std::vector<std::size_t>> globals_;
};

}  // namespace gnn4ip::core
