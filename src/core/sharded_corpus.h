// Sharded resident corpus: K EmbeddingStore shards behind one index.
//
// One contiguous N×D cache stops scaling long before the corpus does —
// a single allocation, a single compaction pass, and a single consumer
// own every row. ShardedCorpus splits the resident rows across K
// EmbeddingStore shards by a deterministic hash of the design *name*
// (FNV-1a — stable across runs, platforms, and shard-local history), so
// placement never depends on arrival order, and per-shard work (scoring
// columns, compaction, eviction budgets) can proceed independently.
//
// Callers never see shard-local indices. Every public index is a
// *global* id assigned in insertion order, exactly like a single
// PairwiseScorer: add() returns N, remove(i) tombstones, compact()
// remaps to a dense 0..live−1 numbering in insertion order. Because the
// global index space, the per-cell kernel arithmetic (cosine_kernels.h),
// and the merge tie-breaks are all shard-count-independent,
// score()/score_new_rows()/top_k()/flag() are bit-identical to the
// single-shard PairwiseScorer path for any shard count × worker count —
// the sharding test suite asserts this, and audit::AuditService relies
// on it.
//
// score_new_rows and top_k fan the shards out over util::ThreadPool
// (each shard's task writes only its own entries' cells), so screening
// scales across cores without a determinism tax.
//
// Concurrency (shard-striped reader/writer locking): the corpus is safe
// for K consumer threads screening concurrent batches.
//   - Reads (score/score_new_rows/top_k/flag/row/name/live/counts) take
//     every touched shard's stripe *shared* — readers overlap freely
//     across consumers.
//   - Admissions (add) and tombstoning (remove) serialize on the global
//     index (the deterministic admission-ticket fold: global ids are
//     assigned in the order admitters win index_mu_) and take only the
//     placed shard's stripe exclusively — an admission blocks readers of
//     its own shard, never the other shards' scans.
//   - compact() takes the global epoch (epoch_mu_ exclusive): it waits
//     out every in-flight reader and admitter, so an index remap can
//     never race a reader holding spans or stale global ids.
// A scan snapshots the corpus size up front and skips rows admitted
// after it started, so concurrent admissions change *when* a row is
// first scored, never the arithmetic of cells already in flight.
// row()/name() return references whose lifetime ends at the next
// compact(), exactly as before; callers racing admissions must treat
// them as invalidated by add() of the same shard too (the audit layer's
// serialized commit point guarantees this).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/corpus_backend.h"
#include "core/cosine_kernels.h"
#include "core/embedding_store.h"
#include "tensor/matrix.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace gnn4ip::core {

class ShardedCorpus final : public CorpusBackend {
 public:
  /// "No such row": returned by compact() for removed rows.
  static constexpr std::size_t kNoIndex = EmbeddingStore::kNoIndex;
  static_assert(kNoIndex == CorpusBackend::kNoIndex);

  /// `num_shards` stores (≥ 1). `shard_budget` is the per-shard live-row
  /// budget eviction layers enforce (0 = unbounded); the corpus itself
  /// only records and reports it — see audit::AuditService.
  explicit ShardedCorpus(std::size_t num_shards = 1,
                         const ScorerOptions& options = {},
                         std::size_t shard_budget = 0);

  /// Deterministic shard placement: FNV-1a of `name`, mod `num_shards`.
  /// Pure function of the name, so the same design always lands in the
  /// same shard regardless of arrival order or corpus history.
  [[nodiscard]] static std::size_t placement(std::string_view name,
                                             std::size_t num_shards);

  /// Append one design's embedding. Returns its global index (insertion
  /// order, dense after compact()). Safe against concurrent adds and
  /// reads: global ids are assigned in index-lock acquisition order (the
  /// admission ticket), and only the placed shard's stripe is taken
  /// exclusively.
  std::size_t add(std::string name, const tensor::Matrix& embedding) override;

  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t dim() const override;
  [[nodiscard]] const std::string& name(std::size_t i) const override;
  [[nodiscard]] const ScorerOptions& options() const { return options_; }

  /// Zero-copy view of the row behind global index `i` (length dim()).
  /// Invalidated by compact(), and by add() into the same shard — like a
  /// vector iterator.
  [[nodiscard]] std::span<const float> row(std::size_t i) const;

  /// Tombstone global row `i` (skipped by top_k/flag, erased by the next
  /// compact; still positionally included by score/score_new_rows).
  void remove(std::size_t i) override;
  [[nodiscard]] bool live(std::size_t i) const override;
  [[nodiscard]] std::size_t live_count() const override;

  /// Compact every shard and renumber the global index space densely in
  /// insertion order. Returns result[old_global] = new_global or
  /// kNoIndex — the same contract as PairwiseScorer::compact(), and the
  /// same mapping values for any shard count. Takes the global epoch:
  /// every in-flight reader and admitter completes first, so no caller
  /// ever observes a half-remapped index space.
  std::vector<std::size_t> compact() override;

  // ---- Shard introspection ----------------------------------------------
  [[nodiscard]] std::size_t num_shards() const override { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(std::size_t i) const override;
  [[nodiscard]] std::size_t shard_live_count(std::size_t s) const override;
  [[nodiscard]] std::size_t shard_budget() const override { return shard_budget_; }
  [[nodiscard]] const EmbeddingStore& shard(std::size_t s) const;

  // ---- Scoring (bit-identical to the single-shard PairwiseScorer) -------
  /// Single pair of global rows (tombstoned rows still addressable).
  [[nodiscard]] float score(std::size_t i, std::size_t j) const override;

  /// Cosine of every row with global index ≥ `first_new` against the
  /// whole corpus, as an (N − first_new) × N matrix — the incremental
  /// screening kernel. Shards fan out over the worker pool; each cell is
  /// written by exactly one worker from the same two rows the
  /// single-shard path reads, so the result is bit-identical to
  /// PairwiseScorer::score_new_rows for any shard count × worker count.
  /// N snapshots at entry; rows admitted concurrently are not scored.
  [[nodiscard]] tensor::Matrix score_new_rows(std::size_t first_new) const;

  /// Verdict-shaped screening: for every row with global index ≥
  /// `first_new`, the flagged matches (exact similarity > delta) and the
  /// best match among *live* rows with global index < first_new. The
  /// similarities are the exact scalar-kernel values — bit-identical to
  /// the matching cells of score_new_rows — whether the corpus screens
  /// exactly or through the int8 prefilter
  /// (options().int8_prefilter): prefilter bounds are rigorous, so a
  /// candidate is pruned only when it provably cannot flag or be best,
  /// and every reported similarity is an exact rescore.
  [[nodiscard]] std::vector<ScreenRow> screen_new_rows(
      std::size_t first_new, float delta) const override;

  /// The k live entries most similar to global row `i` (i itself and
  /// removed rows excluded), descending similarity with ascending-index
  /// tie-break. Per-shard candidate scans fan out over the pool; the
  /// merge comparator is a total order (no two candidates share a global
  /// index), so the merged result is independent of shard count, worker
  /// count, and merge arrival order. Candidates admitted concurrently
  /// (global id past the entry snapshot) are excluded.
  [[nodiscard]] std::vector<PairScore> top_k(std::size_t i,
                                             std::size_t k) const override;

  /// All unordered pairs of live rows (ascending (a, b) global order).
  [[nodiscard]] std::vector<PairScore> score_all_pairs() const;

  /// Live pairs with similarity > delta, in flag_order (descending
  /// similarity, ascending (a, b) tie-break) — bit-identical to
  /// PairwiseScorer::flag. The overload without an argument uses
  /// options().delta.
  [[nodiscard]] std::vector<PairScore> flag(float delta) const override;
  [[nodiscard]] std::vector<PairScore> flag() const {
    return flag(options_.delta);
  }

  // ---- Persistence (snapshot directory: manifest + one file per shard) --
  /// Write the corpus to directory `dir` (created if absent): one
  /// binary shard file per shard plus a text manifest recording the
  /// shard count, the placement scheme, the global index order, and
  /// `model_fingerprint` (the embedder that produced these rows — see
  /// gnn::model_fingerprint). Takes the global epoch exclusively, so a
  /// snapshot is always a fully-admitted, fully-compacted-or-not state,
  /// never a half-applied one. Throws SnapshotIoError when files cannot
  /// be written.
  void save(const std::string& dir, std::string_view model_fingerprint) const override;

  /// Replace this corpus's contents with a snapshot written by save().
  /// Adopts the snapshot's shard count and dim; keeps the configured
  /// options() and shard_budget(). With a non-empty
  /// `expected_fingerprint`, a snapshot recorded against a different
  /// embedder is rejected (SnapshotFingerprintError). All parsing and
  /// validation happens before the corpus is touched, so on any typed
  /// SnapshotError the in-memory state is unchanged. Not safe
  /// concurrently with admissions (callers quiesce first — the audit
  /// layer runs it as a serialized commit).
  void restore(const std::string& dir, std::string_view expected_fingerprint);

  /// The model fingerprint recorded in a snapshot directory's manifest
  /// (validated for magic/version only) — lets a deployment check
  /// compatibility before committing to a full restore.
  [[nodiscard]] static std::string snapshot_fingerprint(
      const std::string& dir);

  /// Run fn(i) for i in [0, count) on this corpus's worker resolution:
  /// an explicit num_threads > 1 uses one lazily-spawned owned pool
  /// (screening is a hot loop — no transient pool spawn/join per call),
  /// 0 the process-wide shared pool, 1 runs inline. Exposed so the
  /// audit layer's batch fan-outs ride the same pool as the scoring
  /// ones. Safe from concurrent consumers (lazy spawn is guarded;
  /// concurrent batches serialize inside ThreadPool::parallel_for).
  void fan_out(std::size_t count,
               const std::function<void(std::size_t)>& fn) const override;

  /// A fresh single-shard ShardedCorpus restored from `dir` (it adopts
  /// the snapshot's shard count and dim during restore(); options and
  /// shard budget carry over from this corpus). The CorpusBackend load
  /// seam — every typed SnapshotError propagates with nothing swapped.
  [[nodiscard]] std::unique_ptr<CorpusBackend> restored(
      const std::string& dir,
      std::string_view expected_fingerprint) const override;

 private:
  /// Where a global index lives: which shard, and which local row.
  struct EntryRef {
    std::size_t shard = 0;
    std::size_t local = 0;
  };

  /// RAII shared hold of *every* stripe, ascending shard id — the
  /// whole-corpus read lock of the scanning paths. A dynamic lock set
  /// is inexpressible in the capability analysis (hence the _unchecked
  /// acquisitions); the runtime lock-order validator still checks the
  /// ascending stripe ranks on every acquisition.
  class StripeGuard {
   public:
    explicit StripeGuard(
        const std::vector<std::unique_ptr<util::SharedMutex>>& stripes) {
      locked_.reserve(stripes.size());
      for (const std::unique_ptr<util::SharedMutex>& s : stripes) {
        s->lock_shared_unchecked();
        locked_.push_back(s.get());
      }
    }
    ~StripeGuard() {
      for (auto it = locked_.rbegin(); it != locked_.rend(); ++it) {
        (*it)->unlock_shared_unchecked();
      }
    }
    StripeGuard(const StripeGuard&) = delete;
    StripeGuard& operator=(const StripeGuard&) = delete;

   private:
    std::vector<util::SharedMutex*> locked_;
  };

  /// Take every shard stripe shared, ascending — the whole-corpus read
  /// lock used by the scanning paths (consistent order with admitters,
  /// which take index_mu_ then one stripe, so no deadlock).
  [[nodiscard]] StripeGuard lock_all_stripes_shared() const;

  /// row() without locks — callers hold the stripes they touch.
  [[nodiscard]] std::span<const float> row_nolock(const EntryRef& e) const {
    return shards_[e.shard].row(e.local);
  }

  /// flag(delta) through the int8 bound gate (chosen by flag() when
  /// options().int8_prefilter is set) — bit-identical flagged set.
  [[nodiscard]] std::vector<PairScore> flag_prefiltered(float delta) const;

  ScorerOptions options_;
  std::size_t shard_budget_ = 0;

  /// Global epoch: shared by every operation, exclusive by compact().
  mutable util::SharedMutex epoch_mu_{util::lock_rank::kEpoch};
  /// Guards the global index space (entries_, live_count_, dim_):
  /// shared by readers, exclusive (briefly) by add/remove. Acquisition
  /// order of the exclusive lock is the deterministic admission ticket.
  mutable util::SharedMutex index_mu_{util::lock_rank::kIndex};
  /// One reader/writer stripe per shard, guarding that shard's store
  /// and its local→global table. Allocated once (SharedMutex is
  /// immovable); never resized after construction. Ranked ascending by
  /// shard id (lock_rank::stripe), so the validator enforces the
  /// documented ascending acquisition order.
  mutable std::vector<std::unique_ptr<util::SharedMutex>> stripes_;
  /// Guards the lazy spawn of pool_ (concurrent consumers may race the
  /// first fan_out).
  mutable util::Mutex pool_mu_{util::lock_rank::kPoolSpawn};

  std::size_t dim_ GNN4IP_GUARDED_BY(index_mu_) = 0;
  std::size_t live_count_ GNN4IP_GUARDED_BY(index_mu_) = 0;
  /// Owned workers for explicit num_threads > 1, spawned on first
  /// fan_out (0 defers to ThreadPool::shared(), which needs no owner).
  mutable std::unique_ptr<util::ThreadPool> pool_ GNN4IP_GUARDED_BY(pool_mu_);
  /// shards_ and globals_ are guarded by the *stripes*: shard s's store
  /// and its local→global table are written only under stripe s
  /// exclusive (or the epoch exclusive, which quiesces every stripe
  /// holder) and read under stripe s shared. A per-element dynamic
  /// guard is inexpressible in the capability analysis, so these stay
  /// unannotated — the stripe ranks keep the runtime validator's
  /// coverage.
  std::vector<EmbeddingStore> shards_;
  std::vector<EntryRef> entries_
      GNN4IP_GUARDED_BY(index_mu_);  // global index -> (shard, local)
  // Per shard: local index -> global index (appended under the shard's
  // stripe, rebuilt by compact()). Stripe-guarded like shards_ (above).
  std::vector<std::vector<std::size_t>> globals_;
};

}  // namespace gnn4ip::core
