#include "core/gnn4ip.h"

#include <algorithm>
#include <cmath>

#include "gnn/model_io.h"

namespace gnn4ip {

train::GraphEntry make_graph_entry(const data::CorpusItem& item,
                                   const dfg::PipelineOptions& pipeline,
                                   const gnn::FeaturizeOptions& featurize) {
  train::GraphEntry entry;
  entry.name = item.name;
  entry.design = item.design;
  const graph::Digraph g = dfg::extract_dfg(item.verilog, pipeline);
  entry.tensors = gnn::featurize(g, featurize);
  return entry;
}

std::vector<train::GraphEntry> make_graph_entries(
    const std::vector<data::CorpusItem>& items,
    const dfg::PipelineOptions& pipeline,
    const gnn::FeaturizeOptions& featurize) {
  std::vector<train::GraphEntry> entries;
  entries.reserve(items.size());
  for (const data::CorpusItem& item : items) {
    entries.push_back(make_graph_entry(item, pipeline, featurize));
  }
  return entries;
}

PiracyDetector::PiracyDetector(const DetectorConfig& config)
    : config_(config), model_(config.model) {}

train::EvalResult PiracyDetector::train_on(
    std::vector<train::GraphEntry> entries,
    const train::TrainConfig& train_config) {
  const train::PairDataset dataset =
      train::PairDataset::all_pairs(std::move(entries),
                                    config_.pair_options);
  train::Trainer trainer(model_, dataset, train_config);
  trainer.fit();
  train::EvalResult result = trainer.evaluate();
  config_.delta = result.delta;
  return result;
}

tensor::Matrix PiracyDetector::embed(const std::string& verilog_source) {
  const graph::Digraph g = dfg::extract_dfg(verilog_source, config_.pipeline);
  const gnn::GraphTensors tensors = gnn::featurize(g, config_.featurize);
  return model_.embed_inference(tensors);
}

tensor::Matrix PiracyDetector::embed(const train::GraphEntry& entry) {
  return model_.embed_inference(entry.tensors);
}

float PiracyDetector::similarity(const std::string& verilog_a,
                                 const std::string& verilog_b) {
  const tensor::Matrix ha = embed(verilog_a);
  const tensor::Matrix hb = embed(verilog_b);
  const float ab = tensor::dot(ha, hb);
  const float denom =
      std::max(ha.frobenius_norm() * hb.frobenius_norm(), 1e-8F);
  // Clamp float rounding so Ŷ stays within the documented [-1, 1].
  return std::clamp(ab / denom, -1.0F, 1.0F);
}

Verdict PiracyDetector::check(const std::string& verilog_a,
                              const std::string& verilog_b) {
  Verdict v;
  v.similarity = similarity(verilog_a, verilog_b);
  v.is_piracy = v.similarity > config_.delta;
  return v;
}

void PiracyDetector::save(const std::string& path) {
  gnn::save_model_file(path, model_);
}

void PiracyDetector::load(const std::string& path) {
  model_ = gnn::load_model_file(path);
  config_.model = model_.config();
}

}  // namespace gnn4ip
