#include "core/embedding_store.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/snapshot_format.h"
#include "util/contract.h"

namespace gnn4ip::core {

std::size_t EmbeddingStore::add(std::string name,
                                const tensor::Matrix& embedding) {
  GNN4IP_ENSURE(!embedding.empty(), "EmbeddingStore: empty embedding");
  if (dim_ == 0) {
    dim_ = embedding.size();
  } else {
    GNN4IP_ENSURE(embedding.size() == dim_,
                  "EmbeddingStore: embedding dim " +
                      std::to_string(embedding.size()) + " != corpus dim " +
                      std::to_string(dim_));
  }
  const std::span<const float> flat = embedding.data();
  data_.insert(data_.end(), flat.begin(), flat.end());
  names_.push_back(std::move(name));
  dead_.push_back(false);
  ++live_count_;
  return names_.size() - 1;
}

const std::string& EmbeddingStore::name(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: index out of range");
  return names_[i];
}

std::span<const float> EmbeddingStore::row(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: row index out of range");
  return std::span<const float>(data_).subspan(i * dim_, dim_);
}

void EmbeddingStore::remove(std::size_t i) {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: remove out of range");
  GNN4IP_ENSURE(!dead_[i], "EmbeddingStore: row already removed");
  dead_[i] = true;
  --live_count_;
}

bool EmbeddingStore::live(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: index out of range");
  return !dead_[i];
}

std::vector<std::size_t> EmbeddingStore::compact() {
  std::vector<std::size_t> mapping(names_.size(), kNoIndex);
  std::size_t next = 0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (dead_[i]) continue;
    mapping[i] = next;
    if (next != i) {
      names_[next] = std::move(names_[i]);
      std::copy(data_.begin() + static_cast<std::ptrdiff_t>(i * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>(next * dim_));
    }
    ++next;
  }
  names_.resize(next);
  data_.resize(next * dim_);
  dead_.assign(next, false);
  live_count_ = next;
  return mapping;
}

namespace {

/// Names past this length are treated as corruption: a flipped bit in
/// a length prefix must not turn into a multi-gigabyte allocation.
constexpr std::uint64_t kMaxNameLength = 1u << 20;

}  // namespace

void EmbeddingStore::save(std::ostream& os) const {
  // Fixed-offset header (docs/FORMATS.md): magic, version, byte-order
  // mark, dim, row count, live count — then the float block starts at
  // byte 40, 8-byte-aligned, so a loader may mmap it in place.
  write_bytes(os, kShardMagic, sizeof(kShardMagic));
  write_u32(os, kShardFormatVersion);
  write_u32(os, kByteOrderMark);
  write_u64(os, dim_);
  write_u64(os, names_.size());
  write_u64(os, live_count_);
  write_bytes(os, data_.data(), data_.size() * sizeof(float));
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const std::uint8_t flag = dead_[i] ? 0 : 1;
    write_bytes(os, &flag, 1);
  }
  for (const std::string& name : names_) {
    write_u64(os, name.size());
    write_bytes(os, name.data(), name.size());
  }
}

EmbeddingStore EmbeddingStore::load(std::istream& is,
                                    std::size_t expected_dim) {
  char magic[sizeof(kShardMagic)] = {};
  read_bytes(is, magic, sizeof(magic), "shard magic");
  if (std::memcmp(magic, kShardMagic, sizeof(kShardMagic)) != 0) {
    throw SnapshotMagicError(
        "not a gnn4ip shard file (missing G4IPSHRD magic)");
  }
  const std::uint32_t version = read_u32(is, "shard format version");
  if (version != kShardFormatVersion) {
    throw SnapshotVersionError(
        "unsupported shard format version " + std::to_string(version) +
        "; this build reads v" + std::to_string(kShardFormatVersion));
  }
  const std::uint32_t bom = read_u32(is, "shard byte-order mark");
  if (bom != kByteOrderMark) {
    throw SnapshotByteOrderError(
        "shard file was written on a host with a different byte order");
  }
  const std::uint64_t dim = read_u64(is, "shard dim");
  const std::uint64_t rows = read_u64(is, "shard row count");
  const std::uint64_t live = read_u64(is, "shard live count");
  if (expected_dim != 0 && rows != 0 && dim != expected_dim) {
    throw SnapshotDimError("shard dim " + std::to_string(dim) +
                           " does not match the expected dim " +
                           std::to_string(expected_dim) + " (dim drift)");
  }
  if (live > rows || (rows != 0 && dim == 0)) {
    throw SnapshotManifestError(
        "shard header is inconsistent (live count " + std::to_string(live) +
        " of " + std::to_string(rows) + " rows, dim " + std::to_string(dim) +
        ")");
  }
  EmbeddingStore store;
  store.dim_ = dim;
  store.data_.resize(rows * dim);
  read_bytes(is, store.data_.data(), store.data_.size() * sizeof(float),
             "shard row block");
  store.dead_.resize(rows);
  std::size_t counted_live = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint8_t flag = 0;
    read_bytes(is, &flag, 1, "shard live flags");
    store.dead_[i] = flag == 0;
    counted_live += flag != 0 ? 1 : 0;
  }
  if (counted_live != live) {
    throw SnapshotManifestError(
        "shard header declares " + std::to_string(live) +
        " live rows but the flags mark " + std::to_string(counted_live));
  }
  store.live_count_ = counted_live;
  store.names_.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    const std::uint64_t length = read_u64(is, "shard name length");
    if (length > kMaxNameLength) {
      throw SnapshotTruncatedError(
          "implausible name length " + std::to_string(length) +
          " in shard name table (corrupt file)");
    }
    std::string name(length, '\0');
    read_bytes(is, name.data(), length, "shard name table");
    store.names_.push_back(std::move(name));
  }
  expect_eof(is, "shard file");
  return store;
}

tensor::Matrix EmbeddingStore::embedding_matrix() const {
  tensor::Matrix m(names_.size(), dim_);
  std::copy(data_.begin(), data_.end(), m.data().begin());
  return m;
}

}  // namespace gnn4ip::core
