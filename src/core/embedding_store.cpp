#include "core/embedding_store.h"

#include <algorithm>

#include "util/contract.h"

namespace gnn4ip::core {

std::size_t EmbeddingStore::add(std::string name,
                                const tensor::Matrix& embedding) {
  GNN4IP_ENSURE(!embedding.empty(), "EmbeddingStore: empty embedding");
  if (dim_ == 0) {
    dim_ = embedding.size();
  } else {
    GNN4IP_ENSURE(embedding.size() == dim_,
                  "EmbeddingStore: embedding dim " +
                      std::to_string(embedding.size()) + " != corpus dim " +
                      std::to_string(dim_));
  }
  const std::span<const float> flat = embedding.data();
  data_.insert(data_.end(), flat.begin(), flat.end());
  names_.push_back(std::move(name));
  dead_.push_back(false);
  ++live_count_;
  return names_.size() - 1;
}

const std::string& EmbeddingStore::name(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: index out of range");
  return names_[i];
}

std::span<const float> EmbeddingStore::row(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: row index out of range");
  return std::span<const float>(data_).subspan(i * dim_, dim_);
}

void EmbeddingStore::remove(std::size_t i) {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: remove out of range");
  GNN4IP_ENSURE(!dead_[i], "EmbeddingStore: row already removed");
  dead_[i] = true;
  --live_count_;
}

bool EmbeddingStore::live(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: index out of range");
  return !dead_[i];
}

std::vector<std::size_t> EmbeddingStore::compact() {
  std::vector<std::size_t> mapping(names_.size(), kNoIndex);
  std::size_t next = 0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (dead_[i]) continue;
    mapping[i] = next;
    if (next != i) {
      names_[next] = std::move(names_[i]);
      std::copy(data_.begin() + static_cast<std::ptrdiff_t>(i * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>(next * dim_));
    }
    ++next;
  }
  names_.resize(next);
  data_.resize(next * dim_);
  dead_.assign(next, false);
  live_count_ = next;
  return mapping;
}

tensor::Matrix EmbeddingStore::embedding_matrix() const {
  tensor::Matrix m(names_.size(), dim_);
  std::copy(data_.begin(), data_.end(), m.data().begin());
  return m;
}

}  // namespace gnn4ip::core
