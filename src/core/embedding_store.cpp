#include "core/embedding_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/snapshot_format.h"
#include "util/contract.h"

namespace gnn4ip::core {

void EmbeddingStore::requantize_row(std::size_t i) {
  const std::span<const float> x =
      std::span<const float>(data_).subspan(i * dim_, dim_);
  norms_[i] = row_norm(x);
  gate_normd_[i] = static_cast<double>(norms_[i]);
  float max_abs = 0.0F;
  for (const float v : x) max_abs = std::max(max_abs, std::fabs(v));
  const float scale = max_abs / 127.0F;
  scales_[i] = scale;
  gate_scale_[i] = static_cast<double>(scale);
  std::int8_t* q = qdata_.data() + i * dim_;
  if (scale == 0.0F) {
    std::fill(q, q + dim_, std::int8_t{0});
    qnorms_[i] = 0.0F;
    enorms_[i] = 0.0F;
    gate_sq_[i] = 0.0;
    gate_e_[i] = 0.0;
    return;
  }
  // Round-to-nearest (half away from zero — rounding-mode independent,
  // so a loaded snapshot rebuilds the same bytes on any host), then the
  // residual/quant norms in double with a small upward margin: they
  // only need to be *upper* bounds for the enclosure to stay rigorous.
  double q_sq = 0.0;
  double e_sq = 0.0;
  for (std::size_t k = 0; k < dim_; ++k) {
    const long r = std::lround(x[k] / scale);
    const long clamped = std::clamp(r, -127L, 127L);
    q[k] = static_cast<std::int8_t>(clamped);
    // lint:allow(fp-accum): sequential k-order fold over one row; no
    // schedule can reorder it.
    q_sq += static_cast<double>(clamped) * static_cast<double>(clamped);
    const double e = static_cast<double>(x[k]) -
                     static_cast<double>(scale) * static_cast<double>(clamped);
    // lint:allow(fp-accum): same sequential fold as q_sq above.
    e_sq += e * e;
  }
  qnorms_[i] = static_cast<float>(std::sqrt(q_sq) * (1.0 + 1e-6));
  enorms_[i] = static_cast<float>(std::sqrt(e_sq) * (1.0 + 1e-6) + 1e-30);
  // Keep the gate SoA in lock-step with make_quant_gate's arithmetic on
  // the float values above — quant_stats() must agree to the bit with a
  // gate built from quant_view(i).
  gate_sq_[i] = static_cast<double>(scales_[i]) * qnorms_[i];
  gate_e_[i] = enorms_[i];
}

std::size_t EmbeddingStore::add(std::string name,
                                const tensor::Matrix& embedding) {
  GNN4IP_ENSURE(!embedding.empty(), "EmbeddingStore: empty embedding");
  if (dim_ == 0) {
    dim_ = embedding.size();
  } else {
    GNN4IP_ENSURE(embedding.size() == dim_,
                  "EmbeddingStore: embedding dim " +
                      std::to_string(embedding.size()) + " != corpus dim " +
                      std::to_string(dim_));
  }
  const std::span<const float> flat = embedding.data();
  data_.insert(data_.end(), flat.begin(), flat.end());
  names_.push_back(std::move(name));
  dead_.push_back(false);
  ++live_count_;
  const std::size_t index = names_.size() - 1;
  qdata_.resize(qdata_.size() + dim_);
  scales_.push_back(0.0F);
  norms_.push_back(0.0F);
  qnorms_.push_back(0.0F);
  enorms_.push_back(0.0F);
  gate_scale_.push_back(0.0);
  gate_sq_.push_back(0.0);
  gate_e_.push_back(0.0);
  gate_normd_.push_back(0.0);
  requantize_row(index);
  return index;
}

float EmbeddingStore::norm(std::size_t i) const {
  GNN4IP_ENSURE(i < norms_.size(), "EmbeddingStore: index out of range");
  return norms_[i];
}

std::span<const std::int8_t> EmbeddingStore::qrow(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: row index out of range");
  return std::span<const std::int8_t>(qdata_).subspan(i * dim_, dim_);
}

QuantRowView EmbeddingStore::quant_view(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: row index out of range");
  return {qdata_.data() + i * dim_, scales_[i], qnorms_[i], enorms_[i],
          norms_[i]};
}

const std::string& EmbeddingStore::name(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: index out of range");
  return names_[i];
}

std::span<const float> EmbeddingStore::row(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: row index out of range");
  return std::span<const float>(data_).subspan(i * dim_, dim_);
}

void EmbeddingStore::remove(std::size_t i) {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: remove out of range");
  GNN4IP_ENSURE(!dead_[i], "EmbeddingStore: row already removed");
  dead_[i] = true;
  --live_count_;
}

bool EmbeddingStore::live(std::size_t i) const {
  GNN4IP_ENSURE(i < names_.size(), "EmbeddingStore: index out of range");
  return !dead_[i];
}

std::vector<std::size_t> EmbeddingStore::compact() {
  std::vector<std::size_t> mapping(names_.size(), kNoIndex);
  std::size_t next = 0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (dead_[i]) continue;
    mapping[i] = next;
    if (next != i) {
      names_[next] = std::move(names_[i]);
      std::copy(data_.begin() + static_cast<std::ptrdiff_t>(i * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim_),
                data_.begin() + static_cast<std::ptrdiff_t>(next * dim_));
      // The quant tier moves with its row — no requantization, so the
      // tier stays byte-identical to what add() derived.
      std::copy(qdata_.begin() + static_cast<std::ptrdiff_t>(i * dim_),
                qdata_.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim_),
                qdata_.begin() + static_cast<std::ptrdiff_t>(next * dim_));
      scales_[next] = scales_[i];
      norms_[next] = norms_[i];
      qnorms_[next] = qnorms_[i];
      enorms_[next] = enorms_[i];
      gate_scale_[next] = gate_scale_[i];
      gate_sq_[next] = gate_sq_[i];
      gate_e_[next] = gate_e_[i];
      gate_normd_[next] = gate_normd_[i];
    }
    ++next;
  }
  names_.resize(next);
  data_.resize(next * dim_);
  dead_.assign(next, false);
  qdata_.resize(next * dim_);
  scales_.resize(next);
  norms_.resize(next);
  qnorms_.resize(next);
  enorms_.resize(next);
  gate_scale_.resize(next);
  gate_sq_.resize(next);
  gate_e_.resize(next);
  gate_normd_.resize(next);
  live_count_ = next;
  return mapping;
}

namespace {

/// Names past this length are treated as corruption: a flipped bit in
/// a length prefix must not turn into a multi-gigabyte allocation.
constexpr std::uint64_t kMaxNameLength = 1u << 20;

}  // namespace

void EmbeddingStore::save(std::ostream& os) const {
  // Fixed-offset header (docs/FORMATS.md): magic, version, byte-order
  // mark, dim, row count, live count — then the float block starts at
  // byte 40, 8-byte-aligned, so a loader may mmap it in place.
  write_bytes(os, kShardMagic, sizeof(kShardMagic));
  write_u32(os, kShardFormatVersion);
  write_u32(os, kByteOrderMark);
  write_u64(os, dim_);
  write_u64(os, names_.size());
  write_u64(os, live_count_);
  write_bytes(os, data_.data(), data_.size() * sizeof(float));
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const std::uint8_t flag = dead_[i] ? 0 : 1;
    write_bytes(os, &flag, 1);
  }
  for (const std::string& name : names_) {
    write_u64(os, name.size());
    write_bytes(os, name.data(), name.size());
  }
  // Optional quantized-tier section: tag, per-row scales, int8 block.
  // Derived norms are recomputed on load (cheaper than their bytes);
  // scales and q are written so a loader can cross-check the tier
  // against a deterministic rebuild and reject a tampered section.
  write_bytes(os, kQuantSectionTag, sizeof(kQuantSectionTag));
  write_bytes(os, scales_.data(), scales_.size() * sizeof(float));
  write_bytes(os, qdata_.data(), qdata_.size());
}

EmbeddingStore EmbeddingStore::load(std::istream& is,
                                    std::size_t expected_dim) {
  char magic[sizeof(kShardMagic)] = {};
  read_bytes(is, magic, sizeof(magic), "shard magic");
  if (std::memcmp(magic, kShardMagic, sizeof(kShardMagic)) != 0) {
    throw SnapshotMagicError(
        "not a gnn4ip shard file (missing G4IPSHRD magic)");
  }
  const std::uint32_t version = read_u32(is, "shard format version");
  if (version != kShardFormatVersion) {
    throw SnapshotVersionError(
        "unsupported shard format version " + std::to_string(version) +
        "; this build reads v" + std::to_string(kShardFormatVersion));
  }
  const std::uint32_t bom = read_u32(is, "shard byte-order mark");
  if (bom != kByteOrderMark) {
    throw SnapshotByteOrderError(
        "shard file was written on a host with a different byte order");
  }
  const std::uint64_t dim = read_u64(is, "shard dim");
  const std::uint64_t rows = read_u64(is, "shard row count");
  const std::uint64_t live = read_u64(is, "shard live count");
  if (expected_dim != 0 && rows != 0 && dim != expected_dim) {
    throw SnapshotDimError("shard dim " + std::to_string(dim) +
                           " does not match the expected dim " +
                           std::to_string(expected_dim) + " (dim drift)");
  }
  if (live > rows || (rows != 0 && dim == 0)) {
    throw SnapshotManifestError(
        "shard header is inconsistent (live count " + std::to_string(live) +
        " of " + std::to_string(rows) + " rows, dim " + std::to_string(dim) +
        ")");
  }
  EmbeddingStore store;
  store.dim_ = dim;
  store.data_.resize(rows * dim);
  read_bytes(is, store.data_.data(), store.data_.size() * sizeof(float),
             "shard row block");
  store.dead_.resize(rows);
  std::size_t counted_live = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint8_t flag = 0;
    read_bytes(is, &flag, 1, "shard live flags");
    store.dead_[i] = flag == 0;
    counted_live += flag != 0 ? 1 : 0;
  }
  if (counted_live != live) {
    throw SnapshotManifestError(
        "shard header declares " + std::to_string(live) +
        " live rows but the flags mark " + std::to_string(counted_live));
  }
  store.live_count_ = counted_live;
  store.names_.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    const std::uint64_t length = read_u64(is, "shard name length");
    if (length > kMaxNameLength) {
      throw SnapshotTruncatedError(
          "implausible name length " + std::to_string(length) +
          " in shard name table (corrupt file)");
    }
    std::string name(length, '\0');
    read_bytes(is, name.data(), length, "shard name table");
    store.names_.push_back(std::move(name));
  }
  // Rebuild the quant tier deterministically from the float rows — the
  // floats round-tripped as exact bytes, so this reproduces the saved
  // tier byte-for-byte.
  store.qdata_.resize(rows * dim);
  store.scales_.resize(rows);
  store.norms_.resize(rows);
  store.qnorms_.resize(rows);
  store.enorms_.resize(rows);
  store.gate_scale_.resize(rows);
  store.gate_sq_.resize(rows);
  store.gate_e_.resize(rows);
  store.gate_normd_.resize(rows);
  for (std::uint64_t i = 0; i < rows; ++i) store.requantize_row(i);
  // Optional QNT8 section. Absent (EOF right here): a pre-tier file —
  // the rebuild above already stands in. Present: it must match the
  // rebuild exactly, so a poisoned quant block (which would silently
  // skew every pruning bound) is a loud typed rejection. Anything else
  // after the name table is trailing garbage.
  char tag[sizeof(kQuantSectionTag)] = {};
  is.read(tag, sizeof(tag));
  if (is.gcount() == 0 && is.eof()) return store;
  if (is.gcount() != static_cast<std::streamsize>(sizeof(tag)) ||
      std::memcmp(tag, kQuantSectionTag, sizeof(tag)) != 0) {
    throw SnapshotTruncatedError(
        "shard file carries trailing bytes after the name table that are "
        "not a QNT8 section");
  }
  std::vector<float> scales(rows);
  std::vector<std::int8_t> qdata(rows * dim);
  read_bytes(is, scales.data(), scales.size() * sizeof(float),
             "shard quant scales");
  read_bytes(is, qdata.data(), qdata.size(), "shard quant rows");
  if (rows != 0 &&
      (std::memcmp(scales.data(), store.scales_.data(),
                   scales.size() * sizeof(float)) != 0 ||
       std::memcmp(qdata.data(), store.qdata_.data(), qdata.size()) != 0)) {
    throw SnapshotManifestError(
        "shard quantized section disagrees with the float rows (corrupt or "
        "tampered QNT8 block)");
  }
  expect_eof(is, "shard file");
  return store;
}

tensor::Matrix EmbeddingStore::embedding_matrix() const {
  tensor::Matrix m(names_.size(), dim_);
  std::copy(data_.begin(), data_.end(), m.data().begin());
  return m;
}

}  // namespace gnn4ip::core
