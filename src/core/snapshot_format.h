// Corpus snapshot format v1: constants, error taxonomy, and the little
// primitive readers/writers every snapshot loader shares.
//
// A durable resident corpus is two kinds of artifact (byte-level spec
// in docs/FORMATS.md):
//
//   * one *binary shard file* per EmbeddingStore — fixed-offset header
//     (magic, version, byte-order mark, dim, row count, live count),
//     then the row-major float block 8-byte-aligned at a known offset
//     (mmap-friendly), then per-row live flags, then a length-prefixed
//     name table;
//   * one *text manifest* per corpus — shard count, placement scheme,
//     global index order, and the embedder's fingerprint, line-oriented
//     like the model IO v2 format so it stays reviewable in a diff.
//
// The persistence boundary is exactly what an attacker who can touch
// disk poisons, so loaders never "best-effort" a damaged snapshot: every
// failure mode is a *distinct typed error* (bad magic, unsupported
// version, foreign byte order, dim drift, truncation, manifest/shard
// disagreement, wrong embedder fingerprint), and a failed load leaves
// the in-memory corpus untouched.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace gnn4ip::core {

// ---- Format constants ----------------------------------------------------

/// 8-byte magic opening every binary shard file (no terminating NUL).
inline constexpr char kShardMagic[8] = {'G', '4', 'I', 'P',
                                        'S', 'H', 'R', 'D'};
/// Binary shard format version this build writes and reads.
inline constexpr std::uint32_t kShardFormatVersion = 1;
/// Byte-order mark stored after the version: reads back as a different
/// value on a foreign-endian host, turning silent float garbage into a
/// typed rejection.
inline constexpr std::uint32_t kByteOrderMark = 0x0A0B0C0Du;
/// 4-byte tag opening the *optional* quantized-tier section appended
/// after the name table of a v1 shard file: per-row float scales, then
/// the int8 row block. Files without the section load fine (the tier is
/// rebuilt from the float rows); files with it are verified against a
/// deterministic rebuild byte-for-byte.
inline constexpr char kQuantSectionTag[4] = {'Q', 'N', 'T', '8'};

/// Magic token opening the corpus manifest, followed by " v<version>".
inline constexpr const char* kManifestMagic = "gnn4ip-corpus";
/// Manifest format version this build writes and reads.
inline constexpr int kManifestFormatVersion = 1;
/// The only placement scheme v1 defines (ShardedCorpus::placement:
/// FNV-1a of the name, mod shard count). Recorded in the manifest so a
/// future scheme cannot be silently misread as this one.
inline constexpr const char* kPlacementScheme = "fnv1a-mod";

/// Magic token opening the audit-service state file ("service.txt").
inline constexpr const char* kServiceMagic = "gnn4ip-service";
/// Service state format version this build writes and reads.
inline constexpr int kServiceFormatVersion = 1;

// ---- Snapshot directory layout -------------------------------------------
// A corpus snapshot is one directory: the manifest, K shard files, and
// (when saved through audit::AuditService) the service state file.

inline constexpr const char* kManifestFileName = "manifest.txt";
inline constexpr const char* kServiceFileName = "service.txt";
/// "shard-<s>.bin" — the binary shard file of shard `s`.
[[nodiscard]] std::string shard_file_name(std::size_t shard);

// ---- Error taxonomy ------------------------------------------------------

/// Base of every snapshot rejection — catchable as one family when the
/// caller only cares that the snapshot is unusable.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// The stream does not start with the expected magic: not a snapshot
/// artifact at all (or the wrong kind of artifact).
class SnapshotMagicError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The artifact is a snapshot, but of a format version this build does
/// not read.
class SnapshotVersionError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The shard file was written on a host with a different byte order.
class SnapshotByteOrderError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The embedding dimensionality on disk disagrees with what the loading
/// context requires (another shard, the manifest, or the caller).
class SnapshotDimError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The stream ended early, or carries trailing bytes past the declared
/// payload — either way the artifact is not the one that was written.
class SnapshotTruncatedError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The manifest and the shard files (or the service state and the
/// corpus) disagree: shard-count mismatch, row tallies that don't add
/// up, placement drift, an unknown scheme, unparseable manifest lines.
class SnapshotManifestError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The snapshot was produced by a different embedder than the one
/// loading it: scoring rows from model A with model B's fingerprint
/// would be silent nonsense, so it is a hard typed rejection.
class SnapshotFingerprintError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// A snapshot file could not be opened or written at the OS level.
class SnapshotIoError final : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

// ---- Primitive readers/writers ------------------------------------------
// Native-endian on the wire; the byte-order mark in the header rejects
// cross-endian loads. Every reader throws SnapshotTruncatedError (with
// `what` naming the field) instead of returning short data.

void write_u32(std::ostream& os, std::uint32_t value);
void write_u64(std::ostream& os, std::uint64_t value);
void write_bytes(std::ostream& os, const void* data, std::size_t size);

[[nodiscard]] std::uint32_t read_u32(std::istream& is, const char* field);
[[nodiscard]] std::uint64_t read_u64(std::istream& is, const char* field);
void read_bytes(std::istream& is, void* data, std::size_t size,
                const char* field);

/// Throws SnapshotTruncatedError unless `is` is positioned exactly at
/// end-of-stream (a snapshot artifact has no trailing bytes).
void expect_eof(std::istream& is, const char* artifact);

}  // namespace gnn4ip::core
