// Abstract syntax tree for the supported Verilog subset.
//
// The subset covers what the GNN4IP corpus uses (and what Pyverilog's
// dataflow analyzer consumes in the original paper): modules with
// ANSI/non-ANSI ports, wire/reg/integer/parameter declarations,
// continuous assigns, always/initial blocks with begin/if/case and
// blocking/non-blocking assignments, gate primitives, and module
// instantiation with ordered or named connections and parameter
// overrides. Unsupported constructs (functions, tasks, generate, for
// loops in synthesis position) raise ParseError with a location.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "verilog/diagnostics.h"

namespace gnn4ip::verilog {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class UnaryOp {
  kPlus, kMinus, kBitNot, kLogNot,
  kRedAnd, kRedOr, kRedXor, kRedNand, kRedNor, kRedXnor,
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kBitAnd, kBitOr, kBitXor, kBitXnor,
  kLogAnd, kLogOr,
  kEq, kNeq, kCaseEq, kCaseNeq,
  kLt, kLe, kGt, kGe,
  kShl, kShr, kAShl, kAShr,
};

/// Spelled operator (for diagnostics and DFG node names).
[[nodiscard]] const char* to_string(UnaryOp op);
[[nodiscard]] const char* to_string(BinaryOp op);

enum class ExprKind {
  kIdentifier,   // text = name
  kNumber,       // text = literal
  kString,       // text = contents
  kUnary,        // op_unary, operands[0]
  kBinary,       // op_binary, operands[0], operands[1]
  kTernary,      // operands[0] ? operands[1] : operands[2]
  kConcat,       // {operands...}
  kRepeat,       // {operands[0]{operands[1]}} — count, value
  kBitSelect,    // operands[0][operands[1]]  (base is identifier expr)
  kPartSelect,   // operands[0][operands[1]:operands[2]]
  kGateOp,       // synthetic: primitive gate as an expression; text = gate
                 // type ("and", "nor", ...), operands = gate inputs. Only
                 // produced by the DFG dataflow analyzer, never the parser.
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  std::string text;
  UnaryOp op_unary = UnaryOp::kPlus;
  BinaryOp op_binary = BinaryOp::kAdd;
  std::vector<ExprPtr> operands;
  SourceLocation loc;

  [[nodiscard]] ExprPtr clone() const;
};

[[nodiscard]] ExprPtr make_identifier(std::string name, SourceLocation loc = {});
[[nodiscard]] ExprPtr make_number(std::string literal, SourceLocation loc = {});
[[nodiscard]] ExprPtr make_unary(UnaryOp op, ExprPtr a);
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr a, ExprPtr b);

/// Try to evaluate to a 64-bit constant given parameter bindings
/// (identifier -> value). Returns nullopt for non-constant expressions.
[[nodiscard]] std::optional<long long> fold_constant(
    const Expr& e,
    const std::vector<std::pair<std::string, long long>>& env = {});

/// Round-trip an expression back to Verilog text (used by the variant
/// engine and tests).
[[nodiscard]] std::string to_verilog(const Expr& e);

// ---------------------------------------------------------------------------
// Statements (inside always/initial)
// ---------------------------------------------------------------------------

enum class StmtKind {
  kBlock,        // begin ... end              -> children
  kIf,           // if (cond) then else        -> cond, children[0], children[1] (may be null)
  kCase,         // case (subject) items       -> subject, case_items
  kBlockingAssign,     // lhs = rhs
  kNonblockingAssign,  // lhs <= rhs
  kNull,         // ;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseItem {
  std::vector<ExprPtr> labels;  // empty => default
  StmtPtr body;                 // may be null (empty statement)
};

struct Stmt {
  StmtKind kind = StmtKind::kNull;
  ExprPtr cond;                  // kIf condition or kCase subject
  ExprPtr lhs;                   // assignments
  ExprPtr rhs;
  std::vector<StmtPtr> children; // kBlock statements; kIf then/else
  std::vector<CaseItem> case_items;
  bool casex = false;            // kCase: casex/casez variant
  SourceLocation loc;

  [[nodiscard]] StmtPtr clone() const;
};

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

enum class PortDirection { kInput, kOutput, kInout };

enum class NetType { kWire, kReg, kInteger, kSupply0, kSupply1, kTri };

struct Range {
  ExprPtr msb;
  ExprPtr lsb;

  [[nodiscard]] Range clone() const;
};

/// Declaration of one or more nets sharing direction/type/range is split
/// into one NetDecl per name during parsing.
struct NetDecl {
  std::string name;
  NetType type = NetType::kWire;
  std::optional<PortDirection> direction;  // set for ports
  std::optional<Range> range;
  bool is_signed = false;
  ExprPtr init;  // wire w = expr;
  SourceLocation loc;
};

struct ParamDecl {
  std::string name;
  ExprPtr value;
  bool local = false;  // localparam
  SourceLocation loc;
};

struct ContinuousAssign {
  ExprPtr lhs;
  ExprPtr rhs;
  SourceLocation loc;
};

enum class EdgeKind { kNone, kPosedge, kNegedge };

struct SensitivityItem {
  EdgeKind edge = EdgeKind::kNone;
  ExprPtr signal;  // null for @*
};

struct AlwaysBlock {
  bool is_initial = false;            // initial blocks are parsed, ignored by DFG
  bool sensitivity_star = false;      // @* or @(*)
  std::vector<SensitivityItem> sensitivity;
  StmtPtr body;
  SourceLocation loc;
};

/// Primitive gate instance: and/or/xor/xnor/nand/nor/not/buf.
struct GateInstance {
  std::string gate_type;
  std::string instance_name;          // may be empty
  std::vector<ExprPtr> terminals;     // first = output(s), rest = inputs
  SourceLocation loc;
};

struct PortConnection {
  std::string port_name;  // empty for positional
  ExprPtr actual;         // may be null for .port()
};

struct ModuleInstance {
  std::string module_name;
  std::string instance_name;
  std::vector<PortConnection> parameter_overrides;  // #(...) — named or positional
  std::vector<PortConnection> connections;
  SourceLocation loc;
};

struct Module {
  std::string name;
  std::vector<std::string> port_order;  // header order
  std::vector<NetDecl> nets;
  std::vector<ParamDecl> params;
  std::vector<ContinuousAssign> assigns;
  std::vector<AlwaysBlock> always_blocks;
  std::vector<GateInstance> gates;
  std::vector<ModuleInstance> instances;
  SourceLocation loc;

  [[nodiscard]] const NetDecl* find_net(const std::string& name) const;
};

/// A parsed source file: one or more modules.
struct Design {
  std::vector<Module> modules;

  [[nodiscard]] const Module* find_module(const std::string& name) const;
};

}  // namespace gnn4ip::verilog
