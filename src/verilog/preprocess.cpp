#include "verilog/preprocess.h"

#include <cctype>
#include <vector>

#include "util/string_util.h"
#include "verilog/diagnostics.h"

namespace gnn4ip::verilog {
namespace {

struct Cursor {
  const std::string* text = nullptr;
  std::size_t pos = 0;
  int line = 1;
  int column = 1;

  [[nodiscard]] bool at_end() const { return pos >= text->size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    const std::size_t p = pos + ahead;
    return p < text->size() ? (*text)[p] : '\0';
  }
  char advance() {
    const char c = (*text)[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
  [[nodiscard]] SourceLocation loc() const { return {line, column}; }
};

class Preprocessor {
 public:
  Preprocessor(const PreprocessOptions& options) : options_(options) {
    defines_ = options.defines;
  }

  std::string run(const std::string& source, int depth) {
    if (depth > options_.max_include_depth) {
      throw ParseError("maximum `include depth exceeded", {1, 1});
    }
    Cursor cur;
    cur.text = &source;
    std::string out;
    out.reserve(source.size());
    while (!cur.at_end()) {
      const char c = cur.peek();
      if (c == '/' && cur.peek(1) == '/') {
        skip_line_comment(cur, out);
      } else if (c == '/' && cur.peek(1) == '*') {
        skip_block_comment(cur, out);
      } else if (c == '"') {
        copy_string_literal(cur, out);
      } else if (c == '`') {
        handle_directive(cur, out, depth);
      } else {
        if (emitting()) {
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back('\n');
        }
        cur.advance();
      }
    }
    if (!cond_stack_.empty()) {
      throw ParseError("unterminated `ifdef/`ifndef", cur.loc());
    }
    return out;
  }

 private:
  [[nodiscard]] bool emitting() const {
    for (bool active : cond_stack_) {
      if (!active) return false;
    }
    return true;
  }

  static void skip_line_comment(Cursor& cur, std::string& out) {
    while (!cur.at_end() && cur.peek() != '\n') cur.advance();
    (void)out;  // newline itself is copied by the main loop
  }

  void skip_block_comment(Cursor& cur, std::string& out) {
    const SourceLocation start = cur.loc();
    cur.advance();  // '/'
    cur.advance();  // '*'
    while (true) {
      if (cur.at_end()) {
        throw ParseError("unterminated block comment", start);
      }
      const char c = cur.advance();
      if (c == '\n') out.push_back('\n');  // keep line structure
      if (c == '*' && cur.peek() == '/') {
        cur.advance();
        return;
      }
    }
  }

  void copy_string_literal(Cursor& cur, std::string& out) {
    const SourceLocation start = cur.loc();
    if (emitting()) out.push_back(cur.peek());
    cur.advance();
    while (true) {
      if (cur.at_end() || cur.peek() == '\n') {
        throw ParseError("unterminated string literal", start);
      }
      const char c = cur.advance();
      if (emitting()) out.push_back(c);
      if (c == '\\' && !cur.at_end()) {
        const char esc = cur.advance();
        if (emitting()) out.push_back(esc);
        continue;
      }
      if (c == '"' && out.size() >= 2) return;
      if (c == '"') return;
    }
  }

  static std::string read_identifier(Cursor& cur) {
    std::string name;
    while (!cur.at_end()) {
      const char c = cur.peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$') {
        name.push_back(c);
        cur.advance();
      } else {
        break;
      }
    }
    return name;
  }

  static std::string read_rest_of_line(Cursor& cur) {
    std::string text;
    while (!cur.at_end() && cur.peek() != '\n') {
      // Line continuation with backslash.
      if (cur.peek() == '\\' && cur.peek(1) == '\n') {
        cur.advance();
        cur.advance();
        text.push_back(' ');
        continue;
      }
      text.push_back(cur.advance());
    }
    return text;
  }

  void handle_directive(Cursor& cur, std::string& out, int depth) {
    const SourceLocation start = cur.loc();
    cur.advance();  // '`'
    const std::string name = read_identifier(cur);
    if (name.empty()) {
      throw ParseError("stray ` without directive or macro name", start);
    }
    if (name == "define") {
      skip_spaces(cur);
      const std::string macro = read_identifier(cur);
      if (macro.empty()) {
        throw ParseError("`define requires a macro name", start);
      }
      const std::string body = std::string(util::trim(read_rest_of_line(cur)));
      if (emitting()) defines_[macro] = body;
    } else if (name == "undef") {
      skip_spaces(cur);
      const std::string macro = read_identifier(cur);
      if (emitting()) defines_.erase(macro);
      (void)read_rest_of_line(cur);
    } else if (name == "ifdef" || name == "ifndef") {
      skip_spaces(cur);
      const std::string macro = read_identifier(cur);
      if (macro.empty()) {
        throw ParseError("`" + name + " requires a macro name", start);
      }
      const bool defined = defines_.count(macro) > 0;
      cond_stack_.push_back(name == "ifdef" ? defined : !defined);
    } else if (name == "else") {
      if (cond_stack_.empty()) {
        throw ParseError("`else without matching `ifdef", start);
      }
      cond_stack_.back() = !cond_stack_.back();
    } else if (name == "endif") {
      if (cond_stack_.empty()) {
        throw ParseError("`endif without matching `ifdef", start);
      }
      cond_stack_.pop_back();
    } else if (name == "include") {
      skip_spaces(cur);
      if (cur.peek() != '"') {
        throw ParseError("`include expects a quoted path", cur.loc());
      }
      cur.advance();
      std::string path;
      while (!cur.at_end() && cur.peek() != '"' && cur.peek() != '\n') {
        path.push_back(cur.advance());
      }
      if (cur.peek() != '"') {
        throw ParseError("unterminated `include path", start);
      }
      cur.advance();
      if (emitting()) {
        if (!options_.resolver) {
          throw ParseError("`include \"" + path +
                               "\" but no include resolver configured",
                           start);
        }
        const auto content = options_.resolver(path);
        if (!content.has_value()) {
          throw ParseError("cannot resolve `include \"" + path + "\"", start);
        }
        out += run(*content, depth + 1);
      }
    } else if (name == "timescale" || name == "default_nettype" ||
               name == "celldefine" || name == "endcelldefine" ||
               name == "resetall") {
      // Harmless directives for our purposes: consume and drop.
      (void)read_rest_of_line(cur);
    } else {
      // Macro usage.
      const auto it = defines_.find(name);
      if (it == defines_.end()) {
        throw ParseError("undefined macro `" + name, start);
      }
      if (emitting()) out += it->second;
    }
  }

  static void skip_spaces(Cursor& cur) {
    while (!cur.at_end() && (cur.peek() == ' ' || cur.peek() == '\t')) {
      cur.advance();
    }
  }

  const PreprocessOptions& options_;
  std::map<std::string, std::string> defines_;
  std::vector<bool> cond_stack_;
};

}  // namespace

std::string preprocess(const std::string& source,
                       const PreprocessOptions& options) {
  Preprocessor pp(options);
  return pp.run(source, 0);
}

}  // namespace gnn4ip::verilog
