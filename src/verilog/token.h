// Token stream produced by the Verilog lexer.
#pragma once

#include <string>
#include <vector>

#include "verilog/diagnostics.h"

namespace gnn4ip::verilog {

enum class TokenKind {
  kIdentifier,   // foo, \escaped , $display
  kKeyword,      // module, wire, always, ... (text holds the keyword)
  kNumber,       // 42, 8'hFF, 4'b10_10 (text holds the literal)
  kString,       // "..." (text holds contents without quotes)
  kPunct,        // operators and punctuation (text holds the spelling)
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;
  SourceLocation loc;

  [[nodiscard]] bool is_punct(const char* spelling) const {
    return kind == TokenKind::kPunct && text == spelling;
  }
  [[nodiscard]] bool is_keyword(const char* word) const {
    return kind == TokenKind::kKeyword && text == word;
  }
};

/// True for words the lexer classifies as keywords. Gate primitive names
/// (and/or/not/...) are included; the parser contextually accepts them
/// where grammar requires.
[[nodiscard]] bool is_verilog_keyword(const std::string& word);

/// Tokenize preprocessed source; throws ParseError on bad characters,
/// malformed numbers, or unterminated literals. The result always ends
/// with a kEndOfFile token.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

}  // namespace gnn4ip::verilog
