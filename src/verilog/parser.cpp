#include "verilog/parser.h"

#include <unordered_map>
#include <unordered_set>

#include "util/contract.h"

namespace gnn4ip::verilog {
namespace {

const std::unordered_set<std::string>& gate_keywords() {
  static const std::unordered_set<std::string> kGates = {
      "and", "or", "xor", "xnor", "nand", "nor", "not", "buf"};
  return kGates;
}

struct BinOpInfo {
  BinaryOp op;
  int precedence;  // larger binds tighter
};

/// Binary operator table for precedence climbing. Ternary ?: is handled
/// separately at the lowest level.
const std::unordered_map<std::string, BinOpInfo>& binop_table() {
  static const std::unordered_map<std::string, BinOpInfo> kTable = {
      {"||", {BinaryOp::kLogOr, 2}},   {"&&", {BinaryOp::kLogAnd, 3}},
      {"|", {BinaryOp::kBitOr, 4}},    {"^", {BinaryOp::kBitXor, 5}},
      {"~^", {BinaryOp::kBitXnor, 5}}, {"^~", {BinaryOp::kBitXnor, 5}},
      {"&", {BinaryOp::kBitAnd, 6}},   {"==", {BinaryOp::kEq, 7}},
      {"!=", {BinaryOp::kNeq, 7}},     {"===", {BinaryOp::kCaseEq, 7}},
      {"!==", {BinaryOp::kCaseNeq, 7}},{"<", {BinaryOp::kLt, 8}},
      {"<=", {BinaryOp::kLe, 8}},      {">", {BinaryOp::kGt, 8}},
      {">=", {BinaryOp::kGe, 8}},      {"<<", {BinaryOp::kShl, 9}},
      {">>", {BinaryOp::kShr, 9}},     {"<<<", {BinaryOp::kAShl, 9}},
      {">>>", {BinaryOp::kAShr, 9}},   {"+", {BinaryOp::kAdd, 10}},
      {"-", {BinaryOp::kSub, 10}},     {"*", {BinaryOp::kMul, 11}},
      {"/", {BinaryOp::kDiv, 11}},     {"%", {BinaryOp::kMod, 11}},
      {"**", {BinaryOp::kPow, 12}},
  };
  return kTable;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
    GNN4IP_ENSURE(!tokens_.empty() &&
                      tokens_.back().kind == TokenKind::kEndOfFile,
                  "token stream must end with EOF");
  }

  Design parse_design() {
    Design design;
    while (peek().kind != TokenKind::kEndOfFile) {
      if (peek().is_keyword("module")) {
        design.modules.push_back(parse_module());
      } else {
        throw ParseError("expected 'module', got '" + peek().text + "'",
                         peek().loc);
      }
    }
    return design;
  }

 private:
  // --- token helpers -------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t p = pos_ + ahead;
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  void expect_punct(const char* spelling) {
    if (!peek().is_punct(spelling)) {
      throw ParseError(std::string("expected '") + spelling + "', got '" +
                           peek().text + "'",
                       peek().loc);
    }
    advance();
  }
  void expect_keyword(const char* word) {
    if (!peek().is_keyword(word)) {
      throw ParseError(std::string("expected '") + word + "', got '" +
                           peek().text + "'",
                       peek().loc);
    }
    advance();
  }
  std::string expect_identifier(const char* what) {
    if (peek().kind != TokenKind::kIdentifier) {
      throw ParseError(std::string("expected ") + what + ", got '" +
                           peek().text + "'",
                       peek().loc);
    }
    return advance().text;
  }
  bool accept_punct(const char* spelling) {
    if (peek().is_punct(spelling)) {
      advance();
      return true;
    }
    return false;
  }

  // --- module structure ----------------------------------------------------
  Module parse_module() {
    Module mod;
    mod.loc = peek().loc;
    expect_keyword("module");
    mod.name = expect_identifier("module name");
    if (accept_punct("#")) {
      parse_header_parameters(mod);
    }
    if (accept_punct("(")) {
      parse_port_list(mod);
      expect_punct(")");
    }
    expect_punct(";");
    while (!peek().is_keyword("endmodule")) {
      if (peek().kind == TokenKind::kEndOfFile) {
        throw ParseError("missing 'endmodule' for module " + mod.name,
                         mod.loc);
      }
      parse_module_item(mod);
    }
    expect_keyword("endmodule");
    return mod;
  }

  void parse_header_parameters(Module& mod) {
    expect_punct("(");
    if (!peek().is_punct(")")) {
      do {
        if (peek().is_keyword("parameter")) advance();
        parse_optional_range();  // parameter [msb:lsb] name — range ignored
        ParamDecl param;
        param.loc = peek().loc;
        param.name = expect_identifier("parameter name");
        expect_punct("=");
        param.value = parse_expression();
        mod.params.push_back(std::move(param));
      } while (accept_punct(","));
    }
    expect_punct(")");
  }

  void parse_port_list(Module& mod) {
    if (peek().is_punct(")")) return;  // empty list
    // ANSI style begins with a direction keyword; non-ANSI is a plain
    // identifier list. Mixed continuation inherits the previous decl.
    if (peek().kind == TokenKind::kIdentifier) {
      do {
        mod.port_order.push_back(expect_identifier("port name"));
      } while (accept_punct(","));
      return;
    }
    std::optional<PortDirection> direction;
    NetType type = NetType::kWire;
    bool is_signed = false;
    std::optional<Range> range;
    do {
      if (peek().kind == TokenKind::kKeyword && !is_net_intro(peek())) {
        throw ParseError("unexpected '" + peek().text + "' in port list",
                         peek().loc);
      }
      if (is_direction_keyword(peek())) {
        direction = parse_direction();
        type = NetType::kWire;
        is_signed = false;
        range.reset();
        if (peek().is_keyword("wire")) {
          advance();
        } else if (peek().is_keyword("reg")) {
          advance();
          type = NetType::kReg;
        }
        if (peek().is_keyword("signed")) {
          advance();
          is_signed = true;
        }
        range = parse_optional_range();
      }
      if (!direction.has_value()) {
        throw ParseError("port requires a direction", peek().loc);
      }
      NetDecl net;
      net.loc = peek().loc;
      net.name = expect_identifier("port name");
      net.type = type;
      net.direction = direction;
      net.is_signed = is_signed;
      if (range.has_value()) net.range = range->clone();
      mod.port_order.push_back(net.name);
      mod.nets.push_back(std::move(net));
    } while (accept_punct(","));
  }

  static bool is_direction_keyword(const Token& t) {
    return t.is_keyword("input") || t.is_keyword("output") ||
           t.is_keyword("inout");
  }

  static bool is_net_intro(const Token& t) {
    return is_direction_keyword(t) || t.is_keyword("wire") ||
           t.is_keyword("reg") || t.is_keyword("signed") ||
           t.is_keyword("integer") || t.is_keyword("supply0") ||
           t.is_keyword("supply1") || t.is_keyword("tri");
  }

  PortDirection parse_direction() {
    if (peek().is_keyword("input")) {
      advance();
      return PortDirection::kInput;
    }
    if (peek().is_keyword("output")) {
      advance();
      return PortDirection::kOutput;
    }
    expect_keyword("inout");
    return PortDirection::kInout;
  }

  std::optional<Range> parse_optional_range() {
    if (!peek().is_punct("[")) return std::nullopt;
    advance();
    Range r;
    r.msb = parse_expression();
    expect_punct(":");
    r.lsb = parse_expression();
    expect_punct("]");
    return r;
  }

  void parse_module_item(Module& mod) {
    const Token& t = peek();
    if (is_direction_keyword(t)) {
      parse_net_declaration(mod, parse_direction());
    } else if (t.is_keyword("wire") || t.is_keyword("reg") ||
               t.is_keyword("integer") || t.is_keyword("supply0") ||
               t.is_keyword("supply1") || t.is_keyword("tri")) {
      parse_net_declaration(mod, std::nullopt);
    } else if (t.is_keyword("parameter") || t.is_keyword("localparam")) {
      parse_parameter_declaration(mod);
    } else if (t.is_keyword("assign")) {
      parse_continuous_assign(mod);
    } else if (t.is_keyword("always")) {
      mod.always_blocks.push_back(parse_always_block(/*is_initial=*/false));
    } else if (t.is_keyword("initial")) {
      mod.always_blocks.push_back(parse_always_block(/*is_initial=*/true));
    } else if (t.kind == TokenKind::kKeyword &&
               gate_keywords().count(t.text) > 0) {
      parse_gate_instances(mod);
    } else if (t.kind == TokenKind::kIdentifier) {
      parse_module_instances(mod);
    } else if (t.is_keyword("function") || t.is_keyword("task") ||
               t.is_keyword("generate") || t.is_keyword("genvar") ||
               t.is_keyword("for") || t.is_keyword("while")) {
      throw ParseError("unsupported construct '" + t.text +
                           "' (GNN4IP Verilog subset)",
                       t.loc);
    } else {
      throw ParseError("unexpected '" + t.text + "' in module body", t.loc);
    }
  }

  void parse_net_declaration(Module& mod,
                             std::optional<PortDirection> direction) {
    NetType type = NetType::kWire;
    if (peek().is_keyword("wire")) {
      advance();
    } else if (peek().is_keyword("reg")) {
      advance();
      type = NetType::kReg;
    } else if (peek().is_keyword("integer")) {
      advance();
      type = NetType::kInteger;
    } else if (peek().is_keyword("supply0")) {
      advance();
      type = NetType::kSupply0;
    } else if (peek().is_keyword("supply1")) {
      advance();
      type = NetType::kSupply1;
    } else if (peek().is_keyword("tri")) {
      advance();
      type = NetType::kTri;
    }
    bool is_signed = false;
    if (peek().is_keyword("signed")) {
      advance();
      is_signed = true;
    }
    const std::optional<Range> range = parse_optional_range();
    do {
      NetDecl net;
      net.loc = peek().loc;
      net.name = expect_identifier("net name");
      net.type = type;
      net.direction = direction;
      net.is_signed = is_signed;
      if (range.has_value()) net.range = range->clone();
      if (accept_punct("=")) {
        net.init = parse_expression();
      }
      merge_or_append_net(mod, std::move(net));
    } while (accept_punct(","));
    expect_punct(";");
  }

  /// Non-ANSI style declares the same name twice (header + body, or
  /// `output Sum;` + `reg Sum;`). Merge attributes instead of duplicating.
  static void merge_or_append_net(Module& mod, NetDecl net) {
    for (NetDecl& existing : mod.nets) {
      if (existing.name != net.name) continue;
      if (net.direction.has_value()) existing.direction = net.direction;
      if (net.type != NetType::kWire) existing.type = net.type;
      if (net.range.has_value()) existing.range = std::move(net.range);
      existing.is_signed = existing.is_signed || net.is_signed;
      if (net.init != nullptr) existing.init = std::move(net.init);
      return;
    }
    mod.nets.push_back(std::move(net));
  }

  void parse_parameter_declaration(Module& mod) {
    const bool local = peek().is_keyword("localparam");
    advance();
    parse_optional_range();
    do {
      ParamDecl param;
      param.loc = peek().loc;
      param.local = local;
      param.name = expect_identifier("parameter name");
      expect_punct("=");
      param.value = parse_expression();
      mod.params.push_back(std::move(param));
    } while (accept_punct(","));
    expect_punct(";");
  }

  void parse_continuous_assign(Module& mod) {
    expect_keyword("assign");
    skip_optional_delay();
    do {
      ContinuousAssign ca;
      ca.loc = peek().loc;
      ca.lhs = parse_lvalue();
      expect_punct("=");
      ca.rhs = parse_expression();
      mod.assigns.push_back(std::move(ca));
    } while (accept_punct(","));
    expect_punct(";");
  }

  AlwaysBlock parse_always_block(bool is_initial) {
    AlwaysBlock block;
    block.loc = peek().loc;
    block.is_initial = is_initial;
    advance();  // always / initial
    if (!is_initial) {
      if (accept_punct("@")) {
        if (accept_punct("*")) {
          block.sensitivity_star = true;
        } else {
          expect_punct("(");
          if (accept_punct("*")) {
            block.sensitivity_star = true;
          } else {
            while (true) {
              SensitivityItem item;
              if (peek().is_keyword("posedge")) {
                advance();
                item.edge = EdgeKind::kPosedge;
              } else if (peek().is_keyword("negedge")) {
                advance();
                item.edge = EdgeKind::kNegedge;
              }
              item.signal = parse_expression();
              block.sensitivity.push_back(std::move(item));
              // Items separated by ',' or the keyword 'or'.
              if (peek().is_keyword("or")) {
                advance();
                continue;
              }
              if (accept_punct(",")) continue;
              break;
            }
          }
          expect_punct(")");
        }
      } else {
        // `always begin ... end` without sensitivity: treat like @*.
        block.sensitivity_star = true;
      }
    }
    block.body = parse_statement();
    return block;
  }

  // --- statements -----------------------------------------------------------
  StmtPtr parse_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;
    skip_optional_delay();
    if (peek().is_keyword("begin")) {
      advance();
      if (accept_punct(":")) {
        expect_identifier("block label");
      }
      stmt->kind = StmtKind::kBlock;
      while (!peek().is_keyword("end")) {
        if (peek().kind == TokenKind::kEndOfFile) {
          throw ParseError("missing 'end'", stmt->loc);
        }
        stmt->children.push_back(parse_statement());
      }
      advance();  // end
      return stmt;
    }
    if (peek().is_keyword("if")) {
      advance();
      stmt->kind = StmtKind::kIf;
      expect_punct("(");
      stmt->cond = parse_expression();
      expect_punct(")");
      stmt->children.push_back(parse_statement());
      if (peek().is_keyword("else")) {
        advance();
        stmt->children.push_back(parse_statement());
      } else {
        stmt->children.push_back(nullptr);
      }
      return stmt;
    }
    if (peek().is_keyword("case") || peek().is_keyword("casex") ||
        peek().is_keyword("casez")) {
      stmt->kind = StmtKind::kCase;
      stmt->casex = !peek().is_keyword("case");
      advance();
      expect_punct("(");
      stmt->cond = parse_expression();
      expect_punct(")");
      while (!peek().is_keyword("endcase")) {
        if (peek().kind == TokenKind::kEndOfFile) {
          throw ParseError("missing 'endcase'", stmt->loc);
        }
        CaseItem item;
        if (peek().is_keyword("default")) {
          advance();
          accept_punct(":");
        } else {
          do {
            item.labels.push_back(parse_expression());
          } while (accept_punct(","));
          expect_punct(":");
        }
        item.body = parse_statement();
        stmt->case_items.push_back(std::move(item));
      }
      advance();  // endcase
      return stmt;
    }
    if (peek().is_punct(";")) {
      advance();
      stmt->kind = StmtKind::kNull;
      return stmt;
    }
    if (peek().kind == TokenKind::kIdentifier && peek().text[0] == '$') {
      // System task call ($display, ...): parse and discard.
      advance();
      if (accept_punct("(")) {
        int depth = 1;
        while (depth > 0) {
          if (peek().kind == TokenKind::kEndOfFile) {
            throw ParseError("unterminated system task call", stmt->loc);
          }
          if (peek().is_punct("(")) ++depth;
          if (peek().is_punct(")")) --depth;
          advance();
        }
      }
      expect_punct(";");
      stmt->kind = StmtKind::kNull;
      return stmt;
    }
    if (peek().is_keyword("for") || peek().is_keyword("while")) {
      throw ParseError("unsupported loop statement in GNN4IP Verilog subset",
                       peek().loc);
    }
    // Assignment.
    stmt->lhs = parse_lvalue();
    if (accept_punct("=")) {
      stmt->kind = StmtKind::kBlockingAssign;
    } else if (accept_punct("<=")) {
      stmt->kind = StmtKind::kNonblockingAssign;
    } else {
      throw ParseError("expected '=' or '<=' in assignment, got '" +
                           peek().text + "'",
                       peek().loc);
    }
    skip_optional_delay();
    stmt->rhs = parse_expression();
    expect_punct(";");
    return stmt;
  }

  void skip_optional_delay() {
    if (!peek().is_punct("#")) return;
    // `#` in statement position is a delay control; in instantiation it is
    // handled separately. Consume `#number`, `#ident`, or `#(expr[,expr])`.
    advance();
    if (accept_punct("(")) {
      int depth = 1;
      while (depth > 0) {
        if (peek().kind == TokenKind::kEndOfFile) {
          throw ParseError("unterminated delay expression", peek().loc);
        }
        if (peek().is_punct("(")) ++depth;
        if (peek().is_punct(")")) --depth;
        advance();
      }
    } else {
      advance();  // simple literal / identifier delay
    }
  }

  // --- instances ------------------------------------------------------------
  void parse_gate_instances(Module& mod) {
    const std::string gate_type = advance().text;
    skip_optional_delay();
    do {
      GateInstance gate;
      gate.loc = peek().loc;
      gate.gate_type = gate_type;
      if (peek().kind == TokenKind::kIdentifier && peek(1).is_punct("(")) {
        gate.instance_name = advance().text;
      }
      expect_punct("(");
      do {
        gate.terminals.push_back(parse_expression());
      } while (accept_punct(","));
      expect_punct(")");
      if (gate.terminals.size() < 2) {
        throw ParseError("gate '" + gate_type +
                             "' needs at least an output and one input",
                         gate.loc);
      }
      mod.gates.push_back(std::move(gate));
    } while (accept_punct(","));
    expect_punct(";");
  }

  void parse_module_instances(Module& mod) {
    const std::string module_name = expect_identifier("module name");
    std::vector<PortConnection> params;
    if (accept_punct("#")) {
      expect_punct("(");
      params = parse_connection_list();
      expect_punct(")");
    }
    do {
      ModuleInstance inst;
      inst.loc = peek().loc;
      inst.module_name = module_name;
      for (const PortConnection& p : params) {
        PortConnection copy;
        copy.port_name = p.port_name;
        copy.actual = p.actual == nullptr ? nullptr : p.actual->clone();
        inst.parameter_overrides.push_back(std::move(copy));
      }
      inst.instance_name = expect_identifier("instance name");
      if (peek().is_punct("[")) {
        throw ParseError("instance arrays are not supported", peek().loc);
      }
      expect_punct("(");
      inst.connections = parse_connection_list();
      expect_punct(")");
      mod.instances.push_back(std::move(inst));
    } while (accept_punct(","));
    expect_punct(";");
  }

  std::vector<PortConnection> parse_connection_list() {
    std::vector<PortConnection> connections;
    if (peek().is_punct(")")) return connections;
    do {
      PortConnection conn;
      if (accept_punct(".")) {
        conn.port_name = expect_identifier("port name");
        expect_punct("(");
        if (!peek().is_punct(")")) {
          conn.actual = parse_expression();
        }
        expect_punct(")");
      } else {
        conn.actual = parse_expression();
      }
      connections.push_back(std::move(conn));
    } while (accept_punct(","));
    return connections;
  }

  // --- expressions ----------------------------------------------------------
  ExprPtr parse_expression() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(1);
    if (!accept_punct("?")) return cond;
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kTernary;
    expr->loc = cond->loc;
    ExprPtr then_val = parse_expression();
    expect_punct(":");
    ExprPtr else_val = parse_expression();
    expr->operands.push_back(std::move(cond));
    expr->operands.push_back(std::move(then_val));
    expr->operands.push_back(std::move(else_val));
    return expr;
  }

  ExprPtr parse_binary(int min_precedence) {
    ExprPtr lhs = parse_unary();
    while (peek().kind == TokenKind::kPunct) {
      const auto it = binop_table().find(peek().text);
      if (it == binop_table().end() ||
          it->second.precedence < min_precedence) {
        break;
      }
      const BinOpInfo info = it->second;
      advance();
      ExprPtr rhs = parse_binary(info.precedence + 1);
      lhs = make_binary(info.op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (t.kind == TokenKind::kPunct) {
      UnaryOp op;
      bool matched = true;
      if (t.text == "+") op = UnaryOp::kPlus;
      else if (t.text == "-") op = UnaryOp::kMinus;
      else if (t.text == "~") op = UnaryOp::kBitNot;
      else if (t.text == "!") op = UnaryOp::kLogNot;
      else if (t.text == "&") op = UnaryOp::kRedAnd;
      else if (t.text == "|") op = UnaryOp::kRedOr;
      else if (t.text == "^") op = UnaryOp::kRedXor;
      else if (t.text == "~&") op = UnaryOp::kRedNand;
      else if (t.text == "~|") op = UnaryOp::kRedNor;
      else if (t.text == "~^" || t.text == "^~") op = UnaryOp::kRedXnor;
      else matched = false;
      if (matched) {
        const SourceLocation loc = t.loc;
        advance();
        ExprPtr operand = parse_unary();
        ExprPtr e = make_unary(op, std::move(operand));
        e->loc = loc;
        return e;
      }
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr base = parse_primary();
    while (peek().is_punct("[")) {
      advance();
      ExprPtr first = parse_expression();
      if (accept_punct(":")) {
        ExprPtr second = parse_expression();
        auto sel = std::make_unique<Expr>();
        sel->kind = ExprKind::kPartSelect;
        sel->loc = base->loc;
        sel->operands.push_back(std::move(base));
        sel->operands.push_back(std::move(first));
        sel->operands.push_back(std::move(second));
        base = std::move(sel);
      } else if (accept_punct("+:")) {
        // Indexed part select base[start +: width] — treat like part select.
        ExprPtr width = parse_expression();
        auto sel = std::make_unique<Expr>();
        sel->kind = ExprKind::kPartSelect;
        sel->loc = base->loc;
        sel->operands.push_back(std::move(base));
        sel->operands.push_back(std::move(first));
        sel->operands.push_back(std::move(width));
        base = std::move(sel);
      } else {
        auto sel = std::make_unique<Expr>();
        sel->kind = ExprKind::kBitSelect;
        sel->loc = base->loc;
        sel->operands.push_back(std::move(base));
        sel->operands.push_back(std::move(first));
        base = std::move(sel);
      }
      expect_punct("]");
    }
    return base;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.kind == TokenKind::kNumber) {
      ExprPtr e = make_number(t.text, t.loc);
      advance();
      return e;
    }
    if (t.kind == TokenKind::kString) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kString;
      e->text = t.text;
      e->loc = t.loc;
      advance();
      return e;
    }
    if (t.kind == TokenKind::kIdentifier) {
      ExprPtr e = make_identifier(t.text, t.loc);
      advance();
      return e;
    }
    if (t.is_punct("(")) {
      advance();
      ExprPtr inner = parse_expression();
      expect_punct(")");
      return inner;
    }
    if (t.is_punct("{")) {
      advance();
      // Either a concatenation {a, b, c} or a replication {N{expr}}.
      ExprPtr first = parse_expression();
      if (peek().is_punct("{")) {
        advance();
        auto rep = std::make_unique<Expr>();
        rep->kind = ExprKind::kRepeat;
        rep->loc = t.loc;
        rep->operands.push_back(std::move(first));
        // Replication body is a concatenation list: {N{a, b, ...}}.
        ExprPtr body = parse_expression();
        if (peek().is_punct(",")) {
          auto inner = std::make_unique<Expr>();
          inner->kind = ExprKind::kConcat;
          inner->loc = body->loc;
          inner->operands.push_back(std::move(body));
          while (accept_punct(",")) {
            inner->operands.push_back(parse_expression());
          }
          body = std::move(inner);
        }
        rep->operands.push_back(std::move(body));
        expect_punct("}");
        expect_punct("}");
        return rep;
      }
      auto concat = std::make_unique<Expr>();
      concat->kind = ExprKind::kConcat;
      concat->loc = t.loc;
      concat->operands.push_back(std::move(first));
      while (accept_punct(",")) {
        concat->operands.push_back(parse_expression());
      }
      expect_punct("}");
      return concat;
    }
    throw ParseError("expected expression, got '" + t.text + "'", t.loc);
  }

  /// Lvalues: identifier, identifier[sel], identifier[msb:lsb], or a
  /// concatenation of lvalues.
  ExprPtr parse_lvalue() {
    if (peek().is_punct("{")) {
      const Token& open = peek();
      advance();
      auto concat = std::make_unique<Expr>();
      concat->kind = ExprKind::kConcat;
      concat->loc = open.loc;
      do {
        concat->operands.push_back(parse_lvalue());
      } while (accept_punct(","));
      expect_punct("}");
      return concat;
    }
    const Token& t = peek();
    if (t.kind != TokenKind::kIdentifier) {
      throw ParseError("expected lvalue, got '" + t.text + "'", t.loc);
    }
    return parse_postfix();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Design parse(const std::string& source, const PreprocessOptions& pp_options) {
  const std::string preprocessed = preprocess(source, pp_options);
  return parse_tokens(lex(preprocessed));
}

Design parse_tokens(std::vector<Token> tokens) {
  Parser parser(std::move(tokens));
  return parser.parse_design();
}

}  // namespace gnn4ip::verilog
