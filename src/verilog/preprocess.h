// Verilog preprocessor: comment stripping, `define / `undef object macros,
// macro expansion (`NAME), `ifdef / `ifndef / `else / `endif conditionals,
// and `include resolved through a caller-provided virtual file system.
//
// Line structure is preserved (comments are blanked, directives removed
// but their newlines kept) so lexer locations refer to the original text.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

namespace gnn4ip::verilog {

/// Resolves an `include path to file contents; return std::nullopt if the
/// file is unknown (which raises a ParseError).
using IncludeResolver =
    std::function<std::optional<std::string>(const std::string&)>;

struct PreprocessOptions {
  /// Predefined object-like macros (name -> replacement text).
  std::map<std::string, std::string> defines;
  /// `include resolution; defaults to "no includes available".
  IncludeResolver resolver;
  /// Guard against runaway recursive `include.
  int max_include_depth = 16;
};

/// Preprocess `source`; throws ParseError on malformed directives,
/// unterminated comments, unknown includes, or unbalanced conditionals.
[[nodiscard]] std::string preprocess(const std::string& source,
                                     const PreprocessOptions& options = {});

}  // namespace gnn4ip::verilog
