#include <array>
#include <cctype>
#include <string_view>
#include <unordered_set>

#include "verilog/token.h"

namespace gnn4ip::verilog {
namespace {

const std::unordered_set<std::string>& keyword_set() {
  static const std::unordered_set<std::string> kKeywords = {
      "module",   "endmodule", "input",    "output",   "inout",
      "wire",     "reg",       "assign",   "always",   "initial",
      "begin",    "end",       "if",       "else",     "case",
      "casex",    "casez",     "endcase",  "default",  "posedge",
      "negedge",  "parameter", "localparam", "integer", "signed",
      "and",      "or",        "xor",      "xnor",     "nand",
      "nor",      "not",       "buf",      "for",      "while",
      "function", "endfunction", "task",   "endtask",  "generate",
      "endgenerate", "genvar", "supply0",  "supply1",  "tri",
  };
  return kKeywords;
}

// Multi-character punctuation, longest-match-first.
constexpr std::array<std::string_view, 18> kMultiPunct = {
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&",
    "||",  "<<",  ">>",  "~&",  "~|", "~^", "^~", "**", "+:",
};

struct LexCursor {
  const std::string* text;
  std::size_t pos = 0;
  int line = 1;
  int column = 1;

  [[nodiscard]] bool at_end() const { return pos >= text->size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    const std::size_t p = pos + ahead;
    return p < text->size() ? (*text)[p] : '\0';
  }
  char advance() {
    const char c = (*text)[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
  [[nodiscard]] SourceLocation loc() const { return {line, column}; }
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_base_char(char c) {
  const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower == 'b' || lower == 'o' || lower == 'd' || lower == 'h';
}

Token lex_number(LexCursor& cur) {
  Token tok;
  tok.kind = TokenKind::kNumber;
  tok.loc = cur.loc();
  // Optional size prefix (decimal digits), then 'base digits, or a plain
  // decimal (possibly real — we accept digits and '.' though DFGs treat
  // numbers opaquely).
  while (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
         cur.peek() == '_') {
    tok.text.push_back(cur.advance());
  }
  if (cur.peek() == '\'' &&
      (is_base_char(cur.peek(1)) ||
       ((cur.peek(1) == 's' || cur.peek(1) == 'S') && is_base_char(cur.peek(2))))) {
    tok.text.push_back(cur.advance());  // '
    if (cur.peek() == 's' || cur.peek() == 'S') tok.text.push_back(cur.advance());
    tok.text.push_back(cur.advance());  // base char
    while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
           cur.peek() == '_' || cur.peek() == '?' || cur.peek() == 'x' ||
           cur.peek() == 'z' || cur.peek() == 'X' || cur.peek() == 'Z') {
      tok.text.push_back(cur.advance());
    }
  } else if (cur.peek() == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
    tok.text.push_back(cur.advance());
    while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
      tok.text.push_back(cur.advance());
    }
  }
  if (tok.text.empty()) {
    throw ParseError("malformed number literal", tok.loc);
  }
  return tok;
}

}  // namespace

bool is_verilog_keyword(const std::string& word) {
  return keyword_set().count(word) > 0;
}

std::vector<Token> lex(const std::string& source) {
  LexCursor cur;
  cur.text = &source;
  std::vector<Token> tokens;
  while (!cur.at_end()) {
    const char c = cur.peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    if (is_ident_start(c)) {
      Token tok;
      tok.loc = cur.loc();
      while (!cur.at_end() && is_ident_char(cur.peek())) {
        tok.text.push_back(cur.advance());
      }
      tok.kind = is_verilog_keyword(tok.text) ? TokenKind::kKeyword
                                              : TokenKind::kIdentifier;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\\') {
      // Escaped identifier: backslash to next whitespace.
      Token tok;
      tok.loc = cur.loc();
      tok.kind = TokenKind::kIdentifier;
      cur.advance();
      while (!cur.at_end() &&
             !std::isspace(static_cast<unsigned char>(cur.peek()))) {
        tok.text.push_back(cur.advance());
      }
      if (tok.text.empty()) {
        throw ParseError("empty escaped identifier", tok.loc);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number(cur));
      continue;
    }
    if (c == '\'') {
      // Unsized based literal like 'b0 / 'd12.
      Token tok;
      tok.loc = cur.loc();
      tok.kind = TokenKind::kNumber;
      tok.text.push_back(cur.advance());
      if (cur.peek() == 's' || cur.peek() == 'S') tok.text.push_back(cur.advance());
      if (!is_base_char(cur.peek())) {
        throw ParseError("malformed based literal", tok.loc);
      }
      tok.text.push_back(cur.advance());
      while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
             cur.peek() == '_' || cur.peek() == '?') {
        tok.text.push_back(cur.advance());
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      Token tok;
      tok.loc = cur.loc();
      tok.kind = TokenKind::kString;
      cur.advance();
      while (true) {
        if (cur.at_end() || cur.peek() == '\n') {
          throw ParseError("unterminated string literal", tok.loc);
        }
        const char ch = cur.advance();
        if (ch == '"') break;
        if (ch == '\\' && !cur.at_end()) {
          tok.text.push_back(ch);
          tok.text.push_back(cur.advance());
          continue;
        }
        tok.text.push_back(ch);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '$') {
      // System identifier ($display, $time, ...).
      Token tok;
      tok.loc = cur.loc();
      tok.kind = TokenKind::kIdentifier;
      tok.text.push_back(cur.advance());
      while (!cur.at_end() && is_ident_char(cur.peek())) {
        tok.text.push_back(cur.advance());
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Punctuation: try multi-char first.
    bool matched = false;
    for (std::string_view spelling : kMultiPunct) {
      bool ok = true;
      for (std::size_t i = 0; i < spelling.size(); ++i) {
        if (cur.peek(i) != spelling[i]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        Token tok;
        tok.loc = cur.loc();
        tok.kind = TokenKind::kPunct;
        tok.text = std::string(spelling);
        for (std::size_t i = 0; i < spelling.size(); ++i) cur.advance();
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingle = "()[]{},;:.#?=@&|^~!+-*/%<>";
    if (kSingle.find(c) != std::string::npos) {
      Token tok;
      tok.loc = cur.loc();
      tok.kind = TokenKind::kPunct;
      tok.text.push_back(cur.advance());
      tokens.push_back(std::move(tok));
      continue;
    }
    throw ParseError(std::string("unexpected character '") + c + "'",
                     cur.loc());
  }
  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.loc = cur.loc();
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace gnn4ip::verilog
