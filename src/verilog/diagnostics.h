// Source locations and the user-facing error type for the Verilog
// frontend.  Frontend errors are *user input* problems (bad syntax,
// unknown module, unsupported construct) and therefore get a dedicated
// exception carrying location info, per the project error-handling
// strategy (DESIGN.md §6).
#pragma once

#include <stdexcept>
#include <string>

namespace gnn4ip::verilog {

/// 1-based position in a (possibly preprocessed) source buffer.
struct SourceLocation {
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// Raised for malformed or unsupported Verilog input.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, SourceLocation where)
      : std::runtime_error(where.to_string() + ": " + message),
        message_(std::move(message)),
        location_(where) {}

  /// The message without the location prefix — for callers (the audit
  /// diagnostic surface) that carry the location as structured data.
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] SourceLocation location() const { return location_; }

 private:
  std::string message_;
  SourceLocation location_;
};

}  // namespace gnn4ip::verilog
