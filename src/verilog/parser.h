// Recursive-descent parser for the supported Verilog subset.
//
// parse() runs the preprocessor, lexer, and parser; parse_tokens() starts
// from an existing token stream. Both throw ParseError on malformed or
// unsupported input.
#pragma once

#include <string>
#include <vector>

#include "verilog/ast.h"
#include "verilog/preprocess.h"
#include "verilog/token.h"

namespace gnn4ip::verilog {

/// Preprocess + lex + parse a Verilog source buffer.
[[nodiscard]] Design parse(const std::string& source,
                           const PreprocessOptions& pp_options = {});

/// Parse an already-lexed token stream.
[[nodiscard]] Design parse_tokens(std::vector<Token> tokens);

}  // namespace gnn4ip::verilog
