#include "verilog/elaborate.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::verilog {
namespace {

using ParamEnv = std::vector<std::pair<std::string, long long>>;

/// Per-module-inlining context: how identifiers get rewritten.
struct RewriteContext {
  std::string prefix;                 // "" for top, "u1." style otherwise
  const std::unordered_set<std::string>* net_names = nullptr;
  const ParamEnv* params = nullptr;
};

std::string prefixed(const RewriteContext& ctx, const std::string& name) {
  return ctx.prefix.empty() ? name : ctx.prefix + name;
}

ExprPtr rewrite_expr(const Expr& e, const RewriteContext& ctx);

ExprPtr rewrite_children(const Expr& e, const RewriteContext& ctx) {
  auto copy = std::make_unique<Expr>();
  copy->kind = e.kind;
  copy->text = e.text;
  copy->op_unary = e.op_unary;
  copy->op_binary = e.op_binary;
  copy->loc = e.loc;
  for (const ExprPtr& child : e.operands) {
    copy->operands.push_back(child == nullptr ? nullptr
                                              : rewrite_expr(*child, ctx));
  }
  return copy;
}

ExprPtr rewrite_expr(const Expr& e, const RewriteContext& ctx) {
  if (e.kind != ExprKind::kIdentifier) return rewrite_children(e, ctx);
  // Parameter use -> constant.
  for (const auto& [name, value] : *ctx.params) {
    if (name == e.text) {
      return make_number(std::to_string(value), e.loc);
    }
  }
  // Known or implicit net -> prefixed name. Identifiers that are not
  // declared are implicit wires; they are registered by the caller before
  // rewriting, so at this point every non-parameter identifier is a net.
  return make_identifier(prefixed(ctx, e.text), e.loc);
}

StmtPtr rewrite_stmt(const Stmt& s, const RewriteContext& ctx) {
  auto copy = std::make_unique<Stmt>();
  copy->kind = s.kind;
  copy->casex = s.casex;
  copy->loc = s.loc;
  copy->cond = s.cond == nullptr ? nullptr : rewrite_expr(*s.cond, ctx);
  copy->lhs = s.lhs == nullptr ? nullptr : rewrite_expr(*s.lhs, ctx);
  copy->rhs = s.rhs == nullptr ? nullptr : rewrite_expr(*s.rhs, ctx);
  for (const StmtPtr& child : s.children) {
    copy->children.push_back(child == nullptr ? nullptr
                                              : rewrite_stmt(*child, ctx));
  }
  for (const CaseItem& item : s.case_items) {
    CaseItem ci;
    for (const ExprPtr& label : item.labels) {
      ci.labels.push_back(rewrite_expr(*label, ctx));
    }
    ci.body = item.body == nullptr ? nullptr : rewrite_stmt(*item.body, ctx);
    copy->case_items.push_back(std::move(ci));
  }
  return copy;
}

/// Collect every identifier that appears in expression position.
void collect_identifiers(const Expr& e, std::set<std::string>& out) {
  if (e.kind == ExprKind::kIdentifier) out.insert(e.text);
  for (const ExprPtr& child : e.operands) {
    if (child != nullptr) collect_identifiers(*child, out);
  }
}

void collect_identifiers(const Stmt& s, std::set<std::string>& out) {
  if (s.cond != nullptr) collect_identifiers(*s.cond, out);
  if (s.lhs != nullptr) collect_identifiers(*s.lhs, out);
  if (s.rhs != nullptr) collect_identifiers(*s.rhs, out);
  for (const StmtPtr& child : s.children) {
    if (child != nullptr) collect_identifiers(*child, out);
  }
  for (const CaseItem& item : s.case_items) {
    for (const ExprPtr& label : item.labels) collect_identifiers(*label, out);
    if (item.body != nullptr) collect_identifiers(*item.body, out);
  }
}

class Elaborator {
 public:
  Elaborator(const Design& design, const ElaborateOptions& options)
      : design_(design), options_(options) {}

  Module run(const std::string& top_name) {
    const Module* top = design_.find_module(top_name);
    if (top == nullptr) {
      throw ParseError("top module '" + top_name + "' not found", {1, 1});
    }
    Module out;
    out.name = top->name;
    out.port_order = top->port_order;
    out.loc = top->loc;
    inline_module(*top, /*prefix=*/"", /*overrides=*/{}, out,
                  /*depth=*/0, /*keep_ports=*/true);
    return out;
  }

 private:
  ParamEnv resolve_params(const Module& m,
                          const std::vector<std::pair<std::string, long long>>&
                              overrides) {
    ParamEnv env;
    for (const ParamDecl& p : m.params) {
      std::optional<long long> value;
      if (!p.local) {
        for (const auto& [name, v] : overrides) {
          if (name == p.name) {
            value = v;
            break;
          }
        }
      }
      if (!value.has_value()) {
        value = fold_constant(*p.value, env);
      }
      if (!value.has_value()) {
        throw ParseError(
            "cannot resolve parameter '" + p.name + "' of module " + m.name,
            p.loc);
      }
      env.emplace_back(p.name, *value);
    }
    return env;
  }

  void inline_module(const Module& m, const std::string& prefix,
                     const std::vector<std::pair<std::string, long long>>&
                         param_overrides,
                     Module& out, int depth, bool keep_ports) {
    if (depth > options_.max_depth) {
      throw ParseError("module hierarchy too deep (cycle?)", m.loc);
    }
    if (std::find(stack_.begin(), stack_.end(), m.name) != stack_.end()) {
      throw ParseError("recursive instantiation of module " + m.name, m.loc);
    }
    stack_.push_back(m.name);

    const ParamEnv env = resolve_params(m, param_overrides);

    // Gather declared plus implicit nets.
    std::unordered_set<std::string> net_names;
    for (const NetDecl& net : m.nets) net_names.insert(net.name);
    std::set<std::string> used;
    for (const ContinuousAssign& ca : m.assigns) {
      collect_identifiers(*ca.lhs, used);
      collect_identifiers(*ca.rhs, used);
    }
    for (const AlwaysBlock& ab : m.always_blocks) {
      for (const SensitivityItem& item : ab.sensitivity) {
        if (item.signal != nullptr) collect_identifiers(*item.signal, used);
      }
      if (ab.body != nullptr) collect_identifiers(*ab.body, used);
    }
    for (const GateInstance& gate : m.gates) {
      for (const ExprPtr& t : gate.terminals) collect_identifiers(*t, used);
    }
    for (const ModuleInstance& inst : m.instances) {
      for (const PortConnection& conn : inst.connections) {
        if (conn.actual != nullptr) collect_identifiers(*conn.actual, used);
      }
    }
    auto is_param = [&env](const std::string& name) {
      return std::any_of(env.begin(), env.end(),
                         [&name](const auto& kv) { return kv.first == name; });
    };
    std::vector<NetDecl> implicit;
    for (const std::string& name : used) {
      if (net_names.count(name) == 0 && !is_param(name)) {
        NetDecl net;
        net.name = name;
        net.type = NetType::kWire;
        implicit.push_back(std::move(net));
        net_names.insert(name);
      }
    }

    RewriteContext ctx;
    ctx.prefix = prefix;
    ctx.net_names = &net_names;
    ctx.params = &env;

    // Nets.
    for (const NetDecl& net : m.nets) {
      NetDecl copy;
      copy.name = prefixed(ctx, net.name);
      copy.type = net.type;
      copy.is_signed = net.is_signed;
      copy.loc = net.loc;
      if (keep_ports) copy.direction = net.direction;
      if (net.range.has_value()) {
        Range r;
        r.msb = rewrite_expr(*net.range->msb, ctx);
        r.lsb = rewrite_expr(*net.range->lsb, ctx);
        copy.range = std::move(r);
      }
      out.nets.push_back(std::move(copy));
      if (net.init != nullptr) {
        ContinuousAssign ca;
        ca.loc = net.loc;
        ca.lhs = make_identifier(prefixed(ctx, net.name), net.loc);
        ca.rhs = rewrite_expr(*net.init, ctx);
        out.assigns.push_back(std::move(ca));
      }
    }
    for (const NetDecl& net : implicit) {
      NetDecl copy;
      copy.name = prefixed(ctx, net.name);
      copy.type = NetType::kWire;
      out.nets.push_back(std::move(copy));
    }

    // Behavior.
    for (const ContinuousAssign& ca : m.assigns) {
      ContinuousAssign copy;
      copy.loc = ca.loc;
      copy.lhs = rewrite_expr(*ca.lhs, ctx);
      copy.rhs = rewrite_expr(*ca.rhs, ctx);
      out.assigns.push_back(std::move(copy));
    }
    for (const AlwaysBlock& ab : m.always_blocks) {
      AlwaysBlock copy;
      copy.is_initial = ab.is_initial;
      copy.sensitivity_star = ab.sensitivity_star;
      copy.loc = ab.loc;
      for (const SensitivityItem& item : ab.sensitivity) {
        SensitivityItem si;
        si.edge = item.edge;
        si.signal = item.signal == nullptr ? nullptr
                                           : rewrite_expr(*item.signal, ctx);
        copy.sensitivity.push_back(std::move(si));
      }
      copy.body = ab.body == nullptr ? nullptr : rewrite_stmt(*ab.body, ctx);
      out.always_blocks.push_back(std::move(copy));
    }
    for (const GateInstance& gate : m.gates) {
      GateInstance copy;
      copy.gate_type = gate.gate_type;
      copy.instance_name =
          gate.instance_name.empty() ? "" : prefixed(ctx, gate.instance_name);
      copy.loc = gate.loc;
      for (const ExprPtr& t : gate.terminals) {
        copy.terminals.push_back(rewrite_expr(*t, ctx));
      }
      out.gates.push_back(std::move(copy));
    }

    // Instances: connect ports via assigns, then recurse.
    for (const ModuleInstance& inst : m.instances) {
      const Module* child = design_.find_module(inst.module_name);
      if (child == nullptr) {
        throw ParseError("unknown module '" + inst.module_name + "'",
                         inst.loc);
      }
      // Parameter overrides resolved in the parent environment.
      std::vector<std::pair<std::string, long long>> child_overrides;
      for (std::size_t i = 0; i < inst.parameter_overrides.size(); ++i) {
        const PortConnection& conn = inst.parameter_overrides[i];
        if (conn.actual == nullptr) continue;
        const auto value = fold_constant(*conn.actual, env);
        if (!value.has_value()) {
          throw ParseError("non-constant parameter override on instance " +
                               inst.instance_name,
                           inst.loc);
        }
        std::string param_name = conn.port_name;
        if (param_name.empty()) {
          // Positional: i-th non-local parameter of the child.
          std::size_t index = 0;
          for (const ParamDecl& p : child->params) {
            if (p.local) continue;
            if (index == i) {
              param_name = p.name;
              break;
            }
            ++index;
          }
          if (param_name.empty()) {
            throw ParseError("too many positional parameter overrides",
                             inst.loc);
          }
        }
        child_overrides.emplace_back(param_name, *value);
      }

      const std::string child_prefix = prefix + inst.instance_name + ".";

      // Port bindings.
      std::vector<std::pair<std::string, const PortConnection*>> bindings;
      const bool named = !inst.connections.empty() &&
                         !inst.connections.front().port_name.empty();
      if (named) {
        for (const PortConnection& conn : inst.connections) {
          if (conn.port_name.empty()) {
            throw ParseError("cannot mix named and positional connections",
                             inst.loc);
          }
          bindings.emplace_back(conn.port_name, &conn);
        }
      } else {
        if (inst.connections.size() > child->port_order.size()) {
          throw ParseError("too many positional connections on instance " +
                               inst.instance_name,
                           inst.loc);
        }
        for (std::size_t i = 0; i < inst.connections.size(); ++i) {
          bindings.emplace_back(child->port_order[i], &inst.connections[i]);
        }
      }
      for (const auto& [port_name, conn] : bindings) {
        const NetDecl* port = child->find_net(port_name);
        if (port == nullptr || !port->direction.has_value()) {
          throw ParseError("module " + child->name + " has no port '" +
                               port_name + "'",
                           inst.loc);
        }
        if (conn->actual == nullptr) continue;  // explicitly unconnected
        ContinuousAssign ca;
        ca.loc = inst.loc;
        ExprPtr actual = rewrite_expr(*conn->actual, ctx);
        ExprPtr formal = make_identifier(child_prefix + port_name, inst.loc);
        switch (*port->direction) {
          case PortDirection::kInput:
            ca.lhs = std::move(formal);
            ca.rhs = std::move(actual);
            break;
          case PortDirection::kOutput:
            ca.lhs = std::move(actual);
            ca.rhs = std::move(formal);
            break;
          case PortDirection::kInout:
            throw ParseError("inout ports are not supported", inst.loc);
        }
        out.assigns.push_back(std::move(ca));
      }

      inline_module(*child, child_prefix, child_overrides, out, depth + 1,
                    /*keep_ports=*/false);
    }

    stack_.pop_back();
  }

  const Design& design_;
  const ElaborateOptions& options_;
  std::vector<std::string> stack_;
};

}  // namespace

Module elaborate(const Design& design, const std::string& top,
                 const ElaborateOptions& options) {
  Elaborator elaborator(design, options);
  return elaborator.run(top);
}

std::string infer_top_module(const Design& design) {
  if (design.modules.empty()) {
    throw ParseError("design contains no modules", {1, 1});
  }
  std::unordered_set<std::string> instantiated;
  for (const Module& m : design.modules) {
    for (const ModuleInstance& inst : m.instances) {
      instantiated.insert(inst.module_name);
    }
  }
  std::vector<std::string> tops;
  for (const Module& m : design.modules) {
    if (instantiated.count(m.name) == 0) tops.push_back(m.name);
  }
  if (tops.size() != 1) {
    throw ParseError(
        util::format("cannot infer top module: %zu candidates", tops.size()),
        {1, 1});
  }
  return tops.front();
}

}  // namespace gnn4ip::verilog
