// Hierarchy elaboration: flatten a multi-module design into a single
// module (the "Preprocess … flatten the modular codes" phase of the
// paper's Fig. 2 pipeline).
//
// Instances are inlined recursively. Internal signals of an instance
// `u1` of a child get hierarchical names `u1.sig`; port connections
// become continuous assigns; parameters are resolved to constants with
// overrides applied. Inout ports and recursive instantiation raise
// ParseError.
#pragma once

#include <string>

#include "verilog/ast.h"

namespace gnn4ip::verilog {

struct ElaborateOptions {
  /// Safety bound on hierarchy depth (cycles are also detected directly).
  int max_depth = 64;
};

/// Flatten `top` (by module name) within `design` into a self-contained
/// module with no instances and no unresolved parameters.
[[nodiscard]] Module elaborate(const Design& design, const std::string& top,
                               const ElaborateOptions& options = {});

/// Convenience: pick the unique module that is never instantiated by
/// another (throws ParseError if that module is not unique).
[[nodiscard]] std::string infer_top_module(const Design& design);

}  // namespace gnn4ip::verilog
