#include "verilog/ast.h"

#include <sstream>

#include "util/contract.h"

namespace gnn4ip::verilog {

const char* to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::kPlus: return "+";
    case UnaryOp::kMinus: return "-";
    case UnaryOp::kBitNot: return "~";
    case UnaryOp::kLogNot: return "!";
    case UnaryOp::kRedAnd: return "&";
    case UnaryOp::kRedOr: return "|";
    case UnaryOp::kRedXor: return "^";
    case UnaryOp::kRedNand: return "~&";
    case UnaryOp::kRedNor: return "~|";
    case UnaryOp::kRedXnor: return "~^";
  }
  return "?";
}

const char* to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kPow: return "**";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kBitXnor: return "~^";
    case BinaryOp::kLogAnd: return "&&";
    case BinaryOp::kLogOr: return "||";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNeq: return "!=";
    case BinaryOp::kCaseEq: return "===";
    case BinaryOp::kCaseNeq: return "!==";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kAShl: return "<<<";
    case BinaryOp::kAShr: return ">>>";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->text = text;
  copy->op_unary = op_unary;
  copy->op_binary = op_binary;
  copy->loc = loc;
  copy->operands.reserve(operands.size());
  for (const ExprPtr& child : operands) {
    copy->operands.push_back(child == nullptr ? nullptr : child->clone());
  }
  return copy;
}

ExprPtr make_identifier(std::string name, SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdentifier;
  e->text = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr make_number(std::string literal, SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->text = std::move(literal);
  e->loc = loc;
  return e;
}

ExprPtr make_unary(UnaryOp op, ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op_unary = op;
  e->loc = a == nullptr ? SourceLocation{} : a->loc;
  e->operands.push_back(std::move(a));
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op_binary = op;
  e->loc = a == nullptr ? SourceLocation{} : a->loc;
  e->operands.push_back(std::move(a));
  e->operands.push_back(std::move(b));
  return e;
}

namespace {

/// Parse the numeric value of a Verilog literal; nullopt for x/z digits.
std::optional<long long> literal_value(const std::string& text) {
  std::string digits;
  char base = 'd';
  const std::size_t quote = text.find('\'');
  if (quote == std::string::npos) {
    digits = text;
  } else {
    std::size_t base_pos = quote + 1;
    if (base_pos < text.size() &&
        (text[base_pos] == 's' || text[base_pos] == 'S')) {
      ++base_pos;
    }
    if (base_pos >= text.size()) return std::nullopt;
    base = static_cast<char>(std::tolower(static_cast<unsigned char>(text[base_pos])));
    digits = text.substr(base_pos + 1);
  }
  std::string clean;
  for (char c : digits) {
    if (c == '_') continue;
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == 'x' || lower == 'z' || lower == '?') return std::nullopt;
    clean.push_back(c);
  }
  if (clean.empty()) return std::nullopt;
  int radix = 10;
  switch (base) {
    case 'b': radix = 2; break;
    case 'o': radix = 8; break;
    case 'd': radix = 10; break;
    case 'h': radix = 16; break;
    default: return std::nullopt;
  }
  if (clean.find('.') != std::string::npos) return std::nullopt;  // real
  try {
    return std::stoll(clean, nullptr, radix);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<long long> fold_constant(
    const Expr& e, const std::vector<std::pair<std::string, long long>>& env) {
  switch (e.kind) {
    case ExprKind::kNumber:
      return literal_value(e.text);
    case ExprKind::kIdentifier: {
      for (const auto& [name, value] : env) {
        if (name == e.text) return value;
      }
      return std::nullopt;
    }
    case ExprKind::kUnary: {
      const auto a = fold_constant(*e.operands[0], env);
      if (!a) return std::nullopt;
      switch (e.op_unary) {
        case UnaryOp::kPlus: return *a;
        case UnaryOp::kMinus: return -*a;
        case UnaryOp::kBitNot: return ~*a;
        case UnaryOp::kLogNot: return *a == 0 ? 1 : 0;
        default: return std::nullopt;  // reductions need bit widths
      }
    }
    case ExprKind::kBinary: {
      const auto a = fold_constant(*e.operands[0], env);
      const auto b = fold_constant(*e.operands[1], env);
      if (!a || !b) return std::nullopt;
      switch (e.op_binary) {
        case BinaryOp::kAdd: return *a + *b;
        case BinaryOp::kSub: return *a - *b;
        case BinaryOp::kMul: return *a * *b;
        case BinaryOp::kDiv: return *b == 0 ? std::optional<long long>{} : *a / *b;
        case BinaryOp::kMod: return *b == 0 ? std::optional<long long>{} : *a % *b;
        case BinaryOp::kShl: return *a << *b;
        case BinaryOp::kShr: return *a >> *b;
        case BinaryOp::kBitAnd: return *a & *b;
        case BinaryOp::kBitOr: return *a | *b;
        case BinaryOp::kBitXor: return *a ^ *b;
        case BinaryOp::kLogAnd: return (*a != 0 && *b != 0) ? 1 : 0;
        case BinaryOp::kLogOr: return (*a != 0 || *b != 0) ? 1 : 0;
        case BinaryOp::kEq: return *a == *b ? 1 : 0;
        case BinaryOp::kNeq: return *a != *b ? 1 : 0;
        case BinaryOp::kLt: return *a < *b ? 1 : 0;
        case BinaryOp::kLe: return *a <= *b ? 1 : 0;
        case BinaryOp::kGt: return *a > *b ? 1 : 0;
        case BinaryOp::kGe: return *a >= *b ? 1 : 0;
        default: return std::nullopt;
      }
    }
    case ExprKind::kTernary: {
      const auto c = fold_constant(*e.operands[0], env);
      if (!c) return std::nullopt;
      return fold_constant(*e.operands[*c != 0 ? 1 : 2], env);
    }
    default:
      return std::nullopt;
  }
}

std::string to_verilog(const Expr& e) {
  std::ostringstream os;
  switch (e.kind) {
    case ExprKind::kIdentifier:
    case ExprKind::kNumber:
      os << e.text;
      break;
    case ExprKind::kString:
      os << '"' << e.text << '"';
      break;
    case ExprKind::kUnary:
      os << '(' << to_string(e.op_unary) << to_verilog(*e.operands[0]) << ')';
      break;
    case ExprKind::kBinary:
      os << '(' << to_verilog(*e.operands[0]) << ' ' << to_string(e.op_binary)
         << ' ' << to_verilog(*e.operands[1]) << ')';
      break;
    case ExprKind::kTernary:
      os << '(' << to_verilog(*e.operands[0]) << " ? "
         << to_verilog(*e.operands[1]) << " : " << to_verilog(*e.operands[2])
         << ')';
      break;
    case ExprKind::kConcat: {
      os << '{';
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i != 0) os << ", ";
        os << to_verilog(*e.operands[i]);
      }
      os << '}';
      break;
    }
    case ExprKind::kRepeat:
      os << '{' << to_verilog(*e.operands[0]) << '{'
         << to_verilog(*e.operands[1]) << "}}";
      break;
    case ExprKind::kBitSelect:
      os << to_verilog(*e.operands[0]) << '[' << to_verilog(*e.operands[1])
         << ']';
      break;
    case ExprKind::kPartSelect:
      os << to_verilog(*e.operands[0]) << '[' << to_verilog(*e.operands[1])
         << ':' << to_verilog(*e.operands[2]) << ']';
      break;
    case ExprKind::kGateOp: {
      os << e.text << '(';
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i != 0) os << ", ";
        os << to_verilog(*e.operands[i]);
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

StmtPtr Stmt::clone() const {
  auto copy = std::make_unique<Stmt>();
  copy->kind = kind;
  copy->cond = cond == nullptr ? nullptr : cond->clone();
  copy->lhs = lhs == nullptr ? nullptr : lhs->clone();
  copy->rhs = rhs == nullptr ? nullptr : rhs->clone();
  copy->casex = casex;
  copy->loc = loc;
  copy->children.reserve(children.size());
  for (const StmtPtr& child : children) {
    copy->children.push_back(child == nullptr ? nullptr : child->clone());
  }
  copy->case_items.reserve(case_items.size());
  for (const CaseItem& item : case_items) {
    CaseItem ci;
    for (const ExprPtr& label : item.labels) {
      ci.labels.push_back(label->clone());
    }
    ci.body = item.body == nullptr ? nullptr : item.body->clone();
    copy->case_items.push_back(std::move(ci));
  }
  return copy;
}

Range Range::clone() const {
  Range r;
  r.msb = msb == nullptr ? nullptr : msb->clone();
  r.lsb = lsb == nullptr ? nullptr : lsb->clone();
  return r;
}

const NetDecl* Module::find_net(const std::string& net_name) const {
  for (const NetDecl& net : nets) {
    if (net.name == net_name) return &net;
  }
  return nullptr;
}

const Module* Design::find_module(const std::string& module_name) const {
  for (const Module& m : modules) {
    if (m.name == module_name) return &m;
  }
  return nullptr;
}

}  // namespace gnn4ip::verilog
