// audit::AuditService — the production entry point of this repo:
// Verilog in, piracy verdicts out (paper §IV, Alg. 1, applied at corpus
// scale the way the ICCAD'22 GNN-hardware-security survey describes
// production IP-infringement screening).
//
// The service owns the three pieces every deployment needs and the
// examples used to hand-wire: a loaded Hw2Vec model, a resident corpus
// (a core::ShardedCorpus — K EmbeddingStore shards of one D-float row
// per design), and the shared worker pool. The flow is:
//
//   audit::AuditService service(model);            // or from_model_file
//   service.add_library("crc8", crc8_verilog);     // pinned resident IP
//   service.submit("incoming#1", verilog_text);    // bounded MP queue
//   for (const auto& report : service.screen())    // batch: parse →
//     ...                                          //  featurize → embed
//                                                  //  → score → admit
//
// Error handling is Result-style per submission: a malformed design
// yields a Diagnostic in its ScreenReport and never kills the batch.
// The resident cache is bounded by max_resident with a pluggable
// EvictionPolicy (LRU by default), plus an optional per-shard budget;
// pinned library entries are never evicted.
//
// Commit semantics (the determinism contract): every submission commits
// *individually*, in admission-ticket order — admit, score against the
// residents present at that instant, evict, compact. A batch of N is
// therefore bit-identical to N batches of one, which is what makes the
// verdict set for a fixed submission stream invariant across batching,
// shard count, worker count, *and consumer count*: any interleaving of
// K consumers produces the same per-ticket corpus states a sequential
// single-consumer run would. (Before the multi-consumer refactor,
// screen() scored a whole batch against the pre-batch corpus; verdicts
// now include batch-mates admitted under earlier tickets.)
//
// Threading: submit() is safe from any number of producer threads.
// screen() and screen_batch() are re-entrant — K consumer threads may
// screen disjoint batches concurrently. The expensive phase (compile +
// featurize + embed) runs fully parallel across consumers on per-call
// scratch state; the commit phase serializes through a ticket turnstile
// (tickets from reserve_tickets() commit in order), which is the single
// serialized commit point guarding the eviction policy and the name
// index. add_library() rides the same turnstile, so growing the pinned
// library mid-stream is safe too. top_k()/contains()/index_of()/
// pinned()/index-stable reads take the state lock shared and may run
// concurrently with screening. audit::AsyncAuditor stands a pool of
// daemon consumers on top of screen_batch().
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/admission_log.h"
#include "audit/eviction.h"
#include "audit/pipeline.h"
#include "core/sharded_corpus.h"
#include "gnn/hw2vec.h"
#include "train/dataset.h"
#include "util/bounded_queue.h"
#include "util/thread_annotations.h"

namespace gnn4ip::audit {

struct AuditOptions {
  /// Scoring knobs shared with the core scoring layers — worker threads,
  /// kernel block size, and the decision boundary δ live here once
  /// instead of being re-declared per layer.
  core::ScorerOptions scorer;
  /// Shards of the resident corpus (deterministic name-hash placement).
  /// Verdicts are bit-identical for any value; more shards buy parallel
  /// scoring fan-out and independent eviction budgets.
  std::size_t num_shards = 1;
  /// Resident-cache bound (live rows). 0 = unbounded. Pinned library
  /// entries count toward the bound but are never evicted, so a fully
  /// pinned corpus may exceed it.
  std::size_t max_resident = 0;
  /// Per-shard live-row budget (0 = unbounded). Enforced after
  /// max_resident with the same policy/pinning rules, so one hot shard
  /// cannot monopolize the resident cache.
  std::size_t shard_budget = 0;
  /// Capacity of the bounded submission queue; submit() refuses work
  /// beyond this until the consumer screens.
  std::size_t queue_capacity = 256;
  dfg::PipelineOptions pipeline;
  gnn::FeaturizeOptions featurize;
};

/// One design handed to screen_batch(): either Verilog source to
/// compile or pre-featurized tensors. This is the unit multi-consumer
/// front ends (audit::AsyncAuditor) build batches from without going
/// through the service's own submission queue.
struct AuditItem {
  std::string name;
  std::string source;         // valid when from_source
  gnn::GraphTensors tensors;  // valid otherwise
  bool from_source = false;
};

/// Per-submission outcome: admitted to the corpus, or rejected with a
/// diagnostic. One bad design never affects its batch-mates.
struct Submission {
  std::string name;
  bool accepted = false;  // compiled + embedded + admitted
  /// Corpus index as of this submission's commit; kNoIndex when the
  /// entry was rejected or evicted by its own commit. Later commits
  /// (same batch or a concurrent consumer's) may evict or renumber the
  /// entry — resolve current positions via AuditService::index_of.
  std::size_t corpus_index = core::ShardedCorpus::kNoIndex;
  Diagnostic error;  // valid when !accepted
};

/// One similarity verdict against a resident corpus entry.
struct Verdict {
  std::string matched;  // corpus entry name at scoring time
  /// Index of the matched entry as of the submission's commit; kNoIndex
  /// if that commit itself evicted it. Stale after later commits.
  std::size_t corpus_index = core::ShardedCorpus::kNoIndex;
  float similarity = 0.0F;  // Ŷ ∈ [−1, 1]
  bool flagged = false;     // Ŷ > δ (Alg. 1 decision)
};

/// screen() output for one submission, in submission order.
struct ScreenReport {
  Submission submission;
  /// Residents scoring above δ at this submission's commit (everything
  /// admitted under an earlier ticket, batch-mates included),
  /// descending similarity (ascending corpus index on ties). Empty when
  /// nothing flags or the submission was rejected.
  std::vector<Verdict> verdicts;
  /// Nearest resident entry even when nothing flags (the "closest
  /// miss"); nullopt when the resident corpus was empty at commit time
  /// or the submission was rejected.
  std::optional<Verdict> best;
};

class AuditService {
 public:
  /// Serialized per-commit delivery hook for screen_batch: fired inside
  /// the commit turnstile (so invocations across all consumers are
  /// mutually exclusive and in global ticket order) with the item's
  /// index within its batch and the finished report, which it consumes.
  using CommitCallback = std::function<void(std::size_t, ScreenReport&&)>;

  /// Takes ownership of a trained model. `policy` defaults to LRU.
  explicit AuditService(gnn::Hw2Vec model, const AuditOptions& options = {},
                        std::unique_ptr<EvictionPolicy> policy = nullptr);

  /// Backend seam: run the same commit turnstile, eviction, and snapshot
  /// layers over a caller-built corpus backend — an in-process
  /// core::ShardedCorpus or a dist::DistCorpus of remote shard servers.
  /// `options.num_shards` is overridden by the backend's own shard count
  /// (the backend is the truth); `corpus` must be non-null and empty.
  AuditService(gnn::Hw2Vec model, const AuditOptions& options,
               std::unique_ptr<core::CorpusBackend> corpus,
               std::unique_ptr<EvictionPolicy> policy = nullptr);

  /// Deployment path: load weights persisted by gnn::save_model_file.
  [[nodiscard]] static AuditService from_model_file(
      const std::string& path, const AuditOptions& options = {},
      std::unique_ptr<EvictionPolicy> policy = nullptr);

  // ---- Resident library -------------------------------------------------
  /// Compile + embed + admit inline and pin (never evicted). Returns the
  /// per-design outcome; a parse failure reports a Diagnostic and leaves
  /// the corpus untouched. Re-adding a resident name replaces its row.
  /// Takes one admission ticket, so it is safe concurrently with
  /// screening consumers (the row lands between two commits).
  Submission add_library(std::string name, const std::string& verilog_source);
  Submission add_library(std::string name, gnn::GraphTensors tensors);
  Submission add_library(const train::GraphEntry& entry);

  // ---- Submission queue -------------------------------------------------
  /// Enqueue a design for the next screen(). Thread-safe (multi-
  /// producer). Returns false when the bounded queue is full — the
  /// caller should screen() (or drop) and retry.
  [[nodiscard]] bool submit(std::string name, std::string verilog_source);
  [[nodiscard]] bool submit(std::string name, gnn::GraphTensors tensors);
  [[nodiscard]] bool submit(const train::GraphEntry& entry);

  /// Submissions waiting for the next screen().
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  // ---- Screening --------------------------------------------------------
  /// Drain the queue as one batch and screen it (screen_batch below with
  /// freshly reserved tickets). Reports align with submission order;
  /// each submission commits individually in ticket order, so a
  /// resubmitted name replaces its earlier row at its own commit and
  /// later batch-mates score against it.
  std::vector<ScreenReport> screen();

  /// Reserve `n` consecutive admission tickets; returns the first.
  /// Tickets are the global commit order: screen_batch commits item i
  /// under ticket first_ticket + i, and a commit waits until every
  /// earlier ticket has committed. Callers must reserve in the same
  /// order they dequeued the submissions (AsyncAuditor holds one
  /// hand-off lock across {pop batch, reserve}) and must eventually
  /// commit every reserved ticket — screen_batch guarantees this even
  /// on the exception path.
  [[nodiscard]] std::size_t reserve_tickets(std::size_t n);

  /// Screen one batch re-entrantly: compile + featurize + embed on this
  /// thread's scratch state (fully concurrent across consumers), then
  /// commit each item in ticket order through the turnstile — admit,
  /// score against the residents of that instant, evict, compact. With
  /// `on_commit` set, each report is handed off inside its commit slot
  /// (serialized across consumers, global ticket order) and the
  /// returned vector holds moved-from placeholders; otherwise reports
  /// are returned in batch order with indices remapped to the corpus
  /// state at the *end* of the batch (the single-consumer contract:
  /// entries evicted by a later batch-mate read kNoIndex).
  std::vector<ScreenReport> screen_batch(std::vector<AuditItem> batch,
                                         std::size_t first_ticket,
                                         const CommitCallback& on_commit);

  /// The k resident entries most similar to resident entry `name`
  /// (itself excluded), descending similarity, flagged per δ. Safe
  /// concurrently with screening (takes the state lock shared — commits
  /// wait, readers overlap).
  [[nodiscard]] std::vector<Verdict> top_k(const std::string& name,
                                           std::size_t k) const;

  // ---- Durable corpus (snapshot + warm restart) -------------------------
  /// Write the resident corpus (one binary file per shard + manifest,
  /// core::ShardedCorpus::save) and the service state (pins + name
  /// index) to directory `dir`. Runs as one serialized commit under the
  /// admission turnstile, so the snapshot is always a consistent
  /// post-commit state: every earlier ticket is fully in it, every
  /// later ticket fully absent. The manifest records this service's
  /// model fingerprint; the AdmissionLog (if set) gets a checkpoint()
  /// inside the same commit. Safe concurrently with screening
  /// consumers and producers.
  void save_corpus(const std::string& dir);

  /// Warm restart: replace the resident corpus, name index, pins, and
  /// eviction recency with a snapshot written by save_corpus(). The
  /// snapshot must have been written against a model with this
  /// service's fingerprint (core::SnapshotFingerprintError otherwise);
  /// every malformed-snapshot case throws a distinct typed
  /// core::SnapshotError and leaves the service unchanged. Post-load
  /// screening and top_k are bit-identical to the never-restarted
  /// service — rows round-trip as exact bytes and the restored corpus
  /// adopts the snapshot's shard count (options().num_shards follows).
  /// Runs as one serialized commit, like save_corpus().
  void load_corpus(const std::string& dir);

  /// Fingerprint of the owned model (gnn::model_fingerprint), as
  /// recorded in snapshot manifests.
  [[nodiscard]] const std::string& model_fingerprint() const {
    return model_fingerprint_;
  }

  /// Install the admission log (see audit/admission_log.h): append()
  /// fires inside every admission's commit slot, checkpoint() inside
  /// every save_corpus(). Configuration-time: set it before the first
  /// submit/screen, not while consumers stream. Pass nullptr to detach.
  void set_admission_log(std::shared_ptr<AdmissionLog> log) {
    admission_log_ = std::move(log);
  }

  // ---- Pinning & introspection ------------------------------------------
  void pin(const std::string& name);
  void unpin(const std::string& name);
  [[nodiscard]] bool pinned(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Current corpus index of a resident entry (kNoIndex when absent).
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  [[nodiscard]] std::size_t resident() const {
    util::ReaderLock state(state_mu_);
    return corpus_->live_count();
  }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    util::ReaderLock state(state_mu_);
    return corpus_->name(i);
  }
  [[nodiscard]] float delta() const { return options_.scorer.delta; }
  /// Configuration-time knob: not synchronized against in-flight
  /// screening consumers.
  void set_delta(float delta) { options_.scorer.delta = delta; }
  [[nodiscard]] const AuditOptions& options() const { return options_; }
  [[nodiscard]] gnn::Hw2Vec& model() { return model_; }
  /// The resident corpus backend (tests and benches compare against the
  /// raw core scoring paths through this). The reference is replaced —
  /// not mutated — by load_corpus(); re-fetch it after a warm restart.
  [[nodiscard]] const core::CorpusBackend& corpus() const { return *corpus_; }

 private:
  /// Block until `ticket` is the next to commit (turnstile entry).
  void commit_begin(std::size_t ticket);
  /// Release the turnstile to the next ticket.
  void commit_end();
  /// Commit one accepted submission under the turnstile (caller holds
  /// the commit slot for `ticket`): admit, score vs the current
  /// residents, evict, compact, log the admission, and write the
  /// report. `prior` (when non-null) is the already-committed prefix of
  /// this batch whose indices must chase this commit's compaction
  /// mapping (single-consumer screen() contract).
  void commit_one(std::size_t ticket, const std::string& name,
                  const tensor::Matrix& embedding, ScreenReport& report,
                  std::vector<ScreenReport>* prior, std::size_t prior_count);

  /// Admit an embedding under `name`, replacing any resident row of the
  /// same name. Returns the (pre-compaction) row index. Caller holds
  /// the commit slot and state_mu_ exclusively.
  std::size_t admit(const std::string& name, const tensor::Matrix& embedding)
      GNN4IP_REQUIRES(state_mu_);
  /// Evict down to max_resident, then down to shard_budget per shard
  /// (never pinned entries), then compact the corpus and remap the name
  /// index. Returns the old→new mapping; empty when nothing was removed
  /// (indices unchanged). Caller holds the commit slot and state_mu_
  /// exclusively.
  std::vector<std::size_t> enforce_capacity_and_compact()
      GNN4IP_REQUIRES(state_mu_);

  AuditOptions options_;
  gnn::Hw2Vec model_;
  /// Computed once at construction; snapshots record and validate it.
  std::string model_fingerprint_;
  Pipeline pipeline_;
  /// Owned indirectly so load_corpus() can build + validate a fresh
  /// corpus off to the side and swap it in only once every typed check
  /// has passed (ShardedCorpus itself is immovable — it owns mutexes).
  /// The pointer is reassigned only by load_corpus, inside a commit
  /// slot and under state_mu_ exclusive; the corpus object itself does
  /// its own internal locking, so screen_batch's expensive phase reads
  /// the pointer lock-free (not GUARDED_BY — annotating it would force
  /// the fully-parallel embed phase to hold state_mu_ shared and
  /// serialize against commit slots).
  std::unique_ptr<core::CorpusBackend> corpus_;
  std::unique_ptr<EvictionPolicy> policy_ GNN4IP_PT_GUARDED_BY(state_mu_);
  /// Replay seam (audit/admission_log.h); may be null.
  /// Configuration-time (set before consumers stream), so unguarded.
  std::shared_ptr<AdmissionLog> admission_log_;
  util::BoundedQueue<AuditItem> queue_;

  /// Guards index_by_name_/pinned_/policy_: exclusive inside a commit
  /// slot (mutations are already serialized by the turnstile; the lock
  /// exists for the readers), shared in top_k/contains/index_of/pinned.
  mutable util::SharedMutex state_mu_{util::lock_rank::kState};
  std::unordered_map<std::string, std::size_t> index_by_name_
      GNN4IP_GUARDED_BY(state_mu_);
  std::unordered_set<std::string> pinned_ GNN4IP_GUARDED_BY(state_mu_);

  /// The admission-ticket turnstile: tickets_issued_ is the next ticket
  /// to hand out, next_commit_ the next allowed to commit. Commits
  /// proceed in strictly increasing ticket order across all consumers.
  util::Mutex commit_mu_{util::lock_rank::kCommit};
  util::CondVar commit_cv_;
  std::size_t tickets_issued_ GNN4IP_GUARDED_BY(commit_mu_) = 0;
  std::size_t next_commit_ GNN4IP_GUARDED_BY(commit_mu_) = 0;

  /// Serializes {drain queue_, reserve tickets} in screen() so two
  /// legacy sync callers cannot invert pop order vs ticket order.
  util::Mutex sync_mu_{util::lock_rank::kSync};
};

}  // namespace gnn4ip::audit
