// audit::AuditService — the production entry point of this repo:
// Verilog in, piracy verdicts out (paper §IV, Alg. 1, applied at corpus
// scale the way the ICCAD'22 GNN-hardware-security survey describes
// production IP-infringement screening).
//
// The service owns the three pieces every deployment needs and the
// examples used to hand-wire: a loaded Hw2Vec model, a resident corpus
// (a core::ShardedCorpus — K EmbeddingStore shards of one D-float row
// per design), and the shared worker pool. The flow is:
//
//   audit::AuditService service(model);            // or from_model_file
//   service.add_library("crc8", crc8_verilog);     // pinned resident IP
//   service.submit("incoming#1", verilog_text);    // bounded MP queue
//   for (const auto& report : service.screen())    // batch: parse →
//     ...                                          //  featurize → embed
//                                                  //  → score_new_rows
//
// Error handling is Result-style per submission: a malformed design
// yields a Diagnostic in its ScreenReport and never kills the batch.
// The resident cache is bounded by max_resident with a pluggable
// EvictionPolicy (LRU by default), plus an optional per-shard budget;
// pinned library entries are never evicted. Scores are bit-identical
// for any shard count and any worker count — screen() reads the same
// score_new_rows cells a hand-built single-shard PairwiseScorer would
// produce, because both sit on the same core/cosine_kernels arithmetic
// and the sharded corpus keeps a shard-count-independent global index
// space.
//
// Threading: submit() is safe from any number of producer threads;
// screen(), add_library(), and top_k() mutate the corpus and belong to
// one consumer thread (the screening loop). audit::AsyncAuditor wraps a
// service in exactly that consumer thread when callers want a daemon.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/eviction.h"
#include "audit/pipeline.h"
#include "core/sharded_corpus.h"
#include "gnn/hw2vec.h"
#include "train/dataset.h"
#include "util/bounded_queue.h"

namespace gnn4ip::audit {

struct AuditOptions {
  /// Scoring knobs shared with the core scoring layers — worker threads,
  /// kernel block size, and the decision boundary δ live here once
  /// instead of being re-declared per layer.
  core::ScorerOptions scorer;
  /// Shards of the resident corpus (deterministic name-hash placement).
  /// Verdicts are bit-identical for any value; more shards buy parallel
  /// scoring fan-out and independent eviction budgets.
  std::size_t num_shards = 1;
  /// Resident-cache bound (live rows). 0 = unbounded. Pinned library
  /// entries count toward the bound but are never evicted, so a fully
  /// pinned corpus may exceed it.
  std::size_t max_resident = 0;
  /// Per-shard live-row budget (0 = unbounded). Enforced after
  /// max_resident with the same policy/pinning rules, so one hot shard
  /// cannot monopolize the resident cache.
  std::size_t shard_budget = 0;
  /// Capacity of the bounded submission queue; submit() refuses work
  /// beyond this until the consumer screens.
  std::size_t queue_capacity = 256;
  dfg::PipelineOptions pipeline;
  gnn::FeaturizeOptions featurize;
};

/// Per-submission outcome: admitted to the corpus, or rejected with a
/// diagnostic. One bad design never affects its batch-mates.
struct Submission {
  std::string name;
  bool accepted = false;  // compiled + embedded + admitted
  /// Index in the (compacted) corpus after screen(); kNoIndex when the
  /// entry was rejected, evicted in the same call, or replaced by a
  /// later submission of the same name.
  std::size_t corpus_index = core::ShardedCorpus::kNoIndex;
  Diagnostic error;  // valid when !accepted
};

/// One similarity verdict against a resident corpus entry.
struct Verdict {
  std::string matched;  // corpus entry name at scoring time
  /// Post-compaction index of the matched entry; kNoIndex if it was
  /// evicted by the same screen() call that produced the verdict.
  std::size_t corpus_index = core::ShardedCorpus::kNoIndex;
  float similarity = 0.0F;  // Ŷ ∈ [−1, 1]
  bool flagged = false;     // Ŷ > δ (Alg. 1 decision)
};

/// screen() output for one submission, in submission order.
struct ScreenReport {
  Submission submission;
  /// Resident entries scoring above δ, descending similarity
  /// (ascending corpus index on ties). Empty when nothing flags or the
  /// submission was rejected.
  std::vector<Verdict> verdicts;
  /// Nearest resident entry even when nothing flags (the "closest
  /// miss"); nullopt when the resident corpus was empty at screening
  /// time or the submission was rejected.
  std::optional<Verdict> best;
};

class AuditService {
 public:
  /// Takes ownership of a trained model. `policy` defaults to LRU.
  explicit AuditService(gnn::Hw2Vec model, const AuditOptions& options = {},
                        std::unique_ptr<EvictionPolicy> policy = nullptr);

  /// Deployment path: load weights persisted by gnn::save_model_file.
  [[nodiscard]] static AuditService from_model_file(
      const std::string& path, const AuditOptions& options = {},
      std::unique_ptr<EvictionPolicy> policy = nullptr);

  // ---- Resident library -------------------------------------------------
  /// Compile + embed + admit inline and pin (never evicted). Returns the
  /// per-design outcome; a parse failure reports a Diagnostic and leaves
  /// the corpus untouched. Re-adding a resident name replaces its row.
  Submission add_library(std::string name, const std::string& verilog_source);
  Submission add_library(std::string name, gnn::GraphTensors tensors);
  Submission add_library(const train::GraphEntry& entry);

  // ---- Submission queue -------------------------------------------------
  /// Enqueue a design for the next screen(). Thread-safe (multi-
  /// producer). Returns false when the bounded queue is full — the
  /// caller should screen() (or drop) and retry.
  [[nodiscard]] bool submit(std::string name, std::string verilog_source);
  [[nodiscard]] bool submit(std::string name, gnn::GraphTensors tensors);
  [[nodiscard]] bool submit(const train::GraphEntry& entry);

  /// Submissions waiting for the next screen().
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  // ---- Screening --------------------------------------------------------
  /// Drain the queue as one batch: compile + embed in parallel (one
  /// slot per design; bit-identical for any worker count), admit the
  /// accepted designs, score them against the pre-batch resident corpus
  /// via ShardedCorpus::score_new_rows (shards fanned out over the
  /// worker pool), then evict down to max_resident / shard_budget and
  /// compact. Reports align with submission order; duplicate names
  /// within a batch resolve to the last submission.
  std::vector<ScreenReport> screen();

  /// The k resident entries most similar to resident entry `name`
  /// (itself excluded), descending similarity, flagged per δ.
  [[nodiscard]] std::vector<Verdict> top_k(const std::string& name,
                                           std::size_t k) const;

  // ---- Pinning & introspection ------------------------------------------
  void pin(const std::string& name);
  void unpin(const std::string& name);
  [[nodiscard]] bool pinned(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Current corpus index of a resident entry (kNoIndex when absent).
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  [[nodiscard]] std::size_t resident() const { return corpus_.live_count(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return corpus_.name(i);
  }
  [[nodiscard]] float delta() const { return options_.scorer.delta; }
  void set_delta(float delta) { options_.scorer.delta = delta; }
  [[nodiscard]] const AuditOptions& options() const { return options_; }
  [[nodiscard]] gnn::Hw2Vec& model() { return model_; }
  /// The resident sharded cache (tests and benches compare against the
  /// raw core scoring paths through this).
  [[nodiscard]] const core::ShardedCorpus& corpus() const { return corpus_; }

 private:
  struct PendingItem {
    std::string name;
    std::string source;          // valid when from_source
    gnn::GraphTensors tensors;   // valid otherwise
    bool from_source = false;
  };

  /// Admit an embedding under `name`, replacing any resident row of the
  /// same name. Returns the (pre-compaction) row index.
  std::size_t admit(const std::string& name,
                    const tensor::Matrix& embedding);
  /// Evict down to max_resident, then down to shard_budget per shard
  /// (never pinned entries), then compact the corpus and remap the name
  /// index. Returns the old→new mapping; empty when nothing was removed
  /// (indices unchanged).
  std::vector<std::size_t> enforce_capacity_and_compact();

  AuditOptions options_;
  gnn::Hw2Vec model_;
  Pipeline pipeline_;
  core::ShardedCorpus corpus_;
  std::unique_ptr<EvictionPolicy> policy_;
  util::BoundedQueue<PendingItem> queue_;
  std::unordered_map<std::string, std::size_t> index_by_name_;
  std::unordered_set<std::string> pinned_;
};

}  // namespace gnn4ip::audit
