#include "audit/pipeline.h"

#include "util/thread_pool.h"

namespace gnn4ip::audit {

CompileResult compile_rtl(const std::string& verilog_source,
                          const dfg::PipelineOptions& pipeline,
                          const gnn::FeaturizeOptions& featurize) {
  CompileResult result;
  try {
    result.design.dfg = dfg::extract_dfg(verilog_source, pipeline);
    result.design.tensors = gnn::featurize(result.design.dfg, featurize);
    result.ok = true;
  } catch (const verilog::ParseError& e) {
    result.error = {e.message(), e.location()};
  } catch (const std::runtime_error& e) {
    // Non-parse user-input failures (e.g. no module to elaborate) carry
    // no source position. ContractViolation is a logic_error and still
    // propagates: that is a library bug, not a bad design.
    result.error = {e.what(), {}};
  }
  return result;
}

std::vector<CompileResult> Pipeline::compile_batch(
    std::span<const std::string> sources, std::size_t num_threads) const {
  std::vector<CompileResult> results(sources.size());
  util::parallel_for(sources.size(), num_threads, [&](std::size_t i) {
    results[i] = compile(sources[i]);
  });
  return results;
}

}  // namespace gnn4ip::audit
