#include "audit/audit_service.h"

#include <algorithm>
#include <utility>

#include "gnn/model_io.h"
#include "tensor/tape.h"
#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::audit {

AuditService::AuditService(gnn::Hw2Vec model, const AuditOptions& options,
                           std::unique_ptr<EvictionPolicy> policy)
    : options_(options),
      model_(std::move(model)),
      pipeline_(options.pipeline, options.featurize),
      corpus_(options.num_shards, options.scorer, options.shard_budget),
      policy_(policy ? std::move(policy)
                     : std::make_unique<LruEvictionPolicy>()),
      queue_(options.queue_capacity) {}

AuditService AuditService::from_model_file(
    const std::string& path, const AuditOptions& options,
    std::unique_ptr<EvictionPolicy> policy) {
  return AuditService(gnn::load_model_file(path), options, std::move(policy));
}

std::size_t AuditService::admit(const std::string& name,
                                const tensor::Matrix& embedding) {
  const auto it = index_by_name_.find(name);
  if (it != index_by_name_.end()) {
    // Resubmission replaces the resident row; the pin (if any) follows
    // the name onto the fresh row.
    corpus_.remove(it->second);
    policy_->erase(name);
    index_by_name_.erase(it);
  }
  const std::size_t index = corpus_.add(name, embedding);
  index_by_name_[name] = index;
  policy_->touch(name);
  return index;
}

std::vector<std::size_t> AuditService::enforce_capacity_and_compact() {
  const auto evict = [this](const std::string& victim) {
    corpus_.remove(index_by_name_.at(victim));
    policy_->erase(victim);
    index_by_name_.erase(victim);
  };
  if (options_.max_resident > 0) {
    while (corpus_.live_count() > options_.max_resident) {
      const std::optional<std::string> victim = policy_->victim(
          [this](const std::string& n) { return pinned_.count(n) == 0; });
      if (!victim) break;  // everything left is pinned library IP
      evict(*victim);
    }
  }
  // Per-shard budgets, enforced with the same policy order and pinning
  // rules but restricted to names placed in the over-budget shard: one
  // hot shard (hash skew, adversarial names) cannot crowd out the rest
  // of the resident cache.
  if (corpus_.shard_budget() > 0) {
    for (std::size_t s = 0; s < corpus_.num_shards(); ++s) {
      while (corpus_.shard_live_count(s) > corpus_.shard_budget()) {
        const std::optional<std::string> victim =
            policy_->victim([this, s](const std::string& n) {
              return pinned_.count(n) == 0 &&
                     corpus_.shard_of(index_by_name_.at(n)) == s;
            });
        if (!victim) break;  // the shard holds only pinned library IP
        evict(*victim);
      }
    }
  }
  // No tombstones (nothing evicted or replaced): indices are already
  // final, so skip the compaction pass and the name-index rewrite —
  // this keeps building a large pinned library O(N), not O(N²). An
  // empty mapping means identity to the callers.
  if (corpus_.live_count() == corpus_.size()) return {};
  const std::vector<std::size_t> mapping = corpus_.compact();
  for (auto& [name, index] : index_by_name_) {
    index = mapping[index];
    GNN4IP_ENSURE(index != core::ShardedCorpus::kNoIndex,
                  "AuditService: live entry lost in compaction");
  }
  return mapping;
}

Submission AuditService::add_library(std::string name,
                                     const std::string& verilog_source) {
  const CompileResult compiled = pipeline_.compile(verilog_source);
  if (!compiled.ok) {
    Submission s;
    s.name = std::move(name);
    s.error = compiled.error;
    return s;
  }
  return add_library(std::move(name), compiled.design.tensors);
}

Submission AuditService::add_library(std::string name,
                                     gnn::GraphTensors tensors) {
  Submission s;
  s.name = std::move(name);
  tensor::Tape tape;
  const tensor::Matrix embedding = model_.embed_inference(tape, tensors);
  const std::size_t row = admit(s.name, embedding);
  pinned_.insert(s.name);
  s.accepted = true;
  const std::vector<std::size_t> mapping = enforce_capacity_and_compact();
  s.corpus_index = mapping.empty() ? row : mapping[row];
  return s;
}

Submission AuditService::add_library(const train::GraphEntry& entry) {
  return add_library(entry.name, entry.tensors);
}

bool AuditService::submit(std::string name, std::string verilog_source) {
  PendingItem item;
  item.name = std::move(name);
  item.source = std::move(verilog_source);
  item.from_source = true;
  return queue_.try_push(std::move(item));
}

bool AuditService::submit(std::string name, gnn::GraphTensors tensors) {
  PendingItem item;
  item.name = std::move(name);
  item.tensors = std::move(tensors);
  return queue_.try_push(std::move(item));
}

bool AuditService::submit(const train::GraphEntry& entry) {
  return submit(entry.name, entry.tensors);
}

std::vector<ScreenReport> AuditService::screen() {
  std::vector<PendingItem> batch = queue_.drain();
  std::vector<ScreenReport> reports(batch.size());
  if (batch.empty()) return reports;

  // Compile + embed, one slot per design: designs are independent, each
  // worker writes only its own slot, and the per-worker tape is reset
  // per graph — embeddings (hence every score below) are bit-identical
  // for any worker count. A malformed design lands a Diagnostic in its
  // own report and never touches its batch-mates. The fan-out rides the
  // corpus's worker resolution (owned pool for explicit counts — no
  // transient pool spawn per batch on this hot path).
  std::vector<tensor::Matrix> embeddings(batch.size());
  corpus_.fan_out(
      batch.size(), [&](std::size_t i) {
        static thread_local tensor::Tape tape;
        PendingItem& item = batch[i];
        reports[i].submission.name = item.name;
        if (item.from_source) {
          CompileResult compiled = pipeline_.compile(item.source);
          if (!compiled.ok) {
            reports[i].submission.error = std::move(compiled.error);
            return;
          }
          item.tensors = std::move(compiled.design.tensors);
        }
        embeddings[i] = model_.embed_inference(tape, item.tensors);
        reports[i].submission.accepted = true;
      });

  // Admit in submission order (deterministic LRU order; duplicate names
  // within the batch resolve to the last submission).
  const std::size_t watermark = corpus_.size();
  std::vector<std::size_t> admitted_row(
      batch.size(), core::ShardedCorpus::kNoIndex);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!reports[i].submission.accepted) continue;
    admitted_row[i] = admit(batch[i].name, embeddings[i]);
  }

  // Score the whole batch against the pre-batch residents in one
  // incremental pass — ShardedCorpus::score_new_rows, bit-identical to
  // the single-shard PairwiseScorer path for any shard/worker count.
  if (corpus_.size() > watermark) {
    const tensor::Matrix scores = corpus_.score_new_rows(watermark);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (admitted_row[i] == core::ShardedCorpus::kNoIndex) continue;
      const std::span<const float> row =
          scores.row(admitted_row[i] - watermark);
      ScreenReport& report = reports[i];
      for (std::size_t j = 0; j < watermark; ++j) {
        if (!corpus_.live(j)) continue;  // replaced earlier in this batch
        Verdict v;
        v.matched = corpus_.name(j);
        v.corpus_index = j;
        v.similarity = row[j];
        v.flagged = row[j] > options_.scorer.delta;
        if (!report.best || v.similarity > report.best->similarity) {
          report.best = v;
        }
        if (v.flagged) report.verdicts.push_back(std::move(v));
      }
      std::sort(report.verdicts.begin(), report.verdicts.end(),
                [](const Verdict& x, const Verdict& y) {
                  if (x.similarity != y.similarity) {
                    return x.similarity > y.similarity;
                  }
                  return x.corpus_index < y.corpus_index;
                });
    }
  }

  // Bound the resident cache, then rewrite every reported index to the
  // compacted numbering (kNoIndex = gone again already; an empty
  // mapping means nothing moved).
  const std::vector<std::size_t> mapping = enforce_capacity_and_compact();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ScreenReport& report = reports[i];
    if (admitted_row[i] != core::ShardedCorpus::kNoIndex) {
      report.submission.corpus_index =
          mapping.empty() ? admitted_row[i] : mapping[admitted_row[i]];
    }
    if (mapping.empty()) continue;
    for (Verdict& v : report.verdicts) v.corpus_index = mapping[v.corpus_index];
    if (report.best) {
      report.best->corpus_index = mapping[report.best->corpus_index];
    }
  }
  return reports;
}

std::vector<Verdict> AuditService::top_k(const std::string& name,
                                         std::size_t k) const {
  const auto it = index_by_name_.find(name);
  GNN4IP_ENSURE(it != index_by_name_.end(),
                "AuditService::top_k: '" + name + "' is not resident");
  std::vector<Verdict> result;
  for (const core::PairScore& p : corpus_.top_k(it->second, k)) {
    Verdict v;
    v.matched = corpus_.name(p.b);
    v.corpus_index = p.b;
    v.similarity = p.similarity;
    v.flagged = p.similarity > options_.scorer.delta;
    result.push_back(std::move(v));
  }
  return result;
}

void AuditService::pin(const std::string& name) {
  GNN4IP_ENSURE(contains(name),
                "AuditService::pin: '" + name + "' is not resident");
  pinned_.insert(name);
}

void AuditService::unpin(const std::string& name) { pinned_.erase(name); }

bool AuditService::pinned(const std::string& name) const {
  return pinned_.count(name) != 0;
}

bool AuditService::contains(const std::string& name) const {
  return index_by_name_.count(name) != 0;
}

std::size_t AuditService::index_of(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? core::ShardedCorpus::kNoIndex
                                    : it->second;
}

}  // namespace gnn4ip::audit
