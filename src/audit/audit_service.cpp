#include "audit/audit_service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/snapshot_format.h"
#include "gnn/model_io.h"
#include "tensor/tape.h"
#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::audit {

namespace {

/// Chase one report's indices through a compaction mapping (evicted
/// entries read kNoIndex, exactly the pre-refactor batch contract).
void remap_report(ScreenReport& report,
                  const std::vector<std::size_t>& mapping) {
  constexpr std::size_t kNone = core::ShardedCorpus::kNoIndex;
  if (report.submission.corpus_index != kNone) {
    report.submission.corpus_index = mapping[report.submission.corpus_index];
  }
  for (Verdict& v : report.verdicts) {
    if (v.corpus_index != kNone) v.corpus_index = mapping[v.corpus_index];
  }
  if (report.best && report.best->corpus_index != kNone) {
    report.best->corpus_index = mapping[report.best->corpus_index];
  }
}

/// Parsed service.txt (audit-layer snapshot state: the name index and
/// the pin set; the rows themselves live in the core shard files).
struct ServiceState {
  std::vector<std::pair<std::size_t, std::string>> entries;  // index, name
  std::vector<std::string> pins;
};

[[noreturn]] void bad_service(const std::string& detail) {
  throw core::SnapshotManifestError("malformed service state: " + detail);
}

/// "entry <index> <name>" / "pin <name>" — the name is the rest of the
/// line verbatim (spaces included), matching how save_corpus writes it.
std::string rest_of_line(const std::string& line, std::size_t from) {
  if (from >= line.size()) bad_service("missing name in '" + line + "'");
  return line.substr(from);
}

ServiceState read_service_state(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw core::SnapshotManifestError("missing service state file '" +
                                      path.string() +
                                      "' (not a service snapshot?)");
  }
  std::string line;
  if (!std::getline(is, line)) {
    throw core::SnapshotTruncatedError("service state '" + path.string() +
                                       "' is empty");
  }
  {
    std::istringstream ls(line);
    std::string magic;
    std::string version;
    ls >> magic >> version;
    if (magic != core::kServiceMagic) {
      throw core::SnapshotMagicError(
          "service state missing '" + std::string(core::kServiceMagic) +
          "' magic header (got '" + line + "')");
    }
    const std::string expected =
        "v" + std::to_string(core::kServiceFormatVersion);
    if (version != expected) {
      throw core::SnapshotVersionError(
          "unsupported service state version '" + version +
          "'; this build reads " + expected);
    }
  }
  ServiceState state;
  std::size_t resident = 0;
  if (!std::getline(is, line)) {
    throw core::SnapshotTruncatedError("service state: missing resident count");
  }
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> resident) || tag != "resident") {
      bad_service("bad resident line '" + line + "'");
    }
  }
  state.entries.reserve(resident);
  for (std::size_t i = 0; i < resident; ++i) {
    if (!std::getline(is, line)) {
      throw core::SnapshotTruncatedError(
          "service state: truncated resident entries (" + std::to_string(i) +
          " of " + std::to_string(resident) + ")");
    }
    std::istringstream ls(line);
    std::string tag;
    std::size_t index = 0;
    if (!(ls >> tag >> index) || tag != "entry") {
      bad_service("bad entry line '" + line + "'");
    }
    // Name starts one space past the index token.
    const std::size_t after_index = line.find(' ', line.find(' ', 0) + 1);
    if (after_index == std::string::npos) {
      bad_service("missing name in '" + line + "'");
    }
    state.entries.emplace_back(index, rest_of_line(line, after_index + 1));
  }
  std::size_t pin_count = 0;
  if (!std::getline(is, line)) {
    throw core::SnapshotTruncatedError("service state: missing pin count");
  }
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> pin_count) || tag != "pins") {
      bad_service("bad pins line '" + line + "'");
    }
  }
  state.pins.reserve(pin_count);
  for (std::size_t i = 0; i < pin_count; ++i) {
    if (!std::getline(is, line)) {
      throw core::SnapshotTruncatedError(
          "service state: truncated pin entries (" + std::to_string(i) +
          " of " + std::to_string(pin_count) + ")");
    }
    if (line.rfind("pin ", 0) != 0) bad_service("bad pin line '" + line + "'");
    state.pins.push_back(rest_of_line(line, 4));
  }
  if (!std::getline(is, line) || line != "end") {
    throw core::SnapshotTruncatedError(
        "service state: missing 'end' sentinel (truncated file?)");
  }
  if (std::getline(is, line)) {
    bad_service("trailing data after 'end' sentinel");
  }
  return state;
}

}  // namespace

AuditService::AuditService(gnn::Hw2Vec model, const AuditOptions& options,
                           std::unique_ptr<EvictionPolicy> policy)
    : AuditService(std::move(model), options,
                   std::make_unique<core::ShardedCorpus>(
                       options.num_shards, options.scorer,
                       options.shard_budget),
                   std::move(policy)) {}

AuditService::AuditService(gnn::Hw2Vec model, const AuditOptions& options,
                           std::unique_ptr<core::CorpusBackend> corpus,
                           std::unique_ptr<EvictionPolicy> policy)
    : options_(options),
      model_(std::move(model)),
      model_fingerprint_(gnn::model_fingerprint(model_)),
      pipeline_(options.pipeline, options.featurize),
      corpus_(std::move(corpus)),
      policy_(policy ? std::move(policy)
                     : std::make_unique<LruEvictionPolicy>()),
      queue_(options.queue_capacity) {
  GNN4IP_ENSURE(corpus_ != nullptr,
                "AuditService: corpus backend must be non-null");
  // The backend is the truth for the shard layout; keep the options in
  // sync so callers introspect it consistently.
  options_.num_shards = corpus_->num_shards();
}

AuditService AuditService::from_model_file(
    const std::string& path, const AuditOptions& options,
    std::unique_ptr<EvictionPolicy> policy) {
  return AuditService(gnn::load_model_file(path), options, std::move(policy));
}

std::size_t AuditService::reserve_tickets(std::size_t n) {
  util::MutexLock lock(commit_mu_);
  const std::size_t first = tickets_issued_;
  tickets_issued_ += n;
  return first;
}

void AuditService::commit_begin(std::size_t ticket) {
  util::MutexLock lock(commit_mu_);
  while (next_commit_ != ticket) commit_cv_.wait(commit_mu_);
}

void AuditService::commit_end() {
  {
    util::MutexLock lock(commit_mu_);
    ++next_commit_;
  }
  commit_cv_.notify_all();
}

std::size_t AuditService::admit(const std::string& name,
                                const tensor::Matrix& embedding) {
  const auto it = index_by_name_.find(name);
  if (it != index_by_name_.end()) {
    // Resubmission replaces the resident row; the pin (if any) follows
    // the name onto the fresh row.
    corpus_->remove(it->second);
    policy_->erase(name);
    index_by_name_.erase(it);
  }
  const std::size_t index = corpus_->add(name, embedding);
  index_by_name_[name] = index;
  policy_->touch(name);
  return index;
}

std::vector<std::size_t> AuditService::enforce_capacity_and_compact() {
  // The helper lambdas below touch state_mu_-guarded fields; the caller
  // holds state_mu_ exclusively (REQUIRES on this function), but the
  // analysis examines lambda bodies out of that context, so they opt
  // out individually.
  const auto evict =
      [this](const std::string& victim) GNN4IP_NO_THREAD_SAFETY_ANALYSIS {
        corpus_->remove(index_by_name_.at(victim));
        policy_->erase(victim);
        index_by_name_.erase(victim);
      };
  if (options_.max_resident > 0) {
    while (corpus_->live_count() > options_.max_resident) {
      const std::optional<std::string> victim =
          policy_->victim([this](const std::string& n)
                              GNN4IP_NO_THREAD_SAFETY_ANALYSIS {
                                return pinned_.count(n) == 0;
                              });
      if (!victim) break;  // everything left is pinned library IP
      evict(*victim);
    }
  }
  // Per-shard budgets, enforced with the same policy order and pinning
  // rules but restricted to names placed in the over-budget shard: one
  // hot shard (hash skew, adversarial names) cannot crowd out the rest
  // of the resident cache.
  if (corpus_->shard_budget() > 0) {
    for (std::size_t s = 0; s < corpus_->num_shards(); ++s) {
      while (corpus_->shard_live_count(s) > corpus_->shard_budget()) {
        const std::optional<std::string> victim =
            policy_->victim([this, s](const std::string& n)
                                GNN4IP_NO_THREAD_SAFETY_ANALYSIS {
                                  return pinned_.count(n) == 0 &&
                                         corpus_->shard_of(
                                             index_by_name_.at(n)) == s;
                                });
        if (!victim) break;  // the shard holds only pinned library IP
        evict(*victim);
      }
    }
  }
  // No tombstones (nothing evicted or replaced): indices are already
  // final, so skip the compaction pass and the name-index rewrite —
  // this keeps building a large pinned library O(N), not O(N²). An
  // empty mapping means identity to the callers.
  if (corpus_->live_count() == corpus_->size()) return {};
  const std::vector<std::size_t> mapping = corpus_->compact();
  // lint:allow(unordered-iter): independent per-entry remap — no
  // cross-entry arithmetic, so iteration order cannot leak into state.
  for (auto& [name, index] : index_by_name_) {
    index = mapping[index];
    GNN4IP_ENSURE(index != core::ShardedCorpus::kNoIndex,
                  "AuditService: live entry lost in compaction");
  }
  return mapping;
}

Submission AuditService::add_library(std::string name,
                                     const std::string& verilog_source) {
  const CompileResult compiled = pipeline_.compile(verilog_source);
  if (!compiled.ok) {
    Submission s;
    s.name = std::move(name);
    s.error = compiled.error;
    return s;
  }
  return add_library(std::move(name), compiled.design.tensors);
}

Submission AuditService::add_library(std::string name,
                                     gnn::GraphTensors tensors) {
  Submission s;
  s.name = std::move(name);
  tensor::Tape tape;
  const tensor::Matrix embedding = model_.embed_inference(tape, tensors);
  // One admission ticket: the pinned row lands between two screening
  // commits, never mid-commit, so add_library is safe while consumers
  // stream.
  const std::size_t ticket = reserve_tickets(1);
  commit_begin(ticket);
  try {
    util::WriterLock state(state_mu_);
    const bool replaced = index_by_name_.count(s.name) != 0;
    const std::size_t row = admit(s.name, embedding);
    pinned_.insert(s.name);
    s.accepted = true;
    if (admission_log_) {
      admission_log_->append({ticket, s.name, replaced, /*pinned=*/true});
    }
    const std::vector<std::size_t> mapping = enforce_capacity_and_compact();
    s.corpus_index = mapping.empty() ? row : mapping[row];
  } catch (...) {
    commit_end();
    throw;
  }
  commit_end();
  return s;
}

Submission AuditService::add_library(const train::GraphEntry& entry) {
  return add_library(entry.name, entry.tensors);
}

bool AuditService::submit(std::string name, std::string verilog_source) {
  AuditItem item;
  item.name = std::move(name);
  item.source = std::move(verilog_source);
  item.from_source = true;
  return queue_.try_push(std::move(item));
}

bool AuditService::submit(std::string name, gnn::GraphTensors tensors) {
  AuditItem item;
  item.name = std::move(name);
  item.tensors = std::move(tensors);
  return queue_.try_push(std::move(item));
}

bool AuditService::submit(const train::GraphEntry& entry) {
  return submit(entry.name, entry.tensors);
}

std::vector<ScreenReport> AuditService::screen() {
  std::vector<AuditItem> batch;
  std::size_t first_ticket = 0;
  {
    // Drain and reserve atomically: two sync callers racing here could
    // otherwise dequeue in one order and ticket in the other.
    util::MutexLock lock(sync_mu_);
    batch = queue_.drain();
    first_ticket = reserve_tickets(batch.size());
  }
  if (batch.empty()) return {};
  return screen_batch(std::move(batch), first_ticket, nullptr);
}

void AuditService::commit_one(std::size_t ticket, const std::string& name,
                              const tensor::Matrix& embedding,
                              ScreenReport& report,
                              std::vector<ScreenReport>* prior,
                              std::size_t prior_count) {
  util::WriterLock state(state_mu_);
  const bool replaced = index_by_name_.count(name) != 0;
  const std::size_t row = admit(name, embedding);
  if (admission_log_) {
    admission_log_->append({ticket, name, replaced, /*pinned=*/false});
  }
  const std::size_t n = corpus_->size();  // row == n - 1
  // Screen this one submission against everything admitted under an
  // earlier ticket. screen_new_rows returns exactly what the verdicts
  // need — the flagged matches and the best live match, with exact
  // scalar-kernel similarities bit-identical to the 1×n score_new_rows
  // slice this loop used to walk — whether the corpus scans exhaustively
  // or through the int8 prefilter. A same-name row replaced by admit()
  // above is a tombstone here, excluded like any other tombstone.
  if (n > 1) {
    const std::vector<core::ScreenRow> screened =
        corpus_->screen_new_rows(n - 1, options_.scorer.delta);
    const core::ScreenRow& srow = screened.front();
    for (const core::ScreenMatch& m : srow.flagged) {
      Verdict v;
      v.matched = corpus_->name(m.index);
      v.corpus_index = m.index;
      v.similarity = m.similarity;
      v.flagged = true;
      report.verdicts.push_back(std::move(v));
    }
    if (srow.best) {
      Verdict v;
      v.matched = corpus_->name(srow.best->index);
      v.corpus_index = srow.best->index;
      v.similarity = srow.best->similarity;
      v.flagged = srow.best->similarity > options_.scorer.delta;
      report.best = std::move(v);
    }
    std::sort(report.verdicts.begin(), report.verdicts.end(),
              [](const Verdict& x, const Verdict& y) {
                if (x.similarity != y.similarity) {
                  return x.similarity > y.similarity;
                }
                return x.corpus_index < y.corpus_index;
              });
  }
  report.submission.accepted = true;
  report.submission.corpus_index = row;
  const std::vector<std::size_t> mapping = enforce_capacity_and_compact();
  if (!mapping.empty()) {
    remap_report(report, mapping);
    // Single-consumer screen() keeps its finished reports current
    // through later batch-mates' compactions, so a caller sees indices
    // valid at the end of the call (evicted ⇒ kNoIndex) — the original
    // batch contract.
    if (prior != nullptr) {
      for (std::size_t p = 0; p < prior_count; ++p) {
        remap_report((*prior)[p], mapping);
      }
    }
  }
}

std::vector<ScreenReport> AuditService::screen_batch(
    std::vector<AuditItem> batch, std::size_t first_ticket,
    const CommitCallback& on_commit) {
  std::vector<ScreenReport> reports(batch.size());
  if (batch.empty()) return reports;

  // Every reserved ticket MUST commit exactly once or the turnstile
  // stalls all consumers; on any exception the remaining tickets are
  // advanced as no-ops before rethrowing.
  std::size_t committed = 0;
  try {
    // Phase 1 — compile + featurize + embed, one slot per design, on
    // this call's own scratch state: designs are independent, each
    // worker writes only its own slot, and the per-worker tape is reset
    // per graph — embeddings (hence every score below) are
    // bit-identical for any worker count. This phase takes no locks and
    // no tickets, so K consumers embed disjoint batches fully in
    // parallel. A malformed design lands a Diagnostic in its own report
    // and never touches its batch-mates.
    std::vector<tensor::Matrix> embeddings(batch.size());
    corpus_->fan_out(batch.size(), [&](std::size_t i) {
      static thread_local tensor::Tape tape;
      AuditItem& item = batch[i];
      reports[i].submission.name = item.name;
      if (item.from_source) {
        CompileResult compiled = pipeline_.compile(item.source);
        if (!compiled.ok) {
          reports[i].submission.error = std::move(compiled.error);
          return;
        }
        item.tensors = std::move(compiled.design.tensors);
      }
      embeddings[i] = model_.embed_inference(tape, item.tensors);
      // Deferred to the commit slot: accepted is the "admitted" flag,
      // and admission happens under the ticket.
    });

    // Phase 2 — commit each item under its ticket. The turnstile
    // serializes commits across every consumer in global ticket order,
    // so each submission scores against exactly the corpus a sequential
    // single-consumer run would have at that point. Rejected items
    // consume their ticket as a no-op so the order never stalls.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      commit_begin(first_ticket + i);
      try {
        const bool embedded = !embeddings[i].empty();
        if (embedded) {
          commit_one(first_ticket + i, batch[i].name, embeddings[i],
                     reports[i], on_commit ? nullptr : &reports, i);
        }
        // Hand off inside the commit slot: on_commit invocations are
        // mutually exclusive across consumers and arrive in ticket
        // order — the serialized-callback contract AsyncAuditor
        // re-exports as on_report.
        if (on_commit) on_commit(i, std::move(reports[i]));
      } catch (...) {
        commit_end();
        ++committed;
        throw;
      }
      commit_end();
      ++committed;
    }
  } catch (...) {
    for (std::size_t i = committed; i < batch.size(); ++i) {
      commit_begin(first_ticket + i);
      commit_end();
    }
    throw;
  }
  return reports;
}

std::vector<Verdict> AuditService::top_k(const std::string& name,
                                         std::size_t k) const {
  // Shared state lock for the whole read: commits (which may compact
  // and renumber) wait, concurrent readers overlap, so the index stays
  // valid across the corpus scan below.
  util::ReaderLock state(state_mu_);
  const auto it = index_by_name_.find(name);
  GNN4IP_ENSURE(it != index_by_name_.end(),
                "AuditService::top_k: '" + name + "' is not resident");
  std::vector<Verdict> result;
  for (const core::PairScore& p : corpus_->top_k(it->second, k)) {
    Verdict v;
    v.matched = corpus_->name(p.b);
    v.corpus_index = p.b;
    v.similarity = p.similarity;
    v.flagged = p.similarity > options_.scorer.delta;
    result.push_back(std::move(v));
  }
  return result;
}

void AuditService::save_corpus(const std::string& dir) {
  // One serialized commit: the turnstile guarantees every earlier
  // ticket's admission is fully in the snapshot and every later one is
  // fully absent — the same consistency point an AdmissionLog sees.
  const std::size_t ticket = reserve_tickets(1);
  commit_begin(ticket);
  try {
    util::ReaderLock state(state_mu_);
    // The v1 service file is line-oriented; a name holding a newline
    // cannot round-trip, so refuse to write a snapshot that a later
    // load_corpus would misparse.
    // lint:allow(unordered-iter): pure validation scan; order-free.
    for (const auto& [nm, idx] : index_by_name_) {
      if (nm.find('\n') != std::string::npos) {
        throw core::SnapshotIoError(
            "resident name contains a newline; not representable in the "
            "v1 service state file");
      }
    }
    corpus_->save(dir, model_fingerprint_);
    std::vector<std::pair<std::size_t, std::string>> entries;
    entries.reserve(index_by_name_.size());
    // lint:allow(unordered-iter): entries are sorted before writing.
    for (const auto& [nm, idx] : index_by_name_) entries.emplace_back(idx, nm);
    std::sort(entries.begin(), entries.end());
    std::vector<std::string> sorted_pins(pinned_.begin(), pinned_.end());
    std::sort(sorted_pins.begin(), sorted_pins.end());
    const std::filesystem::path path =
        std::filesystem::path(dir) / core::kServiceFileName;
    std::ofstream os(path);
    if (!os) {
      throw core::SnapshotIoError("cannot open '" + path.string() +
                                  "' for writing");
    }
    os << core::kServiceMagic << " v" << core::kServiceFormatVersion << '\n';
    os << "resident " << entries.size() << '\n';
    for (const auto& [idx, nm] : entries) {
      os << "entry " << idx << ' ' << nm << '\n';
    }
    os << "pins " << sorted_pins.size() << '\n';
    for (const std::string& p : sorted_pins) os << "pin " << p << '\n';
    os << "end\n";
    os.flush();
    if (!os) {
      throw core::SnapshotIoError("write to '" + path.string() + "' failed");
    }
    if (admission_log_) admission_log_->checkpoint(dir);
  } catch (...) {
    commit_end();
    throw;
  }
  commit_end();
}

void AuditService::load_corpus(const std::string& dir) {
  const std::size_t ticket = reserve_tickets(1);
  commit_begin(ticket);
  try {
    // Strong guarantee: parse and validate everything into locals; the
    // service's own state is only touched in the no-throw swap below.
    ServiceState persisted = read_service_state(
        std::filesystem::path(dir) / core::kServiceFileName);
    std::unique_ptr<core::CorpusBackend> fresh =
        corpus_->restored(dir, model_fingerprint_);
    // Cross-validate the service file against the restored corpus: the
    // name index must be a bijection onto the live rows.
    if (persisted.entries.size() != fresh->live_count()) {
      throw core::SnapshotManifestError(
          "service state lists " + std::to_string(persisted.entries.size()) +
          " resident entries but the corpus snapshot holds " +
          std::to_string(fresh->live_count()) + " live rows");
    }
    std::unordered_map<std::string, std::size_t> index;
    index.reserve(persisted.entries.size());
    for (const auto& [idx, nm] : persisted.entries) {
      if (idx >= fresh->size() || !fresh->live(idx)) {
        throw core::SnapshotManifestError(
            "service state entry '" + nm + "' points at index " +
            std::to_string(idx) + ", which is not a live corpus row");
      }
      if (fresh->name(idx) != nm) {
        throw core::SnapshotManifestError(
            "service state names index " + std::to_string(idx) + " '" + nm +
            "' but the corpus row is named '" + fresh->name(idx) + "'");
      }
      if (!index.emplace(nm, idx).second) {
        throw core::SnapshotManifestError(
            "service state lists resident name '" + nm + "' twice");
      }
    }
    std::unordered_set<std::string> pins;
    pins.reserve(persisted.pins.size());
    for (const std::string& p : persisted.pins) {
      if (index.count(p) == 0) {
        throw core::SnapshotManifestError("service state pins '" + p +
                                          "', which is not resident");
      }
      pins.insert(p);
    }
    // Recency rebuild order: ascending global index. In a snapshot,
    // index order IS admission order (admits append, replacements
    // re-append, compaction preserves relative order), so touching
    // survivors in this order reproduces exactly the recency a
    // never-restarted service would hold — evictions after a warm
    // restart pick the same victims.
    std::sort(persisted.entries.begin(), persisted.entries.end());
    util::WriterLock state(state_mu_);
    // lint:allow(unordered-iter): erases are commutative; order-free.
    for (const auto& [nm, idx] : index_by_name_) policy_->erase(nm);
    corpus_ = std::move(fresh);
    index_by_name_ = std::move(index);
    pinned_ = std::move(pins);
    // The restored corpus adopts the snapshot's shard count; keep the
    // options in sync so callers introspect the truth.
    options_.num_shards = corpus_->num_shards();
    for (const auto& [idx, nm] : persisted.entries) policy_->touch(nm);
  } catch (...) {
    commit_end();
    throw;
  }
  commit_end();
}

void AuditService::pin(const std::string& name) {
  util::WriterLock state(state_mu_);
  GNN4IP_ENSURE(index_by_name_.count(name) != 0,
                "AuditService::pin: '" + name + "' is not resident");
  pinned_.insert(name);
}

void AuditService::unpin(const std::string& name) {
  util::WriterLock state(state_mu_);
  pinned_.erase(name);
}

bool AuditService::pinned(const std::string& name) const {
  util::ReaderLock state(state_mu_);
  return pinned_.count(name) != 0;
}

bool AuditService::contains(const std::string& name) const {
  util::ReaderLock state(state_mu_);
  return index_by_name_.count(name) != 0;
}

std::size_t AuditService::index_of(const std::string& name) const {
  util::ReaderLock state(state_mu_);
  const auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? core::ShardedCorpus::kNoIndex
                                    : it->second;
}

}  // namespace gnn4ip::audit
