// audit::AdmissionLog — the replay seam between snapshots.
//
// A snapshot (AuditService::save_corpus) captures the resident corpus
// at one commit; everything admitted *after* it is lost on a crash
// unless someone records the admissions as they happen. This interface
// is that seam: the service calls append() inside each commit slot —
// serialized across all consumers, in global admission-ticket order,
// after the row has been admitted — and checkpoint() inside each
// save_corpus() commit, so an implementation always knows exactly which
// suffix of the log a given snapshot has already absorbed.
//
// This PR ships the interface and its wiring only (plus the in-memory
// RecordingAdmissionLog the tests use); a durable file-backed log that
// captures the design payload and replays `snapshot + log suffix` on
// warm restart is a later PR — the ticket order recorded here is
// already the total order such a replay needs.
#pragma once

#include <cstddef>
#include <string>

namespace gnn4ip::audit {

/// One admitted design, as the durability layer sees it. Does not carry
/// the design payload yet (see the header comment) — the record pins
/// down *where in the commit order* the admission happened.
struct AdmissionRecord {
  /// Global admission ticket of the commit — the total order shared by
  /// every consumer, add_library call, and snapshot.
  std::size_t ticket = 0;
  std::string name;
  /// True when the admission replaced a resident row of the same name.
  bool replaced_existing = false;
  /// True when the admission came through add_library (pinned library
  /// IP rather than a screened submission).
  bool pinned = false;
};

class AdmissionLog {
 public:
  virtual ~AdmissionLog() = default;

  /// One admission committed. Called inside the commit slot: invocations
  /// are mutually exclusive across all consumers and arrive in strictly
  /// increasing ticket order. Implementations must not call back into
  /// the service (same re-entrancy rule as AsyncAuditor's on_report).
  virtual void append(const AdmissionRecord& record) = 0;

  /// A snapshot of the corpus was just written to `snapshot_dir`, as a
  /// serialized commit: every append() so far is contained in it, and
  /// every later append() is not. A replaying implementation can
  /// truncate (or mark) its log here.
  virtual void checkpoint(const std::string& snapshot_dir) = 0;
};

}  // namespace gnn4ip::audit
