#include "audit/eviction.h"

namespace gnn4ip::audit {

void LruEvictionPolicy::touch(const std::string& name) {
  const auto it = where_.find(name);
  if (it != where_.end()) order_.erase(it->second);
  order_.push_front(name);
  where_[name] = order_.begin();
}

void LruEvictionPolicy::erase(const std::string& name) {
  const auto it = where_.find(name);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

std::optional<std::string> LruEvictionPolicy::victim(
    const std::function<bool(const std::string&)>& evictable) {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (evictable(*it)) return *it;
  }
  return std::nullopt;
}

}  // namespace gnn4ip::audit
