#include "audit/async_auditor.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "gnn/model_io.h"

namespace gnn4ip::audit {

namespace {

/// Resolve num_consumers = 0: GNN4IP_CONSUMERS if set to a positive
/// integer, else one consumer (the pre-pool behaviour).
std::size_t default_consumer_count() {
  if (const char* env = std::getenv("GNN4IP_CONSUMERS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return 1;
}

}  // namespace

AsyncAuditor::AsyncAuditor(gnn::Hw2Vec model, const AuditOptions& options,
                           AsyncOptions async,
                           std::unique_ptr<EvictionPolicy> policy)
    : service_(std::move(model), options, std::move(policy)),
      async_(std::move(async)),
      queue_(async_.queue_capacity) {
  const std::size_t pool_size = async_.num_consumers > 0
                                    ? async_.num_consumers
                                    : default_consumer_count();
  consumers_.reserve(pool_size);
  for (std::size_t c = 0; c < pool_size; ++c) {
    consumers_.emplace_back([this] { consume(); });
  }
}

std::unique_ptr<AsyncAuditor> AsyncAuditor::from_model_file(
    const std::string& path, const AuditOptions& options, AsyncOptions async,
    std::unique_ptr<EvictionPolicy> policy) {
  return std::make_unique<AsyncAuditor>(gnn::load_model_file(path), options,
                                        std::move(async), std::move(policy));
}

AsyncAuditor::~AsyncAuditor() { close(); }

std::future<ScreenReport> AsyncAuditor::submit(std::string name,
                                               std::string verilog_source) {
  Job job;
  job.name = std::move(name);
  job.source = std::move(verilog_source);
  job.from_source = true;
  return enqueue(std::move(job));
}

std::future<ScreenReport> AsyncAuditor::submit(std::string name,
                                               gnn::GraphTensors tensors) {
  Job job;
  job.name = std::move(name);
  job.tensors = std::move(tensors);
  return enqueue(std::move(job));
}

std::future<ScreenReport> AsyncAuditor::submit(const train::GraphEntry& entry) {
  return submit(entry.name, entry.tensors);
}

std::future<ScreenReport> AsyncAuditor::enqueue(Job job) {
  std::future<ScreenReport> future = job.promise.get_future();
  // Count the submission as outstanding *before* pushing: a consumer may
  // pop and report it before this thread runs again, and quiesce() must
  // never observe reported_ > submitted_.
  {
    util::MutexLock lock(progress_mu_);
    ++submitted_;
  }
  if (!queue_.push(std::move(job))) {
    // Lost the race with close(): `job` is untouched, so resolve its
    // future with a rejected report instead of a broken promise. The
    // retracted count must still wake quiesce() waiters — the predicate
    // may have just become true, and no report will ever notify again.
    {
      util::MutexLock lock(progress_mu_);
      --submitted_;
    }
    progress_cv_.notify_all();
    ScreenReport report;
    report.submission.name = std::move(job.name);
    report.submission.error.message =
        "AsyncAuditor is closed; submission was not screened";
    job.promise.set_value(std::move(report));
  }
  return future;
}

void AsyncAuditor::consume() {
  const std::size_t chunk_cap = async_.max_batch > 0
                                    ? async_.max_batch
                                    : service_.options().queue_capacity;
  for (;;) {
    std::vector<Job> chunk;
    std::size_t first_ticket = 0;
    {
      // One hand-off at a time: blocking-pop the chunk seed, ride the
      // backlog along via try_pop, and reserve the chunk's tickets —
      // all under one lock, so ticket order equals dequeue order. A
      // sibling consumer waits here (instead of inside pop()) while
      // this one assembles its chunk; it proceeds the moment the
      // hand-off lock drops, concurrently with this chunk's screening.
      util::MutexLock handoff(handoff_mu_);
      std::optional<Job> seed = queue_.pop();
      if (!seed) break;  // closed and fully drained: pool exit signal
      chunk.push_back(std::move(*seed));
      while (chunk.size() < chunk_cap) {
        std::optional<Job> next = queue_.try_pop();
        if (!next) break;
        chunk.push_back(std::move(*next));
      }
      first_ticket = service_.reserve_tickets(chunk.size());
    }
    process_batch(std::move(chunk), first_ticket);
  }
}

void AsyncAuditor::process_batch(std::vector<Job> batch,
                                 std::size_t first_ticket) {
  std::vector<AuditItem> items;
  items.reserve(batch.size());
  for (Job& job : batch) {
    AuditItem item;
    item.name = std::move(job.name);
    item.source = std::move(job.source);
    item.tensors = std::move(job.tensors);
    item.from_source = job.from_source;
    items.push_back(std::move(item));
  }
  // Count commits as they happen so the exception path below knows
  // exactly which futures are still unresolved.
  std::size_t delivered = 0;
  try {
    service_.screen_batch(
        std::move(items), first_ticket,
        [&](std::size_t i, ScreenReport&& report) {
          // Inside the commit turnstile: serialized across consumers,
          // global ticket order — the on_report contract. The callback
          // sees the report before the future resolves.
          if (async_.on_report) async_.on_report(report);
          batch[i].promise.set_value(std::move(report));
          delivered = i + 1;
          {
            // The chunk counts as a batch at its *last* commit, under
            // the same lock as the report count: a quiesce() woken by
            // the final report must already see the batch tallied.
            util::MutexLock lock(progress_mu_);
            ++reported_;
            if (delivered == batch.size()) ++batches_;
          }
          progress_cv_.notify_all();
        });
  } catch (...) {
    // Library-bug path (e.g. ContractViolation): fail this chunk's
    // unresolved futures instead of hanging them, and keep the consumer
    // serving. screen_batch has already advanced the chunk's remaining
    // tickets, so the turnstile keeps moving for the siblings.
    const std::exception_ptr error = std::current_exception();
    for (std::size_t i = delivered; i < batch.size(); ++i) {
      batch[i].promise.set_exception(error);
    }
    {
      util::MutexLock lock(progress_mu_);
      reported_ += batch.size() - delivered;
      ++batches_;
    }
    progress_cv_.notify_all();
  }
}

void AsyncAuditor::quiesce() {
  util::MutexLock lock(progress_mu_);
  while (reported_ != submitted_) progress_cv_.wait(progress_mu_);
}

void AsyncAuditor::save_corpus(const std::string& dir) {
  quiesce();
  service_.save_corpus(dir);
}

void AsyncAuditor::close() {
  queue_.close();  // push fails from here on; pending items stay poppable
  util::MutexLock lock(close_mu_);
  if (joined_) return;
  for (std::thread& consumer : consumers_) {
    consumer.join();  // each consumer drains its share, then exits
  }
  joined_ = true;
}

std::size_t AsyncAuditor::submitted() const {
  util::MutexLock lock(progress_mu_);
  return submitted_;
}

std::size_t AsyncAuditor::reported() const {
  util::MutexLock lock(progress_mu_);
  return reported_;
}

std::size_t AsyncAuditor::batches() const {
  util::MutexLock lock(progress_mu_);
  return batches_;
}

}  // namespace gnn4ip::audit
