#include "audit/async_auditor.h"

#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "gnn/model_io.h"

namespace gnn4ip::audit {

AsyncAuditor::AsyncAuditor(gnn::Hw2Vec model, const AuditOptions& options,
                           AsyncOptions async,
                           std::unique_ptr<EvictionPolicy> policy)
    : service_(std::move(model), options, std::move(policy)),
      async_(std::move(async)),
      queue_(async_.queue_capacity),
      consumer_([this] { consume(); }) {}

std::unique_ptr<AsyncAuditor> AsyncAuditor::from_model_file(
    const std::string& path, const AuditOptions& options, AsyncOptions async,
    std::unique_ptr<EvictionPolicy> policy) {
  return std::make_unique<AsyncAuditor>(gnn::load_model_file(path), options,
                                        std::move(async), std::move(policy));
}

AsyncAuditor::~AsyncAuditor() { close(); }

std::future<ScreenReport> AsyncAuditor::submit(std::string name,
                                               std::string verilog_source) {
  Job job;
  job.name = std::move(name);
  job.source = std::move(verilog_source);
  job.from_source = true;
  return enqueue(std::move(job));
}

std::future<ScreenReport> AsyncAuditor::submit(std::string name,
                                               gnn::GraphTensors tensors) {
  Job job;
  job.name = std::move(name);
  job.tensors = std::move(tensors);
  return enqueue(std::move(job));
}

std::future<ScreenReport> AsyncAuditor::submit(const train::GraphEntry& entry) {
  return submit(entry.name, entry.tensors);
}

std::future<ScreenReport> AsyncAuditor::enqueue(Job job) {
  std::future<ScreenReport> future = job.promise.get_future();
  // Count the submission as outstanding *before* pushing: the daemon may
  // pop and report it before this thread runs again, and quiesce() must
  // never observe reported_ > submitted_.
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    ++submitted_;
  }
  if (!queue_.push(std::move(job))) {
    // Lost the race with close(): `job` is untouched, so resolve its
    // future with a rejected report instead of a broken promise. The
    // retracted count must still wake quiesce() waiters — the predicate
    // may have just become true, and no report will ever notify again.
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      --submitted_;
    }
    progress_cv_.notify_all();
    ScreenReport report;
    report.submission.name = std::move(job.name);
    report.submission.error.message =
        "AsyncAuditor is closed; submission was not screened";
    job.promise.set_value(std::move(report));
  }
  return future;
}

void AsyncAuditor::consume() {
  // One blocking pop fetches the batch seed; everything that accumulated
  // behind it (while the previous batch was screening) rides along via
  // the non-blocking drain. pop() returns nullopt only once the queue is
  // closed *and* empty — drain-on-close, so no accepted submission is
  // ever dropped.
  while (std::optional<Job> first = queue_.pop()) {
    std::vector<Job> batch;
    batch.push_back(std::move(*first));
    for (Job& job : queue_.drain()) batch.push_back(std::move(job));
    process_batch(std::move(batch));
  }
}

void AsyncAuditor::process_batch(std::vector<Job> batch) {
  // The daemon is the service's only producer and screen() fully drains,
  // so the service queue is empty at every chunk start: capping chunks
  // at its capacity guarantees submit() below accepts — which matters,
  // because submit() consumes the job's payload (moved into the service
  // queue item), so a refused submission can never be retried.
  const std::size_t chunk_cap = service_.options().queue_capacity;
  std::size_t done = 0;
  while (done < batch.size()) {
    std::size_t count = 0;
    bool refused = false;
    while (done + count < batch.size() && count < chunk_cap) {
      Job& job = batch[done + count];
      const bool queued =
          job.from_source ? service_.submit(job.name, std::move(job.source))
                          : service_.submit(job.name, std::move(job.tensors));
      if (!queued) {
        // Only possible when a foreign producer feeds the owned service
        // queue directly, violating the threading contract; handled
        // after the chunk screens, since this job's payload is gone.
        refused = true;
        break;
      }
      ++count;
    }
    std::vector<ScreenReport> reports;
    try {
      reports = service_.screen();
    } catch (...) {
      // Library-bug path (e.g. ContractViolation): fail this chunk's
      // futures instead of hanging them, and keep the daemon serving.
      const std::exception_ptr error = std::current_exception();
      for (std::size_t i = 0; i < count; ++i) {
        batch[done + i].promise.set_exception(error);
      }
      reports.clear();
    }
    // reports.size() == count in every legal schedule; the bound guards
    // against a foreign producer's items inflating the screen() batch.
    for (std::size_t i = 0; i < count && i < reports.size(); ++i) {
      if (async_.on_report) async_.on_report(reports[i]);
      batch[done + i].promise.set_value(std::move(reports[i]));
    }
    done += count;
    std::size_t delivered = count;
    if (refused) {
      // Reject the refused job's future rather than screen a moved-from
      // payload as if it were the design.
      Job& job = batch[done];
      ScreenReport report;
      report.submission.name = std::move(job.name);
      report.submission.error.message =
          "AsyncAuditor: audit-service queue refused the submission "
          "(foreign producer on the owned service?)";
      job.promise.set_value(std::move(report));
      ++done;
      ++delivered;
    }
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      reported_ += delivered;
      ++batches_;
    }
    progress_cv_.notify_all();
  }
}

void AsyncAuditor::quiesce() {
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [this] { return reported_ == submitted_; });
}

void AsyncAuditor::close() {
  queue_.close();  // push fails from here on; pending items stay poppable
  std::lock_guard<std::mutex> lock(close_mu_);
  if (joined_) return;
  consumer_.join();  // consume() drains the backlog, then exits
  joined_ = true;
}

std::size_t AsyncAuditor::submitted() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return submitted_;
}

std::size_t AsyncAuditor::reported() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return reported_;
}

std::size_t AsyncAuditor::batches() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return batches_;
}

}  // namespace gnn4ip::audit
