// RTL compilation front half of the audit pipeline, with Result-style
// diagnostics: preprocess → parse → DFG extraction → featurization,
// packaged so one malformed design yields a per-design Diagnostic
// instead of an exception that kills the whole batch.
//
// These are the stable, composable stage signatures the AuditService is
// built on; anything that needs "Verilog text in, GNN tensors out"
// (examples, the CLI, a future daemon) goes through compile_rtl /
// Pipeline rather than hand-wiring dfg::extract_dfg + gnn::featurize.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dfg/pipeline.h"
#include "gnn/featurize.h"
#include "graph/digraph.h"
#include "verilog/diagnostics.h"

namespace gnn4ip::audit {

/// One user-facing problem with a submitted design. `location` is 0:0
/// when the failure has no source position (e.g. elaboration errors).
struct Diagnostic {
  std::string message;
  verilog::SourceLocation location;

  [[nodiscard]] bool has_location() const { return location.line > 0; }
  [[nodiscard]] std::string to_string() const {
    return has_location() ? location.to_string() + ": " + message : message;
  }
};

/// Everything the back half of the pipeline needs from one design: the
/// extracted DFG (kept for inspection/DOT export) and its GNN tensors.
struct CompiledDesign {
  graph::Digraph dfg;
  gnn::GraphTensors tensors;
};

/// Result of compiling one design: either a CompiledDesign or a
/// Diagnostic, never an exception for malformed input.
struct CompileResult {
  bool ok = false;
  CompiledDesign design;  // valid when ok
  Diagnostic error;       // valid when !ok
};

/// Compile one Verilog source (RTL or gate-level netlist) into GNN
/// tensors. Malformed input is reported through the returned Diagnostic;
/// only internal library bugs (util::ContractViolation) still throw.
[[nodiscard]] CompileResult compile_rtl(
    const std::string& verilog_source,
    const dfg::PipelineOptions& pipeline = {},
    const gnn::FeaturizeOptions& featurize = {});

/// Reusable compile stage with fixed options — the form AuditService
/// holds, and the unit a batch fan-out parallelizes over.
class Pipeline {
 public:
  explicit Pipeline(const dfg::PipelineOptions& pipeline = {},
                    const gnn::FeaturizeOptions& featurize = {})
      : pipeline_(pipeline), featurize_(featurize) {}

  [[nodiscard]] CompileResult compile(const std::string& verilog_source) const {
    return compile_rtl(verilog_source, pipeline_, featurize_);
  }

  /// Compile a batch in parallel (0 threads = shared pool). Results are
  /// positionally aligned with `sources`; designs are independent, so
  /// the output is bit-identical for any worker count.
  [[nodiscard]] std::vector<CompileResult> compile_batch(
      std::span<const std::string> sources, std::size_t num_threads = 0) const;

  [[nodiscard]] const dfg::PipelineOptions& pipeline_options() const {
    return pipeline_;
  }
  [[nodiscard]] const gnn::FeaturizeOptions& featurize_options() const {
    return featurize_;
  }

 private:
  dfg::PipelineOptions pipeline_;
  gnn::FeaturizeOptions featurize_;
};

}  // namespace gnn4ip::audit
