// audit::AsyncAuditor — daemon front end over AuditService.
//
// AuditService is batch-synchronous: producers enqueue, then *someone*
// must call screen() on a consumer thread, and everyone waits on that
// batch boundary. AsyncAuditor removes the boundary. It owns the service
// and a pool of `num_consumers` daemon threads that drain the submission
// queue continuously: one consumer blocks for a batch seed, takes
// whatever accumulated behind it as its chunk, and screens it while its
// siblings pick up the next chunk — so producers only ever block on
// queue *capacity* (bounded-buffer backpressure), never on a batch
// boundary, and latency degrades gracefully into larger batches under
// load instead of stalling submitters.
//
//   audit::AsyncAuditor auditor(std::move(model), options);
//   auditor.service().add_library("crc8", crc8_verilog);   // before submits
//   std::future<ScreenReport> r = auditor.submit("in#1", verilog);
//   ...                                   // producer keeps going; the
//   use(r.get());                         // daemons screen in the back
//
// Results are delivered twice over: every submit() returns a
// std::future<ScreenReport>, and an optional on_report callback fires
// for every report. The callback is *serialized* — invocations are
// mutually exclusive across all consumers and arrive in global
// admission-ticket order (it fires inside the service's commit
// turnstile), so callers need no locking of their own.
//
// Verdict sets are consumer-count-invariant: chunks go through
// AuditService::screen_batch, whose per-submission ticket-ordered
// commits make any interleaving of K consumers produce bit-identical
// verdicts (and post-quiesce top_k) to a sequential single-consumer
// run. Consumers parallelize the expensive compile + featurize + embed
// phase; commits serialize through the turnstile.
//
// Ticket discipline: one hand-off lock serializes {pop a chunk from the
// queue, reserve its tickets}, so ticket order always equals dequeue
// order — a consumer can never wait on a ticket held by a job that is
// still behind it in the queue.
//
// Shutdown is drain-on-close (util::BoundedQueue::close): close() stops
// accepting work, the consumers screen everything already accepted,
// every outstanding future is fulfilled, and all threads join. The
// destructor closes implicitly. Submissions that lose the race with
// close() get a rejected ScreenReport (a Diagnostic, not a broken
// promise).
//
// Threading contract: submit()/close()/quiesce() are safe from any
// producer thread — but NOT from the on_report callback, which runs on
// a consumer thread: close() there would self-join and quiesce() there
// would wait on a report count that only advances after the callback
// returns. service() reads that are documented lock-protected
// (top_k/contains/index_of/resident) are safe while the daemons run;
// add_library is too (it takes its own admission ticket). Anything
// else — use before the first submit(), or after quiesce()/close().
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_service.h"
#include "util/thread_annotations.h"

namespace gnn4ip::audit {

struct AsyncOptions {
  /// Capacity of the daemon's submission queue. Producers block (bounded
  /// backpressure) once this many submissions await the consumers.
  std::size_t queue_capacity = 256;
  /// Screening consumer threads. 0 = the GNN4IP_CONSUMERS environment
  /// variable, else 1. Verdict sets are bit-identical for any value.
  std::size_t num_consumers = 0;
  /// Largest chunk one consumer takes in a single hand-off (0 = the
  /// service's queue_capacity). Smaller chunks spread a backlog across
  /// more consumers; larger chunks amortize per-batch overhead.
  std::size_t max_batch = 0;
  /// Optional push delivery: invoked for every report, serialized
  /// across consumers in global ticket order, before the matching
  /// future resolves. Must not call back into close()/quiesce() (see
  /// the threading contract above).
  std::function<void(const ScreenReport&)> on_report;
};

class AsyncAuditor {
 public:
  /// Takes ownership of the model and stands the daemons up immediately.
  explicit AsyncAuditor(gnn::Hw2Vec model, const AuditOptions& options = {},
                        AsyncOptions async = {},
                        std::unique_ptr<EvictionPolicy> policy = nullptr);

  /// Deployment path: load weights persisted by gnn::save_model_file.
  [[nodiscard]] static std::unique_ptr<AsyncAuditor> from_model_file(
      const std::string& path, const AuditOptions& options = {},
      AsyncOptions async = {},
      std::unique_ptr<EvictionPolicy> policy = nullptr);

  AsyncAuditor(const AsyncAuditor&) = delete;
  AsyncAuditor& operator=(const AsyncAuditor&) = delete;

  /// close() + join.
  ~AsyncAuditor();

  /// Enqueue a design for the consumers; the future resolves once the
  /// submission has committed. Blocks only while the submission queue
  /// is at capacity. After close(), resolves immediately with a
  /// rejected report ("auditor closed") instead of ever losing a design
  /// silently.
  [[nodiscard]] std::future<ScreenReport> submit(std::string name,
                                                std::string verilog_source);
  [[nodiscard]] std::future<ScreenReport> submit(std::string name,
                                                 gnn::GraphTensors tensors);
  [[nodiscard]] std::future<ScreenReport> submit(
      const train::GraphEntry& entry);

  /// Block until every submission accepted so far has been screened and
  /// its future fulfilled — across the whole consumer pool. A safe
  /// point for touching service().
  void quiesce();

  /// Quiesce-then-save: block until every submission accepted so far
  /// has committed, then write a corpus snapshot to `dir` via
  /// AuditService::save_corpus. The save itself rides the admission
  /// turnstile, so it would be consistent even mid-stream; the quiesce
  /// pins the snapshot to "everything this producer has submitted" —
  /// the guarantee a caller checkpointing its own progress needs.
  /// Producer-thread only (same rule as quiesce(): never from
  /// on_report). The daemons keep running; submissions racing the save
  /// land after the snapshot, exactly as if submitted after it.
  void save_corpus(const std::string& dir);

  /// Stop accepting submissions, screen the backlog, fulfil every
  /// outstanding future, and join every consumer. Idempotent.
  void close();

  [[nodiscard]] bool closed() const { return queue_.closed(); }

  /// Submissions accepted / reports delivered since construction.
  [[nodiscard]] std::size_t submitted() const;
  [[nodiscard]] std::size_t reported() const;
  /// Chunks the pool has screened (shows the adaptive batching: slow
  /// screens ⇒ fewer, larger chunks).
  [[nodiscard]] std::size_t batches() const;
  /// Consumer threads in the pool.
  [[nodiscard]] std::size_t consumers() const { return consumers_.size(); }

  /// The owned service. See the threading contract above for which
  /// members are safe while the daemons run.
  [[nodiscard]] AuditService& service() { return service_; }
  [[nodiscard]] const AuditService& service() const { return service_; }

 private:
  struct Job {
    std::string name;
    std::string source;         // valid when from_source
    gnn::GraphTensors tensors;  // valid otherwise
    bool from_source = false;
    std::promise<ScreenReport> promise;
  };

  [[nodiscard]] std::future<ScreenReport> enqueue(Job job);
  void consume();  // consumer thread body (one per pool member)
  void process_batch(std::vector<Job> batch, std::size_t first_ticket);

  AuditService service_;
  AsyncOptions async_;
  util::BoundedQueue<Job> queue_;

  /// Serializes {pop chunk, reserve tickets}: ticket order == dequeue
  /// order, the invariant the commit turnstile depends on.
  util::Mutex handoff_mu_{util::lock_rank::kHandoff};

  mutable util::Mutex progress_mu_{util::lock_rank::kProgress};
  util::CondVar progress_cv_;
  std::size_t submitted_ GNN4IP_GUARDED_BY(progress_mu_) = 0;
  std::size_t reported_ GNN4IP_GUARDED_BY(progress_mu_) = 0;
  std::size_t batches_ GNN4IP_GUARDED_BY(progress_mu_) = 0;

  util::Mutex close_mu_{util::lock_rank::kClose};  // serializes close()
  bool joined_ GNN4IP_GUARDED_BY(close_mu_) = false;
  /// Consumer pool — last member: started after everything above.
  std::vector<std::thread> consumers_;
};

}  // namespace gnn4ip::audit
