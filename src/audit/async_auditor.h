// audit::AsyncAuditor — daemon front end over AuditService.
//
// AuditService is batch-synchronous: producers enqueue, then *someone*
// must call screen() on the consumer thread, and everyone waits on that
// batch boundary. AsyncAuditor removes the boundary. It owns the service
// and one daemon consumer thread that drains the submission queue
// continuously: whatever has accumulated while the previous batch was
// screening becomes the next batch, so producers only ever block on
// queue *capacity* (bounded-buffer backpressure), never on a batch
// boundary, and latency degrades gracefully into larger batches under
// load instead of stalling submitters.
//
//   audit::AsyncAuditor auditor(std::move(model), options);
//   auditor.service().add_library("crc8", crc8_verilog);   // before submits
//   std::future<ScreenReport> r = auditor.submit("in#1", verilog);
//   ...                                   // producer keeps going; the
//   use(r.get());                         // daemon screens in the back
//
// Results are delivered twice over: every submit() returns a
// std::future<ScreenReport>, and an optional on_report callback fires on
// the consumer thread in screening order. Verdicts are the service's —
// bit-identical to the synchronous path for any shard count × worker
// count, since the daemon changes *when* screen() runs, never its
// arithmetic.
//
// Shutdown is drain-on-close (util::BoundedQueue::close): close() stops
// accepting work, the daemon screens everything already accepted, every
// outstanding future is fulfilled, and the thread joins. The destructor
// closes implicitly. Submissions that lose the race with close() get a
// rejected ScreenReport (a Diagnostic, not a broken promise).
//
// Threading contract: submit()/close()/quiesce() are safe from any
// producer thread — but NOT from the on_report callback, which runs on
// the consumer thread itself: close() there would self-join and
// quiesce() there would wait on a report count that only advances after
// the callback returns. service() is the consumer-side view — configure
// the library before the first submit(), or call quiesce() first;
// touching it while the daemon is mid-batch is a race.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "audit/audit_service.h"

namespace gnn4ip::audit {

struct AsyncOptions {
  /// Capacity of the daemon's submission queue. Producers block (bounded
  /// backpressure) once this many submissions await the consumer.
  std::size_t queue_capacity = 256;
  /// Optional push delivery: invoked on the consumer thread for every
  /// report, in screening order, before the matching future resolves.
  /// Must not call back into close()/quiesce() (see the threading
  /// contract above).
  std::function<void(const ScreenReport&)> on_report;
};

class AsyncAuditor {
 public:
  /// Takes ownership of the model and stands the daemon up immediately.
  explicit AsyncAuditor(gnn::Hw2Vec model, const AuditOptions& options = {},
                        AsyncOptions async = {},
                        std::unique_ptr<EvictionPolicy> policy = nullptr);

  /// Deployment path: load weights persisted by gnn::save_model_file.
  [[nodiscard]] static std::unique_ptr<AsyncAuditor> from_model_file(
      const std::string& path, const AuditOptions& options = {},
      AsyncOptions async = {},
      std::unique_ptr<EvictionPolicy> policy = nullptr);

  AsyncAuditor(const AsyncAuditor&) = delete;
  AsyncAuditor& operator=(const AsyncAuditor&) = delete;

  /// close() + join.
  ~AsyncAuditor();

  /// Enqueue a design for the daemon; the future resolves once its batch
  /// has been screened. Blocks only while the submission queue is at
  /// capacity. After close(), resolves immediately with a rejected
  /// report ("auditor closed") instead of ever losing a design silently.
  [[nodiscard]] std::future<ScreenReport> submit(std::string name,
                                                std::string verilog_source);
  [[nodiscard]] std::future<ScreenReport> submit(std::string name,
                                                 gnn::GraphTensors tensors);
  [[nodiscard]] std::future<ScreenReport> submit(
      const train::GraphEntry& entry);

  /// Block until every submission accepted so far has been screened and
  /// its future fulfilled. A safe point for touching service().
  void quiesce();

  /// Stop accepting submissions, screen the backlog, fulfil every
  /// outstanding future, and join the daemon. Idempotent.
  void close();

  [[nodiscard]] bool closed() const { return queue_.closed(); }

  /// Submissions accepted / reports delivered since construction.
  [[nodiscard]] std::size_t submitted() const;
  [[nodiscard]] std::size_t reported() const;
  /// Batches the daemon has screened (shows the adaptive batching: slow
  /// screens ⇒ fewer, larger batches).
  [[nodiscard]] std::size_t batches() const;

  /// The owned service. Consumer-side: use before the first submit() or
  /// after quiesce()/close().
  [[nodiscard]] AuditService& service() { return service_; }
  [[nodiscard]] const AuditService& service() const { return service_; }

 private:
  struct Job {
    std::string name;
    std::string source;         // valid when from_source
    gnn::GraphTensors tensors;  // valid otherwise
    bool from_source = false;
    std::promise<ScreenReport> promise;
  };

  [[nodiscard]] std::future<ScreenReport> enqueue(Job job);
  void consume();                          // daemon thread body
  void process_batch(std::vector<Job> batch);

  AuditService service_;
  AsyncOptions async_;
  util::BoundedQueue<Job> queue_;

  mutable std::mutex progress_mu_;
  std::condition_variable progress_cv_;
  std::size_t submitted_ = 0;  // guarded by progress_mu_
  std::size_t reported_ = 0;   // guarded by progress_mu_
  std::size_t batches_ = 0;    // guarded by progress_mu_

  std::mutex close_mu_;  // serializes close(); joined_ guarded by it
  bool joined_ = false;
  std::thread consumer_;  // last member: started after everything above
};

}  // namespace gnn4ip::audit
