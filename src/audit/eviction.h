// Pluggable eviction for the resident audit corpus.
//
// A long-running AuditService accumulates one D-float row per screened
// design; max_resident bounds that cache, and the policy picks which
// unpinned entry to drop when the bound is exceeded. Policies are keyed
// by entry *name* (names are unique within a service and survive the
// index remapping of the corpus compact(), so a policy never has to
// track index shifts).
#pragma once

#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace gnn4ip::audit {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// The entry was admitted to the corpus (including resubmission under
  /// the same name). Called for every resident entry, pinned or not.
  /// The service deliberately does not touch on screen hits: recency is
  /// admission order, so eviction within a batch is independent of
  /// which residents happened to match.
  virtual void touch(const std::string& name) = 0;

  /// The entry left the corpus (evicted or replaced by a resubmission).
  virtual void erase(const std::string& name) = 0;

  /// Pick the entry to evict among those where `evictable(name)` is
  /// true (the service excludes pinned library entries). nullopt when
  /// nothing qualifies — the service then stops evicting rather than
  /// dropping pinned IP.
  [[nodiscard]] virtual std::optional<std::string> victim(
      const std::function<bool(const std::string&)>& evictable) = 0;
};

/// Least-recently-used: victim() walks from the coldest entry, skipping
/// non-evictable (pinned) names. O(1) touch/erase via list + map.
class LruEvictionPolicy final : public EvictionPolicy {
 public:
  void touch(const std::string& name) override;
  void erase(const std::string& name) override;
  [[nodiscard]] std::optional<std::string> victim(
      const std::function<bool(const std::string&)>& evictable) override;

  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  std::list<std::string> order_;  // front = most recent, back = coldest
  std::unordered_map<std::string, std::list<std::string>::iterator> where_;
};

}  // namespace gnn4ip::audit
