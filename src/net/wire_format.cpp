#include "net/wire_format.h"

#include <cstring>

namespace gnn4ip::net {

void throw_wire_error(WireErrorCode code, const std::string& message) {
  switch (code) {
    case WireErrorCode::kMagic:
      throw WireMagicError(message);
    case WireErrorCode::kVersion:
      throw WireVersionError(message);
    case WireErrorCode::kByteOrder:
      throw WireByteOrderError(message);
    case WireErrorCode::kDim:
      throw WireDimError(message);
    case WireErrorCode::kTruncated:
      throw WireTruncatedError(message);
    case WireErrorCode::kOversize:
      throw WireOversizeError(message);
    case WireErrorCode::kFingerprint:
      throw WireFingerprintError(message);
    case WireErrorCode::kProtocol:
      throw WireProtocolError(message);
    case WireErrorCode::kIo:
      throw WireIoError(message);
  }
  throw WireProtocolError("peer sent unknown error code " +
                          std::to_string(static_cast<std::uint32_t>(code)) +
                          ": " + message);
}

WireErrorCode wire_error_code(const WireError& error) {
  if (dynamic_cast<const WireMagicError*>(&error)) {
    return WireErrorCode::kMagic;
  }
  if (dynamic_cast<const WireVersionError*>(&error)) {
    return WireErrorCode::kVersion;
  }
  if (dynamic_cast<const WireByteOrderError*>(&error)) {
    return WireErrorCode::kByteOrder;
  }
  if (dynamic_cast<const WireDimError*>(&error)) return WireErrorCode::kDim;
  if (dynamic_cast<const WireTruncatedError*>(&error)) {
    return WireErrorCode::kTruncated;
  }
  if (dynamic_cast<const WireOversizeError*>(&error)) {
    return WireErrorCode::kOversize;
  }
  if (dynamic_cast<const WireFingerprintError*>(&error)) {
    return WireErrorCode::kFingerprint;
  }
  if (dynamic_cast<const WireProtocolError*>(&error)) {
    return WireErrorCode::kProtocol;
  }
  return WireErrorCode::kIo;
}

// ---- FrameBuilder ---------------------------------------------------------

FrameBuilder::FrameBuilder(std::vector<std::uint8_t>& buffer, MsgType type)
    : buffer_(buffer), length_offset_(buffer.size()) {
  const std::uint32_t placeholder = 0;
  put_bytes(&placeholder, sizeof(placeholder));
  put_u8(static_cast<std::uint8_t>(type));
}

void FrameBuilder::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void FrameBuilder::put_u32(std::uint32_t v) { put_bytes(&v, sizeof(v)); }

void FrameBuilder::put_u64(std::uint64_t v) { put_bytes(&v, sizeof(v)); }

void FrameBuilder::put_f32(float v) { put_bytes(&v, sizeof(v)); }

void FrameBuilder::put_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void FrameBuilder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void FrameBuilder::finish(std::size_t tail_bytes) {
  const std::size_t body =
      buffer_.size() - length_offset_ - sizeof(std::uint32_t) + tail_bytes;
  if (body > kMaxFrameBytes) {
    throw WireOversizeError("frame of " + std::to_string(body) +
                            " bytes exceeds the " +
                            std::to_string(kMaxFrameBytes) + "-byte ceiling");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(body);
  std::memcpy(buffer_.data() + length_offset_, &length, sizeof(length));
}

// ---- FrameCursor ----------------------------------------------------------

std::uint8_t FrameCursor::get_u8(const char* field) {
  std::uint8_t v = 0;
  get_bytes(&v, sizeof(v), field);
  return v;
}

std::uint32_t FrameCursor::get_u32(const char* field) {
  std::uint32_t v = 0;
  get_bytes(&v, sizeof(v), field);
  return v;
}

std::uint64_t FrameCursor::get_u64(const char* field) {
  std::uint64_t v = 0;
  get_bytes(&v, sizeof(v), field);
  return v;
}

float FrameCursor::get_f32(const char* field) {
  float v = 0.0F;
  get_bytes(&v, sizeof(v), field);
  return v;
}

void FrameCursor::get_bytes(void* out, std::size_t size, const char* field) {
  if (size_ - pos_ < size) {
    throw WireTruncatedError("frame payload ends inside field '" +
                             std::string(field) + "' (" +
                             std::to_string(size_ - pos_) + " of " +
                             std::to_string(size) + " bytes present)");
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

std::string FrameCursor::get_string(const char* field) {
  const std::uint32_t len = get_u32(field);
  if (size_ - pos_ < len) {
    throw WireTruncatedError("string field '" + std::string(field) +
                             "' declares " + std::to_string(len) +
                             " bytes but only " +
                             std::to_string(size_ - pos_) + " remain");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

const float* FrameCursor::get_f32_array(std::size_t count, const char* field) {
  const std::size_t bytes = count * sizeof(float);
  if (size_ - pos_ < bytes) {
    throw WireTruncatedError("float block '" + std::string(field) +
                             "' declares " + std::to_string(count) +
                             " floats but only " +
                             std::to_string(size_ - pos_) + " bytes remain");
  }
  // Payload buffers come from std::vector<uint8_t> (aligned for any
  // scalar), and the floats were packed at float offsets — but the
  // frame header is 5 bytes, so the block itself may sit unaligned;
  // the callers memcpy row-by-row, which is alignment-safe.
  const float* out = reinterpret_cast<const float*>(data_ + pos_);
  pos_ += bytes;
  return out;
}

void FrameCursor::done(const char* frame_name) const {
  if (pos_ != size_) {
    throw WireProtocolError(std::string(frame_name) + " frame carries " +
                            std::to_string(size_ - pos_) +
                            " trailing bytes past its declared fields");
  }
}

// ---- Frame IO -------------------------------------------------------------

Frame read_frame(Socket& socket) {
  std::uint32_t length = 0;
  if (!socket.read_exact_or_eof(&length, sizeof(length))) {
    throw WireConnectionError("peer closed the connection");
  }
  if (length == 0) {
    throw WireProtocolError("zero-length frame (a frame is at least a type "
                            "byte)");
  }
  // The ceiling check precedes the allocation: a hostile length prefix
  // must not be able to reserve gigabytes before it is rejected.
  if (length > kMaxFrameBytes) {
    throw WireOversizeError("frame declares " + std::to_string(length) +
                            " bytes; the ceiling is " +
                            std::to_string(kMaxFrameBytes));
  }
  std::uint8_t type = 0;
  socket.read_exact(&type, sizeof(type));
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty()) {
    socket.read_exact(frame.payload.data(), frame.payload.size());
  }
  return frame;
}

Frame expect_frame(Socket& socket, MsgType expected) {
  Frame frame = read_frame(socket);
  if (frame.type == expected) return frame;
  if (frame.type == MsgType::kError) {
    FrameCursor cur(frame.payload);
    const auto code = static_cast<WireErrorCode>(cur.get_u32("error code"));
    const std::string message = cur.get_string("error message");
    throw_wire_error(code, message);
  }
  throw WireProtocolError(
      "expected frame type " +
      std::to_string(static_cast<unsigned>(expected)) + " but peer sent " +
      std::to_string(static_cast<unsigned>(frame.type)));
}

void build_error_frame(std::vector<std::uint8_t>& buffer, WireErrorCode code,
                       const std::string& message) {
  FrameBuilder b(buffer, MsgType::kError);
  b.put_u32(static_cast<std::uint32_t>(code));
  b.put_string(message);
  b.finish();
}

}  // namespace gnn4ip::net
