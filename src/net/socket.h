// Thin RAII TCP layer — the ONLY file pair in src/ allowed to touch
// socket(2)-family syscalls (scripts/lint_invariants.py's raw-socket
// rule fails CI on any direct call outside src/net/), so every byte
// that crosses a process boundary goes through one audited seam.
//
// Scope is deliberately narrow: IPv4 loopback/LAN client connections,
// a loopback listener for shard servers, socketpair for tests, exact
// reads, vectored writes. No TLS, no IPv6, no non-blocking state
// machines — the distributed corpus runs on a trusted cluster network
// (docs/ARCHITECTURE.md, failure semantics), and everything above this
// layer speaks length-prefixed frames (net/wire_format.h), so the
// syscall surface stays small enough to review in one sitting.
//
// Error mapping (the wire taxonomy, not errno soup):
//   * connect/bind/listen/accept failures → WireConnectionError
//   * peer closed before any byte of a read → read_exact_or_eof()
//     returns false (the caller decides if EOF is legal there)
//   * peer closed mid-read → WireTruncatedError
//   * SO_RCVTIMEO expiry → WireTimeoutError (tests use this so a
//     protocol bug can never hang a suite)
//   * every other syscall failure → WireIoError with errno text
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gnn4ip::net {

/// One scatter/gather slice for Socket::write_vectored — mirrors
/// struct iovec without pulling <sys/uio.h> into every includer.
struct ConstBuffer {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// Move-only RAII wrapper of one connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to `host:port` (IPv4 dotted quad or "localhost") with
  /// TCP_NODELAY set — the wire layer does its own aggregation, so
  /// Nagle would only add latency. Throws WireConnectionError.
  [[nodiscard]] static Socket connect_to(const std::string& host,
                                         std::uint16_t port);

  /// A connected AF_UNIX socketpair — the wire tests' harness: real fd
  /// semantics (EOF, partial reads) without binding ports.
  [[nodiscard]] static std::pair<Socket, Socket> pair();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Bound every subsequent read: a read that sits longer than
  /// `timeout_ms` throws WireTimeoutError. 0 restores blocking reads.
  void set_recv_timeout(unsigned timeout_ms);

  /// Wait up to `timeout_ms` for the socket to become readable (data or
  /// EOF). Lets a serve loop poll its stop flag between frames without
  /// putting a timeout under a legitimately slow mid-frame read.
  [[nodiscard]] bool wait_readable(unsigned timeout_ms) const;

  /// Read exactly `size` bytes. EOF anywhere → WireTruncatedError.
  void read_exact(void* data, std::size_t size);

  /// read_exact, except a clean EOF *before the first byte* returns
  /// false — the frame-boundary read, where a peer hanging up is a
  /// legal end of conversation rather than a truncation.
  [[nodiscard]] bool read_exact_or_eof(void* data, std::size_t size);

  /// Write all of `data` (looping over short writes). EPIPE/ECONNRESET
  /// → WireConnectionError, anything else → WireIoError.
  void write_all(const void* data, std::size_t size);

  /// Gather-write every buffer in order with writev(2) — one syscall
  /// per batch and no intermediate copy, which is what lets the wire
  /// layer send an N×D embedding block straight out of the corpus
  /// mirror behind a small header.
  void write_vectored(const std::vector<ConstBuffer>& buffers);

  /// Half-close both directions (peer reads EOF); keeps the fd for the
  /// destructor. Used by tests to simulate mid-stream disconnects.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Loopback listener for shard servers: binds 127.0.0.1:`port`
/// (port 0 = ephemeral; port() reports the choice).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Wait up to `timeout_ms` for one connection; nullopt on timeout or
  /// after close(). The bounded wait is what lets an accept loop poll
  /// its stop flag without busy-spinning.
  [[nodiscard]] std::optional<Socket> accept(unsigned timeout_ms);

  /// Stop accepting; any blocked accept() returns nullopt promptly.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace gnn4ip::net
