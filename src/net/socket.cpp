#include "net/socket.h"

// The one translation unit in src/ that speaks to the socket API
// directly; everything else goes through Socket/TcpListener (enforced
// by the raw-socket lint rule).
#include <arpa/inet.h>   // lint:allow(raw-socket): the audited seam
#include <netinet/in.h>  // lint:allow(raw-socket): the audited seam
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>  // lint:allow(raw-socket): the audited seam
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire_format.h"

namespace gnn4ip::net {

namespace {

std::string errno_text(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
  // lint:allow(raw-socket): the audited seam — all syscalls below too.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw WireConnectionError("cannot resolve '" + host +
                              "' (v1 accepts IPv4 dotted quads and "
                              "'localhost' only)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireConnectionError(errno_text("socket"));
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw WireConnectionError("cannot connect to " + host + ":" +
                              std::to_string(port) + " (" +
                              std::strerror(errno) + ")");
  }
  // The wire layer aggregates small frames itself; Nagle on top of
  // that only delays the flush.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw WireIoError(errno_text("socketpair"));
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

void Socket::set_recv_timeout(unsigned timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_ms / 1000);
  tv.tv_usec = static_cast<long>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw WireIoError(errno_text("setsockopt(SO_RCVTIMEO)"));
  }
}

bool Socket::wait_readable(unsigned timeout_ms) const {
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, static_cast<int>(timeout_ms)) > 0;
}

void Socket::read_exact(void* data, std::size_t size) {
  if (!read_exact_or_eof(data, size)) {
    throw WireTruncatedError(
        "peer closed the connection where a frame was expected");
  }
}

bool Socket::read_exact_or_eof(void* data, std::size_t size) {
  auto* out = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, out + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw WireTruncatedError("peer closed mid-read after " +
                               std::to_string(got) + " of " +
                               std::to_string(size) + " bytes");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw WireTimeoutError("read timed out after " + std::to_string(got) +
                             " of " + std::to_string(size) + " bytes");
    }
    if (errno == ECONNRESET) {
      throw WireConnectionError(errno_text("recv"));
    }
    throw WireIoError(errno_text("recv"));
  }
  return true;
}

void Socket::write_all(const void* data, std::size_t size) {
  const auto* in = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a SIGPIPE crash.
    const ssize_t n = ::send(fd_, in + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw WireConnectionError(errno_text("send"));
    }
    throw WireIoError(errno_text("send"));
  }
}

void Socket::write_vectored(const std::vector<ConstBuffer>& buffers) {
  std::vector<iovec> iov;
  iov.reserve(buffers.size());
  std::size_t total = 0;
  for (const ConstBuffer& b : buffers) {
    if (b.size == 0) continue;
    iov.push_back({const_cast<void*>(b.data), b.size});
    total += b.size;
  }
  // writev caps the slice count per call (IOV_MAX, typically 1024);
  // stay safely under it and loop.
  constexpr std::size_t kMaxSlices = 512;
  std::size_t sent = 0;
  std::size_t first = 0;  // first iovec not yet fully written
  while (sent < total) {
    const std::size_t batch = std::min(iov.size() - first, kMaxSlices);
    const ssize_t n = ::writev(fd_, iov.data() + first,
                               static_cast<int>(batch));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw WireConnectionError(errno_text("writev"));
      }
      throw WireIoError(errno_text("writev"));
    }
    sent += static_cast<std::size_t>(n);
    // Advance past fully-written slices; trim a partially-written one.
    std::size_t done = static_cast<std::size_t>(n);
    while (first < iov.size() && done >= iov[first].iov_len) {
      done -= iov[first].iov_len;
      ++first;
    }
    if (first < iov.size() && done > 0) {
      iov[first].iov_base = static_cast<std::uint8_t*>(iov[first].iov_base) +
                            done;
      iov[first].iov_len -= done;
    }
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw WireConnectionError(errno_text("socket"));
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = errno_text("bind");
    (void)::close(fd_);
    fd_ = -1;
    throw WireConnectionError(why);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const std::string why = errno_text("listen");
    (void)::close(fd_);
    fd_ = -1;
    throw WireConnectionError(why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string why = errno_text("getsockname");
    (void)::close(fd_);
    fd_ = -1;
    throw WireIoError(why);
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::optional<Socket> TcpListener::accept(unsigned timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (ready <= 0) return std::nullopt;  // timeout, or closed under us
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;  // racing close(); not an error
  const int one = 1;
  (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(client);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RDWR);
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gnn4ip::net
