// G4IPWIRE v1 — the length-prefixed binary protocol between the
// distributed-corpus front end (dist::DistCorpus) and shard servers
// (dist::ShardServer / gnn4ip_shardd). Byte-level spec in
// docs/FORMATS.md; this header is the single source of the constants,
// message types, error taxonomy, and the frame builder/cursor both
// sides share.
//
// Design mirrors the snapshot format deliberately: native-endian
// payloads guarded by a byte-order mark in the handshake, a magic +
// version that reject foreign streams before anything is trusted, and
// a *distinct typed error* for every malformed-input class — the wire
// is exactly the surface a hostile or confused peer pokes, so nothing
// is best-effort: a frame either parses completely or throws before
// any state changes. The oversize check runs on the length prefix
// *before* any allocation, so a hostile 4-GiB length cannot OOM the
// server; truncation anywhere mid-frame is WireTruncatedError, and a
// clean hang-up between frames is WireConnectionError (the one error
// that is a legal end of conversation server-side).
//
// Perf shape (Galois NetworkInterfaceBuffered): frames are built into
// per-connection send buffers and flushed on size/batch boundaries, so
// many small mutations ride one send(2); bulk float payloads (the N×D
// probe block of a Screen) are *not* copied into the buffer — the
// header goes in the buffer and the rows go out behind it in one
// writev (Socket::write_vectored).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.h"

namespace gnn4ip::net {

// ---- Protocol constants ---------------------------------------------------

/// 8-byte magic opening every Hello (no terminating NUL).
inline constexpr char kWireMagic[8] = {'G', '4', 'I', 'P', 'W', 'I', 'R', 'E'};
/// Protocol version this build speaks.
inline constexpr std::uint32_t kWireVersion = 1;
/// Byte-order mark carried in the Hello: reads back scrambled on a
/// foreign-endian peer, turning silent float garbage into a typed
/// rejection (same trick as the snapshot header).
inline constexpr std::uint32_t kWireByteOrderMark = 0x0A0B0C0Du;
/// Hard frame-size ceiling, enforced on the length prefix *before*
/// allocating the payload. Generous for real traffic (a 64 MiB frame
/// holds a million 16-float rows) and small enough that a hostile
/// length cannot OOM the process.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;
/// Send-buffer flush threshold: buffered one-way frames are flushed
/// once the buffer crosses this (roughly a jumbo packet's worth), or
/// at the latest when a request needs a response — aggregation à la
/// Galois NetworkInterfaceBuffered.
inline constexpr std::size_t kFlushThresholdBytes = 16 * 1024;

/// Frame types. Client→server use 1..31, server→client 32..62, and 63
/// is the error frame either side may send before closing.
enum class MsgType : std::uint8_t {
  // client → server
  kHello = 1,      // magic, version, BOM, dim, model fingerprint
  kAdmitRows = 2,  // one-way: append rows (name + D floats each)
  kRemove = 3,     // one-way: tombstone one local row
  kCompact = 4,    // one-way: compact the shard store
  kReset = 5,      // one-way: drop every row (warm-restart push)
  kScreen = 6,     // N probe rows → per-row flagged/best partials
  kTopK = 7,       // one probe row → ≤k best matches in this shard
  kFlag = 8,       // all within-shard pairs above delta
  kCrossFlag = 9,  // probe block × this shard's rows above delta
  kSaveShard = 10, // write this store as shard file s into a directory
  kInfo = 11,      // dim / row count / live count probe
  // server → client
  kHelloAck = 32,
  kScreenResult = 33,
  kTopKResult = 34,
  kFlagResult = 35,
  kCrossFlagResult = 36,
  kSaveAck = 37,
  kInfoAck = 38,
  kError = 63,  // u32 WireErrorCode + message; sender closes after
};

/// On-wire error codes (the kError payload). One per WireError type
/// that can cross the wire; connection/timeout errors are client-local
/// conditions and have no code.
enum class WireErrorCode : std::uint32_t {
  kMagic = 1,
  kVersion = 2,
  kByteOrder = 3,
  kDim = 4,
  kTruncated = 5,
  kOversize = 6,
  kFingerprint = 7,
  kProtocol = 8,
  kIo = 9,
};

// ---- Error taxonomy (mirrors core::SnapshotError) -------------------------

/// Base of every wire rejection — catchable as one family when the
/// caller only cares that the conversation is over.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// The Hello does not open with the G4IPWIRE magic: not our protocol.
class WireMagicError final : public WireError {
 public:
  using WireError::WireError;
};

/// The peer speaks a protocol version this build does not.
class WireVersionError final : public WireError {
 public:
  using WireError::WireError;
};

/// The peer runs on a host with a different byte order.
class WireByteOrderError final : public WireError {
 public:
  using WireError::WireError;
};

/// Embedding dimensionality disagreement between peer and shard store.
class WireDimError final : public WireError {
 public:
  using WireError::WireError;
};

/// A frame ended early: the stream died mid-frame, or a payload is
/// shorter than its own fields claim.
class WireTruncatedError final : public WireError {
 public:
  using WireError::WireError;
};

/// A length prefix exceeds kMaxFrameBytes (rejected before allocation).
class WireOversizeError final : public WireError {
 public:
  using WireError::WireError;
};

/// The peer serves rows embedded by a different model than this
/// client's — scoring across fingerprints would be silent nonsense.
class WireFingerprintError final : public WireError {
 public:
  using WireError::WireError;
};

/// Structurally valid frames in an invalid order or shape: a non-Hello
/// first frame, an unknown type, trailing payload bytes, a zero-length
/// frame, a response of the wrong type.
class WireProtocolError final : public WireError {
 public:
  using WireError::WireError;
};

/// The peer hung up (or reset) at a frame boundary, or could not be
/// reached at all. Client-local; never crosses the wire as a code.
class WireConnectionError final : public WireError {
 public:
  using WireError::WireError;
};

/// A bounded read expired (tests bound every read so a protocol bug
/// can never hang a suite). Client-local.
class WireTimeoutError final : public WireError {
 public:
  using WireError::WireError;
};

/// An OS-level send/recv failure that is none of the above.
class WireIoError final : public WireError {
 public:
  using WireError::WireError;
};

/// Throw the WireError subclass matching an on-wire code (used when a
/// kError frame arrives; unknown codes throw WireProtocolError).
[[noreturn]] void throw_wire_error(WireErrorCode code,
                                   const std::string& message);

/// The on-wire code for an error about to be sent as a kError frame;
/// WireConnectionError/WireTimeoutError map to kIo (they should never
/// need to cross the wire, but a lossy mapping beats an abort).
[[nodiscard]] WireErrorCode wire_error_code(const WireError& error);

// ---- Frame encode/decode --------------------------------------------------
//
// Frame layout: u32 length (bytes after this prefix: type + payload,
// so length ≥ 1), u8 type, payload. All integers native-endian (the
// handshake BOM rejects cross-endian peers before any payload parses).
// Strings are u32 length + bytes, no terminator.

/// One decoded frame, payload owned.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Appends one frame into an external send buffer; finish() patches
/// the length prefix. The builder writes into the *connection's*
/// buffer directly so aggregated frames are contiguous for one send.
/// For frames with a bulk tail (Screen's probe block), finish(tail)
/// counts the tail bytes into the length prefix without copying them —
/// the caller gather-writes buffer + tail (Socket::write_vectored).
class FrameBuilder {
 public:
  FrameBuilder(std::vector<std::uint8_t>& buffer, MsgType type);

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f32(float v);
  void put_bytes(const void* data, std::size_t size);
  void put_string(std::string_view s);

  /// Patch the length prefix; `tail_bytes` (default 0) counts a bulk
  /// payload the caller transmits behind the buffer. Throws
  /// WireOversizeError if the frame would exceed kMaxFrameBytes.
  void finish(std::size_t tail_bytes = 0);

 private:
  std::vector<std::uint8_t>& buffer_;
  std::size_t length_offset_;  // where the u32 prefix lives
};

/// Bounds-checked reader over a received payload. Every short read
/// throws WireTruncatedError naming the field; done() rejects trailing
/// bytes (a frame means exactly what it declares, nothing more).
class FrameCursor {
 public:
  explicit FrameCursor(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  [[nodiscard]] std::uint8_t get_u8(const char* field);
  [[nodiscard]] std::uint32_t get_u32(const char* field);
  [[nodiscard]] std::uint64_t get_u64(const char* field);
  [[nodiscard]] float get_f32(const char* field);
  void get_bytes(void* out, std::size_t size, const char* field);
  [[nodiscard]] std::string get_string(const char* field);
  /// Borrow `count` floats in place (the zero-copy row read).
  [[nodiscard]] const float* get_f32_array(std::size_t count,
                                           const char* field);
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// Throws WireProtocolError unless the payload is fully consumed.
  void done(const char* frame_name) const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Read one frame. Clean EOF at the length prefix → WireConnectionError
/// (the peer is gone); EOF anywhere later → WireTruncatedError; a
/// length of 0 → WireProtocolError; a length above kMaxFrameBytes →
/// WireOversizeError *before* any allocation.
[[nodiscard]] Frame read_frame(Socket& socket);

/// read_frame + type check: a kError frame decodes and throws its
/// typed error; any other unexpected type throws WireProtocolError.
[[nodiscard]] Frame expect_frame(Socket& socket, MsgType expected);

/// Append a kError frame carrying `code` + `message` to `buffer`
/// (helper for the server's error path).
void build_error_frame(std::vector<std::uint8_t>& buffer, WireErrorCode code,
                       const std::string& message);

}  // namespace gnn4ip::net
