// Dense row-major float matrix — the value type under the autograd tape.
//
// Deliberately minimal: the GNN needs matmul, transpose, elementwise
// arithmetic, row reductions, and a few initializers. No expression
// templates; the matrices here are small (N×41, N×16) so clarity wins.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gnn4ip::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);

  [[nodiscard]] static Matrix zeros(std::size_t rows, std::size_t cols);
  [[nodiscard]] static Matrix ones(std::size_t rows, std::size_t cols);
  /// Glorot/Xavier uniform initialization: U(−√(6/(in+out)), +√(6/(in+out))).
  [[nodiscard]] static Matrix glorot(std::size_t rows, std::size_t cols,
                                     util::Rng& rng);
  /// Build from nested initializer data (rows of equal length).
  [[nodiscard]] static Matrix from_rows(
      const std::vector<std::vector<float>>& rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<float> row(std::size_t r);
  [[nodiscard]] std::span<const float> row(std::size_t r) const;

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  [[nodiscard]] bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(float value);
  /// this += other (same shape).
  void add_in_place(const Matrix& other);
  /// this += scale * other (same shape).
  void axpy_in_place(float scale, const Matrix& other);
  void scale_in_place(float factor);

  [[nodiscard]] float frobenius_norm() const;
  [[nodiscard]] float max_abs() const;
  [[nodiscard]] std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A·B.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ·B (avoids materializing the transpose).
[[nodiscard]] Matrix matmul_at_b(const Matrix& a, const Matrix& b);
/// C = A·Bᵀ.
[[nodiscard]] Matrix matmul_a_bt(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix transpose(const Matrix& a);
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix subtract(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix hadamard(const Matrix& a, const Matrix& b);
/// Dot product of two matrices viewed as flat vectors (shapes must match).
[[nodiscard]] float dot(const Matrix& a, const Matrix& b);
/// Max relative/absolute difference, for tests.
[[nodiscard]] float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace gnn4ip::tensor
