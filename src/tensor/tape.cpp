#include "tensor/tape.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"

namespace gnn4ip::tensor {

namespace {
constexpr float kCosineEps = 1e-8F;
}  // namespace

Matrix& GradSink::shadow(Parameter& p) {
  for (auto& [param, buf] : shadows_) {
    if (param == &p) return buf;
  }
  shadows_.emplace_back(&p,
                        Matrix(p.value.rows(), p.value.cols(), 0.0F));
  return shadows_.back().second;
}

void GradSink::add_into_params() {
  for (auto& [param, buf] : shadows_) param->grad.add_in_place(buf);
}

void GradSink::clear() {
  for (auto& [param, buf] : shadows_) buf.fill(0.0F);
}

const Matrix& Var::value() const {
  GNN4IP_ENSURE(tape_ != nullptr, "Var::value on invalid handle");
  return tape_->cnode(index_).value;
}

const Matrix& Var::grad() const {
  GNN4IP_ENSURE(tape_ != nullptr, "Var::grad on invalid handle");
  const auto& n = tape_->cnode(index_);
  if (n.grad_allocated) return n.grad;
  return tape_->empty_grad_;
}

Var Tape::make_node(Matrix value, bool needs_grad) {
  Node n;
  n.value = std::move(value);
  n.needs_grad = needs_grad;
  nodes_.push_back(std::move(n));
  return Var(this, nodes_.size() - 1);
}

Tape::Node& Tape::node(std::size_t index) {
  GNN4IP_ENSURE(index < nodes_.size(), "tape node index out of range");
  return nodes_[index];
}

const Tape::Node& Tape::cnode(std::size_t index) const {
  GNN4IP_ENSURE(index < nodes_.size(), "tape node index out of range");
  return nodes_[index];
}

Matrix& Tape::grad_of(std::size_t index) {
  Node& n = node(index);
  if (!n.grad_allocated) {
    n.grad = Matrix(n.value.rows(), n.value.cols(), 0.0F);
    n.grad_allocated = true;
  }
  return n.grad;
}

void Tape::check_owned(Var v) const {
  GNN4IP_ENSURE(v.tape_ == this, "Var belongs to a different tape");
  GNN4IP_ENSURE(v.index_ < nodes_.size(), "Var index out of range");
}

Var Tape::constant(Matrix value) { return make_node(std::move(value), false); }

Var Tape::parameter(Parameter& p) {
  Var v = make_node(p.value, true);
  Node& n = node(v.index_);
  n.param = &p;
  const std::size_t self = v.index_;
  n.backward_fn = [self](Tape& t) {
    Node& leaf = t.node(self);
    if (leaf.grad_allocated) {
      Matrix& target =
          t.sink_ != nullptr ? t.sink_->shadow(*leaf.param) : leaf.param->grad;
      target.add_in_place(leaf.grad);
    }
  };
  return v;
}

Var Tape::matmul(Var a, Var b) {
  check_owned(a);
  check_owned(b);
  const bool needs = cnode(a.index_).needs_grad || cnode(b.index_).needs_grad;
  Var out = make_node(tensor::matmul(cnode(a.index_).value,
                                     cnode(b.index_).value),
                      needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t bi = b.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, bi, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      if (t.node(ai).needs_grad) {
        // dA = dY · Bᵀ
        t.grad_of(ai).add_in_place(
            tensor::matmul_a_bt(dy, t.node(bi).value));
      }
      if (t.node(bi).needs_grad) {
        // dB = Aᵀ · dY
        t.grad_of(bi).add_in_place(
            tensor::matmul_at_b(t.node(ai).value, dy));
      }
    };
  }
  return out;
}

Var Tape::spmm(std::shared_ptr<const Csr> s, Var x) {
  check_owned(x);
  GNN4IP_ENSURE(s != nullptr, "spmm requires a sparse matrix");
  const bool needs = cnode(x.index_).needs_grad;
  Var out = make_node(s->multiply(cnode(x.index_).value), needs);
  if (needs) {
    const std::size_t xi = x.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [xi, oi, s = std::move(s)](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      t.grad_of(xi).add_in_place(s->multiply_transposed(t.node(oi).grad));
    };
  }
  return out;
}

Var Tape::add(Var a, Var b) {
  check_owned(a);
  check_owned(b);
  const bool needs = cnode(a.index_).needs_grad || cnode(b.index_).needs_grad;
  Var out = make_node(
      tensor::add(cnode(a.index_).value, cnode(b.index_).value), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t bi = b.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, bi, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      if (t.node(ai).needs_grad) t.grad_of(ai).add_in_place(dy);
      if (t.node(bi).needs_grad) t.grad_of(bi).add_in_place(dy);
    };
  }
  return out;
}

Var Tape::add_row_broadcast(Var a, Var bias) {
  check_owned(a);
  check_owned(bias);
  const Matrix& av = cnode(a.index_).value;
  const Matrix& bv = cnode(bias.index_).value;
  GNN4IP_ENSURE(bv.rows() == 1 && bv.cols() == av.cols(),
                "bias must be 1×C matching a's columns");
  Matrix y = av;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto yr = y.row(r);
    const auto br = bv.row(0);
    for (std::size_t c = 0; c < y.cols(); ++c) yr[c] += br[c];
  }
  const bool needs =
      cnode(a.index_).needs_grad || cnode(bias.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t bi = bias.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, bi, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      if (t.node(ai).needs_grad) t.grad_of(ai).add_in_place(dy);
      if (t.node(bi).needs_grad) {
        Matrix& db = t.grad_of(bi);
        auto db_row = db.row(0);
        for (std::size_t r = 0; r < dy.rows(); ++r) {
          const auto dyr = dy.row(r);
          for (std::size_t c = 0; c < dy.cols(); ++c) db_row[c] += dyr[c];
        }
      }
    };
  }
  return out;
}

Var Tape::scale(Var a, float factor) {
  check_owned(a);
  Matrix y = cnode(a.index_).value;
  y.scale_in_place(factor);
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi, factor](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      t.grad_of(ai).axpy_in_place(factor, t.node(oi).grad);
    };
  }
  return out;
}

namespace {

template <typename Fwd>
Matrix map_matrix(const Matrix& a, Fwd&& f) {
  Matrix y = a;
  for (float& x : y.data()) x = f(x);
  return y;
}

}  // namespace

Var Tape::relu(Var a) {
  check_owned(a);
  Matrix y = map_matrix(cnode(a.index_).value,
                        [](float x) { return x > 0.0F ? x : 0.0F; });
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      const Matrix& x = t.node(ai).value;
      Matrix& dx = t.grad_of(ai);
      auto dxd = dx.data();
      const auto dyd = dy.data();
      const auto xd = x.data();
      for (std::size_t i = 0; i < dxd.size(); ++i) {
        if (xd[i] > 0.0F) dxd[i] += dyd[i];
      }
    };
  }
  return out;
}

Var Tape::tanh_op(Var a) {
  check_owned(a);
  Matrix y = map_matrix(cnode(a.index_).value,
                        [](float x) { return std::tanh(x); });
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      const Matrix& y_val = t.node(oi).value;
      Matrix& dx = t.grad_of(ai);
      auto dxd = dx.data();
      const auto dyd = dy.data();
      const auto yd = y_val.data();
      for (std::size_t i = 0; i < dxd.size(); ++i) {
        dxd[i] += dyd[i] * (1.0F - yd[i] * yd[i]);
      }
    };
  }
  return out;
}

Var Tape::sigmoid(Var a) {
  check_owned(a);
  Matrix y = map_matrix(cnode(a.index_).value, [](float x) {
    return 1.0F / (1.0F + std::exp(-x));
  });
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      const Matrix& y_val = t.node(oi).value;
      Matrix& dx = t.grad_of(ai);
      auto dxd = dx.data();
      const auto dyd = dy.data();
      const auto yd = y_val.data();
      for (std::size_t i = 0; i < dxd.size(); ++i) {
        dxd[i] += dyd[i] * yd[i] * (1.0F - yd[i]);
      }
    };
  }
  return out;
}

Var Tape::dropout(Var a, float rate, util::Rng& rng, bool training) {
  check_owned(a);
  GNN4IP_ENSURE(rate >= 0.0F && rate < 1.0F, "dropout rate must be in [0,1)");
  if (!training || rate == 0.0F) return a;
  const Matrix& x = cnode(a.index_).value;
  const float keep = 1.0F - rate;
  const float inv_keep = 1.0F / keep;
  // Mask holds 0 or 1/keep so forward and backward share one multiply.
  Matrix mask(x.rows(), x.cols());
  for (float& m : mask.data()) {
    m = rng.flip(keep) ? inv_keep : 0.0F;
  }
  Matrix y = hadamard(x, mask);
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi, mask = std::move(mask)](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      t.grad_of(ai).add_in_place(hadamard(t.node(oi).grad, mask));
    };
  }
  return out;
}

Var Tape::select_rows(Var a, std::vector<std::size_t> rows) {
  check_owned(a);
  const Matrix& x = cnode(a.index_).value;
  Matrix y(rows.size(), x.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    GNN4IP_ENSURE(rows[i] < x.rows(), "select_rows index out of range");
    const auto src = x.row(rows[i]);
    std::copy(src.begin(), src.end(), y.row(i).begin());
  }
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi, rows = std::move(rows)](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      Matrix& dx = t.grad_of(ai);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto dyr = dy.row(i);
        auto dxr = dx.row(rows[i]);
        for (std::size_t c = 0; c < dy.cols(); ++c) dxr[c] += dyr[c];
      }
    };
  }
  return out;
}

Var Tape::scale_rows(Var a, Var s) {
  check_owned(a);
  check_owned(s);
  const Matrix& x = cnode(a.index_).value;
  const Matrix& sv = cnode(s.index_).value;
  GNN4IP_ENSURE(sv.rows() == x.rows() && sv.cols() == 1,
                "scale_rows: scores must be N×1");
  Matrix y = x;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const float f = sv.at(r, 0);
    for (float& v : y.row(r)) v *= f;
  }
  const bool needs =
      cnode(a.index_).needs_grad || cnode(s.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t si = s.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, si, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      const Matrix& x_val = t.node(ai).value;
      const Matrix& s_val = t.node(si).value;
      if (t.node(ai).needs_grad) {
        Matrix& dx = t.grad_of(ai);
        for (std::size_t r = 0; r < dy.rows(); ++r) {
          const float f = s_val.at(r, 0);
          const auto dyr = dy.row(r);
          auto dxr = dx.row(r);
          for (std::size_t c = 0; c < dy.cols(); ++c) dxr[c] += f * dyr[c];
        }
      }
      if (t.node(si).needs_grad) {
        Matrix& ds = t.grad_of(si);
        for (std::size_t r = 0; r < dy.rows(); ++r) {
          const auto dyr = dy.row(r);
          const auto xr = x_val.row(r);
          double acc = 0.0;
          for (std::size_t c = 0; c < dy.cols(); ++c) {
            acc += static_cast<double>(dyr[c]) * xr[c];
          }
          ds.at(r, 0) += static_cast<float>(acc);
        }
      }
    };
  }
  return out;
}

Var Tape::readout_max(Var a) {
  check_owned(a);
  const Matrix& x = cnode(a.index_).value;
  GNN4IP_ENSURE(x.rows() > 0, "readout over empty matrix");
  Matrix y(1, x.cols());
  std::vector<std::size_t> argmax(x.cols(), 0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    float best = x.at(0, c);
    for (std::size_t r = 1; r < x.rows(); ++r) {
      if (x.at(r, c) > best) {
        best = x.at(r, c);
        argmax[c] = r;
      }
    }
    y.at(0, c) = best;
  }
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi, argmax = std::move(argmax)](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      Matrix& dx = t.grad_of(ai);
      for (std::size_t c = 0; c < dy.cols(); ++c) {
        dx.at(argmax[c], c) += dy.at(0, c);
      }
    };
  }
  return out;
}

Var Tape::readout_mean(Var a) {
  check_owned(a);
  const Matrix& x = cnode(a.index_).value;
  GNN4IP_ENSURE(x.rows() > 0, "readout over empty matrix");
  Matrix y(1, x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) y.at(0, c) += xr[c];
  }
  const float inv_n = 1.0F / static_cast<float>(x.rows());
  y.scale_in_place(inv_n);
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi, inv_n](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      Matrix& dx = t.grad_of(ai);
      for (std::size_t r = 0; r < dx.rows(); ++r) {
        auto dxr = dx.row(r);
        for (std::size_t c = 0; c < dx.cols(); ++c) {
          dxr[c] += inv_n * dy.at(0, c);
        }
      }
    };
  }
  return out;
}

Var Tape::readout_sum(Var a) {
  check_owned(a);
  const Matrix& x = cnode(a.index_).value;
  GNN4IP_ENSURE(x.rows() > 0, "readout over empty matrix");
  Matrix y(1, x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) y.at(0, c) += xr[c];
  }
  const bool needs = cnode(a.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const Matrix& dy = t.node(oi).grad;
      Matrix& dx = t.grad_of(ai);
      for (std::size_t r = 0; r < dx.rows(); ++r) {
        auto dxr = dx.row(r);
        for (std::size_t c = 0; c < dx.cols(); ++c) dxr[c] += dy.at(0, c);
      }
    };
  }
  return out;
}

Var Tape::cosine_similarity(Var a, Var b) {
  check_owned(a);
  check_owned(b);
  const Matrix& av = cnode(a.index_).value;
  const Matrix& bv = cnode(b.index_).value;
  GNN4IP_ENSURE(av.same_shape(bv), "cosine_similarity shape mismatch");
  const float ab = dot(av, bv);
  const float na = av.frobenius_norm();
  const float nb = bv.frobenius_norm();
  const float denom = std::max(na * nb, kCosineEps);
  const float sim = ab / denom;
  Matrix y(1, 1);
  y.at(0, 0) = sim;
  const bool needs = cnode(a.index_).needs_grad || cnode(b.index_).needs_grad;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    const std::size_t ai = a.index_;
    const std::size_t bi = b.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [ai, bi, oi, na, nb, sim, denom](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const float ds = t.node(oi).grad.at(0, 0);
      const Matrix& av2 = t.node(ai).value;
      const Matrix& bv2 = t.node(bi).value;
      // d sim / d a = b/denom − sim · a/na², and symmetrically for b.
      const float na2 = std::max(na * na, kCosineEps);
      const float nb2 = std::max(nb * nb, kCosineEps);
      if (t.node(ai).needs_grad) {
        Matrix& da = t.grad_of(ai);
        const auto ad = av2.data();
        const auto bd = bv2.data();
        auto dd = da.data();
        for (std::size_t i = 0; i < dd.size(); ++i) {
          dd[i] += ds * (bd[i] / denom - sim * ad[i] / na2);
        }
      }
      if (t.node(bi).needs_grad) {
        Matrix& db = t.grad_of(bi);
        const auto ad = av2.data();
        const auto bd = bv2.data();
        auto dd = db.data();
        for (std::size_t i = 0; i < dd.size(); ++i) {
          dd[i] += ds * (ad[i] / denom - sim * bd[i] / nb2);
        }
      }
    };
  }
  return out;
}

Var Tape::cosine_embedding_loss(Var sim, int label, float margin) {
  check_owned(sim);
  const Matrix& sv = cnode(sim.index_).value;
  GNN4IP_ENSURE(sv.rows() == 1 && sv.cols() == 1,
                "cosine_embedding_loss expects a scalar similarity");
  GNN4IP_ENSURE(label == 1 || label == -1, "label must be ±1");
  const float y_hat = sv.at(0, 0);
  Matrix loss(1, 1);
  float d_loss_d_sim = 0.0F;
  if (label == 1) {
    loss.at(0, 0) = 1.0F - y_hat;
    d_loss_d_sim = -1.0F;
  } else {
    const float hinge = y_hat - margin;
    loss.at(0, 0) = hinge > 0.0F ? hinge : 0.0F;
    d_loss_d_sim = hinge > 0.0F ? 1.0F : 0.0F;
  }
  const bool needs = cnode(sim.index_).needs_grad;
  Var out = make_node(std::move(loss), needs);
  if (needs) {
    const std::size_t si = sim.index_;
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [si, oi, d_loss_d_sim](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      t.grad_of(si).at(0, 0) += d_loss_d_sim * t.node(oi).grad.at(0, 0);
    };
  }
  return out;
}

Var Tape::sum_scalars(const std::vector<Var>& scalars) {
  GNN4IP_ENSURE(!scalars.empty(), "sum_scalars over empty set");
  bool needs = false;
  float total = 0.0F;
  for (Var v : scalars) {
    check_owned(v);
    const Matrix& m = cnode(v.index_).value;
    GNN4IP_ENSURE(m.rows() == 1 && m.cols() == 1,
                  "sum_scalars expects 1×1 values");
    total += m.at(0, 0);
    needs = needs || cnode(v.index_).needs_grad;
  }
  Matrix y(1, 1);
  y.at(0, 0) = total;
  Var out = make_node(std::move(y), needs);
  if (needs) {
    std::vector<std::size_t> indices;
    indices.reserve(scalars.size());
    for (Var v : scalars) indices.push_back(v.index_);
    const std::size_t oi = out.index_;
    node(oi).backward_fn = [indices = std::move(indices), oi](Tape& t) {
      if (!t.node(oi).grad_allocated) return;
      const float dy = t.node(oi).grad.at(0, 0);
      for (std::size_t i : indices) {
        if (t.node(i).needs_grad) t.grad_of(i).at(0, 0) += dy;
      }
    };
  }
  return out;
}

void Tape::backward(Var loss) {
  check_owned(loss);
  const Matrix& lv = cnode(loss.index_).value;
  GNN4IP_ENSURE(lv.rows() == 1 && lv.cols() == 1,
                "backward expects a scalar loss");
  grad_of(loss.index_).at(0, 0) = 1.0F;
  run_backward();
}

void Tape::backward(Var output, const Matrix& seed) {
  check_owned(output);
  GNN4IP_ENSURE(cnode(output.index_).value.same_shape(seed),
                "backward seed shape must match the output");
  grad_of(output.index_).add_in_place(seed);
  run_backward();
}

void Tape::run_backward() {
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    if (nodes_[i].backward_fn && nodes_[i].needs_grad) {
      nodes_[i].backward_fn(*this);
    }
  }
}

}  // namespace gnn4ip::tensor
