#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0F);
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0F);
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const float bound =
      std::sqrt(6.0F / static_cast<float>(rows + cols));
  for (float& x : m.data_) x = rng.uniform(-bound, bound);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    GNN4IP_ENSURE(rows[r].size() == m.cols_,
                  "from_rows requires equal-length rows");
    std::copy(rows[r].begin(), rows[r].end(), m.row(r).begin());
  }
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  GNN4IP_ENSURE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  GNN4IP_ENSURE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<float> Matrix::row(std::size_t r) {
  GNN4IP_ENSURE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row(std::size_t r) const {
  GNN4IP_ENSURE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::add_in_place(const Matrix& other) {
  GNN4IP_ENSURE(same_shape(other), "add_in_place shape mismatch: " +
                                       shape_string() + " vs " +
                                       other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::axpy_in_place(float scale, const Matrix& other) {
  GNN4IP_ENSURE(same_shape(other), "axpy shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::scale_in_place(float factor) {
  for (float& x : data_) x *= factor;
}

float Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::max_abs() const {
  float best = 0.0F;
  for (float x : data_) best = std::max(best, std::fabs(x));
  return best;
}

std::string Matrix::shape_string() const {
  return util::format("[%zu x %zu]", rows_, cols_);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  GNN4IP_ENSURE(a.cols() == b.rows(), "matmul shape mismatch: " +
                                          a.shape_string() + " · " +
                                          b.shape_string());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order for cache-friendly access to b and c rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto a_row = a.row(i);
    const auto c_row = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a_row[k];
      if (aik == 0.0F) continue;
      const auto b_row = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c_row[j] += aik * b_row[j];
      }
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  GNN4IP_ENSURE(a.rows() == b.rows(), "matmul_at_b shape mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto a_row = a.row(k);
    const auto b_row = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = a_row[i];
      if (aki == 0.0F) continue;
      const auto c_row = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c_row[j] += aki * b_row[j];
      }
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  GNN4IP_ENSURE(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto a_row = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const auto b_row = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a_row[k]) * b_row[k];
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t.at(j, i) = a.at(i, j);
    }
  }
  return t;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_in_place(b);
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.axpy_in_place(-1.0F, b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  GNN4IP_ENSURE(a.same_shape(b), "hadamard shape mismatch");
  Matrix c = a;
  auto cd = c.data();
  const auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] *= bd[i];
  return c;
}

float dot(const Matrix& a, const Matrix& b) {
  GNN4IP_ENSURE(a.same_shape(b), "dot shape mismatch");
  double acc = 0.0;
  const auto ad = a.data();
  const auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    acc += static_cast<double>(ad[i]) * bd[i];
  }
  return static_cast<float>(acc);
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  GNN4IP_ENSURE(a.same_shape(b), "max_abs_diff shape mismatch");
  float best = 0.0F;
  const auto ad = a.data();
  const auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    best = std::max(best, std::fabs(ad[i] - bd[i]));
  }
  return best;
}

}  // namespace gnn4ip::tensor
