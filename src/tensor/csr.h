// Compressed-sparse-row matrix with fixed (non-trainable) values.
//
// Used for the symmetric-normalized adjacency D̂^{-1/2}ÂD̂^{-1/2} of
// Eq. 5: the adjacency is a constant of each graph, so only dense
// operands carry gradients. spmm backward therefore needs Sᵀ·dY, which
// is served by a cached transpose.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gnn4ip::tensor {

struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  float value = 0.0F;
};

class Csr {
 public:
  Csr() = default;

  /// Build from triplets (duplicates are summed).
  [[nodiscard]] static Csr from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// Y = S · X  (dense X with X.rows() == cols()).
  [[nodiscard]] Matrix multiply(const Matrix& x) const;

  /// Y = Sᵀ · X (dense X with X.rows() == rows()).
  [[nodiscard]] Matrix multiply_transposed(const Matrix& x) const;

  /// Materialize as dense (tests only; small graphs).
  [[nodiscard]] Matrix to_dense() const;

  /// Row slice access for iteration.
  [[nodiscard]] const std::vector<std::size_t>& row_offsets() const {
    return row_offsets_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_indices() const {
    return col_indices_;
  }
  [[nodiscard]] const std::vector<float>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<float> values_;
  // Cached transpose in CSR form (same arrays, swapped roles), built
  // lazily by multiply_transposed via const access — precomputed eagerly
  // in from_triplets to keep the class immutable after construction.
  std::vector<std::size_t> t_row_offsets_;
  std::vector<std::size_t> t_col_indices_;
  std::vector<float> t_values_;
};

}  // namespace gnn4ip::tensor
