// Reverse-mode automatic differentiation on matrices.
//
// A Tape owns a sequence of nodes created by operator methods; calling
// backward(loss) seeds dL/dL = 1 and runs the recorded closures in
// reverse order. Leaves created from a Parameter accumulate their
// gradient into Parameter::grad by default, so one Tape per mini-batch
// implements exactly the "sum gradients over batch, then step" loop the
// paper's batch gradient descent requires.
//
// For data-parallel training each batch graph runs forward + backward on
// its own Tape with a GradSink installed: parameter leaves then
// accumulate into the sink's per-parameter shadow buffers instead of
// racing on Parameter::grad, and the trainer folds the sinks into
// Parameter::grad in fixed graph-index order — so the reduced gradient
// is bit-identical for any worker count. reset() clears a tape for the
// next graph while keeping the node vector's capacity (and the sink),
// which removes per-graph allocation churn from the step hot path.
//
// Every operation the hw2vec architecture needs is provided: (sparse)
// matmul for Eq. 5 propagation, ReLU/tanh/sigmoid/dropout, row selection
// and row scaling for the self-attention top-k pooling, max/mean/sum
// readout for Eq. 3, cosine similarity for Eq. 6, and the cosine
// embedding loss of Eq. 7.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace gnn4ip::tensor {

class Tape;

/// Trainable weight living outside any tape. `grad` accumulates across
/// backward() calls until the optimizer consumes and clears it.
struct Parameter {
  explicit Parameter(Matrix init)
      : value(std::move(init)), grad(value.rows(), value.cols(), 0.0F) {}

  Matrix value;
  Matrix grad;

  void zero_grad() { grad.fill(0.0F); }
};

/// Shadow gradient accumulator for race-free parallel backward passes.
///
/// While installed on a tape (Tape::set_grad_sink), parameter leaves add
/// their gradient into shadow(p) instead of Parameter::grad, so several
/// tapes can run backward concurrently over the same model. The shadows
/// are folded into the parameters afterwards with add_into_params();
/// folding the sinks in a fixed order (graph-index order in the trainer)
/// keeps the float summation order — and therefore the whole training
/// trajectory — independent of the worker count.
class GradSink {
 public:
  /// Shadow buffer for `p`: zero-allocated on first use, reused (and
  /// kept allocated across clear()) afterwards.
  [[nodiscard]] Matrix& shadow(Parameter& p);

  /// Fold every shadow into its parameter's grad, in the order the
  /// parameters were first seen by this sink (forward order, which is
  /// deterministic for a fixed model architecture).
  void add_into_params();

  /// Zero all shadows, keeping their allocations for the next pass.
  void clear();

  [[nodiscard]] std::size_t num_params() const { return shadows_.size(); }

 private:
  std::vector<std::pair<Parameter*, Matrix>> shadows_;
};

/// Lightweight handle to a tape node.
class Var {
 public:
  Var() = default;

  [[nodiscard]] bool valid() const { return tape_ != nullptr; }
  [[nodiscard]] const Matrix& value() const;
  /// Gradient w.r.t. this node after backward(); zeros if grad never
  /// flowed here.
  [[nodiscard]] const Matrix& grad() const;

 private:
  friend class Tape;
  Var(Tape* tape, std::size_t index) : tape_(tape), index_(index) {}

  Tape* tape_ = nullptr;
  std::size_t index_ = 0;
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- leaves ---------------------------------------------------------
  /// Non-trainable input (node features, labels).
  Var constant(Matrix value);
  /// Trainable leaf: backward() adds into p.grad.
  Var parameter(Parameter& p);

  // --- linear algebra --------------------------------------------------
  Var matmul(Var a, Var b);
  /// Sparse constant × dense variable (adjacency propagation). The tape
  /// shares ownership of `s` because pooled adjacencies are constructed
  /// mid-forward and must outlive the backward pass.
  Var spmm(std::shared_ptr<const Csr> s, Var x);
  Var add(Var a, Var b);
  /// a (N×C) + bias (1×C) broadcast over rows.
  Var add_row_broadcast(Var a, Var bias);
  Var scale(Var a, float factor);

  // --- nonlinearities ---------------------------------------------------
  Var relu(Var a);
  Var tanh_op(Var a);
  Var sigmoid(Var a);
  /// Inverted dropout; identity when !training or rate == 0.
  Var dropout(Var a, float rate, util::Rng& rng, bool training);

  // --- pooling / readout -------------------------------------------------
  /// Gather the given rows (top-k pooling selection).
  Var select_rows(Var a, std::vector<std::size_t> rows);
  /// Scale row i of a (N×C) by s(i,0) where s is N×1 (attention gating).
  Var scale_rows(Var a, Var s);
  /// Column-wise max over rows -> 1×C (gradient to argmax rows).
  Var readout_max(Var a);
  /// Column-wise mean over rows -> 1×C.
  Var readout_mean(Var a);
  /// Column-wise sum over rows -> 1×C.
  Var readout_sum(Var a);

  // --- objectives ---------------------------------------------------------
  /// Cosine similarity of two 1×C (or equal-shape) values -> 1×1.
  Var cosine_similarity(Var a, Var b);
  /// Eq. 7: label +1 -> 1 − ŷ ; label −1 -> max(0, ŷ − margin). sim is 1×1.
  Var cosine_embedding_loss(Var sim, int label, float margin);
  /// Sum of 1×1 scalars (batch loss).
  Var sum_scalars(const std::vector<Var>& scalars);

  // --- engine ---------------------------------------------------------------
  /// Run reverse pass from `loss` (must be 1×1).
  void backward(Var loss);
  /// Run reverse pass from `output` seeded with dL/d(output) = `seed`
  /// (same shape as the output). This is how a per-graph tape receives
  /// the closed-form gradient of a cross-graph loss (e.g. the cosine
  /// embedding loss between two embeddings living on different tapes).
  void backward(Var output, const Matrix& seed);

  /// Redirect (or, with nullptr, restore) parameter-leaf gradient
  /// accumulation to a shadow sink. The sink must outlive every
  /// backward() call on this tape while installed.
  void set_grad_sink(GradSink* sink) { sink_ = sink; }
  [[nodiscard]] GradSink* grad_sink() const { return sink_; }

  /// Drop all nodes but keep the node vector's capacity (and the
  /// installed sink), so a tape reused across graphs stops reallocating
  /// its node array. Vars handed out before reset() are invalidated.
  void reset() { nodes_.clear(); }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;               // allocated lazily
    bool needs_grad = false;
    bool grad_allocated = false;
    Parameter* param = nullptr;
    std::function<void(Tape&)> backward_fn;
  };

  friend class Var;

  Var make_node(Matrix value, bool needs_grad);
  Node& node(std::size_t index);
  const Node& cnode(std::size_t index) const;
  /// Gradient accumulator for node `index` (allocates zeros on demand).
  Matrix& grad_of(std::size_t index);
  void check_owned(Var v) const;
  void run_backward();

  std::vector<Node> nodes_;
  GradSink* sink_ = nullptr;
  Matrix empty_grad_;  // returned for nodes that never received gradient
};

}  // namespace gnn4ip::tensor
