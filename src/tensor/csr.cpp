#include "tensor/csr.h"

#include <algorithm>

#include "util/contract.h"

namespace gnn4ip::tensor {

Csr Csr::from_triplets(std::size_t rows, std::size_t cols,
                       std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    GNN4IP_ENSURE(t.row < rows && t.col < cols,
                  "triplet index out of range");
  }
  // Sort by (row, col) and merge-sum duplicates in place. This is the
  // construction hot path (one CSR per graph plus one per pooled
  // subgraph), so no node-per-cell containers.
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t unique = 0;
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    if (unique > 0 && triplets[unique - 1].row == triplets[i].row &&
        triplets[unique - 1].col == triplets[i].col) {
      triplets[unique - 1].value += triplets[i].value;
    } else {
      triplets[unique++] = triplets[i];
    }
  }
  triplets.resize(unique);

  Csr s;
  s.rows_ = rows;
  s.cols_ = cols;
  s.row_offsets_.assign(rows + 1, 0);
  for (const Triplet& t : triplets) {
    ++s.row_offsets_[t.row + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    s.row_offsets_[r + 1] += s.row_offsets_[r];
  }
  s.col_indices_.resize(triplets.size());
  s.values_.resize(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    s.col_indices_[i] = triplets[i].col;
    s.values_[i] = triplets[i].value;
  }

  // Eager transpose (CSC of the original = CSR of the transpose).
  s.t_row_offsets_.assign(cols + 1, 0);
  for (std::size_t c : s.col_indices_) ++s.t_row_offsets_[c + 1];
  for (std::size_t c = 0; c < cols; ++c) {
    s.t_row_offsets_[c + 1] += s.t_row_offsets_[c];
  }
  s.t_col_indices_.resize(triplets.size());
  s.t_values_.resize(triplets.size());
  std::vector<std::size_t> cursor(s.t_row_offsets_.begin(),
                                  s.t_row_offsets_.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = s.row_offsets_[r]; k < s.row_offsets_[r + 1]; ++k) {
      const std::size_t c = s.col_indices_[k];
      const std::size_t slot = cursor[c]++;
      s.t_col_indices_[slot] = r;
      s.t_values_[slot] = s.values_[k];
    }
  }
  return s;
}

namespace {

// Tiled CSR × dense kernel. Columns are processed in register-width
// blocks: the accumulators for one block stay in registers across the
// whole nonzero list of a row, so the inner loop is a fixed-trip-count
// FMA the compiler vectorizes. Per output element the accumulation
// order is ascending k — identical to the scalar kernel — so results
// are bit-for-bit unchanged by the tiling.
constexpr std::size_t kColBlock = 8;

Matrix spmm(const std::vector<std::size_t>& offsets,
            const std::vector<std::size_t>& cols,
            const std::vector<float>& values, std::size_t out_rows,
            const Matrix& x) {
  const std::size_t width = x.cols();
  Matrix y(out_rows, width);
  if (width == 0) return y;
  const float* xd = x.data().data();
  float* yd = y.data().data();
  for (std::size_t r = 0; r < out_rows; ++r) {
    const std::size_t k0 = offsets[r];
    const std::size_t k1 = offsets[r + 1];
    float* yr = yd + r * width;
    for (std::size_t j0 = 0; j0 < width; j0 += kColBlock) {
      const std::size_t jn = std::min(kColBlock, width - j0);
      float acc[kColBlock] = {};
      if (jn == kColBlock) {
        for (std::size_t k = k0; k < k1; ++k) {
          const float v = values[k];
          const float* xr = xd + cols[k] * width + j0;
          for (std::size_t jj = 0; jj < kColBlock; ++jj) {
            acc[jj] += v * xr[jj];
          }
        }
      } else {
        for (std::size_t k = k0; k < k1; ++k) {
          const float v = values[k];
          const float* xr = xd + cols[k] * width + j0;
          for (std::size_t jj = 0; jj < jn; ++jj) {
            acc[jj] += v * xr[jj];
          }
        }
      }
      for (std::size_t jj = 0; jj < jn; ++jj) yr[j0 + jj] = acc[jj];
    }
  }
  return y;
}

}  // namespace

Matrix Csr::multiply(const Matrix& x) const {
  GNN4IP_ENSURE(x.rows() == cols_, "spmm shape mismatch");
  return spmm(row_offsets_, col_indices_, values_, rows_, x);
}

Matrix Csr::multiply_transposed(const Matrix& x) const {
  GNN4IP_ENSURE(x.rows() == rows_, "spmmᵀ shape mismatch");
  return spmm(t_row_offsets_, t_col_indices_, t_values_, cols_, x);
}

Matrix Csr::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      d.at(r, col_indices_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace gnn4ip::tensor
