#include "tensor/csr.h"

#include <algorithm>
#include <map>

#include "util/contract.h"

namespace gnn4ip::tensor {

Csr Csr::from_triplets(std::size_t rows, std::size_t cols,
                       std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    GNN4IP_ENSURE(t.row < rows && t.col < cols,
                  "triplet index out of range");
  }
  // Sum duplicates via ordered map keyed by (row, col).
  std::map<std::pair<std::size_t, std::size_t>, float> cells;
  for (const Triplet& t : triplets) {
    cells[{t.row, t.col}] += t.value;
  }

  Csr s;
  s.rows_ = rows;
  s.cols_ = cols;
  s.row_offsets_.assign(rows + 1, 0);
  for (const auto& [rc, v] : cells) {
    ++s.row_offsets_[rc.first + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    s.row_offsets_[r + 1] += s.row_offsets_[r];
  }
  s.col_indices_.resize(cells.size());
  s.values_.resize(cells.size());
  {
    std::size_t i = 0;
    for (const auto& [rc, v] : cells) {
      s.col_indices_[i] = rc.second;
      s.values_[i] = v;
      ++i;
    }
  }

  // Eager transpose (CSC of the original = CSR of the transpose).
  s.t_row_offsets_.assign(cols + 1, 0);
  for (std::size_t c : s.col_indices_) ++s.t_row_offsets_[c + 1];
  for (std::size_t c = 0; c < cols; ++c) {
    s.t_row_offsets_[c + 1] += s.t_row_offsets_[c];
  }
  s.t_col_indices_.resize(cells.size());
  s.t_values_.resize(cells.size());
  std::vector<std::size_t> cursor(s.t_row_offsets_.begin(),
                                  s.t_row_offsets_.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = s.row_offsets_[r]; k < s.row_offsets_[r + 1]; ++k) {
      const std::size_t c = s.col_indices_[k];
      const std::size_t slot = cursor[c]++;
      s.t_col_indices_[slot] = r;
      s.t_values_[slot] = s.values_[k];
    }
  }
  return s;
}

namespace {

Matrix spmm(const std::vector<std::size_t>& offsets,
            const std::vector<std::size_t>& cols,
            const std::vector<float>& values, std::size_t out_rows,
            const Matrix& x) {
  Matrix y(out_rows, x.cols());
  for (std::size_t r = 0; r < out_rows; ++r) {
    const auto y_row = y.row(r);
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      const float v = values[k];
      const auto x_row = x.row(cols[k]);
      for (std::size_t j = 0; j < x.cols(); ++j) {
        y_row[j] += v * x_row[j];
      }
    }
  }
  return y;
}

}  // namespace

Matrix Csr::multiply(const Matrix& x) const {
  GNN4IP_ENSURE(x.rows() == cols_, "spmm shape mismatch");
  return spmm(row_offsets_, col_indices_, values_, rows_, x);
}

Matrix Csr::multiply_transposed(const Matrix& x) const {
  GNN4IP_ENSURE(x.rows() == rows_, "spmmᵀ shape mismatch");
  return spmm(t_row_offsets_, t_col_indices_, t_values_, cols_, x);
}

Matrix Csr::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      d.at(r, col_indices_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace gnn4ip::tensor
