#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contract.h"

namespace gnn4ip::analysis {
namespace {

/// Squared Euclidean distances between rows.
std::vector<double> pairwise_sq_dists(const tensor::Matrix& x) {
  const std::size_t n = x.rows();
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const auto ri = x.row(i);
      const auto rj = x.row(j);
      for (std::size_t c = 0; c < x.cols(); ++c) {
        const double diff = static_cast<double>(ri[c]) - rj[c];
        acc += diff * diff;
      }
      d2[i * n + j] = acc;
      d2[j * n + i] = acc;
    }
  }
  return d2;
}

/// Row conditional probabilities with per-point sigma from binary search
/// on the target perplexity.
std::vector<double> conditional_probs(const std::vector<double>& d2,
                                      std::size_t n, double perplexity) {
  std::vector<double> p(n * n, 0.0);
  const double log_perp = std::log(perplexity);
  for (std::size_t i = 0; i < n; ++i) {
    double beta = 1.0;  // 1 / (2 sigma^2)
    double beta_lo = 0.0;
    double beta_hi = 1e12;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      double entropy_acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double pij = std::exp(-beta * d2[i * n + j]);
        sum += pij;
        entropy_acc += beta * d2[i * n + j] * pij;
      }
      const double entropy =
          sum > 0.0 ? std::log(sum) + entropy_acc / sum : 0.0;
      const double diff = entropy - log_perp;
      if (std::fabs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = beta_hi >= 1e12 ? beta * 2.0 : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta + beta_lo);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p[i * n + j] = std::exp(-beta * d2[i * n + j]);
      sum += p[i * n + j];
    }
    if (sum <= 0.0) sum = 1e-12;
    for (std::size_t j = 0; j < n; ++j) p[i * n + j] /= sum;
  }
  return p;
}

}  // namespace

tensor::Matrix tsne(const tensor::Matrix& x, const TsneOptions& options) {
  const std::size_t n = x.rows();
  GNN4IP_ENSURE(n >= 4, "t-SNE needs at least 4 samples");
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);

  const std::vector<double> d2 = pairwise_sq_dists(x);
  std::vector<double> p_cond = conditional_probs(d2, n, perplexity);

  // Symmetrize: P = (P + Pᵀ) / 2n, floored for numerical stability.
  std::vector<double> p(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p[i * n + j] = std::max(
          (p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * n), 1e-12);
    }
  }

  const double learning_rate =
      options.learning_rate > 0.0
          ? options.learning_rate
          : std::max(static_cast<double>(n) / options.early_exaggeration,
                     20.0);

  // Init Y ~ N(0, 1e-4).
  util::Rng rng(options.seed);
  const std::size_t dims = options.out_dims;
  std::vector<double> y(n * dims);
  for (double& v : y) v = rng.normal() * 1e-2;
  std::vector<double> velocity(n * dims, 0.0);
  std::vector<double> gains(n * dims, 1.0);

  std::vector<double> q(n * n, 0.0);
  std::vector<double> num(n * n, 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t joint probabilities Q.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double dist = 0.0;
        for (std::size_t c = 0; c < dims; ++c) {
          const double diff = y[i * dims + c] - y[j * dims + c];
          dist += diff * diff;
        }
        const double inv = 1.0 / (1.0 + dist);
        num[i * n + j] = inv;
        num[j * n + i] = inv;
        q_sum += 2.0 * inv;
      }
    }
    if (q_sum <= 0.0) q_sum = 1e-12;
    for (std::size_t i = 0; i < n * n; ++i) {
      q[i] = std::max(num[i] / q_sum, 1e-12);
    }
    // Gradient + update with momentum and adaptive gains.
    const double momentum = iter < options.momentum_switch_iter
                                ? options.momentum_initial
                                : options.momentum_final;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < dims; ++c) {
        double grad = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const double mult = (exaggeration * p[i * n + j] - q[i * n + j]) *
                              num[i * n + j];
          grad += 4.0 * mult * (y[i * dims + c] - y[j * dims + c]);
        }
        const std::size_t idx = i * dims + c;
        const bool same_sign = (grad > 0.0) == (velocity[idx] < 0.0);
        gains[idx] = same_sign ? gains[idx] + 0.2 : gains[idx] * 0.8;
        gains[idx] = std::max(gains[idx], 0.01);
        velocity[idx] = momentum * velocity[idx] -
                        learning_rate * gains[idx] * grad;
        y[idx] += velocity[idx];
      }
    }
    // Re-center.
    for (std::size_t c = 0; c < dims; ++c) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y[i * dims + c];
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y[i * dims + c] -= mean;
    }
  }

  tensor::Matrix out(n, dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < dims; ++c) {
      out.at(i, c) = static_cast<float>(y[i * dims + c]);
    }
  }
  return out;
}

}  // namespace gnn4ip::analysis
