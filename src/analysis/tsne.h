// Exact t-SNE (van der Maaten & Hinton) for the Fig. 4(c) embedding
// visualization. Exact pairwise implementation — the figure uses only
// ~250 points, so no Barnes–Hut approximation is needed.
#pragma once

#include "tensor/matrix.h"
#include "util/rng.h"

namespace gnn4ip::analysis {

struct TsneOptions {
  std::size_t out_dims = 3;       // paper plots a 3-D t-SNE
  double perplexity = 30.0;
  int iterations = 600;
  /// <= 0 selects the max(N / early_exaggeration, 20) heuristic
  /// (Belkina et al.), which converges reliably across sample counts.
  double learning_rate = 0.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 100;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int momentum_switch_iter = 150;
  std::uint64_t seed = 3;
};

/// Map row-sample matrix `x` (N × D) to N × out_dims. Throws on fewer
/// than 4 samples (perplexity calibration becomes meaningless).
[[nodiscard]] tensor::Matrix tsne(const tensor::Matrix& x,
                                  const TsneOptions& options = {});

}  // namespace gnn4ip::analysis
