#include "analysis/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contract.h"

namespace gnn4ip::analysis {

std::vector<float> jacobi_eigen(const tensor::Matrix& a,
                                tensor::Matrix& vectors, int max_sweeps) {
  const std::size_t n = a.rows();
  GNN4IP_ENSURE(a.cols() == n, "jacobi_eigen requires a square matrix");
  tensor::Matrix m = a;
  vectors = tensor::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) vectors.at(i, i) = 1.0F;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass; stop when numerically diagonal.
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off += static_cast<double>(m.at(p, q)) * m.at(p, q);
      }
    }
    if (off < 1e-18) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const float apq = m.at(p, q);
        if (std::fabs(apq) < 1e-12F) continue;
        const float app = m.at(p, p);
        const float aqq = m.at(q, q);
        const float theta = 0.5F * (aqq - app) / apq;
        const float t = (theta >= 0.0F ? 1.0F : -1.0F) /
                        (std::fabs(theta) +
                         std::sqrt(theta * theta + 1.0F));
        const float c = 1.0F / std::sqrt(t * t + 1.0F);
        const float s = t * c;
        // Rotate rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const float mkp = m.at(k, p);
          const float mkq = m.at(k, q);
          m.at(k, p) = c * mkp - s * mkq;
          m.at(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const float mpk = m.at(p, k);
          const float mqk = m.at(q, k);
          m.at(p, k) = c * mpk - s * mqk;
          m.at(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const float vkp = vectors.at(k, p);
          const float vkq = vectors.at(k, q);
          vectors.at(k, p) = c * vkp - s * vkq;
          vectors.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  std::vector<float> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = m.at(i, i);
  return eigenvalues;
}

PcaResult pca(const tensor::Matrix& x, std::size_t k) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  GNN4IP_ENSURE(n >= 2, "pca needs at least two samples");
  GNN4IP_ENSURE(k >= 1 && k <= d, "pca component count out of range");

  // Center columns.
  tensor::Matrix centered = x;
  for (std::size_t c = 0; c < d; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) mean += x.at(r, c);
    mean /= static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) {
      centered.at(r, c) -= static_cast<float>(mean);
    }
  }
  // Covariance (D × D).
  tensor::Matrix cov = tensor::matmul_at_b(centered, centered);
  cov.scale_in_place(1.0F / static_cast<float>(n - 1));

  tensor::Matrix vectors;
  const std::vector<float> values = jacobi_eigen(cov, vectors);

  // Order components by eigenvalue, descending.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] > values[b];
  });

  PcaResult result;
  result.components = tensor::Matrix(k, d);
  result.eigenvalues.resize(k);
  float total_variance = 0.0F;
  for (float v : values) total_variance += std::max(v, 0.0F);
  result.explained_variance_ratio.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t src = order[i];
    result.eigenvalues[i] = values[src];
    for (std::size_t c = 0; c < d; ++c) {
      result.components.at(i, c) = vectors.at(c, src);
    }
    result.explained_variance_ratio[i] =
        total_variance > 0.0F ? std::max(values[src], 0.0F) / total_variance
                              : 0.0F;
  }
  result.projected = tensor::matmul_a_bt(centered, result.components);
  return result;
}

}  // namespace gnn4ip::analysis
