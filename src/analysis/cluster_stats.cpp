#include "analysis/cluster_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "util/contract.h"

namespace gnn4ip::analysis {
namespace {

double distance(const tensor::Matrix& points, std::size_t i, std::size_t j) {
  double acc = 0.0;
  const auto a = points.row(i);
  const auto b = points.row(j);
  for (std::size_t c = 0; c < points.cols(); ++c) {
    const double diff = static_cast<double>(a[c]) - b[c];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

}  // namespace

double silhouette_score(const tensor::Matrix& points,
                        const std::vector<int>& labels) {
  const std::size_t n = points.rows();
  GNN4IP_ENSURE(labels.size() == n, "labels size mismatch");
  std::set<int> clusters(labels.begin(), labels.end());
  GNN4IP_ENSURE(clusters.size() >= 2, "silhouette needs ≥ 2 clusters");

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Mean distance to own cluster (a) and to the nearest other (b).
    std::map<int, std::pair<double, std::size_t>> per_cluster;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      auto& [sum, count] = per_cluster[labels[j]];
      sum += distance(points, i, j);
      ++count;
    }
    const auto own = per_cluster.find(labels[i]);
    if (own == per_cluster.end() || own->second.second == 0) {
      continue;  // singleton cluster: silhouette undefined, skip
    }
    const double a = own->second.first / static_cast<double>(own->second.second);
    double b = std::numeric_limits<double>::max();
    for (const auto& [cluster, stat] : per_cluster) {
      if (cluster == labels[i] || stat.second == 0) continue;
      b = std::min(b, stat.first / static_cast<double>(stat.second));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double centroid_separation(const tensor::Matrix& points,
                           const std::vector<int>& labels) {
  const std::size_t n = points.rows();
  GNN4IP_ENSURE(labels.size() == n, "labels size mismatch");
  std::set<int> clusters(labels.begin(), labels.end());
  GNN4IP_ENSURE(clusters.size() == 2, "centroid_separation expects 2 clusters");
  const int first = *clusters.begin();

  const std::size_t d = points.cols();
  std::vector<double> c0(d, 0.0);
  std::vector<double> c1(d, 0.0);
  std::size_t n0 = 0;
  std::size_t n1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto& target = labels[i] == first ? c0 : c1;
    for (std::size_t c = 0; c < d; ++c) target[c] += points.at(i, c);
    (labels[i] == first ? n0 : n1) += 1;
  }
  GNN4IP_ENSURE(n0 > 0 && n1 > 0, "empty cluster");
  for (std::size_t c = 0; c < d; ++c) {
    c0[c] /= static_cast<double>(n0);
    c1[c] /= static_cast<double>(n1);
  }
  double between = 0.0;
  for (std::size_t c = 0; c < d; ++c) {
    const double diff = c0[c] - c1[c];
    between += diff * diff;
  }
  between = std::sqrt(between);

  double spread = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& centroid = labels[i] == first ? c0 : c1;
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = points.at(i, c) - centroid[c];
      acc += diff * diff;
    }
    spread += std::sqrt(acc);
  }
  spread /= static_cast<double>(n);
  return spread > 0.0 ? between / spread : std::numeric_limits<double>::max();
}

double nn_label_accuracy(const tensor::Matrix& points,
                         const std::vector<int>& labels) {
  const std::size_t n = points.rows();
  GNN4IP_ENSURE(labels.size() == n && n >= 2, "bad inputs");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::max();
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dist = distance(points, i, j);
      if (dist < best) {
        best = dist;
        best_j = j;
      }
    }
    if (labels[best_j] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace gnn4ip::analysis
