// Cluster-separation statistics used to quantify the "two well-separated
// clusters" claim of Fig. 4(b,c) without eyeballing a plot.
#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace gnn4ip::analysis {

/// Mean silhouette coefficient over all points for integer labels
/// (requires ≥ 2 clusters, each with ≥ 1 point). Range [-1, 1]; higher
/// means tighter, better-separated clusters.
[[nodiscard]] double silhouette_score(const tensor::Matrix& points,
                                      const std::vector<int>& labels);

/// Ratio of the distance between cluster centroids to the mean
/// intra-cluster spread (2-cluster Fisher-style separation; > 1 means
/// the clusters are separated more than they spread).
[[nodiscard]] double centroid_separation(const tensor::Matrix& points,
                                         const std::vector<int>& labels);

/// Leave-one-out 1-nearest-neighbor label accuracy — the operational
/// "are the clusters separable" number.
[[nodiscard]] double nn_label_accuracy(const tensor::Matrix& points,
                                       const std::vector<int>& labels);

}  // namespace gnn4ip::analysis
