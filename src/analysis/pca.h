// Principal component analysis for the Fig. 4(b) embedding projection.
//
// Column-centered covariance, eigendecomposition via cyclic Jacobi
// rotations (embedding dimension is small — 16 — so Jacobi is exact and
// fast), projection onto the top-k components ordered by eigenvalue.
#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace gnn4ip::analysis {

struct PcaResult {
  tensor::Matrix projected;          // N × k scores
  tensor::Matrix components;         // k × D principal axes (rows)
  std::vector<float> eigenvalues;    // k largest, descending
  std::vector<float> explained_variance_ratio;  // per kept component
};

/// Project row-sample matrix `x` (N × D) onto its top `k` components.
[[nodiscard]] PcaResult pca(const tensor::Matrix& x, std::size_t k);

/// Symmetric eigendecomposition by cyclic Jacobi; returns eigenvalues
/// (unordered) and fills `vectors` with column eigenvectors. `a` must be
/// symmetric.
[[nodiscard]] std::vector<float> jacobi_eigen(const tensor::Matrix& a,
                                              tensor::Matrix& vectors,
                                              int max_sweeps = 64);

}  // namespace gnn4ip::analysis
