#include "train/metrics.h"

#include <algorithm>

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::train {

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const std::size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::false_negative_rate() const {
  const std::size_t denom = fn + tp;
  return denom == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(denom);
}

std::string ConfusionMatrix::to_string() const {
  return util::format("TP: %zu  FP: %zu  FN: %zu  TN: %zu  (acc %.4f)", tp,
                      fp, fn, tn, accuracy());
}

ConfusionMatrix confusion_at(const std::vector<float>& scores,
                             const std::vector<int>& labels, float delta) {
  GNN4IP_ENSURE(scores.size() == labels.size(),
                "scores/labels size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted_piracy = scores[i] > delta;
    const bool actual_piracy = labels[i] == 1;
    if (predicted_piracy && actual_piracy) ++cm.tp;
    if (predicted_piracy && !actual_piracy) ++cm.fp;
    if (!predicted_piracy && actual_piracy) ++cm.fn;
    if (!predicted_piracy && !actual_piracy) ++cm.tn;
  }
  return cm;
}

float tune_threshold(const std::vector<float>& scores,
                     const std::vector<int>& labels) {
  GNN4IP_ENSURE(!scores.empty(), "tune_threshold on empty scores");
  std::vector<float> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Candidates: below the minimum, all midpoints, above the maximum.
  std::vector<float> candidates;
  candidates.push_back(sorted.front() - 1e-3F);
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    candidates.push_back(0.5F * (sorted[i] + sorted[i + 1]));
  }
  candidates.push_back(sorted.back() + 1e-3F);
  float best_delta = candidates.front();
  double best_accuracy = -1.0;
  for (float delta : candidates) {
    const double acc = confusion_at(scores, labels, delta).accuracy();
    if (acc > best_accuracy) {
      best_accuracy = acc;
      best_delta = delta;
    }
  }
  return best_delta;
}

}  // namespace gnn4ip::train
