// Mini-batch trainer for GNN4IP.
//
// Two batching strategies:
//  * kPairBatch  — sample `batch_pairs` labeled pairs per step (the
//    paper's batch size 64). Each unique graph in the batch is embedded
//    once on the step's tape, so pairs share forward work.
//  * kGraphBatch — sample `batch_graphs` graphs and train on all pairs
//    among them. More pairs per embedding; the default for the benches.
//
// Both minimize the summed cosine-embedding loss (Eq. 7, margin 0.5) and
// step the optimizer once per batch.
#pragma once

#include <memory>
#include <vector>

#include "gnn/hw2vec.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace gnn4ip::train {

struct TrainConfig {
  int epochs = 40;
  enum class BatchMode { kGraphBatch, kPairBatch };
  BatchMode mode = BatchMode::kGraphBatch;
  std::size_t batch_pairs = 64;    // paper §IV
  std::size_t batch_graphs = 32;
  /// Cap on optimizer steps per epoch (pair mode can have thousands).
  std::size_t max_steps_per_epoch = 64;
  float learning_rate = 1e-3F;     // paper §IV
  float margin = 0.5F;             // paper Eq. 7
  /// Loss weight for piracy (label +1) pairs. Leave at 1 when the pair
  /// set is built with the paper's ~3.5:1 negative:positive ratio
  /// (PairDataset::PairOptions::max_negative_ratio); raise it to balance
  /// gradients on an unsubsampled all-pairs set.
  float positive_weight = 1.0F;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double test_fraction = 0.2;      // paper §IV-A
  std::uint64_t seed = 7;
  /// Worker threads for the embed_all fan-out (evaluation / scoring).
  /// 0 = the shared util::ThreadPool (GNN4IP_THREADS, else hardware
  /// concurrency). Embeddings are bit-identical for any value.
  std::size_t num_threads = 0;
};

struct EpochStats {
  double mean_loss = 0.0;
  std::size_t pairs_seen = 0;
  std::size_t steps = 0;
};

struct EvalResult {
  ConfusionMatrix confusion;
  float delta = 0.0F;              // decision boundary used
  std::vector<float> scores;       // per evaluated pair
  std::vector<int> labels;
  /// Wall-clock seconds per pair for embedding+similarity (no caching),
  /// matching the paper's per-sample timing protocol.
  double seconds_per_sample = 0.0;
};

class Trainer {
 public:
  Trainer(gnn::Hw2Vec& model, const PairDataset& dataset,
          const TrainConfig& config);

  /// One pass over (a sample of) the training pairs.
  EpochStats train_epoch();

  /// Run `epochs` epochs; returns the last epoch's stats.
  EpochStats fit();

  /// Tune δ on training pairs, evaluate on held-out pairs.
  [[nodiscard]] EvalResult evaluate();

  /// Scores for an arbitrary pair index list (embeddings cached per call).
  [[nodiscard]] std::vector<float> score_pairs(
      const std::vector<std::size_t>& pair_indices);

  /// Embed every dataset graph once (inference mode), fanned out over
  /// the worker pool (TrainConfig::num_threads); returns row-matrix h_G
  /// per graph index, bit-identical for any worker count.
  [[nodiscard]] std::vector<tensor::Matrix> embed_all();

  [[nodiscard]] const PairDataset::Split& split() const { return split_; }
  [[nodiscard]] float tuned_delta() const { return tuned_delta_; }

 private:
  EpochStats train_epoch_graph_batch();
  EpochStats train_epoch_pair_batch();

  gnn::Hw2Vec& model_;
  const PairDataset& dataset_;
  TrainConfig config_;
  PairDataset::Split split_;
  std::unique_ptr<Optimizer> optimizer_;
  util::Rng rng_;
  float tuned_delta_ = 0.0F;
};

}  // namespace gnn4ip::train
