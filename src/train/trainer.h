// Mini-batch trainer for GNN4IP.
//
// Two batching strategies:
//  * kPairBatch  — sample `batch_pairs` labeled pairs per step (the
//    paper's batch size 64). Each unique graph in the batch is embedded
//    once, so pairs share forward work.
//  * kGraphBatch — sample `batch_graphs` graphs and train on all pairs
//    among them. More pairs per embedding; the default for the benches.
//
// Both minimize the mean cosine-embedding loss (Eq. 7, margin 0.5) and
// step the optimizer once per batch.
//
// Training steps are data-parallel with bit-identical results: every
// batch graph runs forward + backward on its own tensor::Tape (reused
// across steps via reset()), parameter gradients accumulate into
// per-graph GradSink shadow buffers, the cross-graph cosine-embedding
// loss is differentiated in closed form on the coordinating thread and
// pushed back into each graph's tape as a backward seed, and the shadows
// are folded into Parameter::grad in fixed graph-index order. The float
// summation order therefore never depends on the schedule, so fit() with
// 1, 2, or 8 workers produces byte-equal parameters and loss curves
// (asserted in tests/train_test.cpp).
#pragma once

#include <memory>
#include <vector>

#include "gnn/hw2vec.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "util/thread_pool.h"

namespace gnn4ip::train {

struct TrainConfig {
  int epochs = 40;
  enum class BatchMode { kGraphBatch, kPairBatch };
  BatchMode mode = BatchMode::kGraphBatch;
  std::size_t batch_pairs = 64;    // paper §IV
  std::size_t batch_graphs = 32;
  /// Cap on optimizer steps per epoch (pair mode can have thousands).
  std::size_t max_steps_per_epoch = 64;
  float learning_rate = 1e-3F;     // paper §IV
  float margin = 0.5F;             // paper Eq. 7
  /// Loss weight for piracy (label +1) pairs. Leave at 1 when the pair
  /// set is built with the paper's ~3.5:1 negative:positive ratio
  /// (PairDataset::PairOptions::max_negative_ratio); raise it to balance
  /// gradients on an unsubsampled all-pairs set.
  float positive_weight = 1.0F;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double test_fraction = 0.2;      // paper §IV-A
  std::uint64_t seed = 7;
  /// Worker threads for the training-step fan-out (per-graph
  /// forward/backward) and the embed_all fan-out (evaluation / scoring).
  /// 0 = the shared util::ThreadPool (GNN4IP_THREADS, else hardware
  /// concurrency). Gradients, trained weights, and embeddings are
  /// bit-identical for any value.
  std::size_t num_threads = 0;
};

struct EpochStats {
  double mean_loss = 0.0;
  std::size_t pairs_seen = 0;
  std::size_t steps = 0;
};

struct EvalResult {
  ConfusionMatrix confusion;
  float delta = 0.0F;              // decision boundary used
  std::vector<float> scores;       // per evaluated pair
  std::vector<int> labels;
  /// Wall-clock seconds per pair for embedding+similarity (no caching),
  /// matching the paper's per-sample timing protocol.
  double seconds_per_sample = 0.0;
};

class Trainer {
 public:
  Trainer(gnn::Hw2Vec& model, const PairDataset& dataset,
          const TrainConfig& config);

  /// One pass over (a sample of) the training pairs.
  EpochStats train_epoch();

  /// Run `epochs` epochs; returns the last epoch's stats.
  EpochStats fit();

  /// Tune δ on training pairs, evaluate on held-out pairs.
  [[nodiscard]] EvalResult evaluate();

  /// Scores for an arbitrary pair index list (embeddings cached per call).
  [[nodiscard]] std::vector<float> score_pairs(
      const std::vector<std::size_t>& pair_indices);

  /// Embed every dataset graph once (inference mode), fanned out over
  /// the worker pool (TrainConfig::num_threads); returns row-matrix h_G
  /// per graph index, bit-identical for any worker count.
  [[nodiscard]] std::vector<tensor::Matrix> embed_all();

  [[nodiscard]] const PairDataset::Split& split() const { return split_; }
  [[nodiscard]] float tuned_delta() const { return tuned_delta_; }

 private:
  EpochStats train_epoch_graph_batch();
  EpochStats train_epoch_pair_batch();

  /// One labeled pair of batch slots (indices into a step's graph list).
  struct SlotPair {
    std::size_t a = 0;
    std::size_t b = 0;
    int label = 0;
  };

  /// One data-parallel optimizer step over `graphs` (dataset graph
  /// indices; must be distinct) and the labeled `pairs` among them.
  /// Returns the mean (weighted) pair loss. See the file comment for the
  /// determinism contract.
  double parallel_step(const std::vector<std::size_t>& graphs,
                       const std::vector<SlotPair>& pairs);

  /// The worker pool every trainer fan-out runs on: the shared pool for
  /// num_threads == 0, otherwise a trainer-owned pool spawned once —
  /// never a transient pool per step.
  util::ThreadPool& pool();

  gnn::Hw2Vec& model_;
  const PairDataset& dataset_;
  TrainConfig config_;
  PairDataset::Split split_;
  std::unique_ptr<Optimizer> optimizer_;
  util::Rng rng_;
  float tuned_delta_ = 0.0F;
  // Per-batch-slot tapes and gradient sinks, reused across steps and
  // epochs (reset()/clear() keep their allocations) so a step allocates
  // no tape or shadow storage after warm-up.
  std::vector<std::unique_ptr<tensor::Tape>> slot_tapes_;
  std::vector<tensor::GradSink> slot_sinks_;
  // Lazily-spawned pool for an explicit num_threads (see pool()).
  std::unique_ptr<util::ThreadPool> owned_pool_;
};

}  // namespace gnn4ip::train
