#include "train/optimizer.h"

#include <cmath>

#include "util/contract.h"

namespace gnn4ip::train {

void Optimizer::zero_grad() {
  for (tensor::Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<tensor::Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (tensor::Parameter* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols(), 0.0F);
  }
}

void Sgd::step() {
  // The reduced gradient is read in place; a copy is only taken on the
  // weight-decay path, which has to combine it with the weights.
  tensor::Matrix decayed;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::Parameter& p = *params_[i];
    const tensor::Matrix* g = &p.grad;
    if (weight_decay_ != 0.0F) {
      decayed = p.grad;
      decayed.axpy_in_place(weight_decay_, p.value);
      g = &decayed;
    }
    if (momentum_ != 0.0F) {
      velocity_[i].scale_in_place(momentum_);
      velocity_[i].add_in_place(*g);
      p.value.axpy_in_place(-lr_, velocity_[i]);
    } else {
      p.value.axpy_in_place(-lr_, *g);
    }
    p.zero_grad();
  }
}

Adam::Adam(std::vector<tensor::Parameter*> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (tensor::Parameter* p : params_) {
    first_moment_.emplace_back(p->value.rows(), p->value.cols(), 0.0F);
    second_moment_.emplace_back(p->value.rows(), p->value.cols(), 0.0F);
  }
}

void Adam::step() {
  ++step_count_;
  const float bias1 =
      1.0F - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0F - std::pow(beta2_, static_cast<float>(step_count_));
  tensor::Matrix decayed;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::Parameter& p = *params_[i];
    const tensor::Matrix* g = &p.grad;
    if (weight_decay_ != 0.0F) {
      decayed = p.grad;
      decayed.axpy_in_place(weight_decay_, p.value);
      g = &decayed;
    }
    auto m = first_moment_[i].data();
    auto v = second_moment_[i].data();
    const auto gd = g->data();
    auto w = p.value.data();
    for (std::size_t j = 0; j < gd.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * gd[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * gd[j] * gd[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
    p.zero_grad();
  }
}

std::unique_ptr<Optimizer> make_optimizer(
    OptimizerKind kind, std::vector<tensor::Parameter*> params, float lr) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<Sgd>(std::move(params), lr);
    case OptimizerKind::kAdam:
      return std::make_unique<Adam>(std::move(params), lr);
  }
  GNN4IP_ENSURE(false, "unknown optimizer kind");
  return nullptr;
}

}  // namespace gnn4ip::train
