#include "train/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>

#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::train {
namespace {

/// Norm-product floor shared with Tape::cosine_similarity, so the
/// closed-form pair gradient in parallel_step differentiates exactly the
/// similarity the tape would have computed.
constexpr float kCosineEps = 1e-8F;

/// Cosine similarity of two dense rows (inference path, no tape).
float cosine(const tensor::Matrix& a, const tensor::Matrix& b) {
  const float ab = tensor::dot(a, b);
  const float na = a.frobenius_norm();
  const float nb = b.frobenius_norm();
  return ab / std::max(na * nb, kCosineEps);
}

}  // namespace

Trainer::Trainer(gnn::Hw2Vec& model, const PairDataset& dataset,
                 const TrainConfig& config)
    : model_(model),
      dataset_(dataset),
      config_(config),
      rng_(config.seed) {
  split_ = dataset_.split(config_.test_fraction, rng_);
  optimizer_ =
      make_optimizer(config_.optimizer, model_.parameters(),
                     config_.learning_rate);
}

util::ThreadPool& Trainer::pool() {
  if (config_.num_threads == 0) return util::ThreadPool::shared();
  if (!owned_pool_) {
    owned_pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
  return *owned_pool_;
}

EpochStats Trainer::train_epoch() {
  return config_.mode == TrainConfig::BatchMode::kGraphBatch
             ? train_epoch_graph_batch()
             : train_epoch_pair_batch();
}

EpochStats Trainer::fit() {
  EpochStats last;
  for (int e = 0; e < config_.epochs; ++e) {
    last = train_epoch();
  }
  return last;
}

double Trainer::parallel_step(const std::vector<std::size_t>& graphs,
                              const std::vector<SlotPair>& pairs) {
  GNN4IP_ENSURE(!graphs.empty(), "parallel_step: empty graph batch");
  GNN4IP_ENSURE(!pairs.empty(), "parallel_step: no labeled pairs");
  const std::size_t slots = graphs.size();
  while (slot_tapes_.size() < slots) {
    slot_tapes_.push_back(std::make_unique<tensor::Tape>());
    slot_sinks_.emplace_back();
  }
  // Per-slot dropout streams are seeded sequentially in slot order, so
  // the RNG consumption — like everything else in the step — depends on
  // the batch alone, never on the worker schedule.
  std::vector<std::uint64_t> dropout_seeds(slots);
  for (std::size_t s = 0; s < slots; ++s) dropout_seeds[s] = rng_.next_u64();

  // Phase 1 (parallel): forward every graph on its own reset tape, with
  // parameter-leaf gradients redirected into the slot's shadow sink.
  std::vector<tensor::Var> h(slots);
  const auto forward_one = [&](std::size_t s) {
    tensor::Tape& tape = *slot_tapes_[s];
    tape.reset();
    slot_sinks_[s].clear();
    tape.set_grad_sink(&slot_sinks_[s]);
    util::Rng dropout_rng(dropout_seeds[s]);
    h[s] = model_.embed(tape, dataset_.graphs()[graphs[s]].tensors,
                        dropout_rng, /*training=*/true);
  };
  pool().parallel_for(slots, forward_one);

  // Phase 2 (sequential, fixed pair order): the cross-graph part of the
  // loss — cosine similarity + Eq. 7 — is differentiated in closed form
  // and accumulated into one backward seed dL/dh per slot. The cosine
  // arithmetic mirrors Tape::cosine_similarity exactly.
  const float inv_pairs = 1.0F / static_cast<float>(pairs.size());
  std::vector<tensor::Matrix> seeds(slots);
  std::vector<char> touched(slots, 0);
  double loss_sum = 0.0;
  for (const SlotPair& p : pairs) {
    GNN4IP_ENSURE(p.label == 1 || p.label == -1, "pair label must be ±1");
    const tensor::Matrix& ha = h[p.a].value();
    const tensor::Matrix& hb = h[p.b].value();
    const float ab = tensor::dot(ha, hb);
    const float na = ha.frobenius_norm();
    const float nb = hb.frobenius_norm();
    const float denom = std::max(na * nb, kCosineEps);
    const float sim = ab / denom;
    float loss = 0.0F;
    float dloss_dsim = 0.0F;
    if (p.label == 1) {
      loss = 1.0F - sim;
      dloss_dsim = -1.0F;
    } else {
      const float hinge = sim - config_.margin;
      loss = hinge > 0.0F ? hinge : 0.0F;
      dloss_dsim = hinge > 0.0F ? 1.0F : 0.0F;
    }
    const float weight = p.label == 1 ? config_.positive_weight : 1.0F;
    loss_sum += static_cast<double>(weight * loss);
    // d(mean loss)/d sim for this pair; zero on the flat side of the
    // hinge, so those pairs contribute no seed at all.
    const float ds = weight * inv_pairs * dloss_dsim;
    if (ds == 0.0F) continue;
    const float na2 = std::max(na * na, kCosineEps);
    const float nb2 = std::max(nb * nb, kCosineEps);
    for (const std::size_t s : {p.a, p.b}) {
      if (!touched[s]) {
        seeds[s] =
            tensor::Matrix(h[s].value().rows(), h[s].value().cols(), 0.0F);
        touched[s] = 1;
      }
    }
    // d sim / d a = b/denom − sim · a/na², and symmetrically for b.
    const auto ad = ha.data();
    const auto bd = hb.data();
    auto da = seeds[p.a].data();
    auto db = seeds[p.b].data();
    for (std::size_t i = 0; i < ad.size(); ++i) {
      da[i] += ds * (bd[i] / denom - sim * ad[i] / na2);
      db[i] += ds * (ad[i] / denom - sim * bd[i] / nb2);
    }
  }

  // Phase 3 (parallel): backward each touched tape from its seed — the
  // shadows fill independently. Phase 4 (sequential, slot order): fold
  // the shadows into Parameter::grad; the fixed fold order is what makes
  // the reduced gradient bit-identical for any worker count.
  const auto backward_one = [&](std::size_t s) {
    if (touched[s]) slot_tapes_[s]->backward(h[s], seeds[s]);
  };
  const auto fold_one = [&](std::size_t s) {
    slot_sinks_[s].add_into_params();
  };
  util::parallel_map_reduce(slots, pool(), backward_one, fold_one);

  optimizer_->step();
  return loss_sum * static_cast<double>(inv_pairs);
}

EpochStats Trainer::train_epoch_graph_batch() {
  EpochStats stats;
  // Which graphs participate in training pairs?
  std::vector<std::size_t> train_graphs;
  {
    std::vector<bool> in_train(dataset_.graphs().size(), false);
    for (std::size_t pi : split_.train) {
      in_train[dataset_.pairs()[pi].a] = true;
      in_train[dataset_.pairs()[pi].b] = true;
    }
    for (std::size_t g = 0; g < in_train.size(); ++g) {
      if (in_train[g]) train_graphs.push_back(g);
    }
  }
  GNN4IP_ENSURE(!train_graphs.empty(), "no training graphs");

  // Fast membership test for training pairs (graph-batch mode must not
  // train on held-out pairs).
  std::map<std::pair<std::size_t, std::size_t>, int> train_pair_label;
  for (std::size_t pi : split_.train) {
    const PairSample& p = dataset_.pairs()[pi];
    train_pair_label[{std::min(p.a, p.b), std::max(p.a, p.b)}] = p.label;
  }

  rng_.shuffle(train_graphs);
  const std::size_t batch =
      std::min(config_.batch_graphs, train_graphs.size());
  const std::size_t steps = std::min(
      config_.max_steps_per_epoch,
      std::max<std::size_t>(1, train_graphs.size() / std::max<std::size_t>(
                                                         1, batch)));
  double loss_sum = 0.0;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    // Next window of graphs (reshuffle on wrap). A wrap mid-window can
    // re-deal a graph already in the window; skip it so the slots stay
    // distinct (parallel_step's precondition). batch ≤ train_graphs
    // guarantees an unchosen graph always remains.
    std::vector<std::size_t> chosen;
    chosen.reserve(batch);
    while (chosen.size() < batch) {
      if (cursor >= train_graphs.size()) {
        rng_.shuffle(train_graphs);
        cursor = 0;
      }
      const std::size_t g = train_graphs[cursor++];
      if (std::find(chosen.begin(), chosen.end(), g) == chosen.end()) {
        chosen.push_back(g);
      }
    }

    // Labeled training pairs among the chosen window (held-out pairs are
    // skipped); slots index into `chosen`.
    std::vector<SlotPair> pairs;
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      for (std::size_t j = i + 1; j < chosen.size(); ++j) {
        const auto key = std::minmax(chosen[i], chosen[j]);
        const auto it = train_pair_label.find({key.first, key.second});
        if (it == train_pair_label.end()) continue;  // held-out pair
        pairs.push_back({i, j, it->second});
      }
    }
    if (pairs.empty()) continue;
    loss_sum += parallel_step(chosen, pairs);
    stats.pairs_seen += pairs.size();
    ++stats.steps;
  }
  stats.mean_loss = stats.steps == 0 ? 0.0 : loss_sum / stats.steps;
  return stats;
}

EpochStats Trainer::train_epoch_pair_batch() {
  EpochStats stats;
  std::vector<std::size_t> order = split_.train;
  rng_.shuffle(order);
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_pairs);
  const std::size_t steps =
      std::min(config_.max_steps_per_epoch,
               (order.size() + batch - 1) / batch);
  double loss_sum = 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t begin = s * batch;
    const std::size_t end = std::min(order.size(), begin + batch);
    if (begin >= end) break;

    // Each unique graph in the pair window is embedded once: collect the
    // distinct graphs in first-appearance order (deterministic for a
    // fixed shuffle) and express the pairs in slot coordinates.
    std::vector<std::size_t> chosen;
    std::map<std::size_t, std::size_t> slot_of;
    std::vector<SlotPair> pairs;
    pairs.reserve(end - begin);
    auto slot_once = [&](std::size_t g) {
      const auto [it, inserted] = slot_of.emplace(g, chosen.size());
      if (inserted) chosen.push_back(g);
      return it->second;
    };
    for (std::size_t k = begin; k < end; ++k) {
      const PairSample& p = dataset_.pairs()[order[k]];
      pairs.push_back({slot_once(p.a), slot_once(p.b), p.label});
    }
    loss_sum += parallel_step(chosen, pairs);
    stats.pairs_seen += pairs.size();
    ++stats.steps;
  }
  stats.mean_loss = stats.steps == 0 ? 0.0 : loss_sum / stats.steps;
  return stats;
}

std::vector<tensor::Matrix> Trainer::embed_all() {
  // Graphs are independent; each worker fills only its own slot, so the
  // result is bit-identical for any worker count. Each worker thread
  // reuses one tape across all the graphs it claims (reset() keeps the
  // node vector's capacity) instead of constructing a tape per graph.
  std::vector<tensor::Matrix> embeddings(dataset_.graphs().size());
  const auto embed_one = [&](std::size_t g) {
    static thread_local tensor::Tape tape;
    embeddings[g] =
        model_.embed_inference(tape, dataset_.graphs()[g].tensors);
  };
  pool().parallel_for(embeddings.size(), embed_one);
  return embeddings;
}

std::vector<float> Trainer::score_pairs(
    const std::vector<std::size_t>& pair_indices) {
  const std::vector<tensor::Matrix> embeddings = embed_all();
  std::vector<float> scores;
  scores.reserve(pair_indices.size());
  for (std::size_t pi : pair_indices) {
    const PairSample& p = dataset_.pairs()[pi];
    scores.push_back(cosine(embeddings[p.a], embeddings[p.b]));
  }
  return scores;
}

EvalResult Trainer::evaluate() {
  const std::vector<tensor::Matrix> embeddings = embed_all();
  auto score_of = [&](std::size_t pi) {
    const PairSample& p = dataset_.pairs()[pi];
    return cosine(embeddings[p.a], embeddings[p.b]);
  };

  // δ tuned on training pairs only.
  std::vector<float> train_scores;
  std::vector<int> train_labels;
  train_scores.reserve(split_.train.size());
  for (std::size_t pi : split_.train) {
    train_scores.push_back(score_of(pi));
    train_labels.push_back(dataset_.pairs()[pi].label);
  }
  tuned_delta_ = tune_threshold(train_scores, train_labels);

  EvalResult result;
  result.delta = tuned_delta_;
  result.scores.reserve(split_.test.size());
  result.labels.reserve(split_.test.size());
  for (std::size_t pi : split_.test) {
    result.scores.push_back(score_of(pi));
    result.labels.push_back(dataset_.pairs()[pi].label);
  }
  result.confusion =
      confusion_at(result.scores, result.labels, tuned_delta_);

  // Per-sample timing without embedding reuse: embed both graphs of a
  // pair and compute the similarity, averaged over up to 64 test pairs.
  const std::size_t timing_pairs =
      std::min<std::size_t>(64, split_.test.size());
  if (timing_pairs == 0) return result;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < timing_pairs; ++k) {
    const PairSample& p = dataset_.pairs()[split_.test[k]];
    const tensor::Matrix ha =
        model_.embed_inference(dataset_.graphs()[p.a].tensors);
    const tensor::Matrix hb =
        model_.embed_inference(dataset_.graphs()[p.b].tensors);
    volatile float sink = cosine(ha, hb);
    (void)sink;
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.seconds_per_sample =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(timing_pairs);
  return result;
}

}  // namespace gnn4ip::train
