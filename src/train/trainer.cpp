#include "train/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>

#include "util/contract.h"
#include "util/thread_pool.h"

namespace gnn4ip::train {
namespace {

/// Cosine similarity of two dense rows (inference path, no tape).
float cosine(const tensor::Matrix& a, const tensor::Matrix& b) {
  const float ab = tensor::dot(a, b);
  const float na = a.frobenius_norm();
  const float nb = b.frobenius_norm();
  return ab / std::max(na * nb, 1e-8F);
}

}  // namespace

Trainer::Trainer(gnn::Hw2Vec& model, const PairDataset& dataset,
                 const TrainConfig& config)
    : model_(model),
      dataset_(dataset),
      config_(config),
      rng_(config.seed) {
  split_ = dataset_.split(config_.test_fraction, rng_);
  optimizer_ =
      make_optimizer(config_.optimizer, model_.parameters(),
                     config_.learning_rate);
}

EpochStats Trainer::train_epoch() {
  return config_.mode == TrainConfig::BatchMode::kGraphBatch
             ? train_epoch_graph_batch()
             : train_epoch_pair_batch();
}

EpochStats Trainer::fit() {
  EpochStats last;
  for (int e = 0; e < config_.epochs; ++e) {
    last = train_epoch();
  }
  return last;
}

EpochStats Trainer::train_epoch_graph_batch() {
  EpochStats stats;
  // Which graphs participate in training pairs?
  std::vector<std::size_t> train_graphs;
  {
    std::vector<bool> in_train(dataset_.graphs().size(), false);
    for (std::size_t pi : split_.train) {
      in_train[dataset_.pairs()[pi].a] = true;
      in_train[dataset_.pairs()[pi].b] = true;
    }
    for (std::size_t g = 0; g < in_train.size(); ++g) {
      if (in_train[g]) train_graphs.push_back(g);
    }
  }
  GNN4IP_ENSURE(!train_graphs.empty(), "no training graphs");

  // Fast membership test for training pairs (graph-batch mode must not
  // train on held-out pairs).
  std::map<std::pair<std::size_t, std::size_t>, int> train_pair_label;
  for (std::size_t pi : split_.train) {
    const PairSample& p = dataset_.pairs()[pi];
    train_pair_label[{std::min(p.a, p.b), std::max(p.a, p.b)}] = p.label;
  }

  rng_.shuffle(train_graphs);
  const std::size_t batch =
      std::min(config_.batch_graphs, train_graphs.size());
  const std::size_t steps = std::min(
      config_.max_steps_per_epoch,
      std::max<std::size_t>(1, train_graphs.size() / std::max<std::size_t>(
                                                         1, batch)));
  double loss_sum = 0.0;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    // Next window of graphs (reshuffle on wrap).
    std::vector<std::size_t> chosen;
    chosen.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      if (cursor >= train_graphs.size()) {
        rng_.shuffle(train_graphs);
        cursor = 0;
      }
      chosen.push_back(train_graphs[cursor++]);
    }

    tensor::Tape tape;
    std::map<std::size_t, tensor::Var> embeddings;
    for (std::size_t g : chosen) {
      embeddings.emplace(
          g, model_.embed(tape, dataset_.graphs()[g].tensors, rng_,
                          /*training=*/true));
    }
    std::vector<tensor::Var> losses;
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      for (std::size_t j = i + 1; j < chosen.size(); ++j) {
        const auto key = std::minmax(chosen[i], chosen[j]);
        const auto it =
            train_pair_label.find({key.first, key.second});
        if (it == train_pair_label.end()) continue;  // held-out pair
        tensor::Var sim = tape.cosine_similarity(embeddings.at(chosen[i]),
                                                 embeddings.at(chosen[j]));
        tensor::Var loss =
            tape.cosine_embedding_loss(sim, it->second, config_.margin);
        if (it->second == 1 && config_.positive_weight != 1.0F) {
          loss = tape.scale(loss, config_.positive_weight);
        }
        losses.push_back(loss);
      }
    }
    if (losses.empty()) continue;
    tensor::Var total = tape.sum_scalars(losses);
    // Mean over batch pairs keeps the step size independent of batch
    // composition.
    tensor::Var mean_loss =
        tape.scale(total, 1.0F / static_cast<float>(losses.size()));
    tape.backward(mean_loss);
    optimizer_->step();
    loss_sum += static_cast<double>(mean_loss.value().at(0, 0));
    stats.pairs_seen += losses.size();
    ++stats.steps;
  }
  stats.mean_loss = stats.steps == 0 ? 0.0 : loss_sum / stats.steps;
  return stats;
}

EpochStats Trainer::train_epoch_pair_batch() {
  EpochStats stats;
  std::vector<std::size_t> order = split_.train;
  rng_.shuffle(order);
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_pairs);
  const std::size_t steps =
      std::min(config_.max_steps_per_epoch,
               (order.size() + batch - 1) / batch);
  double loss_sum = 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t begin = s * batch;
    const std::size_t end = std::min(order.size(), begin + batch);
    if (begin >= end) break;

    tensor::Tape tape;
    std::map<std::size_t, tensor::Var> embeddings;
    auto embed_once = [&](std::size_t g) {
      auto it = embeddings.find(g);
      if (it == embeddings.end()) {
        it = embeddings
                 .emplace(g, model_.embed(tape,
                                          dataset_.graphs()[g].tensors,
                                          rng_, /*training=*/true))
                 .first;
      }
      return it->second;
    };
    std::vector<tensor::Var> losses;
    for (std::size_t k = begin; k < end; ++k) {
      const PairSample& p = dataset_.pairs()[order[k]];
      tensor::Var sim =
          tape.cosine_similarity(embed_once(p.a), embed_once(p.b));
      tensor::Var loss =
          tape.cosine_embedding_loss(sim, p.label, config_.margin);
      if (p.label == 1 && config_.positive_weight != 1.0F) {
        loss = tape.scale(loss, config_.positive_weight);
      }
      losses.push_back(loss);
    }
    tensor::Var total = tape.sum_scalars(losses);
    tensor::Var mean_loss =
        tape.scale(total, 1.0F / static_cast<float>(losses.size()));
    tape.backward(mean_loss);
    optimizer_->step();
    loss_sum += static_cast<double>(mean_loss.value().at(0, 0));
    stats.pairs_seen += losses.size();
    ++stats.steps;
  }
  stats.mean_loss = stats.steps == 0 ? 0.0 : loss_sum / stats.steps;
  return stats;
}

std::vector<tensor::Matrix> Trainer::embed_all() {
  // Graphs are independent; each worker fills only its own slot, so the
  // result is bit-identical for any worker count.
  std::vector<tensor::Matrix> embeddings(dataset_.graphs().size());
  const auto embed_one = [&](std::size_t g) {
    embeddings[g] = model_.embed_inference(dataset_.graphs()[g].tensors);
  };
  util::parallel_for(embeddings.size(), config_.num_threads, embed_one);
  return embeddings;
}

std::vector<float> Trainer::score_pairs(
    const std::vector<std::size_t>& pair_indices) {
  const std::vector<tensor::Matrix> embeddings = embed_all();
  std::vector<float> scores;
  scores.reserve(pair_indices.size());
  for (std::size_t pi : pair_indices) {
    const PairSample& p = dataset_.pairs()[pi];
    scores.push_back(cosine(embeddings[p.a], embeddings[p.b]));
  }
  return scores;
}

EvalResult Trainer::evaluate() {
  const std::vector<tensor::Matrix> embeddings = embed_all();
  auto score_of = [&](std::size_t pi) {
    const PairSample& p = dataset_.pairs()[pi];
    return cosine(embeddings[p.a], embeddings[p.b]);
  };

  // δ tuned on training pairs only.
  std::vector<float> train_scores;
  std::vector<int> train_labels;
  train_scores.reserve(split_.train.size());
  for (std::size_t pi : split_.train) {
    train_scores.push_back(score_of(pi));
    train_labels.push_back(dataset_.pairs()[pi].label);
  }
  tuned_delta_ = tune_threshold(train_scores, train_labels);

  EvalResult result;
  result.delta = tuned_delta_;
  result.scores.reserve(split_.test.size());
  result.labels.reserve(split_.test.size());
  for (std::size_t pi : split_.test) {
    result.scores.push_back(score_of(pi));
    result.labels.push_back(dataset_.pairs()[pi].label);
  }
  result.confusion =
      confusion_at(result.scores, result.labels, tuned_delta_);

  // Per-sample timing without embedding reuse: embed both graphs of a
  // pair and compute the similarity, averaged over up to 64 test pairs.
  const std::size_t timing_pairs =
      std::min<std::size_t>(64, split_.test.size());
  if (timing_pairs == 0) return result;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < timing_pairs; ++k) {
    const PairSample& p = dataset_.pairs()[split_.test[k]];
    const tensor::Matrix ha =
        model_.embed_inference(dataset_.graphs()[p.a].tensors);
    const tensor::Matrix hb =
        model_.embed_inference(dataset_.graphs()[p.b].tensors);
    volatile float sink = cosine(ha, hb);
    (void)sink;
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.seconds_per_sample =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(timing_pairs);
  return result;
}

}  // namespace gnn4ip::train
