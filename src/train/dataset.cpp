#include "train/dataset.h"

#include "util/contract.h"
#include "util/rng.h"

namespace gnn4ip::train {

PairDataset PairDataset::all_pairs(std::vector<GraphEntry> graphs,
                                   const PairOptions& options) {
  PairDataset ds;
  ds.graphs_ = std::move(graphs);
  const std::size_t n = ds.graphs_.size();
  std::vector<PairSample> negatives;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      PairSample p;
      p.a = i;
      p.b = j;
      p.label = ds.graphs_[i].design == ds.graphs_[j].design ? 1 : -1;
      if (p.label == 1) {
        ++ds.num_similar_;
        ds.pairs_.push_back(p);
      } else {
        negatives.push_back(p);
      }
    }
  }
  if (options.max_negative_ratio > 0.0) {
    const auto cap = static_cast<std::size_t>(
        options.max_negative_ratio * static_cast<double>(ds.num_similar_));
    if (negatives.size() > cap && cap > 0) {
      util::Rng rng(options.seed);
      rng.shuffle(negatives);
      negatives.resize(cap);
    }
  }
  ds.num_different_ = negatives.size();
  ds.pairs_.insert(ds.pairs_.end(), negatives.begin(), negatives.end());
  return ds;
}

PairDataset PairDataset::all_pairs(std::vector<GraphEntry> graphs) {
  return all_pairs(std::move(graphs), PairOptions{});
}

PairDataset::Split PairDataset::split(double test_fraction,
                                      util::Rng& rng) const {
  GNN4IP_ENSURE(test_fraction >= 0.0 && test_fraction < 1.0,
                "test_fraction must be in [0, 1)");
  std::vector<std::size_t> similar;
  std::vector<std::size_t> different;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    (pairs_[i].label == 1 ? similar : different).push_back(i);
  }
  rng.shuffle(similar);
  rng.shuffle(different);
  Split split;
  auto take = [&](std::vector<std::size_t>& pool) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(pool.size()) * test_fraction);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (i < cut ? split.test : split.train).push_back(pool[i]);
    }
  };
  take(similar);
  take(different);
  rng.shuffle(split.train);
  rng.shuffle(split.test);
  return split;
}

}  // namespace gnn4ip::train
