// Classification metrics: confusion matrix (Fig. 4a), accuracy (Table I),
// false-negative rate (§IV-F), and decision-boundary tuning for δ.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gnn4ip::train {

struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  [[nodiscard]] std::size_t total() const { return tp + fp + fn + tn; }
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
  /// FN / (FN + TP): the rate the paper compares against watermarking Pc.
  [[nodiscard]] double false_negative_rate() const;
  [[nodiscard]] std::string to_string() const;
};

/// Score/label pairs -> confusion matrix at decision boundary `delta`
/// (scores > delta are predicted piracy). Labels are ±1.
[[nodiscard]] ConfusionMatrix confusion_at(const std::vector<float>& scores,
                                           const std::vector<int>& labels,
                                           float delta);

/// Scan candidate boundaries (all midpoints of sorted scores) and return
/// the δ with maximal accuracy — "we have tuned the δ to achieve maximum
/// accuracy" (paper §IV-D).
[[nodiscard]] float tune_threshold(const std::vector<float>& scores,
                                   const std::vector<int>& labels);

}  // namespace gnn4ip::train
