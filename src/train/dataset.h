// Pair dataset for piracy detection.
//
// The corpus is a set of hardware instances, each belonging to a design
// family; a pair is labeled +1 (piracy) when both instances derive from
// the same design and −1 (no piracy) otherwise — exactly the labeling
// behind the paper's 19094 similar / 66631 different pairs. A stratified
// split holds out a fraction of pairs for testing.
#pragma once

#include <string>
#include <vector>

#include "gnn/featurize.h"
#include "util/rng.h"

namespace gnn4ip::train {

/// One hardware instance with its featurized DFG.
struct GraphEntry {
  std::string name;    // instance identifier, e.g. "pipeline_mips#3"
  std::string design;  // design-family key; equal keys => piracy pair
  gnn::GraphTensors tensors;
};

/// Index pair + ±1 label.
struct PairSample {
  std::size_t a = 0;
  std::size_t b = 0;
  int label = 0;  // +1 piracy, -1 no piracy
};

class PairDataset {
 public:
  PairDataset() = default;

  struct PairOptions {
    /// Cap on different-design pairs per similar pair. The paper's corpus
    /// has 66631 different vs 19094 similar pairs (ratio ≈ 3.49); an
    /// all-pairs set over few families is far more imbalanced, which
    /// starves recall. 0 disables subsampling.
    double max_negative_ratio = 0.0;
    std::uint64_t seed = 97;  // subsampling determinism
  };

  /// Form all unordered pairs over `graphs` (negatives optionally
  /// subsampled per `options`). The overload without options keeps every
  /// pair. (Two overloads rather than a `= {}` default because GCC
  /// rejects brace-defaulting a nested aggregate with NSDMIs here.)
  [[nodiscard]] static PairDataset all_pairs(std::vector<GraphEntry> graphs,
                                             const PairOptions& options);
  [[nodiscard]] static PairDataset all_pairs(std::vector<GraphEntry> graphs);

  [[nodiscard]] const std::vector<GraphEntry>& graphs() const {
    return graphs_;
  }
  [[nodiscard]] const std::vector<PairSample>& pairs() const { return pairs_; }

  [[nodiscard]] std::size_t num_similar() const { return num_similar_; }
  [[nodiscard]] std::size_t num_different() const { return num_different_; }

  /// Shuffled, stratified train/test split of pair indices: the similar /
  /// different ratio is preserved in both sides.
  struct Split {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
  };
  [[nodiscard]] Split split(double test_fraction, util::Rng& rng) const;

 private:
  std::vector<GraphEntry> graphs_;
  std::vector<PairSample> pairs_;
  std::size_t num_similar_ = 0;
  std::size_t num_different_ = 0;
};

}  // namespace gnn4ip::train
