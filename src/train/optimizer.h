// First-order optimizers over tensor::Parameter collections.
//
// The paper trains with batch gradient descent at lr = 1e-3; plain SGD
// (optionally with momentum) reproduces that setting, and Adam is
// provided because cosine-embedding training converges substantially
// faster with it on small corpora (EXPERIMENTS.md discusses the choice).
#pragma once

#include <memory>
#include <vector>

#include "tensor/tape.h"

namespace gnn4ip::train {

class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply accumulated gradients, then clear them. Called on the
  /// coordinating thread only, after the trainer has folded all
  /// per-graph shadow gradients into Parameter::grad in fixed graph
  /// order — the optimizer itself never sees a partially-reduced or
  /// concurrently-mutated gradient.
  virtual void step() = 0;

  void zero_grad();

 protected:
  std::vector<tensor::Parameter*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<tensor::Parameter*> params, float lr,
      float momentum = 0.0F, float weight_decay = 0.0F);

  void step() override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Matrix> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<tensor::Parameter*> params, float lr,
       float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F,
       float weight_decay = 0.0F);

  void step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  long step_count_ = 0;
  std::vector<tensor::Matrix> first_moment_;
  std::vector<tensor::Matrix> second_moment_;
};

enum class OptimizerKind { kSgd, kAdam };

[[nodiscard]] std::unique_ptr<Optimizer> make_optimizer(
    OptimizerKind kind, std::vector<tensor::Parameter*> params, float lr);

}  // namespace gnn4ip::train
