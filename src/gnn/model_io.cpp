#include "gnn/model_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gnn4ip::gnn {
namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error("malformed hw2vec-model stream: " + detail);
}

}  // namespace

void save_model(std::ostream& os, Hw2Vec& model) {
  const Hw2VecConfig& c = model.config();
  os << "hw2vec-model v1\n";
  os << "config " << c.input_dim << ' ' << c.hidden_dim << ' '
     << c.num_layers << ' ' << c.pool_ratio << ' ' << to_string(c.readout)
     << ' ' << c.dropout << ' ' << (c.symmetrize_adjacency ? 1 : 0) << '\n';
  for (tensor::Parameter* p : model.parameters()) {
    os << "param " << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (std::size_t r = 0; r < p->value.rows(); ++r) {
      const auto row = p->value.row(r);
      for (std::size_t cidx = 0; cidx < row.size(); ++cidx) {
        if (cidx != 0) os << ' ';
        os << row[cidx];
      }
      os << '\n';
    }
  }
}

void save_model_file(const std::string& path, Hw2Vec& model) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  os.precision(9);
  save_model(os, model);
}

Hw2Vec load_model(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "hw2vec-model v1") {
    malformed("missing header");
  }
  if (!std::getline(is, line)) malformed("missing config");
  Hw2VecConfig config;
  {
    std::istringstream ls(line);
    std::string tag;
    std::string readout_name;
    int symmetrize = 1;
    if (!(ls >> tag >> config.input_dim >> config.hidden_dim >>
          config.num_layers >> config.pool_ratio >> readout_name >>
          config.dropout >> symmetrize) ||
        tag != "config") {
      malformed("bad config line");
    }
    config.readout = readout_from_string(readout_name);
    config.symmetrize_adjacency = symmetrize != 0;
  }
  Hw2Vec model(config);
  for (tensor::Parameter* p : model.parameters()) {
    if (!std::getline(is, line)) malformed("missing param block");
    std::istringstream ls(line);
    std::string tag;
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(ls >> tag >> rows >> cols) || tag != "param") {
      malformed("bad param line");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      malformed("param shape mismatch against config");
    }
    for (std::size_t r = 0; r < rows; ++r) {
      if (!std::getline(is, line)) malformed("truncated param rows");
      std::istringstream vs(line);
      auto row = p->value.row(r);
      for (std::size_t c = 0; c < cols; ++c) {
        if (!(vs >> row[c])) malformed("truncated param row");
      }
    }
  }
  return model;
}

Hw2Vec load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  return load_model(is);
}

}  // namespace gnn4ip::gnn
