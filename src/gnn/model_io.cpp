#include "gnn/model_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gnn4ip::gnn {
namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error("malformed hw2vec-model stream: " + detail);
}

}  // namespace

void save_model(std::ostream& os, Hw2Vec& model) {
  // Float round-trips exactly at 9 significant digits; restore the
  // caller's precision afterwards.
  const std::streamsize saved_precision = os.precision(9);
  const Hw2VecConfig& c = model.config();
  os << kModelMagic << " v" << kModelFormatVersion << '\n';
  os << "config " << c.input_dim << ' ' << c.hidden_dim << ' '
     << c.num_layers << ' ' << c.pool_ratio << ' ' << to_string(c.readout)
     << ' ' << c.dropout << ' ' << (c.symmetrize_adjacency ? 1 : 0) << '\n';
  const std::vector<tensor::Parameter*> params = model.parameters();
  os << "params " << params.size() << '\n';
  for (tensor::Parameter* p : params) {
    os << "param " << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (std::size_t r = 0; r < p->value.rows(); ++r) {
      const auto row = p->value.row(r);
      for (std::size_t cidx = 0; cidx < row.size(); ++cidx) {
        if (cidx != 0) os << ' ';
        os << row[cidx];
      }
      os << '\n';
    }
  }
  os << "end\n";
  os.precision(saved_precision);
}

void save_model_file(const std::string& path, Hw2Vec& model) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  save_model(os, model);
}

Hw2Vec load_model(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) malformed("empty stream");
  {
    std::istringstream ls(line);
    std::string magic;
    std::string version;
    ls >> magic >> version;
    if (magic != kModelMagic) {
      malformed("missing '" + std::string(kModelMagic) +
                "' magic header (not a model stream?)");
    }
    const std::string expected = "v" + std::to_string(kModelFormatVersion);
    if (version != expected) {
      malformed("unsupported format version '" + version +
                "'; this build reads " + expected);
    }
  }
  if (!std::getline(is, line)) malformed("missing config");
  Hw2VecConfig config;
  {
    std::istringstream ls(line);
    std::string tag;
    std::string readout_name;
    int symmetrize = 1;
    if (!(ls >> tag >> config.input_dim >> config.hidden_dim >>
          config.num_layers >> config.pool_ratio >> readout_name >>
          config.dropout >> symmetrize) ||
        tag != "config") {
      malformed("bad config line");
    }
    config.readout = readout_from_string(readout_name);
    config.symmetrize_adjacency = symmetrize != 0;
  }
  Hw2Vec model(config);
  const std::vector<tensor::Parameter*> params = model.parameters();
  {
    if (!std::getline(is, line)) malformed("missing params count");
    std::istringstream ls(line);
    std::string tag;
    std::size_t declared = 0;
    if (!(ls >> tag >> declared) || tag != "params") {
      malformed("bad params line");
    }
    if (declared != params.size()) {
      malformed("stream declares " + std::to_string(declared) +
                " parameter blocks but the config implies " +
                std::to_string(params.size()) + " (config drift?)");
    }
  }
  for (tensor::Parameter* p : params) {
    if (!std::getline(is, line)) malformed("missing param block");
    std::istringstream ls(line);
    std::string tag;
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(ls >> tag >> rows >> cols) || tag != "param") {
      malformed("bad param line");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      malformed("param shape " + std::to_string(rows) + "x" +
                std::to_string(cols) + " does not match the config's " +
                p->value.shape_string() + " (config drift?)");
    }
    for (std::size_t r = 0; r < rows; ++r) {
      if (!std::getline(is, line)) malformed("truncated param rows");
      std::istringstream vs(line);
      auto row = p->value.row(r);
      for (std::size_t c = 0; c < cols; ++c) {
        if (!(vs >> row[c])) malformed("truncated param row");
      }
    }
  }
  if (!std::getline(is, line) || line != "end") {
    malformed("missing 'end' sentinel (truncated stream?)");
  }
  return model;
}

Hw2Vec load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  return load_model(is);
}

std::string model_fingerprint(Hw2Vec& model) {
  // Hash the exact v2 text serialization: it already pins the config
  // and every weight to 9 significant digits (the exact-float
  // round-trip), so equal fingerprints mean bit-equal embeddings.
  std::ostringstream os;
  save_model(os, model);
  const std::string bytes = os.str();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, 64-bit
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    hex[15 - i] = kHex[h & 0xF];
    h >>= 4;
  }
  return hex;
}

}  // namespace gnn4ip::gnn
