#include "gnn/readout.h"

#include <stdexcept>

namespace gnn4ip::gnn {

const char* to_string(Readout r) {
  switch (r) {
    case Readout::kSum: return "sum";
    case Readout::kMean: return "mean";
    case Readout::kMax: return "max";
  }
  return "?";
}

Readout readout_from_string(const std::string& name) {
  if (name == "sum") return Readout::kSum;
  if (name == "mean") return Readout::kMean;
  if (name == "max") return Readout::kMax;
  throw std::invalid_argument("unknown readout '" + name +
                              "' (expected sum|mean|max)");
}

tensor::Var apply_readout(tensor::Tape& tape, tensor::Var x, Readout readout) {
  switch (readout) {
    case Readout::kSum: return tape.readout_sum(x);
    case Readout::kMean: return tape.readout_mean(x);
    case Readout::kMax: return tape.readout_max(x);
  }
  return tape.readout_max(x);
}

}  // namespace gnn4ip::gnn
