// Graph Convolution layer (Kipf & Welling), Eq. 5 of the paper:
//   X⁽ˡ⁺¹⁾ = σ( D̂^{-1/2} Â D̂^{-1/2} · X⁽ˡ⁾ · W⁽ˡ⁾ + b )
// The normalized adjacency is precomputed (see featurize.h); the layer
// owns W and b.
#pragma once

#include <memory>

#include "tensor/tape.h"
#include "util/rng.h"

namespace gnn4ip::gnn {

class GcnLayer {
 public:
  GcnLayer(std::size_t in_dim, std::size_t out_dim, util::Rng& rng);

  /// Forward through one propagation step. `apply_relu=false` is used by
  /// the SAGPool scorer (its activation is tanh, applied by the caller).
  [[nodiscard]] tensor::Var forward(tensor::Tape& tape,
                                    std::shared_ptr<const tensor::Csr> adj,
                                    tensor::Var x, bool apply_relu = true);

  [[nodiscard]] std::size_t in_dim() const { return in_dim_; }
  [[nodiscard]] std::size_t out_dim() const { return out_dim_; }

  [[nodiscard]] tensor::Parameter& weight() { return weight_; }
  [[nodiscard]] tensor::Parameter& bias() { return bias_; }
  [[nodiscard]] const tensor::Parameter& weight() const { return weight_; }
  [[nodiscard]] const tensor::Parameter& bias() const { return bias_; }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  tensor::Parameter weight_;
  tensor::Parameter bias_;
};

}  // namespace gnn4ip::gnn
