#include "gnn/hw2vec.h"

#include "util/contract.h"

namespace gnn4ip::gnn {
namespace {

std::vector<GcnLayer> build_convs(const Hw2VecConfig& config,
                                  util::Rng& rng) {
  GNN4IP_ENSURE(config.num_layers >= 1, "hw2vec needs at least one GCN layer");
  std::vector<GcnLayer> convs;
  convs.reserve(config.num_layers);
  std::size_t in_dim = config.input_dim;
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    convs.emplace_back(in_dim, config.hidden_dim, rng);
    in_dim = config.hidden_dim;
  }
  return convs;
}

}  // namespace

Hw2Vec::Hw2Vec(const Hw2VecConfig& config)
    : config_(config),
      init_rng_(config.seed),
      convs_(build_convs(config_, init_rng_)),
      pool_(config_.hidden_dim, config_.pool_ratio, init_rng_) {}

tensor::Var Hw2Vec::embed(tensor::Tape& tape, const GraphTensors& g,
                          util::Rng& dropout_rng, bool training) {
  GNN4IP_ENSURE(g.x.cols() == config_.input_dim,
                "graph feature width does not match model input_dim");
  tensor::Var x = tape.constant(g.x);
  // Message-propagation phase (Eq. 5), dropout after every GCN layer.
  for (std::size_t l = 0; l < convs_.size(); ++l) {
    const bool last = l + 1 == convs_.size();
    const bool apply_relu = !last || config_.relu_last_layer;
    x = convs_[l].forward(tape, g.adj, x, apply_relu);
    x = tape.dropout(x, config_.dropout, dropout_rng, training);
  }
  // Attention-based top-k pooling (pooled adjacency served from the
  // graph's cache when the kept set recurs).
  SagPool::Result pooled = pool_.forward(tape, g, x);
  // Read-out phase (Eq. 3).
  return apply_readout(tape, pooled.x, config_.readout);
}

tensor::Matrix Hw2Vec::embed_inference(const GraphTensors& g) {
  tensor::Tape tape;
  return embed_inference(tape, g);
}

tensor::Matrix Hw2Vec::embed_inference(tensor::Tape& tape,
                                       const GraphTensors& g) {
  tape.reset();
  util::Rng unused(0);
  tensor::Var h = embed(tape, g, unused, /*training=*/false);
  tensor::Matrix out = h.value();
  // Drop the node matrices now (keeping the vector's capacity): a
  // worker's thread-local tape would otherwise pin the last graph's
  // whole forward state while the pool sits idle.
  tape.reset();
  return out;
}

std::vector<tensor::Parameter*> Hw2Vec::parameters() {
  std::vector<tensor::Parameter*> params;
  for (GcnLayer& conv : convs_) {
    params.push_back(&conv.weight());
    params.push_back(&conv.bias());
  }
  params.push_back(&pool_.scorer().weight());
  params.push_back(&pool_.scorer().bias());
  return params;
}

}  // namespace gnn4ip::gnn
