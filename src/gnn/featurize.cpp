#include "gnn/featurize.h"

#include <cmath>
#include <set>

#include "dfg/node_kind.h"
#include "util/contract.h"

namespace gnn4ip::gnn {

std::shared_ptr<const tensor::Csr> normalized_adjacency(
    std::size_t num_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    bool symmetrize) {
  GNN4IP_ENSURE(num_nodes > 0, "normalized_adjacency on empty graph");
  // Deduplicate structural entries of Â.
  std::set<std::pair<std::size_t, std::size_t>> entries;
  for (std::size_t v = 0; v < num_nodes; ++v) entries.insert({v, v});
  for (const auto& [src, dst] : edges) {
    GNN4IP_ENSURE(src < num_nodes && dst < num_nodes,
                  "edge endpoint out of range");
    entries.insert({src, dst});
    if (symmetrize) entries.insert({dst, src});
  }
  // Degrees of Â.
  std::vector<float> degree(num_nodes, 0.0F);
  for (const auto& [r, c] : entries) degree[r] += 1.0F;
  std::vector<float> inv_sqrt(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    inv_sqrt[v] = 1.0F / std::sqrt(degree[v]);
  }
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(entries.size());
  for (const auto& [r, c] : entries) {
    triplets.push_back({r, c, inv_sqrt[r] * inv_sqrt[c]});
  }
  return std::make_shared<tensor::Csr>(
      tensor::Csr::from_triplets(num_nodes, num_nodes, std::move(triplets)));
}

GraphTensors featurize(const graph::Digraph& g,
                       const FeaturizeOptions& options) {
  GNN4IP_ENSURE(g.num_nodes() > 0, "featurize on empty graph");
  GraphTensors t;
  t.num_nodes = g.num_nodes();
  t.symmetrize = options.symmetrize;
  t.x = tensor::Matrix(g.num_nodes(), dfg::kNodeKindCount);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const int kind = g.node(static_cast<graph::NodeId>(v)).kind;
    GNN4IP_ENSURE(kind >= 0 && kind < dfg::kNodeKindCount,
                  "node kind outside DFG vocabulary");
    t.x.at(v, static_cast<std::size_t>(kind)) = 1.0F;
  }
  std::set<std::pair<std::size_t, std::size_t>> dedup;
  for (const auto& [src, dst] : g.edges()) {
    if (src == dst) continue;  // self-loops are re-added by normalization
    dedup.insert({static_cast<std::size_t>(src),
                  static_cast<std::size_t>(dst)});
  }
  t.edges.assign(dedup.begin(), dedup.end());
  t.adj = normalized_adjacency(t.num_nodes, t.edges, options.symmetrize);
  return t;
}

}  // namespace gnn4ip::gnn
