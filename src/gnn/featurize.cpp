#include "gnn/featurize.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "dfg/node_kind.h"
#include "util/contract.h"

namespace gnn4ip::gnn {

std::shared_ptr<const tensor::Csr> PooledAdjCache::find(
    const std::vector<std::size_t>& kept) const {
  util::MutexLock lock(mu_);
  const auto it = entries_.find(kept);
  return it == entries_.end() ? nullptr : it->second;
}

void PooledAdjCache::insert(const std::vector<std::size_t>& kept,
                            std::shared_ptr<const tensor::Csr> adj) {
  util::MutexLock lock(mu_);
  if (entries_.size() >= kMaxEntries &&
      entries_.find(kept) == entries_.end()) {
    return;  // full: keep the resident (typically inference-stable) keys
  }
  entries_[kept] = std::move(adj);
}

std::size_t PooledAdjCache::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

std::shared_ptr<const tensor::Csr> normalized_adjacency(
    std::size_t num_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    bool symmetrize) {
  GNN4IP_ENSURE(num_nodes > 0, "normalized_adjacency on empty graph");
  // Structural entries of Â: self-loops + edges (+ reverses), then
  // sort/unique — cheaper than a node-per-entry ordered set on the
  // per-forward pooled-subgraph path.
  std::vector<std::pair<std::size_t, std::size_t>> entries;
  entries.reserve(num_nodes + edges.size() * (symmetrize ? 2 : 1));
  for (std::size_t v = 0; v < num_nodes; ++v) entries.emplace_back(v, v);
  for (const auto& [src, dst] : edges) {
    GNN4IP_ENSURE(src < num_nodes && dst < num_nodes,
                  "edge endpoint out of range");
    entries.emplace_back(src, dst);
    if (symmetrize) entries.emplace_back(dst, src);
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  // Degrees of Â.
  std::vector<float> degree(num_nodes, 0.0F);
  for (const auto& [r, c] : entries) degree[r] += 1.0F;
  std::vector<float> inv_sqrt(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    inv_sqrt[v] = 1.0F / std::sqrt(degree[v]);
  }
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(entries.size());
  for (const auto& [r, c] : entries) {
    triplets.push_back({r, c, inv_sqrt[r] * inv_sqrt[c]});
  }
  return std::make_shared<tensor::Csr>(
      tensor::Csr::from_triplets(num_nodes, num_nodes, std::move(triplets)));
}

GraphTensors featurize(const graph::Digraph& g,
                       const FeaturizeOptions& options) {
  GNN4IP_ENSURE(g.num_nodes() > 0, "featurize on empty graph");
  GraphTensors t;
  t.num_nodes = g.num_nodes();
  t.symmetrize = options.symmetrize;
  t.x = tensor::Matrix(g.num_nodes(), dfg::kNodeKindCount);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const int kind = g.node(static_cast<graph::NodeId>(v)).kind;
    GNN4IP_ENSURE(kind >= 0 && kind < dfg::kNodeKindCount,
                  "node kind outside DFG vocabulary");
    t.x.at(v, static_cast<std::size_t>(kind)) = 1.0F;
  }
  std::set<std::pair<std::size_t, std::size_t>> dedup;
  for (const auto& [src, dst] : g.edges()) {
    if (src == dst) continue;  // self-loops are re-added by normalization
    dedup.insert({static_cast<std::size_t>(src),
                  static_cast<std::size_t>(dst)});
  }
  t.edges.assign(dedup.begin(), dedup.end());
  t.adj = normalized_adjacency(t.num_nodes, t.edges, options.symmetrize);
  t.pooled_cache = std::make_shared<PooledAdjCache>();
  return t;
}

}  // namespace gnn4ip::gnn
