// Graph readout (Eq. 3): aggregate pooled node embeddings into the
// graph-level embedding h_G by sum-, mean-, or max-pooling.
#pragma once

#include <string>

#include "tensor/tape.h"

namespace gnn4ip::gnn {

enum class Readout { kSum, kMean, kMax };

[[nodiscard]] const char* to_string(Readout r);
/// Parse "sum" / "mean" / "max"; throws std::invalid_argument otherwise.
[[nodiscard]] Readout readout_from_string(const std::string& name);

/// Apply the readout over node rows -> 1×C graph embedding.
[[nodiscard]] tensor::Var apply_readout(tensor::Tape& tape, tensor::Var x,
                                        Readout readout);

}  // namespace gnn4ip::gnn
