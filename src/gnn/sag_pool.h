// Self-attention graph pooling (Lee et al. [28], paper §III-C).
//
// A single-output GCN predicts a score per node:
//   α = SCORE(X_prop, A_prop)
// The top ⌈ratio·N⌉ nodes by α are kept; the surviving node features are
// gated by tanh(α) so the scorer receives gradient, and the adjacency is
// re-induced on the kept nodes. The re-normalized pooled operator is
// served from the graph's PooledAdjCache when the same kept set recurs
// (always, at inference), instead of being rebuilt every forward pass.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "gnn/featurize.h"
#include "gnn/gcn_layer.h"
#include "tensor/tape.h"

namespace gnn4ip::gnn {

class SagPool {
 public:
  /// `dim` is the node-embedding width entering the pool; `ratio` the
  /// keep fraction in (0, 1].
  SagPool(std::size_t dim, float ratio, util::Rng& rng);

  struct Result {
    tensor::Var x;                               // pooled node embeddings
    std::shared_ptr<const tensor::Csr> adj;      // pooled, re-normalized
    std::vector<std::pair<std::size_t, std::size_t>> edges;  // pooled edges
    std::vector<std::size_t> kept;               // original node indices
  };

  /// Pool the propagated node embeddings `x` (one row per node of `g`).
  /// Reads the graph structure — adjacency, edge list, symmetrize flag,
  /// pooled-adjacency memo — from `g`.
  [[nodiscard]] Result forward(tensor::Tape& tape, const GraphTensors& g,
                               tensor::Var x);

  [[nodiscard]] GcnLayer& scorer() { return scorer_; }
  [[nodiscard]] const GcnLayer& scorer() const { return scorer_; }
  [[nodiscard]] float ratio() const { return ratio_; }

 private:
  GcnLayer scorer_;
  float ratio_;
};

}  // namespace gnn4ip::gnn
