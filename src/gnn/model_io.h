// Weight (de)serialization for hw2vec models.
//
// Text format v2 (line oriented, locale-independent):
//   hw2vec-model v2                          (magic + format version)
//   config <input_dim> <hidden_dim> <num_layers> <pool_ratio> <readout>
//          <dropout> <symmetrize>
//   params <count>                           (must match the config)
//   param <rows> <cols>
//   <row values...>            (rows lines)
//   ... one param block per parameter, in Hw2Vec::parameters() order
//   end                                      (truncation sentinel)
//
// Values are written with 9 significant digits, enough to round-trip
// float exactly. load_model rejects streams whose magic is missing,
// whose version differs from kModelFormatVersion, whose parameter count
// or shapes disagree with the config (config drift), or that end before
// the sentinel — each with a distinct std::runtime_error message.
#pragma once

#include <iosfwd>
#include <string>

#include "gnn/hw2vec.h"

namespace gnn4ip::gnn {

/// Magic token opening every model stream, followed by " v<version>".
inline constexpr const char* kModelMagic = "hw2vec-model";
/// Format version this build writes and reads.
inline constexpr int kModelFormatVersion = 2;

void save_model(std::ostream& os, Hw2Vec& model);
void save_model_file(const std::string& path, Hw2Vec& model);

/// Reconstructs the model (config + weights). Throws std::runtime_error
/// on malformed input, unsupported format versions, or config drift.
[[nodiscard]] Hw2Vec load_model(std::istream& is);
[[nodiscard]] Hw2Vec load_model_file(const std::string& path);

/// Deterministic fingerprint of a model's config + weights: FNV-1a over
/// the exact v2 serialization, as 16 lowercase hex digits. Two models
/// fingerprint equal iff they save_model() identically, so embeddings
/// (and every score derived from them) agree bit-for-bit — corpus
/// snapshots record this to refuse loading rows produced by a different
/// embedder (core/snapshot_format.h).
[[nodiscard]] std::string model_fingerprint(Hw2Vec& model);

}  // namespace gnn4ip::gnn
