// Weight (de)serialization for hw2vec models.
//
// Text format (line oriented, locale-independent):
//   hw2vec-model v1
//   config <input_dim> <hidden_dim> <num_layers> <pool_ratio> <readout>
//          <dropout> <symmetrize>
//   param <rows> <cols>
//   <row values...>            (rows lines)
//   ... one param block per parameter, in Hw2Vec::parameters() order
#pragma once

#include <iosfwd>
#include <string>

#include "gnn/hw2vec.h"

namespace gnn4ip::gnn {

void save_model(std::ostream& os, Hw2Vec& model);
void save_model_file(const std::string& path, Hw2Vec& model);

/// Reconstructs the model (config + weights). Throws std::runtime_error
/// on malformed input.
[[nodiscard]] Hw2Vec load_model(std::istream& is);
[[nodiscard]] Hw2Vec load_model_file(const std::string& path);

}  // namespace gnn4ip::gnn
