#include "gnn/sag_pool.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gnn/featurize.h"
#include "util/contract.h"

namespace gnn4ip::gnn {

SagPool::SagPool(std::size_t dim, float ratio, util::Rng& rng)
    : scorer_(dim, 1, rng), ratio_(ratio) {
  GNN4IP_ENSURE(ratio > 0.0F && ratio <= 1.0F,
                "pooling ratio must be in (0, 1]");
}

SagPool::Result SagPool::forward(tensor::Tape& tape, const GraphTensors& g,
                                 tensor::Var x) {
  const std::size_t n = x.value().rows();
  GNN4IP_ENSURE(n > 0, "SagPool on empty graph");
  GNN4IP_ENSURE(n == g.num_nodes,
                "SagPool: node embedding rows != graph node count");

  // α = SCORE(X, A): one-channel GCN, no ReLU (gate activation is tanh).
  tensor::Var alpha = scorer_.forward(tape, g.adj, x, /*apply_relu=*/false);
  tensor::Var gate = tape.tanh_op(alpha);

  // Top-k selection on the raw scores (selection itself is
  // non-differentiable; gradients flow through the tanh gate).
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(ratio_ * static_cast<float>(n))));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const tensor::Matrix& scores = alpha.value();
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores.at(a, 0) > scores.at(b, 0);
                   });
  std::vector<std::size_t> kept(order.begin(),
                                order.begin() + static_cast<long>(k));
  // Preserve original node order within the pooled graph so pooled
  // adjacency construction is deterministic.
  std::sort(kept.begin(), kept.end());

  // Gather and gate the surviving rows.
  tensor::Var x_kept = tape.select_rows(x, kept);
  tensor::Var gate_kept = tape.select_rows(gate, kept);
  tensor::Var x_pool = tape.scale_rows(x_kept, gate_kept);

  // Re-induce edges on the kept set. The re-normalized pooled operator
  // is a pure function of (graph, kept), so serve it from the graph's
  // memo when the same kept set recurs instead of renormalizing.
  std::vector<std::size_t> remap(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < kept.size(); ++i) remap[kept[i]] = i;
  std::vector<std::pair<std::size_t, std::size_t>> pooled_edges;
  for (const auto& [src, dst] : g.edges) {
    const std::size_t s = remap[src];
    const std::size_t d = remap[dst];
    if (s != static_cast<std::size_t>(-1) &&
        d != static_cast<std::size_t>(-1)) {
      pooled_edges.emplace_back(s, d);
    }
  }

  Result result;
  result.x = x_pool;
  if (g.pooled_cache) result.adj = g.pooled_cache->find(kept);
  if (!result.adj) {
    result.adj =
        normalized_adjacency(kept.size(), pooled_edges, g.symmetrize);
    if (g.pooled_cache) g.pooled_cache->insert(kept, result.adj);
  }
  result.edges = std::move(pooled_edges);
  result.kept = std::move(kept);
  return result;
}

}  // namespace gnn4ip::gnn
