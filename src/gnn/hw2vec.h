// hw2vec: the graph-embedding network of GNN4IP (paper Fig. 3, Alg. 1
// lines 3–8): stacked GCN layers → self-attention top-k pooling → readout.
//
// The same weights embed both members of a circuit pair; similarity is
// the cosine of the two embeddings (Eq. 6).
#pragma once

#include <memory>
#include <vector>

#include "dfg/node_kind.h"
#include "gnn/featurize.h"
#include "gnn/gcn_layer.h"
#include "gnn/readout.h"
#include "gnn/sag_pool.h"
#include "tensor/tape.h"
#include "util/rng.h"

namespace gnn4ip::gnn {

struct Hw2VecConfig {
  std::size_t input_dim = static_cast<std::size_t>(dfg::kNodeKindCount);
  std::size_t hidden_dim = 16;   // paper §IV: 16 hidden units
  std::size_t num_layers = 2;    // paper §IV: 2 GCN layers
  float pool_ratio = 0.5F;       // paper §IV: top-k ratio 0.5
  Readout readout = Readout::kMax;  // paper §IV: max-pooling readout
  float dropout = 0.1F;          // paper §IV: dropout 0.1 after each GCN
  bool symmetrize_adjacency = true;
  /// Apply ReLU after the final GCN layer. Off by default: with ReLU the
  /// graph embedding is confined to the positive orthant, where cosine
  /// similarity saturates near +1 and same/different pairs cannot
  /// separate (embedding collapse). Eq. 5's σ is kept on all hidden
  /// layers; see EXPERIMENTS.md for the ablation.
  bool relu_last_layer = false;
  std::uint64_t seed = 1;        // weight-init seed
};

class Hw2Vec {
 public:
  explicit Hw2Vec(const Hw2VecConfig& config = {});

  /// Embed a featurized graph on a caller-provided tape (training path:
  /// gradients flow into the model parameters).
  [[nodiscard]] tensor::Var embed(tensor::Tape& tape, const GraphTensors& g,
                                  util::Rng& dropout_rng, bool training);

  /// Inference-only convenience: fresh tape, no dropout; returns h_G.
  [[nodiscard]] tensor::Matrix embed_inference(const GraphTensors& g);

  /// Inference embed on a caller-provided tape. The tape is reset()
  /// first, so a worker can reuse one tape across a whole corpus
  /// (retained node-vector capacity) instead of constructing a fresh
  /// tape per graph; the arithmetic — and thus the embedding — is
  /// bit-identical to the fresh-tape overload.
  [[nodiscard]] tensor::Matrix embed_inference(tensor::Tape& tape,
                                               const GraphTensors& g);

  /// All trainable parameters (for the optimizer / serialization).
  [[nodiscard]] std::vector<tensor::Parameter*> parameters();

  [[nodiscard]] const Hw2VecConfig& config() const { return config_; }
  /// Width D of the graph embedding h_G (the readout output).
  [[nodiscard]] std::size_t embedding_dim() const {
    return config_.hidden_dim;
  }
  [[nodiscard]] std::vector<GcnLayer>& conv_layers() { return convs_; }
  [[nodiscard]] SagPool& pool() { return pool_; }

 private:
  Hw2VecConfig config_;
  util::Rng init_rng_;  // declared before the layers that consume it
  std::vector<GcnLayer> convs_;
  SagPool pool_;
};

}  // namespace gnn4ip::gnn
