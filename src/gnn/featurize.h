// Conversion of a DFG into GNN tensors: one-hot node features X⁽⁰⁾
// (node kind vocabulary, paper §III-C "directly converting the node's
// name to its corresponding one-hot vector") and the symmetric-normalized
// adjacency D̂^{-1/2} Â D̂^{-1/2} with Â = A + I of Eq. 5.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace gnn4ip::gnn {

struct FeaturizeOptions {
  /// Treat edges as undirected for message propagation (Â gains both
  /// directions). GCN's spectral derivation assumes symmetric adjacency;
  /// disabling restricts propagation to consumer→producer direction.
  bool symmetrize = true;
};

/// Tensors for one graph. `edges` is the (deduplicated, self-loop-free)
/// directed edge list used to rebuild pooled adjacencies after top-k
/// filtering.
struct GraphTensors {
  tensor::Matrix x;  // N × kNodeKindCount
  std::shared_ptr<const tensor::Csr> adj;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t num_nodes = 0;
  bool symmetrize = true;
};

/// Build tensors from a DFG whose node kinds are dfg::NodeKind values.
[[nodiscard]] GraphTensors featurize(const graph::Digraph& g,
                                     const FeaturizeOptions& options = {});

/// Â = A (+ Aᵀ if symmetrize) + I, normalized D̂^{-1/2} Â D̂^{-1/2}.
/// Exposed separately because SAGPool re-normalizes induced subgraphs.
[[nodiscard]] std::shared_ptr<const tensor::Csr> normalized_adjacency(
    std::size_t num_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    bool symmetrize);

}  // namespace gnn4ip::gnn
