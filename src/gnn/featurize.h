// Conversion of a DFG into GNN tensors: one-hot node features X⁽⁰⁾
// (node kind vocabulary, paper §III-C "directly converting the node's
// name to its corresponding one-hot vector") and the symmetric-normalized
// adjacency D̂^{-1/2} Â D̂^{-1/2} with Â = A + I of Eq. 5.
//
// Both normalized adjacencies a forward pass needs are cached per
// graph: the full-graph operator is built once at featurize time, and
// the pooled-subgraph operator (SAGPool re-induces and re-normalizes
// the kept nodes) is memoized in PooledAdjCache keyed by the kept set —
// so a forward pass multiplies by cached normalized CSRs instead of
// renormalizing.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "util/thread_annotations.h"

namespace gnn4ip::gnn {

struct FeaturizeOptions {
  /// Treat edges as undirected for message propagation (Â gains both
  /// directions). GCN's spectral derivation assumes symmetric adjacency;
  /// disabling restricts propagation to consumer→producer direction.
  bool symmetrize = true;
};

/// Thread-safe memo of pooled (re-induced, re-normalized) adjacencies,
/// keyed by the sorted kept-node set. At inference the SAGPool top-k
/// selection is a pure function of the fixed weights, so every embed of
/// the same graph re-derives the same kept set and the renormalization
/// is paid once per graph instead of once per forward pass. The memo is
/// bounded: during training the kept set drifts with the scorer weights,
/// and unbounded growth would just cache stale selections.
class PooledAdjCache {
 public:
  [[nodiscard]] std::shared_ptr<const tensor::Csr> find(
      const std::vector<std::size_t>& kept) const;
  void insert(const std::vector<std::size_t>& kept,
              std::shared_ptr<const tensor::Csr> adj);
  [[nodiscard]] std::size_t size() const;

 private:
  static constexpr std::size_t kMaxEntries = 64;
  // Innermost rank: taken from inside pool workers during an embed
  // fan-out, so it must outrank every pool lock.
  mutable util::Mutex mu_{util::lock_rank::kFeaturize};
  std::map<std::vector<std::size_t>, std::shared_ptr<const tensor::Csr>>
      entries_ GNN4IP_GUARDED_BY(mu_);
};

/// Tensors for one graph. `edges` is the (deduplicated, self-loop-free)
/// directed edge list used to rebuild pooled adjacencies after top-k
/// filtering. Copies share the pooled-adjacency memo (shared_ptr), so a
/// corpus entry passed around by value keeps its cache.
struct GraphTensors {
  tensor::Matrix x;  // N × kNodeKindCount
  std::shared_ptr<const tensor::Csr> adj;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t num_nodes = 0;
  bool symmetrize = true;
  std::shared_ptr<PooledAdjCache> pooled_cache;
};

/// Build tensors from a DFG whose node kinds are dfg::NodeKind values.
[[nodiscard]] GraphTensors featurize(const graph::Digraph& g,
                                     const FeaturizeOptions& options = {});

/// Â = A (+ Aᵀ if symmetrize) + I, normalized D̂^{-1/2} Â D̂^{-1/2}.
/// Exposed separately because SAGPool re-normalizes induced subgraphs.
[[nodiscard]] std::shared_ptr<const tensor::Csr> normalized_adjacency(
    std::size_t num_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    bool symmetrize);

}  // namespace gnn4ip::gnn
