#include "gnn/gcn_layer.h"

namespace gnn4ip::gnn {

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, util::Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(tensor::Matrix::glorot(in_dim, out_dim, rng)),
      bias_(tensor::Matrix::zeros(1, out_dim)) {}

tensor::Var GcnLayer::forward(tensor::Tape& tape,
                              std::shared_ptr<const tensor::Csr> adj,
                              tensor::Var x, bool apply_relu) {
  tensor::Var w = tape.parameter(weight_);
  tensor::Var b = tape.parameter(bias_);
  tensor::Var xw = tape.matmul(x, w);
  tensor::Var propagated = tape.spmm(std::move(adj), xw);
  tensor::Var with_bias = tape.add_row_broadcast(propagated, b);
  return apply_relu ? tape.relu(with_bias) : with_bias;
}

}  // namespace gnn4ip::gnn
