#include "util/rng.h"

#include <cmath>

#include "util/contract.h"

namespace gnn4ip::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GNN4IP_ENSURE(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

bool Rng::flip(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace gnn4ip::util
