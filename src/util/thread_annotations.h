// Clang thread-safety annotations + the annotated lock vocabulary of
// the whole tree.
//
// Two layers live here:
//
//  1. The GNN4IP_* annotation macros — thin wrappers over Clang's
//     -Wthread-safety capability attributes (no-ops on GCC/MSVC), the
//     same surface Abseil exports from base/thread_annotations.h.
//
//  2. util::Mutex / util::SharedMutex / util::CondVar and the scoped
//     guards MutexLock / ReaderLock / WriterLock — the only lock types
//     the rest of src/ is allowed to use. scripts/lint_invariants.py
//     fails CI on any raw std::mutex / std::shared_mutex /
//     std::lock_guard / std::unique_lock outside this header, so every
//     lock in the tree is (a) visible to the static analysis and
//     (b) wired into the runtime lock-order validator (lock_order.h)
//     in sanitize builds.
//
// Annotation rules of thumb used across the tree (the clang CI leg
// compiles with -Werror=thread-safety, so these are load-bearing):
//
//  - Fields get GNN4IP_GUARDED_BY(mu_) when *every* access holds mu_.
//    Fields with a publication protocol the analysis cannot see
//    (epoch-published ThreadPool batch state, stripe-guarded shard
//    rows reached through a dynamic stripe set) stay unannotated with
//    a comment saying which lock really guards them — the runtime
//    validator still covers those.
//  - Private helpers that assume a lock is held get
//    GNN4IP_REQUIRES(mu_) / GNN4IP_REQUIRES_SHARED(mu_) instead of
//    re-locking.
//  - Condition waits are explicit `while (!pred) cv_.wait(mu_);` loops
//    on the annotated CondVar — the analysis sees straight-line code
//    under one capability, and the validator sees the unlock/relock
//    pair inside wait() through the annotated Mutex methods.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_order.h"

// ---- Annotation macros ----------------------------------------------------

#if defined(__clang__)
#define GNN4IP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GNN4IP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// A class whose instances are capabilities (lockable things).
#define GNN4IP_CAPABILITY(x) GNN4IP_THREAD_ANNOTATION(capability(x))

/// An RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define GNN4IP_SCOPED_CAPABILITY GNN4IP_THREAD_ANNOTATION(scoped_lockable)

/// Field is protected by the given capability.
#define GNN4IP_GUARDED_BY(x) GNN4IP_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data (not the pointer) is protected by the capability.
#define GNN4IP_PT_GUARDED_BY(x) GNN4IP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (exclusively / shared) and does not
/// release it before returning.
#define GNN4IP_ACQUIRE(...) \
  GNN4IP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GNN4IP_ACQUIRE_SHARED(...) \
  GNN4IP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (any mode / shared mode).
#define GNN4IP_RELEASE(...) \
  GNN4IP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GNN4IP_RELEASE_SHARED(...) \
  GNN4IP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Caller must hold the capability (exclusively / at least shared).
#define GNN4IP_REQUIRES(...) \
  GNN4IP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GNN4IP_REQUIRES_SHARED(...) \
  GNN4IP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock documentation).
#define GNN4IP_EXCLUDES(...) \
  GNN4IP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch — used only where the guarding protocol is real but
/// inexpressible (each use carries a comment naming the protocol).
#define GNN4IP_NO_THREAD_SAFETY_ANALYSIS \
  GNN4IP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gnn4ip::util {

#ifdef GNN4IP_LOCK_ORDER
#define GNN4IP_LOCK_ORDER_ACQUIRE(rank) LockOrderRegistry::note_acquire(rank)
#define GNN4IP_LOCK_ORDER_RELEASE(rank) LockOrderRegistry::note_release(rank)
#else
#define GNN4IP_LOCK_ORDER_ACQUIRE(rank) (void)0
#define GNN4IP_LOCK_ORDER_RELEASE(rank) (void)0
#endif

// ---- Annotated lock types -------------------------------------------------

/// std::mutex with a capability annotation and (in sanitize builds) a
/// position in the global lock order.
class GNN4IP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#ifdef GNN4IP_LOCK_ORDER
  explicit Mutex(LockRank rank) : rank_(rank) {}
#else
  explicit Mutex(LockRank) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GNN4IP_ACQUIRE() {
    GNN4IP_LOCK_ORDER_ACQUIRE(rank());
    mu_.lock();
  }
  void unlock() GNN4IP_RELEASE() {
    mu_.unlock();
    GNN4IP_LOCK_ORDER_RELEASE(rank());
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef GNN4IP_LOCK_ORDER
  LockRank rank() const { return rank_; }
  LockRank rank_{};
#else
  static LockRank rank() { return LockRank{}; }
#endif
};

/// std::shared_mutex with capability annotations. The *_unchecked
/// variants carry no static annotations: they exist solely for lock
/// sets held in containers (the corpus stripe vector), which the
/// static analysis cannot model — the runtime validator still ranks
/// and checks them.
class GNN4IP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
#ifdef GNN4IP_LOCK_ORDER
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
#else
  explicit SharedMutex(LockRank) {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() GNN4IP_ACQUIRE() {
    GNN4IP_LOCK_ORDER_ACQUIRE(rank());
    mu_.lock();
  }
  void unlock() GNN4IP_RELEASE() {
    mu_.unlock();
    GNN4IP_LOCK_ORDER_RELEASE(rank());
  }
  void lock_shared() GNN4IP_ACQUIRE_SHARED() {
    GNN4IP_LOCK_ORDER_ACQUIRE(rank());
    mu_.lock_shared();
  }
  void unlock_shared() GNN4IP_RELEASE_SHARED() {
    mu_.unlock_shared();
    GNN4IP_LOCK_ORDER_RELEASE(rank());
  }

  /// Statically unchecked acquisition for dynamically-selected lock
  /// sets (see class comment). Validator-checked like the rest.
  void lock_unchecked() { lock(); }
  void unlock_unchecked() { unlock(); }
  void lock_shared_unchecked() { lock_shared(); }
  void unlock_shared_unchecked() { unlock_shared(); }

 private:
  std::shared_mutex mu_;
#ifdef GNN4IP_LOCK_ORDER
  LockRank rank() const { return rank_; }
  LockRank rank_{};
#else
  static LockRank rank() { return LockRank{}; }
#endif
};

/// Condition variable usable directly with util::Mutex. Waiting
/// unlocks/relocks through the annotated Mutex methods, so the
/// lock-order validator's per-thread stack stays truthful across
/// waits.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, wait, re-acquire. Callers always wrap
  /// this in a `while (!pred)` loop (spurious wakeups).
  void wait(Mutex& mu) GNN4IP_REQUIRES(mu) { cv_.wait(mu); }

  /// wait() with a deadline: returns false on timeout, true otherwise
  /// (notify or spurious wakeup — callers re-check their predicate
  /// either way, so the return value only bounds the wait).
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      GNN4IP_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// ---- Scoped guards --------------------------------------------------------
// Deliberately minimal: construction locks, destruction unlocks,
// nothing in between. No deferred/adopt/conditional modes — the
// conditional-release shapes are exactly what the static analysis
// handles worst, so call sites restructure into scoped blocks instead.

/// RAII exclusive hold of a Mutex.
class GNN4IP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GNN4IP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GNN4IP_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive hold of a SharedMutex.
class GNN4IP_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) GNN4IP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() GNN4IP_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared hold of a SharedMutex.
class GNN4IP_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) GNN4IP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() GNN4IP_RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace gnn4ip::util
