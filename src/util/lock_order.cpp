#include "util/lock_order.h"

#ifdef GNN4IP_LOCK_ORDER

#include <cstdio>
#include <cstdlib>

namespace gnn4ip::util {
namespace {

struct HeldLock {
  int order;
  const char* name;
};

// Per-thread stack of ranked locks, innermost (highest rank) on top.
// The strict-increase rule in note_acquire keeps it sorted ascending,
// so "top" is also "max held".
//
// Deliberately a trivially-destructible POD array, not a std::vector:
// the main thread's thread_local destructors run *before* static
// destructors ([basic.start.term]), and the process-wide
// ThreadPool::shared() pool locks its mutex while being destroyed at
// exit — a vector here would be pushed into after its own destructor
// ran. A fixed capacity also keeps the validator allocation-free on
// every acquisition path.
constexpr std::size_t kMaxHeld = 256;
thread_local HeldLock g_held[kMaxHeld];
thread_local std::size_t g_held_count = 0;

[[noreturn]] void abort_with_stacks(const LockRank& attempted) {
  std::fprintf(stderr,
               "gnn4ip: LOCK ORDER VIOLATION: acquiring '%s' (rank %d)\n"
               "  while holding (outermost first):\n",
               attempted.name, attempted.order);
  for (std::size_t i = 0; i < g_held_count; ++i) {
    std::fprintf(stderr, "    '%s' (rank %d)\n", g_held[i].name,
                 g_held[i].order);
  }
  std::fprintf(stderr,
               "  a lock's rank must exceed every held rank; see "
               "src/util/lock_order.h for the global order.\n");
  std::abort();
}

}  // namespace

void LockOrderRegistry::note_acquire(const LockRank& rank) {
  if (rank.order < 0) return;
  if (g_held_count > 0 && g_held[g_held_count - 1].order >= rank.order) {
    abort_with_stacks(rank);
  }
  // Past capacity (a corpus with hundreds of stripes), deeper locks go
  // unrecorded: the order among the first kMaxHeld is still checked,
  // and note_release tolerates the unrecorded tail.
  if (g_held_count < kMaxHeld) {
    g_held[g_held_count++] = HeldLock{rank.order, rank.name};
  }
}

void LockOrderRegistry::note_release(const LockRank& rank) {
  if (rank.order < 0) return;
  // Release from the middle is legal (e.g. an outer lock dropped while
  // an inner one is still held); search from the top.
  for (std::size_t i = g_held_count; i-- > 0;) {
    if (g_held[i].order == rank.order) {
      for (std::size_t j = i + 1; j < g_held_count; ++j) {
        g_held[j - 1] = g_held[j];
      }
      --g_held_count;
      return;
    }
  }
  // Releasing a lock the registry never saw: tolerated — the overflow
  // tail above is exactly this case.
}

std::size_t LockOrderRegistry::held_count() { return g_held_count; }

}  // namespace gnn4ip::util

#endif  // GNN4IP_LOCK_ORDER
