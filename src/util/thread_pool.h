// Reusable worker pool for embarrassingly-parallel index loops.
//
// The embedding pipeline fans out over independent graphs
// (PairwiseScorer::from_entries, Trainer::embed_all) and over tiles of
// the blocked cosine kernel. Workers claim indices through an atomic
// counter, so the schedule adapts to uneven per-index cost; because
// every index writes only its own output slot, results are bit-identical
// for any worker count — parallelism never changes the arithmetic.
//
// Thread-count resolution: an explicit count wins; 0 defers to the
// GNN4IP_THREADS environment variable, then to hardware concurrency.
// A process-wide pool (ThreadPool::shared()) serves the default case so
// repeated fan-outs reuse the same threads instead of respawning them.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace gnn4ip::util {

class ThreadPool {
 public:
  /// Spawn `num_threads − 1` persistent workers (the caller of
  /// parallel_for is always the remaining worker). 0 resolves through
  /// default_thread_count(). A pool of size 1 runs everything inline.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(i) for every i in [0, count), blocking until all complete.
  /// The first exception thrown by any fn(i) is rethrown here (remaining
  /// indices are abandoned). Concurrent external callers are serialized
  /// (the pool runs one batch at a time), so the shared() pool is safe
  /// to use from several application threads. Not reentrant: fn must
  /// not call back into the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// GNN4IP_THREADS if set to a positive integer, else hardware
  /// concurrency (at least 1).
  [[nodiscard]] static std::size_t default_thread_count();

  /// Process-wide pool sized by default_thread_count().
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();
  // Reads fn_/count_ lock-free under the epoch publication protocol the
  // static analysis cannot see (comment at the fields below).
  void run_current_batch() GNN4IP_NO_THREAD_SAFETY_ANALYSIS;

  Mutex batch_mu_{lock_rank::kPoolBatch};  // serializes parallel_for callers
  Mutex mu_{lock_rank::kPoolWork};
  CondVar work_cv_;
  CondVar done_cv_;
  // Batch state, guarded by mu_ except the atomic claim counter. fn_ and
  // count_ are additionally *read* lock-free inside run_current_batch:
  // the batch owner writes them under mu_ before bumping epoch_, a
  // worker observes the epoch bump under mu_ in worker_loop's wait, and
  // the fields stay frozen until every worker has decremented active_ —
  // a publication handshake the capability analysis cannot express, so
  // run_current_batch opts out (everything else is checked).
  const std::function<void(std::size_t)>* fn_ GNN4IP_GUARDED_BY(mu_) = nullptr;
  std::size_t count_ GNN4IP_GUARDED_BY(mu_) = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ GNN4IP_GUARDED_BY(mu_) = 0;
  std::uint64_t epoch_ GNN4IP_GUARDED_BY(mu_) = 0;
  bool stop_ GNN4IP_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ GNN4IP_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

/// Convenience fan-out: num_threads == 0 uses ThreadPool::shared();
/// 1 runs inline; any other count runs on a transient pool of that size
/// (used by tests and benches that pin the worker count).
void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn);

/// Deterministic indexed map + reduce: map_fn(i) runs for every i in
/// [0, count) on the pool (any schedule), then — once all indices have
/// completed — reduce_fn(i) runs for i = 0, 1, …, count−1 sequentially
/// on the calling thread. Because the fold order is fixed by index and
/// never by the schedule, a floating-point reduction built on this
/// helper is bit-identical for any worker count. This is the reduction
/// pattern behind the parallel training step (per-graph gradient
/// shadows folded into the parameters in graph order).
void parallel_map_reduce(std::size_t count, std::size_t num_threads,
                         const std::function<void(std::size_t)>& map_fn,
                         const std::function<void(std::size_t)>& reduce_fn);

/// Same, on a caller-owned pool — for hot loops that would otherwise
/// respawn a transient pool per call (the trainer runs two fan-outs per
/// optimizer step).
void parallel_map_reduce(std::size_t count, ThreadPool& pool,
                         const std::function<void(std::size_t)>& map_fn,
                         const std::function<void(std::size_t)>& reduce_fn);

}  // namespace gnn4ip::util
