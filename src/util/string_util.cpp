#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace gnn4ip::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && uc != '_' && uc != '$') return false;
  }
  return true;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace gnn4ip::util
