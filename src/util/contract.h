// Internal contract checking for GNN4IP.
//
// User-input problems (malformed Verilog, bad configuration files) are
// reported through dedicated exception types near where they occur.  The
// macros here are for *internal* invariants: conditions that can only be
// false if the library itself has a bug.  They throw std::logic_error so a
// broken invariant surfaces immediately in tests instead of corrupting
// results silently.
#pragma once

#include <stdexcept>
#include <string>

namespace gnn4ip::util {

/// Thrown when an internal invariant is violated. Indicates a library bug,
/// not a user error.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

[[noreturn]] void contract_failure(const char* expr, const char* file,
                                   int line, const std::string& message);

}  // namespace gnn4ip::util

/// Check an internal invariant; throws gnn4ip::util::ContractViolation with
/// location info when the condition is false. Active in all build types —
/// the checks guard correctness-critical graph/tensor bookkeeping whose
/// cost is negligible next to the math they protect.
#define GNN4IP_ENSURE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::gnn4ip::util::contract_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)
