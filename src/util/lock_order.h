// Runtime lock-order validation — the dynamic half of the concurrency
// contract story (the static half is thread_annotations.h).
//
// Every util::Mutex/util::SharedMutex can carry a LockRank: a small
// integer position in the one global acquisition order documented in
// docs/ARCHITECTURE.md ("Lock order"). The canonical corpus spine is
//
//   epoch_mu_  <  index_mu_  <  shard stripes (ascending shard id)
//
// and the full table below extends it to every lock in the tree,
// ascending = outermost-first:
//
//   rank         lock                                   holder
//   ----         ----                                   ------
//   0   close    AsyncAuditor::close_mu_                close()/join race
//   10  handoff  AsyncAuditor::handoff_mu_              {pop, reserve} atom
//   20  sync     AuditService::sync_mu_                 {drain, reserve} atom
//   30  queue    util::BoundedQueue<T>::mu_             queue internals
//   40  commit   AuditService::commit_mu_               the ticket turnstile
//   50  state    AuditService::state_mu_                names/pins/policy
//   100 epoch    ShardedCorpus::epoch_mu_               corpus quiesce gate
//   101 index    ShardedCorpus::index_mu_               global id space
//   110+s        ShardedCorpus stripe for shard s       per-shard rows
//   2^24   pool-spawn  ShardedCorpus::pool_mu_          lazy pool creation
//   2^24+1 pool-batch  ThreadPool::batch_mu_            one batch at a time
//   2^24+2 pool-work   ThreadPool::mu_                  worker wakeups
//   2^25   progress    AsyncAuditor::progress_mu_       submitted/reported
//   2^25+1 featurize   gnn::PooledAdjCache::mu_         pooled-adj memo
//
// The pool/progress/featurize block sits above every corpus rank
// because scans fan out to the pool *while holding stripes*, and the
// featurize cache is touched from inside pool workers. A rank of -1
// (the default) opts a lock out of validation entirely.
//
// When the build defines GNN4IP_LOCK_ORDER (CMake -DGNN4IP_LOCK_ORDER=ON,
// default ON whenever GNN4IP_SANITIZE is enabled), the wrappers call
// LockOrderRegistry before every blocking acquisition: a thread may only
// acquire a rank strictly greater than every rank it already holds.
// Violations abort with both the held stack and the attempted
// acquisition printed — a deterministic failure on the *first* inverted
// acquisition, not a probabilistic deadlock under load. In normal
// builds the registry compiles away to nothing.
#pragma once

#include <cstddef>

namespace gnn4ip::util {

/// A lock's position in the global acquisition order. order < 0 means
/// "unranked" — the validator ignores the lock (used for locks whose
/// ordering is dynamic in a way the table cannot express, never for
/// laziness).
struct LockRank {
  int order = -1;
  const char* name = "unranked";
};

namespace lock_rank {
inline constexpr LockRank kClose{0, "auditor-close"};
inline constexpr LockRank kHandoff{10, "auditor-handoff"};
inline constexpr LockRank kSync{20, "service-sync"};
inline constexpr LockRank kQueue{30, "bounded-queue"};
inline constexpr LockRank kCommit{40, "commit-turnstile"};
inline constexpr LockRank kState{50, "service-state"};
/// DistCorpus's connection/metadata lock: below the service state (the
/// audit layer calls into the distributed corpus holding state_mu_),
/// above the epoch block so a distributed corpus could layer on an
/// in-process one without inverting the table.
inline constexpr LockRank kDist{60, "dist-corpus"};
inline constexpr LockRank kEpoch{100, "corpus-epoch"};
inline constexpr LockRank kIndex{101, "corpus-index"};

/// Stripes slot in directly above the index lock, ascending by shard —
/// the validator checks the documented "stripes in ascending shard id"
/// order for free.
inline constexpr int kStripeBase = 110;
inline constexpr LockRank stripe(std::size_t shard) {
  return LockRank{kStripeBase + static_cast<int>(shard), "corpus-stripe"};
}

// Leaf block: acquired innermost (from scan fan-out and pool workers).
inline constexpr LockRank kPoolSpawn{1 << 24, "corpus-pool-spawn"};
inline constexpr LockRank kPoolBatch{(1 << 24) + 1, "pool-batch"};
inline constexpr LockRank kPoolWork{(1 << 24) + 2, "pool-work"};
inline constexpr LockRank kProgress{1 << 25, "auditor-progress"};
inline constexpr LockRank kFeaturize{(1 << 25) + 1, "featurize-cache"};
}  // namespace lock_rank

#ifdef GNN4IP_LOCK_ORDER
/// Per-thread held-lock bookkeeping. All methods are static and touch
/// only thread_local state — no synchronization, no allocation after
/// the first few acquisitions on a thread.
class LockOrderRegistry {
 public:
  /// Record intent to acquire `rank` (call *before* blocking on the
  /// lock). Aborts, printing the held stack, if `rank.order` is not
  /// strictly greater than every held rank.
  static void note_acquire(const LockRank& rank);

  /// Record release of `rank`. Out-of-order release (from the middle of
  /// the stack) is legal and supported.
  static void note_release(const LockRank& rank);

  /// Number of ranked locks the calling thread currently holds
  /// (test hook).
  static std::size_t held_count();
};
#endif  // GNN4IP_LOCK_ORDER

}  // namespace gnn4ip::util
