// Bounded multi-producer queue for submission-style workloads.
//
// audit::AuditService accepts submissions from any number of threads and
// drains them in batches on the screening thread. The queue is the
// backpressure point: try_push refuses work once `capacity` items are
// pending, so a flood of submissions degrades into "caller must screen"
// instead of unbounded memory growth. drain() hands the consumer the
// whole pending batch in FIFO order with one lock acquisition.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/contract.h"

namespace gnn4ip::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    GNN4IP_ENSURE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue unless the queue is full. Returns false (value untouched by
  /// the queue, caller keeps it) when `capacity` items are pending.
  [[nodiscard]] bool try_push(T&& value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    space_cv_.notify_one();
    return true;
  }

  /// Enqueue, blocking while the queue is full (classic bounded-buffer
  /// backpressure; requires a concurrent drainer to make progress).
  void push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      space_cv_.wait(lock, [this] { return items_.size() < capacity_; });
      items_.push_back(std::move(value));
    }
    space_cv_.notify_one();
  }

  /// Pop everything currently pending, in FIFO order (possibly empty).
  [[nodiscard]] std::vector<T> drain() {
    std::vector<T> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.reserve(items_.size());
      for (T& item : items_) batch.push_back(std::move(item));
      items_.clear();
    }
    space_cv_.notify_all();
    return batch;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;
  std::deque<T> items_;
};

}  // namespace gnn4ip::util
