// Bounded multi-producer queue for submission-style workloads.
//
// audit::AuditService accepts submissions from any number of threads and
// drains them in batches on the screening thread. The queue is the
// backpressure point: try_push refuses work once `capacity` items are
// pending, so a flood of submissions degrades into "caller must screen"
// instead of unbounded memory growth. drain() hands the consumer the
// whole pending batch in FIFO order with one lock acquisition.
//
// Shutdown is first-class for daemon consumers (audit::AsyncAuditor):
// close() flips the queue into drain-on-close mode — every push after
// close fails, while pop()/drain() keep handing out whatever was already
// pending. A blocked pop() returns std::nullopt once the queue is both
// closed and empty, which is the consumer thread's exit signal; nothing
// enqueued before close() is ever lost.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/contract.h"
#include "util/thread_annotations.h"

namespace gnn4ip::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    GNN4IP_ENSURE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue unless the queue is full or closed. Returns false (value
  /// untouched by the queue, caller keeps it) when `capacity` items are
  /// pending or close() has been called.
  [[nodiscard]] bool try_push(T&& value) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    items_cv_.notify_one();
    return true;
  }

  /// Enqueue, blocking while the queue is full (classic bounded-buffer
  /// backpressure; requires a concurrent drainer to make progress).
  /// Returns false — with `value` untouched, like try_push — when the
  /// queue is (or becomes, while waiting) closed.
  [[nodiscard]] bool push(T&& value) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) space_cv_.wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    items_cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed; pop one
  /// item in FIFO order. After close(), keeps draining the remaining
  /// items and only then reports closed by returning std::nullopt — the
  /// consumer's signal that no item will ever arrive again.
  [[nodiscard]] std::optional<T> pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) items_cv_.wait(mu_);
      if (items_.empty()) return std::nullopt;  // closed and fully drained
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_cv_.notify_one();
    return value;
  }

  /// pop() with a deadline: block at most `timeout` for an item. Returns
  /// the popped item, or std::nullopt when the wait timed out with the
  /// queue still empty — or when the queue is closed and fully drained
  /// (indistinguishable by design: both mean "nothing now"; callers that
  /// need the difference check closed() && empty() on nullopt). This is
  /// the accept/drain-loop primitive: a server thread can wake every
  /// `timeout` to check its stop flag without busy-polling and without
  /// missing an item that arrives mid-wait.
  template <typename Rep, typename Period>
  [[nodiscard]] std::optional<T> pop_for(
      const std::chrono::duration<Rep, Period>& timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        items_cv_.wait_for(mu_, deadline - now);
      }
      if (items_.empty()) return std::nullopt;  // closed and fully drained
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_cv_.notify_one();
    return value;
  }

  /// Pop one pending item without blocking (FIFO order). Returns
  /// std::nullopt when the queue is currently empty — closed or not.
  /// This is the chunk-builder for multi-consumer drains: one consumer
  /// blocks in pop() for the batch seed, then try_pop()s the items that
  /// accumulated behind it, leaving the rest for its sibling consumers
  /// instead of stealing the whole backlog the way drain() would.
  [[nodiscard]] std::optional<T> try_pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_cv_.notify_one();
    return value;
  }

  /// Pop everything currently pending, in FIFO order (possibly empty).
  /// Never blocks; usable before and after close().
  [[nodiscard]] std::vector<T> drain() {
    std::vector<T> batch;
    {
      MutexLock lock(mu_);
      batch.reserve(items_.size());
      for (T& item : items_) batch.push_back(std::move(item));
      items_.clear();
    }
    space_cv_.notify_all();
    return batch;
  }

  /// Stop accepting work: every subsequent (and currently blocked) push
  /// fails, while pending items stay poppable. Idempotent.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    // Wake blocked producers (to fail) and blocked consumers (to drain
    // the remainder and then observe closed).
    space_cv_.notify_all();
    items_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{lock_rank::kQueue};
  CondVar space_cv_;  // waited on by blocked producers
  CondVar items_cv_;  // waited on by blocked consumers
  std::deque<T> items_ GNN4IP_GUARDED_BY(mu_);
  bool closed_ GNN4IP_GUARDED_BY(mu_) = false;
};

}  // namespace gnn4ip::util
