#include "util/contract.h"

#include <sstream>

namespace gnn4ip::util {

void contract_failure(const char* expr, const char* file, int line,
                      const std::string& message) {
  std::ostringstream os;
  os << "contract violated at " << file << ':' << line << ": (" << expr
     << ") — " << message;
  throw ContractViolation(os.str());
}

}  // namespace gnn4ip::util
