// Deterministic random-number utilities.
//
// Every stochastic component in GNN4IP (weight init, dropout, dataset
// shuffling, variant generation, obfuscation) draws from an explicitly
// seeded Rng instance so that experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

namespace gnn4ip::util {

/// SplitMix64-seeded xoshiro256** generator.  Small, fast, and
/// deterministic across platforms (unlike std::mt19937 distributions,
/// whose outputs vary across standard libraries for some distributions —
/// we implement the distributions ourselves).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal (Box–Muller).
  double normal();

  /// Bernoulli trial with probability `p` of true.
  bool flip(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator (for parallel determinism).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gnn4ip::util
