#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace gnn4ip::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = num_threads == 0 ? default_thread_count() : num_threads;
  n = std::max<std::size_t>(n, 1);
  workers_.reserve(n - 1);
  for (std::size_t w = 1; w < n; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t last_epoch = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stop_ && !(fn_ != nullptr && epoch_ != last_epoch)) {
        work_cv_.wait(mu_);
      }
      if (stop_) return;
      last_epoch = epoch_;
      ++active_;
    }
    run_current_batch();
    {
      MutexLock lock(mu_);
      --active_;
      if (active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_current_batch() {
  for (std::size_t i = next_.fetch_add(1); i < count_;
       i = next_.fetch_add(1)) {
    try {
      (*fn_)(i);
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      next_.store(count_);  // abandon the remaining indices
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One batch at a time: a second caller would otherwise overwrite the
  // in-flight batch state below.
  MutexLock batch_lock(batch_mu_);
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0);
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  run_current_batch();
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    while (active_ != 0) done_cv_.wait(mu_);
    fn_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("GNN4IP_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (num_threads == 0) {
    ThreadPool::shared().parallel_for(count, fn);
    return;
  }
  if (num_threads == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // No point spawning more transient workers than there are indices.
  ThreadPool local(std::min(num_threads, count));
  local.parallel_for(count, fn);
}

void parallel_map_reduce(std::size_t count, std::size_t num_threads,
                         const std::function<void(std::size_t)>& map_fn,
                         const std::function<void(std::size_t)>& reduce_fn) {
  parallel_for(count, num_threads, map_fn);
  for (std::size_t i = 0; i < count; ++i) reduce_fn(i);
}

void parallel_map_reduce(std::size_t count, ThreadPool& pool,
                         const std::function<void(std::size_t)>& map_fn,
                         const std::function<void(std::size_t)>& reduce_fn) {
  pool.parallel_for(count, map_fn);
  for (std::size_t i = 0; i < count; ++i) reduce_fn(i);
}

}  // namespace gnn4ip::util
