// Small string helpers shared across the Verilog frontend and dataset
// generators. All functions are pure and allocation-conscious.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gnn4ip::util {

/// Split `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Join `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Replace every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string text, std::string_view from,
                                      std::string_view to);

/// True if `name` is a valid Verilog simple identifier.
[[nodiscard]] bool is_identifier(std::string_view name);

/// printf-style formatting into a std::string (for diagnostics and
/// generated RTL).  Uses vsnprintf under the hood.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace gnn4ip::util
