// RTL circuit-family generators.
//
// Each family is one "design" in the paper's sense; generate() with
// different RtlVariant values yields different Verilog codes of the same
// design (piracy pairs). Families span the paper's corpus flavors:
// datapath blocks (adders, ALU, multiplier, floating-point adder),
// communication (UART/RS232 TX+RX, SPI), error coding (CRC, parity,
// Hamming), sequential blocks (counters, LFSR, FIFO control, shift
// register, PWM), FSMs (traffic light, sequence detector), crypto
// (AES-like round), and three MIPS-style processors (single-cycle,
// pipeline, multi-cycle) sharing an ALU submodule — the Table II /
// Fig. 4 subjects.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/variants.h"

namespace gnn4ip::data {

struct RtlFamily {
  std::string name;
  /// Number of meaningfully distinct structural styles the generator
  /// understands (style is taken modulo this).
  int num_styles = 2;
  std::function<std::string(const RtlVariant&)> generate;
};

/// All registered RTL families.
[[nodiscard]] const std::vector<RtlFamily>& rtl_families();

/// Generate family `name` (throws std::invalid_argument if unknown).
[[nodiscard]] std::string generate_rtl(const std::string& family,
                                       const RtlVariant& variant);

/// Individual generators (exposed for targeted tests and Table II cases).
[[nodiscard]] std::string gen_adder(const RtlVariant& v);
[[nodiscard]] std::string gen_alu(const RtlVariant& v);
[[nodiscard]] std::string gen_counter(const RtlVariant& v);
[[nodiscard]] std::string gen_gray_counter(const RtlVariant& v);
[[nodiscard]] std::string gen_lfsr(const RtlVariant& v);
[[nodiscard]] std::string gen_crc8(const RtlVariant& v);
[[nodiscard]] std::string gen_parity(const RtlVariant& v);
[[nodiscard]] std::string gen_shift_reg(const RtlVariant& v);
[[nodiscard]] std::string gen_fifo_ctrl(const RtlVariant& v);
[[nodiscard]] std::string gen_uart_tx(const RtlVariant& v);
[[nodiscard]] std::string gen_uart_rx(const RtlVariant& v);
[[nodiscard]] std::string gen_spi_master(const RtlVariant& v);
[[nodiscard]] std::string gen_pwm(const RtlVariant& v);
[[nodiscard]] std::string gen_traffic_fsm(const RtlVariant& v);
[[nodiscard]] std::string gen_seq_detector(const RtlVariant& v);
[[nodiscard]] std::string gen_multiplier(const RtlVariant& v);
[[nodiscard]] std::string gen_fpa(const RtlVariant& v);
[[nodiscard]] std::string gen_aes_round(const RtlVariant& v);
[[nodiscard]] std::string gen_hamming_enc(const RtlVariant& v);
[[nodiscard]] std::string gen_mips_single(const RtlVariant& v);
[[nodiscard]] std::string gen_mips_pipeline(const RtlVariant& v);
[[nodiscard]] std::string gen_mips_multicycle(const RtlVariant& v);
/// Standalone ALU top-level (Table II case 3: MIPS contains this block).
[[nodiscard]] std::string gen_alu_block(const RtlVariant& v);
// Second batch (rtl_designs2.cpp).
[[nodiscard]] std::string gen_barrel_shifter(const RtlVariant& v);
[[nodiscard]] std::string gen_bcd_counter(const RtlVariant& v);
[[nodiscard]] std::string gen_johnson_counter(const RtlVariant& v);
[[nodiscard]] std::string gen_clock_divider(const RtlVariant& v);
[[nodiscard]] std::string gen_debouncer(const RtlVariant& v);
[[nodiscard]] std::string gen_majority_voter(const RtlVariant& v);
[[nodiscard]] std::string gen_popcount(const RtlVariant& v);
[[nodiscard]] std::string gen_divider(const RtlVariant& v);
[[nodiscard]] std::string gen_rr_arbiter(const RtlVariant& v);
[[nodiscard]] std::string gen_moving_average(const RtlVariant& v);
[[nodiscard]] std::string gen_sqrt(const RtlVariant& v);

}  // namespace gnn4ip::data
