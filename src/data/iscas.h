// Functional stand-ins for the ISCAS'85 benchmarks of Table III.
//
// The authors evaluate on the real ISCAS'85 netlists plus TrustHub
// obfuscated instances; neither ships with this repository, so each
// benchmark is regenerated from its documented function (the "Circuit
// Function" column of Table III):
//   c432  — 27-channel interrupt controller (3 priority buses × 9 lines)
//   c499  — 32-bit single-error-correcting circuit (Hamming, XOR form)
//   c880  — 8-bit ALU
//   c1355 — 32-bit single-error-correcting circuit (NAND-expanded form,
//           exactly how the real c1355 relates to c499)
//   c1908 — 16-bit single/double-error detecting SEC/DED circuit
//   c6288 — 16×16 array multiplier
// Gate counts land in the same order of magnitude as the originals, so
// DFG sizes, timing, and obfuscation behavior exercise the same code
// paths.
#pragma once

#include <string>
#include <vector>

#include "data/netlist.h"

namespace gnn4ip::data {

struct IscasBenchmark {
  std::string name;      // "c432", ...
  std::string function;  // human-readable description (Table III column)
  Netlist netlist;
};

[[nodiscard]] Netlist build_c432_interrupt_controller();
[[nodiscard]] Netlist build_c499_sec32(bool nand_form);  // false=c499, true=c1355
[[nodiscard]] Netlist build_c880_alu8();
[[nodiscard]] Netlist build_c1908_secded16();
[[nodiscard]] Netlist build_c6288_mult16();

/// All six stand-ins, in Table III order.
[[nodiscard]] std::vector<IscasBenchmark> iscas_benchmarks();

}  // namespace gnn4ip::data
