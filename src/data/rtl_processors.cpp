// Processor-class RTL families: floating-point adder, AES-like round,
// and the three MIPS-style cores (single-cycle, pipeline, multi-cycle)
// that drive Table II and Fig. 4(b,c). All three MIPS cores instantiate
// the same alu_core module, giving the exact "design and its subset"
// relation of Table II case 3.
#include <sstream>

#include "data/rtl_designs.h"
#include "util/string_util.h"

namespace gnn4ip::data {

using util::format;

namespace {

/// Shared 8-bit ALU submodule with fixed port names (op1, op2, ctl, res,
/// zf, nf, cf) so every processor family instantiates it identically;
/// internal style still varies per instance. The flag network makes the
/// block a substantial shared subgraph of each MIPS DFG — the Table II
/// case-3 relation.
std::string alu_core_module(VariantHelper& h, const std::string& mod_name) {
  std::ostringstream os;
  os << "module " << mod_name
     << " (op1, op2, ctl, res, zf, nf, cf);\n"
        "  input [7:0] op1;\n  input [7:0] op2;\n  input [2:0] ctl;\n"
        "  output reg [7:0] res;\n  output zf;\n  output nf;\n"
        "  output cf;\n"
        "  wire [8:0] sum9, diff9;\n"
        "  assign sum9 = {1'b0, op1} + {1'b0, op2};\n"
        "  assign diff9 = {1'b0, op1} - {1'b0, op2};\n";
  if (h.flip()) {
    std::vector<std::string> arms = {
        "      3'b000: res = sum9[7:0];",
        "      3'b001: res = diff9[7:0];",
        "      3'b010: res = op1 & op2;",
        "      3'b011: res = op1 | op2;",
        "      3'b100: res = op1 ^ op2;",
        "      3'b101: res = {7'b0000000, diff9[8]};",
        "      3'b110: res = op1 << 1;",
    };
    h.shuffle_statements(arms);
    os << "  always @(*) begin\n    case (ctl)\n";
    os << lines(arms);
    os << "      default: res = op1 >> 1;\n    endcase\n  end\n";
  } else {
    os << "  always @(*) begin\n"
          "    res = (ctl == 3'b000) ? sum9[7:0] :\n"
          "          (ctl == 3'b001) ? diff9[7:0] :\n"
          "          (ctl == 3'b010) ? (op1 & op2) :\n"
          "          (ctl == 3'b011) ? (op1 | op2) :\n"
          "          (ctl == 3'b100) ? (op1 ^ op2) :\n"
          "          (ctl == 3'b101) ? {7'b0000000, diff9[8]} :\n"
          "          (ctl == 3'b110) ? (op1 << 1) : (op1 >> 1);\n"
          "  end\n";
  }
  os << "  assign zf = (res == 8'h00);\n"
        "  assign nf = res[7];\n"
        "  assign cf = (ctl == 3'b001) ? diff9[8] : sum9[8];\n"
        "endmodule\n";
  return os.str();
}

/// Register-file read mux over four 8-bit registers.
std::string regread(const std::string& sel, const char* r0, const char* r1,
                    const char* r2, const char* r3) {
  return format("(%s == 2'b00) ? %s : ((%s == 2'b01) ? %s : ((%s == 2'b10) ? %s : %s))",
                sel.c_str(), r0, sel.c_str(), r1, sel.c_str(), r2, r3);
}

}  // namespace

// ---------------------------------------------------------------------------
// alu_block — standalone top wrapping alu_core (Table II case 3).
// ---------------------------------------------------------------------------
std::string gen_alu_block(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string core = h.name({"alu_core", "alu8_core", "alu_inner"});
  const std::string mod = h.name({"alu_top", "alu_block", "alu_wrap"});
  std::ostringstream os;
  os << alu_core_module(h, core);
  os << format(
      "module %s (a_in, b_in, f_sel, y_out, z_out, n_out, c_out);\n"
      "  input [7:0] a_in;\n  input [7:0] b_in;\n  input [2:0] f_sel;\n"
      "  output [7:0] y_out;\n  output z_out;\n  output n_out;\n"
      "  output c_out;\n"
      "  %s u_core (.op1(a_in), .op2(b_in), .ctl(f_sel), .res(y_out), "
      ".zf(z_out), .nf(n_out), .cf(c_out));\n"
      "endmodule\n",
      mod.c_str(), core.c_str());
  return os.str();
}

// ---------------------------------------------------------------------------
// fpa — simplified 16-bit floating point adder (1s5e10m), 2 styles.
// ---------------------------------------------------------------------------
std::string gen_fpa(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string a = h.name({"a", "fp_a", "x"});
  const std::string b = h.name({"b", "fp_b", "y"});
  const std::string s = h.name({"s", "fp_sum", "z"});
  const std::string mod = h.name({"fpadd16", "fp_adder", "float_add"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s);\n"
      "  input [15:0] %s;\n  input [15:0] %s;\n  output [15:0] %s;\n",
      mod.c_str(), a.c_str(), b.c_str(), s.c_str(), a.c_str(), b.c_str(),
      s.c_str());
  os << format(
      "  wire sa, sb;\n  wire [4:0] ea, eb;\n  wire [9:0] ma, mb;\n"
      "  assign sa = %s[15];\n  assign sb = %s[15];\n"
      "  assign ea = %s[14:10];\n  assign eb = %s[14:10];\n"
      "  assign ma = %s[9:0];\n  assign mb = %s[9:0];\n",
      a.c_str(), b.c_str(), a.c_str(), b.c_str(), a.c_str(), b.c_str());
  os << "  wire [10:0] fa, fb;\n"
        "  assign fa = {1'b1, ma};\n  assign fb = {1'b1, mb};\n";
  os << "  wire a_ge;\n"
        "  assign a_ge = (ea > eb) | ((ea == eb) & (ma >= mb));\n";
  if (v.style % 2 == 0) {
    os << "  wire [4:0] exp_big, exp_diff;\n"
          "  wire [10:0] man_big, man_small;\n"
          "  assign exp_big = a_ge ? ea : eb;\n"
          "  assign exp_diff = a_ge ? (ea - eb) : (eb - ea);\n"
          "  assign man_big = a_ge ? fa : fb;\n"
          "  assign man_small = (a_ge ? fb : fa) >> exp_diff;\n";
  } else {
    os << "  reg [4:0] exp_big, exp_diff;\n"
          "  reg [10:0] man_big, man_small;\n"
          "  always @(*) begin\n"
          "    if (a_ge) begin\n"
          "      exp_big = ea;\n      exp_diff = ea - eb;\n"
          "      man_big = fa;\n      man_small = fb >> (ea - eb);\n"
          "    end else begin\n"
          "      exp_big = eb;\n      exp_diff = eb - ea;\n"
          "      man_big = fb;\n      man_small = fa >> (eb - ea);\n"
          "    end\n"
          "  end\n";
  }
  os << "  wire same_sign;\n"
        "  assign same_sign = (sa == sb);\n"
        "  wire [11:0] man_sum;\n"
        "  assign man_sum = same_sign ? ({1'b0, man_big} + {1'b0, man_small})"
        "\n                            : ({1'b0, man_big} - {1'b0, "
        "man_small});\n";
  os << "  reg [9:0] man_out;\n  reg [4:0] exp_out;\n"
        "  always @(*) begin\n"
        "    if (man_sum[11]) begin\n"
        "      man_out = man_sum[10:1];\n      exp_out = exp_big + 5'h01;\n"
        "    end else if (man_sum[10]) begin\n"
        "      man_out = man_sum[9:0];\n      exp_out = exp_big;\n"
        "    end else if (man_sum[9]) begin\n"
        "      man_out = {man_sum[8:0], 1'b0};\n"
        "      exp_out = exp_big - 5'h01;\n"
        "    end else if (man_sum[8]) begin\n"
        "      man_out = {man_sum[7:0], 2'b00};\n"
        "      exp_out = exp_big - 5'h02;\n"
        "    end else begin\n"
        "      man_out = {man_sum[7:0], 2'b00};\n"
        "      exp_out = exp_big - 5'h03;\n"
        "    end\n"
        "  end\n";
  os << "  wire sign_out;\n"
        "  assign sign_out = a_ge ? sa : sb;\n";
  os << format("  assign %s = {sign_out, exp_out, man_out};\n", s.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// aes_round — toy 16-bit SPN round: SubBytes (4× sbox4 modules),
// ShiftRows (nibble rotate), MixColumns-ish XOR mixing, AddRoundKey.
// ---------------------------------------------------------------------------
std::string gen_aes_round(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string sbox = h.name({"sbox4", "nib_sub", "sub_box"});
  const std::string blk = h.name({"blk", "state_in", "pt"});
  const std::string key = h.name({"key", "round_key", "rk"});
  const std::string out = h.name({"ct", "state_out", "round_out"});
  const std::string mod = h.name({"aes_round16", "spn_round", "cipher_round"});
  std::ostringstream os;
  os << format(
      "module %s (nib, sub);\n"
      "  input [3:0] nib;\n  output reg [3:0] sub;\n"
      "  always @(*) begin\n    case (nib)\n",
      sbox.c_str());
  // PRESENT cipher S-box — a real cryptographic 4-bit S-box.
  const char* kSbox[16] = {"4'hC", "4'h5", "4'h6", "4'hB", "4'h9", "4'h0",
                           "4'hA", "4'hD", "4'h3", "4'hE", "4'hF", "4'h8",
                           "4'h4", "4'h7", "4'h1", "4'h2"};
  for (int i = 0; i < 15; ++i) {
    os << format("      4'h%X: sub = %s;\n", i, kSbox[i]);
  }
  os << format("      default: sub = %s;\n", kSbox[15]);
  os << "    endcase\n  end\nendmodule\n";

  os << format(
      "module %s (%s, %s, %s);\n"
      "  input [15:0] %s;\n  input [15:0] %s;\n  output [15:0] %s;\n"
      "  wire [3:0] w0, w1, w2, w3;\n",
      mod.c_str(), blk.c_str(), key.c_str(), out.c_str(), blk.c_str(),
      key.c_str(), out.c_str());
  std::vector<std::string> subs = {
      format("  %s s0 (.nib(%s[3:0]), .sub(w0));", sbox.c_str(), blk.c_str()),
      format("  %s s1 (.nib(%s[7:4]), .sub(w1));", sbox.c_str(), blk.c_str()),
      format("  %s s2 (.nib(%s[11:8]), .sub(w2));", sbox.c_str(),
             blk.c_str()),
      format("  %s s3 (.nib(%s[15:12]), .sub(w3));", sbox.c_str(),
             blk.c_str()),
  };
  h.shuffle_statements(subs);
  os << lines(subs);
  if (v.style % 2 == 0) {
    os << "  wire [15:0] shifted;\n"
          "  assign shifted = {w2, w1, w0, w3};\n"
          "  wire [15:0] mixed;\n"
          "  assign mixed = {shifted[15:12] ^ shifted[11:8],\n"
          "                  shifted[11:8] ^ shifted[7:4],\n"
          "                  shifted[7:4] ^ shifted[3:0],\n"
          "                  shifted[3:0] ^ shifted[15:12]};\n";
  } else {
    os << "  wire [3:0] sh0, sh1, sh2, sh3;\n"
          "  assign sh0 = w3;\n  assign sh1 = w0;\n"
          "  assign sh2 = w1;\n  assign sh3 = w2;\n"
          "  wire [3:0] m0, m1, m2, m3;\n"
          "  assign m0 = sh0 ^ sh3;\n  assign m1 = sh1 ^ sh0;\n"
          "  assign m2 = sh2 ^ sh1;\n  assign m3 = sh3 ^ sh2;\n"
          "  wire [15:0] mixed;\n"
          "  assign mixed = {m3, m2, m1, m0};\n";
  }
  os << format("  assign %s = mixed ^ %s;\n", out.c_str(), key.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// mips_single — single-cycle core (Fig. 4 subject, Table II case 2/3).
// ---------------------------------------------------------------------------
std::string gen_mips_single(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string core = h.name({"alu_core", "alu8_core", "alu_inner"});
  const std::string instr = h.name({"instr", "insn", "iword"});
  const std::string pc = h.name({"pc", "prog_counter", "ip"});
  const std::string result = h.name({"result", "alu_view", "ex_result"});
  const std::string mod = h.name({"mips_single", "sc_mips", "mips_sc"});
  std::ostringstream os;
  os << alu_core_module(h, core);
  os << format(
      "module %s (clk, rst, %s, %s, %s);\n"
      "  input clk;\n  input rst;\n  input [15:0] %s;\n"
      "  output reg [7:0] %s;\n  output [7:0] %s;\n",
      mod.c_str(), instr.c_str(), pc.c_str(), result.c_str(), instr.c_str(),
      pc.c_str(), result.c_str());
  os << "  reg [7:0] r0, r1, r2, r3;\n";
  os << format(
      "  wire [3:0] opcode;\n  wire [1:0] rd, rs, rt;\n  wire [3:0] imm;\n"
      "  assign opcode = %s[15:12];\n"
      "  assign rd = %s[11:10];\n"
      "  assign rs = %s[9:8];\n"
      "  assign rt = %s[7:6];\n"
      "  assign imm = %s[7:4];\n",
      instr.c_str(), instr.c_str(), instr.c_str(), instr.c_str(),
      instr.c_str());
  os << format("  wire [7:0] rs_val;\n  assign rs_val = %s;\n",
               regread("rs", "r0", "r1", "r2", "r3").c_str());
  os << format("  wire [7:0] rt_val;\n  assign rt_val = %s;\n",
               regread("rt", "r0", "r1", "r2", "r3").c_str());
  os << "  wire use_imm;\n  assign use_imm = (opcode == 4'h8);\n"
        "  wire [7:0] opb;\n"
        "  assign opb = use_imm ? {4'b0000, imm} : rt_val;\n"
        "  wire [2:0] alu_ctl;\n"
        "  assign alu_ctl = use_imm ? 3'b000 : opcode[2:0];\n"
        "  wire [7:0] alu_res;\n  wire zf, nf, cf;\n";
  os << format(
      "  %s u_alu (.op1(rs_val), .op2(opb), .ctl(alu_ctl), .res(alu_res), "
      ".zf(zf), .nf(nf), .cf(cf));\n",
      core.c_str());
  os << "  wire is_beq, is_blt, wr_en, take_branch;\n"
        "  assign is_beq = (opcode == 4'hA);\n"
        "  assign is_blt = (opcode == 4'hB);\n"
        "  assign take_branch = (is_beq & zf) | (is_blt & (nf | cf));\n"
        "  assign wr_en = ~is_beq & ~is_blt & (opcode != 4'hF);\n";
  os << format(
      "  always @(posedge clk) begin\n"
      "    if (rst) begin\n"
      "      %s <= 8'h00;\n      r0 <= 8'h00;\n      r1 <= 8'h00;\n"
      "      r2 <= 8'h00;\n      r3 <= 8'h00;\n"
      "    end else begin\n"
      "      %s <= take_branch ? %s + {4'b0000, imm} : %s + 8'h01;\n"
      "      if (wr_en) begin\n"
      "        case (rd)\n"
      "          2'b00: r0 <= alu_res;\n"
      "          2'b01: r1 <= alu_res;\n"
      "          2'b10: r2 <= alu_res;\n"
      "          default: r3 <= alu_res;\n"
      "        endcase\n"
      "      end\n"
      "    end\n"
      "  end\n",
      pc.c_str(), pc.c_str(), pc.c_str(), pc.c_str());
  os << format("  assign %s = alu_res;\n", result.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// mips_pipeline — 3-stage pipelined core (IF/ID, ID/EX, EX/WB registers).
// ---------------------------------------------------------------------------
std::string gen_mips_pipeline(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string core = h.name({"alu_core", "alu8_core", "alu_inner"});
  const std::string instr = h.name({"instr", "insn", "iword"});
  const std::string pc = h.name({"pc", "prog_counter", "ip"});
  const std::string result = h.name({"result", "wb_value", "retire_val"});
  const std::string mod = h.name({"mips_pipeline", "pl_mips", "mips_5s"});
  std::ostringstream os;
  os << alu_core_module(h, core);
  os << format(
      "module %s (clk, rst, %s, %s, %s);\n"
      "  input clk;\n  input rst;\n  input [15:0] %s;\n"
      "  output reg [7:0] %s;\n  output [7:0] %s;\n",
      mod.c_str(), instr.c_str(), pc.c_str(), result.c_str(), instr.c_str(),
      pc.c_str(), result.c_str());
  os << "  reg [7:0] r0, r1, r2, r3;\n"
        "  reg [15:0] ifid_ir;\n"
        "  reg [7:0] idex_a, idex_b;\n  reg [2:0] idex_ctl;\n"
        "  reg [1:0] idex_rd;\n  reg idex_we;\n"
        "  reg [7:0] exwb_res;\n  reg [1:0] exwb_rd;\n  reg exwb_we;\n";
  os << "  wire [3:0] opcode;\n  wire [1:0] rd, rs, rt;\n  wire [3:0] imm;\n"
        "  assign opcode = ifid_ir[15:12];\n"
        "  assign rd = ifid_ir[11:10];\n"
        "  assign rs = ifid_ir[9:8];\n"
        "  assign rt = ifid_ir[7:6];\n"
        "  assign imm = ifid_ir[7:4];\n";
  os << format("  wire [7:0] rs_val;\n  assign rs_val = %s;\n",
               regread("rs", "r0", "r1", "r2", "r3").c_str());
  os << format("  wire [7:0] rt_val;\n  assign rt_val = %s;\n",
               regread("rt", "r0", "r1", "r2", "r3").c_str());
  os << "  wire use_imm;\n  assign use_imm = (opcode == 4'h8);\n"
        "  wire [7:0] alu_res;\n  wire zf, nf, cf;\n"
        "  reg [2:0] flags_q;\n";
  os << format(
      "  %s u_alu (.op1(idex_a), .op2(idex_b), .ctl(idex_ctl), .res(alu_res),"
      " .zf(zf), .nf(nf), .cf(cf));\n",
      core.c_str());
  os << format(
      "  always @(posedge clk) begin\n"
      "    if (rst) begin\n"
      "      %s <= 8'h00;\n      ifid_ir <= 16'hF000;\n"
      "      idex_a <= 8'h00;\n      idex_b <= 8'h00;\n"
      "      idex_ctl <= 3'b000;\n      idex_rd <= 2'b00;\n"
      "      idex_we <= 1'b0;\n      exwb_res <= 8'h00;\n"
      "      exwb_rd <= 2'b00;\n      exwb_we <= 1'b0;\n"
      "      r0 <= 8'h00;\n      r1 <= 8'h00;\n      r2 <= 8'h00;\n"
      "      r3 <= 8'h00;\n"
      "    end else begin\n"
      "      %s <= %s + 8'h01;\n"
      "      ifid_ir <= %s;\n"
      "      idex_a <= rs_val;\n"
      "      idex_b <= use_imm ? {4'b0000, imm} : rt_val;\n"
      "      idex_ctl <= use_imm ? 3'b000 : opcode[2:0];\n"
      "      idex_rd <= rd;\n"
      "      idex_we <= (opcode != 4'hF) & (opcode != 4'hA);\n"
      "      exwb_res <= alu_res;\n"
      "      exwb_rd <= idex_rd;\n"
      "      exwb_we <= idex_we;\n"
      "      flags_q <= {cf, nf, zf};\n"
      "      if (exwb_we) begin\n"
      "        case (exwb_rd)\n"
      "          2'b00: r0 <= exwb_res;\n"
      "          2'b01: r1 <= exwb_res;\n"
      "          2'b10: r2 <= exwb_res;\n"
      "          default: r3 <= exwb_res;\n"
      "        endcase\n"
      "      end\n"
      "    end\n"
      "  end\n",
      pc.c_str(), pc.c_str(), pc.c_str(), instr.c_str());
  os << format("  assign %s = exwb_res;\n", result.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// mips_multicycle — FSM-sequenced core (fetch/decode/execute/writeback).
// ---------------------------------------------------------------------------
std::string gen_mips_multicycle(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string core = h.name({"alu_core", "alu8_core", "alu_inner"});
  const std::string instr = h.name({"instr", "insn", "iword"});
  const std::string pc = h.name({"pc", "prog_counter", "ip"});
  const std::string result = h.name({"result", "alu_out_r", "mc_result"});
  const std::string mod = h.name({"mips_multi", "mc_mips", "mips_fsm"});
  std::ostringstream os;
  os << alu_core_module(h, core);
  os << format(
      "module %s (clk, rst, %s, %s, %s);\n"
      "  input clk;\n  input rst;\n  input [15:0] %s;\n"
      "  output reg [7:0] %s;\n  output [7:0] %s;\n",
      mod.c_str(), instr.c_str(), pc.c_str(), result.c_str(), instr.c_str(),
      pc.c_str(), result.c_str());
  os << "  reg [7:0] r0, r1, r2, r3;\n"
        "  reg [1:0] state;\n"
        "  reg [15:0] ir;\n"
        "  reg [7:0] areg, breg, alu_out_q;\n";
  os << "  wire [3:0] opcode;\n  wire [1:0] rd, rs, rt;\n  wire [3:0] imm;\n"
        "  assign opcode = ir[15:12];\n"
        "  assign rd = ir[11:10];\n"
        "  assign rs = ir[9:8];\n"
        "  assign rt = ir[7:6];\n"
        "  assign imm = ir[7:4];\n";
  os << format("  wire [7:0] rs_val;\n  assign rs_val = %s;\n",
               regread("rs", "r0", "r1", "r2", "r3").c_str());
  os << format("  wire [7:0] rt_val;\n  assign rt_val = %s;\n",
               regread("rt", "r0", "r1", "r2", "r3").c_str());
  os << "  wire use_imm;\n  assign use_imm = (opcode == 4'h8);\n"
        "  wire [7:0] alu_res;\n  wire zf, nf, cf;\n"
        "  wire [2:0] alu_ctl;\n"
        "  assign alu_ctl = use_imm ? 3'b000 : opcode[2:0];\n"
        "  wire [7:0] opb;\n"
        "  assign opb = use_imm ? {4'b0000, imm} : breg;\n"
        "  reg [2:0] status;\n";
  os << format(
      "  %s u_alu (.op1(areg), .op2(opb), .ctl(alu_ctl), .res(alu_res), "
      ".zf(zf), .nf(nf), .cf(cf));\n",
      core.c_str());
  os << format(
      "  always @(posedge clk) begin\n"
      "    if (rst) begin\n"
      "      state <= 2'b00;\n      %s <= 8'h00;\n      ir <= 16'hF000;\n"
      "      areg <= 8'h00;\n      breg <= 8'h00;\n      alu_out_q <= "
      "8'h00;\n"
      "      r0 <= 8'h00;\n      r1 <= 8'h00;\n      r2 <= 8'h00;\n"
      "      r3 <= 8'h00;\n"
      "    end else begin\n"
      "      case (state)\n"
      "        2'b00: begin\n"
      "          ir <= %s;\n"
      "          %s <= %s + 8'h01;\n"
      "          state <= 2'b01;\n"
      "        end\n"
      "        2'b01: begin\n"
      "          areg <= rs_val;\n"
      "          breg <= rt_val;\n"
      "          state <= 2'b10;\n"
      "        end\n"
      "        2'b10: begin\n"
      "          alu_out_q <= alu_res;\n"
      "          status <= {cf, nf, zf};\n"
      "          state <= 2'b11;\n"
      "        end\n"
      "        default: begin\n"
      "          if ((opcode != 4'hF) & (opcode != 4'hA)) begin\n"
      "            case (rd)\n"
      "              2'b00: r0 <= alu_out_q;\n"
      "              2'b01: r1 <= alu_out_q;\n"
      "              2'b10: r2 <= alu_out_q;\n"
      "              default: r3 <= alu_out_q;\n"
      "            endcase\n"
      "          end\n"
      "          if (((opcode == 4'hA) & status[0]) |\n"
      "              ((opcode == 4'hB) & status[1])) %s <= %s + {4'b0000, "
      "imm};\n"
      "          state <= 2'b00;\n"
      "        end\n"
      "      endcase\n"
      "    end\n"
      "  end\n",
      pc.c_str(), instr.c_str(), pc.c_str(), pc.c_str(), pc.c_str(),
      pc.c_str());
  os << format("  assign %s = alu_out_q;\n", result.c_str());
  os << "endmodule\n";
  return os.str();
}

}  // namespace gnn4ip::data
