#include "data/netlist.h"

#include <sstream>

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::data {

std::string Netlist::to_verilog() const {
  std::ostringstream os;
  os << "module " << module_name << " (";
  bool first = true;
  for (const std::string& in : inputs) {
    if (!first) os << ", ";
    os << in;
    first = false;
  }
  for (const std::string& out : outputs) {
    if (!first) os << ", ";
    os << out;
    first = false;
  }
  os << ");\n";
  for (const std::string& in : inputs) os << "  input " << in << ";\n";
  for (const std::string& out : outputs) os << "  output " << out << ";\n";
  // Internal wires: every gate output that is not a port.
  for (const Gate& g : gates) {
    bool is_port = false;
    for (const std::string& out : outputs) {
      if (g.output == out) {
        is_port = true;
        break;
      }
    }
    if (!is_port) os << "  wire " << g.output << ";\n";
  }
  for (const Gate& g : gates) {
    os << "  " << g.type << " (" << g.output;
    for (const std::string& in : g.inputs) os << ", " << in;
    os << ");\n";
  }
  os << "endmodule\n";
  return os.str();
}

namespace {

bool eval_gate(const std::string& type, const std::vector<bool>& ins) {
  GNN4IP_ENSURE(!ins.empty(), "gate with no input values");
  if (type == "not") return !ins.front();
  if (type == "buf") return ins.front();
  bool acc = ins.front();
  for (std::size_t i = 1; i < ins.size(); ++i) {
    if (type == "and" || type == "nand") {
      acc = acc && ins[i];
    } else if (type == "or" || type == "nor") {
      acc = acc || ins[i];
    } else if (type == "xor" || type == "xnor") {
      acc = acc != ins[i];
    } else {
      GNN4IP_ENSURE(false, "unknown gate type '" + type + "'");
    }
  }
  if (type == "nand" || type == "nor" || type == "xnor") return !acc;
  return acc;
}

}  // namespace

std::map<std::string, bool> evaluate(const Netlist& netlist,
                                     const std::map<std::string, bool>& inputs) {
  std::map<std::string, bool> values = inputs;
  for (const std::string& in : netlist.inputs) {
    GNN4IP_ENSURE(values.count(in) > 0, "missing input value for " + in);
  }
  // Fixpoint evaluation: gate order is arbitrary after obfuscation, so
  // sweep until no gate fires (≤ #gates sweeps for acyclic netlists).
  std::vector<bool> done(netlist.gates.size(), false);
  std::size_t remaining = netlist.gates.size();
  for (std::size_t pass = 0; pass <= netlist.gates.size() && remaining > 0;
       ++pass) {
    bool progressed = false;
    for (std::size_t i = 0; i < netlist.gates.size(); ++i) {
      if (done[i]) continue;
      const Gate& g = netlist.gates[i];
      std::vector<bool> ins;
      ins.reserve(g.inputs.size());
      bool ready = true;
      for (const std::string& in : g.inputs) {
        const auto it = values.find(in);
        if (it == values.end()) {
          ready = false;
          break;
        }
        ins.push_back(it->second);
      }
      if (!ready) continue;
      values[g.output] = eval_gate(g.type, ins);
      done[i] = true;
      --remaining;
      progressed = true;
    }
    if (!progressed) break;
  }
  GNN4IP_ENSURE(remaining == 0,
                "netlist contains undriven nets or a combinational cycle");
  return values;
}

void set_bus(std::map<std::string, bool>& values, const std::string& prefix,
             std::size_t width, unsigned long long value) {
  for (std::size_t i = 0; i < width; ++i) {
    values[util::format("%s_%zu", prefix.c_str(), i)] =
        ((value >> i) & 1ULL) != 0;
  }
}

unsigned long long get_bus(const std::map<std::string, bool>& values,
                           const std::string& prefix, std::size_t width) {
  unsigned long long out = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const auto it = values.find(util::format("%s_%zu", prefix.c_str(), i));
    GNN4IP_ENSURE(it != values.end(), "missing bus bit " + prefix);
    if (it->second) out |= 1ULL << i;
  }
  return out;
}

NetlistBuilder::NetlistBuilder(std::string module_name) {
  netlist_.module_name = std::move(module_name);
}

Bit NetlistBuilder::input(const std::string& name) {
  netlist_.inputs.push_back(name);
  return name;
}

Bus NetlistBuilder::input_bus(const std::string& name, std::size_t width) {
  Bus bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus.push_back(input(util::format("%s_%zu", name.c_str(), i)));
  }
  return bus;
}

void NetlistBuilder::output(const std::string& name, const Bit& src) {
  GNN4IP_ENSURE(!src.empty(), "output driven by empty net");
  netlist_.outputs.push_back(name);
  netlist_.gates.push_back(Gate{"buf", name, {src}});
}

void NetlistBuilder::output_bus(const std::string& name, const Bus& src) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    output(util::format("%s_%zu", name.c_str(), i), src[i]);
  }
}

Bit NetlistBuilder::fresh() {
  return util::format("n%zu", next_wire_++);
}

Bit NetlistBuilder::gate(const std::string& type,
                         const std::vector<Bit>& inputs) {
  GNN4IP_ENSURE(!inputs.empty(), "gate without inputs");
  for (const Bit& in : inputs) {
    GNN4IP_ENSURE(!in.empty(), "gate input is an empty net");
  }
  Bit out = fresh();
  netlist_.gates.push_back(Gate{type, out, inputs});
  return out;
}

namespace {

Bit reduce_tree(NetlistBuilder& b, const std::string& type,
                std::vector<Bit> xs) {
  GNN4IP_ENSURE(!xs.empty(), "reduction over empty set");
  while (xs.size() > 1) {
    std::vector<Bit> next;
    next.reserve((xs.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      next.push_back(b.gate(type, {xs[i], xs[i + 1]}));
    }
    if (xs.size() % 2 == 1) next.push_back(xs.back());
    xs = std::move(next);
  }
  return xs.front();
}

}  // namespace

Bit NetlistBuilder::and_tree(const std::vector<Bit>& xs) {
  return reduce_tree(*this, "and", xs);
}

Bit NetlistBuilder::or_tree(const std::vector<Bit>& xs) {
  return reduce_tree(*this, "or", xs);
}

Bit NetlistBuilder::xor_tree(const std::vector<Bit>& xs) {
  return reduce_tree(*this, "xor", xs);
}

Bit NetlistBuilder::mux2(const Bit& sel, const Bit& a, const Bit& b) {
  const Bit nsel = not1(sel);
  const Bit ta = and2(sel, a);
  const Bit tb = and2(nsel, b);
  return or2(ta, tb);
}

Bit NetlistBuilder::const_one() {
  if (cached_one_.empty()) {
    GNN4IP_ENSURE(!netlist_.inputs.empty(),
                  "const_one needs at least one declared input");
    const Bit x = netlist_.inputs.front();
    cached_one_ = or2(x, not1(x));
  }
  return cached_one_;
}

Bit NetlistBuilder::const_zero() {
  if (cached_zero_.empty()) {
    GNN4IP_ENSURE(!netlist_.inputs.empty(),
                  "const_zero needs at least one declared input");
    const Bit x = netlist_.inputs.front();
    cached_zero_ = and2(x, not1(x));
  }
  return cached_zero_;
}

NetlistBuilder::AddResult NetlistBuilder::ripple_add(const Bus& a,
                                                     const Bus& b,
                                                     const Bit& cin) {
  GNN4IP_ENSURE(a.size() == b.size() && !a.empty(),
                "ripple_add requires equal non-empty widths");
  AddResult result;
  result.sum.reserve(a.size());
  Bit carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Bit axb = xor2(a[i], b[i]);
    if (carry.empty()) {
      // First stage without carry-in: half adder.
      result.sum.push_back(buf1(axb));
      carry = and2(a[i], b[i]);
    } else {
      result.sum.push_back(xor2(axb, carry));
      const Bit t1 = and2(axb, carry);
      const Bit t2 = and2(a[i], b[i]);
      carry = or2(t1, t2);
    }
  }
  result.carry = carry;
  return result;
}

NetlistBuilder::AddResult NetlistBuilder::subtract(const Bus& a,
                                                   const Bus& b) {
  // a + ~b + 1.
  const Bus nb = invert(b);
  return ripple_add(a, nb, const_one());
}

Bus NetlistBuilder::bitwise(const std::string& type, const Bus& a,
                            const Bus& b) {
  GNN4IP_ENSURE(a.size() == b.size(), "bitwise width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate(type, {a[i], b[i]}));
  }
  return out;
}

Bus NetlistBuilder::invert(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (const Bit& x : a) out.push_back(not1(x));
  return out;
}

Bus NetlistBuilder::mux_bus(const Bit& sel, const Bus& a, const Bus& b) {
  GNN4IP_ENSURE(a.size() == b.size(), "mux_bus width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(mux2(sel, a[i], b[i]));
  }
  return out;
}

Bit NetlistBuilder::equals(const Bus& a, const Bus& b) {
  GNN4IP_ENSURE(a.size() == b.size() && !a.empty(), "equals width mismatch");
  std::vector<Bit> eq_bits;
  eq_bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq_bits.push_back(xnor2(a[i], b[i]));
  }
  return and_tree(eq_bits);
}

Bus NetlistBuilder::multiply(const Bus& a, const Bus& b) {
  GNN4IP_ENSURE(!a.empty() && !b.empty(), "multiply on empty bus");
  const std::size_t out_width = a.size() + b.size();
  // Partial products: row j = (a AND b[j]) << j, accumulated by ripple
  // adders — the classic array-multiplier structure of ISCAS c6288.
  Bus acc(out_width);
  const Bit zero = const_zero();
  for (Bit& x : acc) x = zero;
  for (std::size_t j = 0; j < b.size(); ++j) {
    Bus row(out_width, zero);
    for (std::size_t i = 0; i < a.size(); ++i) {
      row[i + j] = and2(a[i], b[j]);
    }
    acc = ripple_add(acc, row).sum;
  }
  return acc;
}

}  // namespace gnn4ip::data
