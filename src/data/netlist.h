// Bit-level gate netlist representation and builder.
//
// The paper's netlist corpus is Verilog built from primitive gates; this
// module provides (a) a Netlist value type the obfuscator can transform,
// and (b) a builder with combinational macros (adders, muxes, decoders,
// comparators) used by the ISCAS'85 stand-ins and the structural family
// generators. Emission produces flat gate-level Verilog consumable by
// the same DFG pipeline as RTL.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gnn4ip::data {

/// One primitive gate instance. `type` ∈ {and, or, xor, xnor, nand, nor,
/// not, buf}; `inputs` size ≥ 1 (exactly 1 for not/buf).
struct Gate {
  std::string type;
  std::string output;
  std::vector<std::string> inputs;
};

/// Flat single-module gate-level netlist.
struct Netlist {
  std::string module_name;
  std::vector<std::string> inputs;    // input port nets
  std::vector<std::string> outputs;   // output port nets
  std::vector<Gate> gates;

  [[nodiscard]] std::string to_verilog() const;
  [[nodiscard]] std::size_t num_gates() const { return gates.size(); }
};

/// Net name type aliases for readability in generator code.
using Bit = std::string;
using Bus = std::vector<Bit>;

/// Evaluate a combinational netlist on concrete input values (fixpoint
/// over the gate list, so gate order does not matter). Returns values for
/// every net. Throws util::ContractViolation on missing inputs or
/// combinational cycles — both indicate generator/obfuscator bugs.
/// This is the oracle behind the obfuscation behavior-preservation tests.
[[nodiscard]] std::map<std::string, bool> evaluate(
    const Netlist& netlist, const std::map<std::string, bool>& inputs);

/// Convenience: pack a bus value (LSB-first names `prefix_0`...) from an
/// unsigned integer into an input map.
void set_bus(std::map<std::string, bool>& values, const std::string& prefix,
             std::size_t width, unsigned long long value);

/// Read a bus value from an evaluation result.
[[nodiscard]] unsigned long long get_bus(
    const std::map<std::string, bool>& values, const std::string& prefix,
    std::size_t width);

/// Incremental netlist constructor with fresh-wire management.
class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string module_name);

  Bit input(const std::string& name);
  /// Declares inputs name_0 .. name_{width-1}, LSB first.
  Bus input_bus(const std::string& name, std::size_t width);

  /// Declare an output port driven by `src` (a buf gate bridges them).
  void output(const std::string& name, const Bit& src);
  /// Declare outputs name_0.. driven by `src` bits, LSB first.
  void output_bus(const std::string& name, const Bus& src);

  /// Fresh internal wire name.
  Bit fresh();

  /// Emit a gate; returns its output wire (freshly created).
  Bit gate(const std::string& type, const std::vector<Bit>& inputs);

  // Two-input conveniences.
  Bit and2(const Bit& a, const Bit& b) { return gate("and", {a, b}); }
  Bit or2(const Bit& a, const Bit& b) { return gate("or", {a, b}); }
  Bit xor2(const Bit& a, const Bit& b) { return gate("xor", {a, b}); }
  Bit xnor2(const Bit& a, const Bit& b) { return gate("xnor", {a, b}); }
  Bit nand2(const Bit& a, const Bit& b) { return gate("nand", {a, b}); }
  Bit nor2(const Bit& a, const Bit& b) { return gate("nor", {a, b}); }
  Bit not1(const Bit& a) { return gate("not", {a}); }
  Bit buf1(const Bit& a) { return gate("buf", {a}); }

  /// Wide reductions (balanced trees).
  Bit and_tree(const std::vector<Bit>& xs);
  Bit or_tree(const std::vector<Bit>& xs);
  Bit xor_tree(const std::vector<Bit>& xs);

  /// 2:1 mux out = sel ? a : b.
  Bit mux2(const Bit& sel, const Bit& a, const Bit& b);

  /// Constant nets derived structurally from an input (x OR ~x, x AND ~x).
  Bit const_one();
  Bit const_zero();

  // --- word-level macros (LSB-first buses) ---------------------------------
  struct AddResult {
    Bus sum;
    Bit carry;
  };
  /// Ripple-carry adder; `cin` may be empty (treated as 0 structurally).
  AddResult ripple_add(const Bus& a, const Bus& b, const Bit& cin = {});
  /// a − b via two's complement (returns borrow-free sum bits).
  AddResult subtract(const Bus& a, const Bus& b);
  /// Bitwise ops over equal-width buses.
  Bus bitwise(const std::string& type, const Bus& a, const Bus& b);
  Bus invert(const Bus& a);
  /// Word 2:1 mux.
  Bus mux_bus(const Bit& sel, const Bus& a, const Bus& b);
  /// Equality comparator (1 bit out).
  Bit equals(const Bus& a, const Bus& b);
  /// Unsigned array multiplier (partial products + ripple reduction).
  Bus multiply(const Bus& a, const Bus& b);

  [[nodiscard]] const Netlist& netlist() const { return netlist_; }
  [[nodiscard]] Netlist take() { return std::move(netlist_); }

 private:
  Netlist netlist_;
  std::size_t next_wire_ = 0;
  Bit cached_one_;
  Bit cached_zero_;
};

}  // namespace gnn4ip::data
