#include "data/obfuscate.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::data {
namespace {

/// Collects port names (which must not be renamed or retyped).
std::set<std::string> port_set(const Netlist& n) {
  std::set<std::string> ports(n.inputs.begin(), n.inputs.end());
  ports.insert(n.outputs.begin(), n.outputs.end());
  return ports;
}

class Obfuscator {
 public:
  Obfuscator(Netlist netlist, util::Rng& rng)
      : n_(std::move(netlist)), rng_(rng), ports_(port_set(n_)) {
    // Find a safe starting index for fresh wires.
    next_fresh_ = n_.gates.size() * 4 + 17;
  }

  Bit fresh() { return util::format("ob%zu", next_fresh_++); }

  Bit const_one() {
    if (one_.empty()) {
      GNN4IP_ENSURE(!n_.inputs.empty(), "netlist without inputs");
      const Bit x = n_.inputs.front();
      const Bit nx = fresh();
      n_.gates.push_back(Gate{"not", nx, {x}});
      one_ = fresh();
      n_.gates.push_back(Gate{"or", one_, {x, nx}});
      // Splicing dummy logic *onto* the constant-generator nets would
      // close a combinational loop (one -> and(one,...) -> one).
      protected_nets_.insert(nx);
      protected_nets_.insert(one_);
    }
    return one_;
  }

  Bit const_zero() {
    if (zero_.empty()) {
      GNN4IP_ENSURE(!n_.inputs.empty(), "netlist without inputs");
      const Bit x = n_.inputs.front();
      const Bit nx = fresh();
      n_.gates.push_back(Gate{"not", nx, {x}});
      zero_ = fresh();
      n_.gates.push_back(Gate{"and", zero_, {x, nx}});
      protected_nets_.insert(nx);
      protected_nets_.insert(zero_);
    }
    return zero_;
  }

  /// Insert NOT-NOT (or buf) on randomly chosen gate inputs.
  void insert_pairs(double inverter_rate, double buffer_rate) {
    std::vector<Gate> added;
    for (Gate& g : n_.gates) {
      for (Bit& in : g.inputs) {
        const double roll = rng_.next_double();
        if (roll < inverter_rate) {
          const Bit m1 = fresh();
          const Bit m2 = fresh();
          added.push_back(Gate{"not", m1, {in}});
          added.push_back(Gate{"not", m2, {m1}});
          in = m2;
        } else if (roll < inverter_rate + buffer_rate) {
          const Bit m = fresh();
          added.push_back(Gate{"buf", m, {in}});
          in = m;
        }
      }
    }
    n_.gates.insert(n_.gates.end(), std::make_move_iterator(added.begin()),
                    std::make_move_iterator(added.end()));
  }

  /// Rewrite a fraction of gates into an equivalent different basis.
  void decompose(double rate) {
    std::vector<Gate> rebuilt;
    rebuilt.reserve(n_.gates.size());
    for (const Gate& g : n_.gates) {
      if (g.inputs.size() != 2 || !rng_.flip(rate)) {
        rebuilt.push_back(g);
        continue;
      }
      const Bit& a = g.inputs[0];
      const Bit& b = g.inputs[1];
      if (g.type == "and") {
        const Bit t = fresh();
        rebuilt.push_back(Gate{"nand", t, {a, b}});
        rebuilt.push_back(Gate{"not", g.output, {t}});
      } else if (g.type == "or") {
        const Bit t = fresh();
        rebuilt.push_back(Gate{"nor", t, {a, b}});
        rebuilt.push_back(Gate{"not", g.output, {t}});
      } else if (g.type == "xor") {
        const Bit t = fresh();
        const Bit u = fresh();
        const Bit v = fresh();
        rebuilt.push_back(Gate{"nand", t, {a, b}});
        rebuilt.push_back(Gate{"nand", u, {a, t}});
        rebuilt.push_back(Gate{"nand", v, {b, t}});
        rebuilt.push_back(Gate{"nand", g.output, {u, v}});
      } else if (g.type == "xnor") {
        const Bit t = fresh();
        const Bit u = fresh();
        const Bit v = fresh();
        const Bit w = fresh();
        rebuilt.push_back(Gate{"nand", t, {a, b}});
        rebuilt.push_back(Gate{"nand", u, {a, t}});
        rebuilt.push_back(Gate{"nand", v, {b, t}});
        rebuilt.push_back(Gate{"nand", w, {u, v}});
        rebuilt.push_back(Gate{"not", g.output, {w}});
      } else if (g.type == "nand") {
        const Bit t = fresh();
        rebuilt.push_back(Gate{"and", t, {a, b}});
        rebuilt.push_back(Gate{"not", g.output, {t}});
      } else if (g.type == "nor") {
        const Bit t = fresh();
        rebuilt.push_back(Gate{"or", t, {a, b}});
        rebuilt.push_back(Gate{"not", g.output, {t}});
      } else {
        rebuilt.push_back(g);
      }
    }
    n_.gates = std::move(rebuilt);
  }

  /// Splice dummy logic: w' = AND(w, 1) or OR(w, 0) between a driver and
  /// its consumers.
  void add_dummy(int count) {
    for (int k = 0; k < count; ++k) {
      if (n_.gates.empty()) return;
      // Pick a random gate output that is not a port output.
      const std::size_t gi =
          static_cast<std::size_t>(rng_.next_below(n_.gates.size()));
      const Bit victim = n_.gates[gi].output;
      if (ports_.count(victim) > 0 || protected_nets_.count(victim) > 0) {
        continue;
      }
      const bool use_and = rng_.flip(0.5);
      const Bit cnet = use_and ? const_one() : const_zero();
      const Bit replacement = fresh();
      // Rewire consumers of `victim` to `replacement`.
      for (Gate& g : n_.gates) {
        for (Bit& in : g.inputs) {
          if (in == victim) in = replacement;
        }
      }
      n_.gates.push_back(Gate{use_and ? "and" : "or", replacement,
                              {victim, cnet}});
    }
  }

  void rename_wires() {
    std::map<std::string, std::string> remap;
    for (const Gate& g : n_.gates) {
      if (ports_.count(g.output) == 0 && remap.count(g.output) == 0) {
        remap[g.output] = util::format("w%zu", remap.size());
      }
    }
    for (Gate& g : n_.gates) {
      const auto out_it = remap.find(g.output);
      if (out_it != remap.end()) g.output = out_it->second;
      for (Bit& in : g.inputs) {
        const auto in_it = remap.find(in);
        if (in_it != remap.end()) in = in_it->second;
      }
    }
  }

  void shuffle_gates() { rng_.shuffle(n_.gates); }

  Netlist take() { return std::move(n_); }

 private:
  Netlist n_;
  util::Rng& rng_;
  std::set<std::string> ports_;
  std::set<std::string> protected_nets_;
  std::size_t next_fresh_ = 0;
  Bit one_;
  Bit zero_;
};

}  // namespace

Netlist obfuscate(const Netlist& input, const ObfuscationConfig& config,
                  util::Rng& rng) {
  Obfuscator ob(input, rng);
  if (config.decompose_rate > 0.0) ob.decompose(config.decompose_rate);
  if (config.inverter_pair_rate > 0.0 || config.buffer_rate > 0.0) {
    ob.insert_pairs(config.inverter_pair_rate, config.buffer_rate);
  }
  if (config.dummy_gates > 0) ob.add_dummy(config.dummy_gates);
  if (config.rename_wires) ob.rename_wires();
  if (config.shuffle_gates) ob.shuffle_gates();
  return ob.take();
}

Netlist restructure(const Netlist& input, util::Rng& rng) {
  ObfuscationConfig mild;
  mild.inverter_pair_rate = 0.0;
  mild.buffer_rate = 0.02;
  mild.decompose_rate = 0.25;
  mild.dummy_gates = 0;
  mild.rename_wires = true;
  mild.shuffle_gates = true;
  return obfuscate(input, mild, rng);
}

}  // namespace gnn4ip::data
