// Corpus assembly: the synthetic stand-in for the paper's private
// collection of 50 designs / 390 RTL codes / 143 netlists.
//
// RTL corpus: every family in rtl_designs.h × N instances (style cycled,
// naming/order seeded per instance).
// Netlist corpus: structural families built with NetlistBuilder × N
// instances via restructure() (models different synthesis runs).
// ISCAS set: the six Table III stand-ins plus obfuscated instances.
#pragma once

#include <string>
#include <vector>

#include "data/iscas.h"
#include "data/netlist.h"
#include "data/obfuscate.h"

namespace gnn4ip::data {

/// One corpus entry: Verilog text plus labels.
struct CorpusItem {
  std::string name;    // unique instance name, e.g. "alu#3"
  std::string design;  // family key — equal keys are piracy pairs
  std::string kind;    // "rtl" or "netlist"
  std::string verilog;
};

struct RtlCorpusOptions {
  int instances_per_family = 8;
  std::uint64_t seed = 11;
  /// Restrict to these families (empty = all registered families).
  std::vector<std::string> families;
};

[[nodiscard]] std::vector<CorpusItem> build_rtl_corpus(
    const RtlCorpusOptions& options = {});

struct NetlistCorpusOptions {
  int instances_per_family = 6;
  std::uint64_t seed = 13;
  /// Include the ISCAS'85 stand-ins plus obfuscated instances, mirroring
  /// the paper's netlist dataset (its 143 netlists cover the TrustHub
  /// obfuscated ISCAS corpus used in §IV-E).
  bool include_iscas = true;
  int iscas_obfuscated_per_benchmark = 5;
  ObfuscationConfig iscas_obfuscation;
};

/// Structural netlist family names (for tests/reporting).
[[nodiscard]] std::vector<std::string> netlist_family_names();

/// Base (un-restructured) netlist of a structural family.
[[nodiscard]] Netlist build_netlist_family(const std::string& family);

[[nodiscard]] std::vector<CorpusItem> build_netlist_corpus(
    const NetlistCorpusOptions& options = {});

struct IscasCorpusOptions {
  /// Obfuscated instances per benchmark (paper Table III has 19–30).
  int obfuscated_per_benchmark = 20;
  std::uint64_t seed = 17;
  ObfuscationConfig obfuscation;
};

/// The six originals; design key = benchmark name.
[[nodiscard]] std::vector<CorpusItem> build_iscas_originals();

/// Obfuscated instances (design key = benchmark name, so original ×
/// obfuscated pairs are "piracy").
[[nodiscard]] std::vector<CorpusItem> build_iscas_obfuscated(
    const IscasCorpusOptions& options = {});

/// MIPS-only RTL instances for the Fig. 4(b,c) embedding visualization:
/// `per_design` instances each of pipeline and single-cycle MIPS.
[[nodiscard]] std::vector<CorpusItem> build_mips_visualization_corpus(
    int per_design, std::uint64_t seed = 23);

}  // namespace gnn4ip::data
