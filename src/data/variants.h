// Behavior-preserving variation engine for RTL generators.
//
// Paper corpus structure: each of 50 designs has several "hardware
// instances" — codes that differ in style, naming, and structure but
// implement the same design (the Fig. 1 adder pair is the canonical
// example). Generators consult a VariantHelper to vary:
//   * identifier spellings (synonym pools + deterministic suffixes),
//   * statement order for independent statements,
//   * expression style (operator form vs ternary vs if/else),
//   * modularization (flat vs wrapper module).
// All choices derive from the variant seed, so instances are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gnn4ip::data {

struct RtlVariant {
  /// Coarse structural style axis; families define 2–4 styles each.
  int style = 0;
  /// Fine-grained naming/ordering randomization.
  std::uint64_t seed = 0;
};

class VariantHelper {
 public:
  explicit VariantHelper(const RtlVariant& variant)
      : style_(variant.style), rng_(variant.seed * 0x9E3779B97F4A7C15ULL + 1) {}

  [[nodiscard]] int style() const { return style_; }

  /// Pick a spelling for a logical signal: one of the synonyms, possibly
  /// suffixed. The same call sequence yields the same names for equal
  /// seeds, so generators call it once per signal and reuse the result.
  [[nodiscard]] std::string name(const std::vector<std::string>& synonyms);

  /// Deterministic coin flip / die roll for style micro-decisions.
  [[nodiscard]] bool flip() { return rng_.flip(0.5); }
  [[nodiscard]] std::size_t pick(std::size_t bound) {
    return static_cast<std::size_t>(rng_.next_below(bound));
  }

  /// Randomly permute independent statements.
  void shuffle_statements(std::vector<std::string>& statements) {
    rng_.shuffle(statements);
  }

  /// Swap operand spellings of a commutative operator half the time.
  [[nodiscard]] std::pair<std::string, std::string> commute(
      std::string a, std::string b);

 private:
  int style_;
  util::Rng rng_;
};

/// Join statement lines with newlines (convenience for generators).
[[nodiscard]] std::string lines(const std::vector<std::string>& statements);

}  // namespace gnn4ip::data
