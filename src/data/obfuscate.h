// Behavior-preserving netlist transformations.
//
// Two use cases, mirroring the paper:
//  * restructure() — mild transforms (renaming, gate decomposition,
//    reordering) that model the same design passing through a different
//    synthesis run; used to create instances for the netlist corpus.
//  * obfuscate() — the TrustHub-style obfuscations of Table III:
//    inverter-pair and buffer-chain insertion, dummy logic driven by
//    structurally derived constants, gate decomposition, and full wire
//    renaming. Functionality is preserved by construction.
#pragma once

#include "data/netlist.h"
#include "util/rng.h"

namespace gnn4ip::data {

struct ObfuscationConfig {
  /// Fraction of gate input connections receiving an inverter pair.
  double inverter_pair_rate = 0.05;
  /// Fraction of gate input connections receiving a buffer.
  double buffer_rate = 0.05;
  /// Fraction of gates rewritten into a different gate basis
  /// (and→nand+not, or→nor+not, xor→nand form, ...).
  double decompose_rate = 0.2;
  /// Number of dummy gates spliced onto random wires (AND with constant
  /// one / OR with constant zero).
  int dummy_gates = 8;
  /// Rename every internal wire.
  bool rename_wires = true;
  /// Shuffle gate emission order.
  bool shuffle_gates = true;
};

/// Apply `config` to a copy of `input`.
[[nodiscard]] Netlist obfuscate(const Netlist& input,
                                const ObfuscationConfig& config,
                                util::Rng& rng);

/// Mild restructuring preset (same-design synthesis variant).
[[nodiscard]] Netlist restructure(const Netlist& input, util::Rng& rng);

}  // namespace gnn4ip::data
