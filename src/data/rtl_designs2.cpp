// Second batch of RTL circuit families. The paper's corpus spans 50
// distinct designs; a crowded design space is what pushes cross-design
// similarity scores toward zero (Table II case 1), so the corpus ships
// with as many structurally diverse families as practical.
#include <sstream>

#include "data/rtl_designs.h"
#include "util/string_util.h"

namespace gnn4ip::data {

using util::format;

// ---------------------------------------------------------------------------
// barrel_shifter — 8-bit left rotate by 3-bit amount (2 styles).
// ---------------------------------------------------------------------------
std::string gen_barrel_shifter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string din = h.name({"d", "data_in", "word"});
  const std::string amt = h.name({"amt", "shift", "rot"});
  const std::string out = h.name({"q", "data_out", "rotated"});
  const std::string mod = h.name({"barrel8", "rotator", "shift_unit"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s);\n"
      "  input [7:0] %s;\n  input [2:0] %s;\n  output [7:0] %s;\n",
      mod.c_str(), din.c_str(), amt.c_str(), out.c_str(), din.c_str(),
      amt.c_str(), out.c_str());
  if (v.style % 2 == 0) {
    // Three mux stages (1, 2, 4).
    os << "  wire [7:0] s1, s2;\n";
    os << format(
        "  assign s1 = %s[0] ? {%s[6:0], %s[7]} : %s;\n", amt.c_str(),
        din.c_str(), din.c_str(), din.c_str());
    os << format("  assign s2 = %s[1] ? {s1[5:0], s1[7:6]} : s1;\n",
                 amt.c_str());
    os << format("  assign %s = %s[2] ? {s2[3:0], s2[7:4]} : s2;\n",
                 out.c_str(), amt.c_str());
  } else {
    os << format(
        "  wire [15:0] doubled;\n"
        "  assign doubled = {%s, %s} << %s;\n"
        "  assign %s = doubled[15:8];\n",
        din.c_str(), din.c_str(), amt.c_str(), out.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// bcd_counter — two-digit BCD counter with carry (2 styles).
// ---------------------------------------------------------------------------
std::string gen_bcd_counter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string ones = h.name({"ones", "digit0", "units"});
  const std::string tens = h.name({"tens", "digit1"});
  const std::string mod = h.name({"bcd_counter", "decade_cnt", "bcd2"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s, %s);\n"
      "  input %s;\n  input %s;\n"
      "  output reg [3:0] %s;\n  output reg [3:0] %s;\n",
      mod.c_str(), clk.c_str(), rst.c_str(), ones.c_str(), tens.c_str(),
      clk.c_str(), rst.c_str(), ones.c_str(), tens.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n      %s <= 4'd0;\n      %s <= 4'd0;\n"
        "    end else begin\n"
        "      if (%s == 4'd9) begin\n"
        "        %s <= 4'd0;\n"
        "        if (%s == 4'd9) %s <= 4'd0;\n"
        "        else %s <= %s + 4'd1;\n"
        "      end else %s <= %s + 4'd1;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), ones.c_str(), tens.c_str(), ones.c_str(),
        ones.c_str(), tens.c_str(), tens.c_str(), tens.c_str(), tens.c_str(),
        ones.c_str(), ones.c_str());
  } else {
    os << format(
        "  wire wrap0, wrap1;\n"
        "  assign wrap0 = (%s == 4'd9);\n"
        "  assign wrap1 = wrap0 & (%s == 4'd9);\n"
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n      %s <= 4'd0;\n      %s <= 4'd0;\n"
        "    end else begin\n"
        "      %s <= wrap0 ? 4'd0 : %s + 4'd1;\n"
        "      %s <= wrap1 ? 4'd0 : (wrap0 ? %s + 4'd1 : %s);\n"
        "    end\n"
        "  end\n",
        ones.c_str(), tens.c_str(), clk.c_str(), rst.c_str(), ones.c_str(),
        tens.c_str(), ones.c_str(), ones.c_str(), tens.c_str(), tens.c_str(),
        tens.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// johnson_counter — 8-bit twisted-ring counter (2 styles).
// ---------------------------------------------------------------------------
std::string gen_johnson_counter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string q = h.name({"q", "ring", "jc_out"});
  const std::string mod = h.name({"johnson8", "twisted_ring", "moebius"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s);\n"
      "  input %s;\n  input %s;\n  output reg [7:0] %s;\n",
      mod.c_str(), clk.c_str(), rst.c_str(), q.c_str(), clk.c_str(),
      rst.c_str(), q.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h00;\n"
        "    else %s <= {%s[6:0], ~%s[7]};\n"
        "  end\n",
        clk.c_str(), rst.c_str(), q.c_str(), q.c_str(), q.c_str(),
        q.c_str());
  } else {
    os << format(
        "  wire feedback;\n  assign feedback = ~%s[7];\n"
        "  wire [7:0] next_q;\n"
        "  assign next_q = (%s << 1) | {7'b0000000, feedback};\n"
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h00;\n"
        "    else %s <= next_q;\n"
        "  end\n",
        q.c_str(), q.c_str(), clk.c_str(), rst.c_str(), q.c_str(),
        q.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// clock_divider — divide-by-2/4/8 with selectable tap (2 styles).
// ---------------------------------------------------------------------------
std::string gen_clock_divider(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string sel = h.name({"sel", "div_sel", "ratio"});
  const std::string out = h.name({"clk_out", "divided", "tick_out"});
  const std::string mod = h.name({"clk_div", "divider", "prescaler"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s, %s);\n"
      "  input %s;\n  input %s;\n  input [1:0] %s;\n  output %s;\n",
      mod.c_str(), clk.c_str(), rst.c_str(), sel.c_str(), out.c_str(),
      clk.c_str(), rst.c_str(), sel.c_str(), out.c_str());
  os << "  reg [3:0] div_cnt;\n";
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) div_cnt <= 4'h0;\n"
      "    else div_cnt <= div_cnt + 4'h1;\n"
      "  end\n",
      clk.c_str(), rst.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  assign %s = (%s == 2'b00) ? div_cnt[0] :\n"
        "              (%s == 2'b01) ? div_cnt[1] :\n"
        "              (%s == 2'b10) ? div_cnt[2] : div_cnt[3];\n",
        out.c_str(), sel.c_str(), sel.c_str(), sel.c_str());
  } else {
    os << format(
        "  reg tap;\n"
        "  always @(*) begin\n"
        "    case (%s)\n"
        "      2'b00: tap = div_cnt[0];\n"
        "      2'b01: tap = div_cnt[1];\n"
        "      2'b10: tap = div_cnt[2];\n"
        "      default: tap = div_cnt[3];\n"
        "    endcase\n"
        "  end\n"
        "  assign %s = tap;\n",
        sel.c_str(), out.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// debouncer — 4-sample agreement filter for a noisy input (2 styles).
// ---------------------------------------------------------------------------
std::string gen_debouncer(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string noisy = h.name({"noisy", "raw_in", "bouncy"});
  const std::string clean = h.name({"clean", "stable_out", "filtered"});
  const std::string mod = h.name({"debounce", "glitch_filter", "sync_filter"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s, %s);\n"
      "  input %s;\n  input %s;\n  input %s;\n  output reg %s;\n",
      mod.c_str(), clk.c_str(), rst.c_str(), noisy.c_str(), clean.c_str(),
      clk.c_str(), rst.c_str(), noisy.c_str(), clean.c_str());
  os << "  reg [3:0] history;\n";
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) history <= 4'h0;\n"
      "    else history <= {history[2:0], %s};\n"
      "  end\n",
      clk.c_str(), rst.c_str(), noisy.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 1'b0;\n"
        "    else if (history == 4'hF) %s <= 1'b1;\n"
        "    else if (history == 4'h0) %s <= 1'b0;\n"
        "  end\n",
        clk.c_str(), rst.c_str(), clean.c_str(), clean.c_str(),
        clean.c_str());
  } else {
    os << format(
        "  wire all_high, all_low;\n"
        "  assign all_high = &history;\n"
        "  assign all_low = ~(|history);\n"
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 1'b0;\n"
        "    else %s <= all_high | (%s & ~all_low);\n"
        "  end\n",
        clk.c_str(), rst.c_str(), clean.c_str(), clean.c_str(),
        clean.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// majority_voter — 7-input majority (2 styles: popcount vs logic).
// ---------------------------------------------------------------------------
std::string gen_majority_voter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string din = h.name({"votes", "inputs", "sensors"});
  const std::string out = h.name({"major", "decision", "voted"});
  const std::string mod = h.name({"majority7", "voter", "tmr_vote"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s);\n"
      "  input [6:0] %s;\n  output %s;\n",
      mod.c_str(), din.c_str(), out.c_str(), din.c_str(), out.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  wire [2:0] count;\n"
        "  assign count = {2'b00, %s[0]} + {2'b00, %s[1]} + {2'b00, %s[2]}\n"
        "               + {2'b00, %s[3]} + {2'b00, %s[4]} + {2'b00, %s[5]}\n"
        "               + {2'b00, %s[6]};\n"
        "  assign %s = (count >= 3'd4);\n",
        din.c_str(), din.c_str(), din.c_str(), din.c_str(), din.c_str(),
        din.c_str(), din.c_str(), out.c_str());
  } else {
    os << format(
        "  wire [1:0] pair0, pair1, pair2;\n"
        "  assign pair0 = {1'b0, %s[0]} + {1'b0, %s[1]};\n"
        "  assign pair1 = {1'b0, %s[2]} + {1'b0, %s[3]};\n"
        "  assign pair2 = {1'b0, %s[4]} + {1'b0, %s[5]};\n"
        "  wire [2:0] total;\n"
        "  assign total = {1'b0, pair0} + {1'b0, pair1} + {1'b0, pair2}\n"
        "               + {2'b00, %s[6]};\n"
        "  assign %s = total[2] & (total[1] | total[0]) | (total == 3'd4);\n",
        din.c_str(), din.c_str(), din.c_str(), din.c_str(), din.c_str(),
        din.c_str(), din.c_str(), out.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// popcount8 — population count (2 styles: tree vs nibble LUT).
// ---------------------------------------------------------------------------
std::string gen_popcount(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string din = h.name({"bits", "word", "vec"});
  const std::string cnt = h.name({"count", "ones_count", "popcnt"});
  const std::string mod = h.name({"popcount8", "ones_counter", "bitcount"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s);\n"
      "  input [7:0] %s;\n  output [3:0] %s;\n",
      mod.c_str(), din.c_str(), cnt.c_str(), din.c_str(), cnt.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  wire [1:0] p0, p1, p2, p3;\n"
        "  assign p0 = {1'b0, %s[0]} + {1'b0, %s[1]};\n"
        "  assign p1 = {1'b0, %s[2]} + {1'b0, %s[3]};\n"
        "  assign p2 = {1'b0, %s[4]} + {1'b0, %s[5]};\n"
        "  assign p3 = {1'b0, %s[6]} + {1'b0, %s[7]};\n"
        "  wire [2:0] q0, q1;\n"
        "  assign q0 = {1'b0, p0} + {1'b0, p1};\n"
        "  assign q1 = {1'b0, p2} + {1'b0, p3};\n"
        "  assign %s = {1'b0, q0} + {1'b0, q1};\n",
        din.c_str(), din.c_str(), din.c_str(), din.c_str(), din.c_str(),
        din.c_str(), din.c_str(), din.c_str(), cnt.c_str());
  } else {
    os << format(
        "  reg [2:0] lo, hi;\n"
        "  always @(*) begin\n"
        "    case (%s[3:0])\n"
        "      4'h0: lo = 3'd0;\n      4'h1: lo = 3'd1;\n"
        "      4'h2: lo = 3'd1;\n      4'h3: lo = 3'd2;\n"
        "      4'h4: lo = 3'd1;\n      4'h5: lo = 3'd2;\n"
        "      4'h6: lo = 3'd2;\n      4'h7: lo = 3'd3;\n"
        "      4'h8: lo = 3'd1;\n      4'h9: lo = 3'd2;\n"
        "      4'hA: lo = 3'd2;\n      4'hB: lo = 3'd3;\n"
        "      4'hC: lo = 3'd2;\n      4'hD: lo = 3'd3;\n"
        "      4'hE: lo = 3'd3;\n      default: lo = 3'd4;\n"
        "    endcase\n"
        "    case (%s[7:4])\n"
        "      4'h0: hi = 3'd0;\n      4'h1: hi = 3'd1;\n"
        "      4'h2: hi = 3'd1;\n      4'h3: hi = 3'd2;\n"
        "      4'h4: hi = 3'd1;\n      4'h5: hi = 3'd2;\n"
        "      4'h6: hi = 3'd2;\n      4'h7: hi = 3'd3;\n"
        "      4'h8: hi = 3'd1;\n      4'h9: hi = 3'd2;\n"
        "      4'hA: hi = 3'd2;\n      4'hB: hi = 3'd3;\n"
        "      4'hC: hi = 3'd2;\n      4'hD: hi = 3'd3;\n"
        "      4'hE: hi = 3'd3;\n      default: hi = 3'd4;\n"
        "    endcase\n"
        "  end\n"
        "  assign %s = {1'b0, lo} + {1'b0, hi};\n",
        din.c_str(), din.c_str(), cnt.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// divider4 — unrolled restoring divider, 4-bit / 4-bit (2 styles).
// ---------------------------------------------------------------------------
std::string gen_divider(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string num = h.name({"num", "dividend", "a"});
  const std::string den = h.name({"den", "divisor", "b"});
  const std::string quo = h.name({"quo", "quotient", "q"});
  const std::string rem = h.name({"rem", "remainder", "r"});
  const std::string mod = h.name({"div4", "divider", "div_unit"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s, %s);\n"
      "  input [3:0] %s;\n  input [3:0] %s;\n"
      "  output [3:0] %s;\n  output [3:0] %s;\n",
      mod.c_str(), num.c_str(), den.c_str(), quo.c_str(), rem.c_str(),
      num.c_str(), den.c_str(), quo.c_str(), rem.c_str());
  if (v.style % 2 == 0) {
    os << format("  assign %s = %s / %s;\n", quo.c_str(), num.c_str(),
                 den.c_str());
    os << format("  assign %s = %s %% %s;\n", rem.c_str(), num.c_str(),
                 den.c_str());
  } else {
    // Unrolled restoring division, MSB first.
    os << format(
        "  wire [4:0] r3, r2, r1, r0;\n"
        "  wire [4:0] t3, t2, t1, t0;\n"
        "  assign t3 = {4'b0000, %s[3]};\n"
        "  assign r3 = (t3 >= {1'b0, %s}) ? t3 - {1'b0, %s} : t3;\n"
        "  assign t2 = {r3[3:0], %s[2]};\n"
        "  assign r2 = (t2 >= {1'b0, %s}) ? t2 - {1'b0, %s} : t2;\n"
        "  assign t1 = {r2[3:0], %s[1]};\n"
        "  assign r1 = (t1 >= {1'b0, %s}) ? t1 - {1'b0, %s} : t1;\n"
        "  assign t0 = {r1[3:0], %s[0]};\n"
        "  assign r0 = (t0 >= {1'b0, %s}) ? t0 - {1'b0, %s} : t0;\n",
        num.c_str(), den.c_str(), den.c_str(), num.c_str(), den.c_str(),
        den.c_str(), num.c_str(), den.c_str(), den.c_str(), num.c_str(),
        den.c_str(), den.c_str());
    os << format(
        "  assign %s = {(t3 >= {1'b0, %s}), (t2 >= {1'b0, %s}),\n"
        "               (t1 >= {1'b0, %s}), (t0 >= {1'b0, %s})};\n",
        quo.c_str(), den.c_str(), den.c_str(), den.c_str(), den.c_str());
    os << format("  assign %s = r0[3:0];\n", rem.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// rr_arbiter — 4-requester round-robin arbiter (2 styles).
// ---------------------------------------------------------------------------
std::string gen_rr_arbiter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string req = h.name({"req", "requests", "bus_req"});
  const std::string grant = h.name({"grant", "gnt", "bus_gnt"});
  const std::string mod = h.name({"rr_arbiter4", "arbiter", "bus_arb"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s, %s);\n"
      "  input %s;\n  input %s;\n  input [3:0] %s;\n"
      "  output reg [3:0] %s;\n",
      mod.c_str(), clk.c_str(), rst.c_str(), req.c_str(), grant.c_str(),
      clk.c_str(), rst.c_str(), req.c_str(), grant.c_str());
  os << "  reg [1:0] last;\n  reg [3:0] next_grant;\n"
        "  reg [1:0] next_last;\n";
  // Priority rotation: search from last+1 onward.
  os << format(
      "  always @(*) begin\n"
      "    next_grant = 4'b0000;\n"
      "    next_last = last;\n"
      "    case (last)\n"
      "      2'd0: begin\n"
      "        if (%s[1]) begin next_grant = 4'b0010; next_last = 2'd1; end\n"
      "        else if (%s[2]) begin next_grant = 4'b0100; next_last = 2'd2; end\n"
      "        else if (%s[3]) begin next_grant = 4'b1000; next_last = 2'd3; end\n"
      "        else if (%s[0]) begin next_grant = 4'b0001; next_last = 2'd0; end\n"
      "      end\n"
      "      2'd1: begin\n"
      "        if (%s[2]) begin next_grant = 4'b0100; next_last = 2'd2; end\n"
      "        else if (%s[3]) begin next_grant = 4'b1000; next_last = 2'd3; end\n"
      "        else if (%s[0]) begin next_grant = 4'b0001; next_last = 2'd0; end\n"
      "        else if (%s[1]) begin next_grant = 4'b0010; next_last = 2'd1; end\n"
      "      end\n"
      "      2'd2: begin\n"
      "        if (%s[3]) begin next_grant = 4'b1000; next_last = 2'd3; end\n"
      "        else if (%s[0]) begin next_grant = 4'b0001; next_last = 2'd0; end\n"
      "        else if (%s[1]) begin next_grant = 4'b0010; next_last = 2'd1; end\n"
      "        else if (%s[2]) begin next_grant = 4'b0100; next_last = 2'd2; end\n"
      "      end\n"
      "      default: begin\n"
      "        if (%s[0]) begin next_grant = 4'b0001; next_last = 2'd0; end\n"
      "        else if (%s[1]) begin next_grant = 4'b0010; next_last = 2'd1; end\n"
      "        else if (%s[2]) begin next_grant = 4'b0100; next_last = 2'd2; end\n"
      "        else if (%s[3]) begin next_grant = 4'b1000; next_last = 2'd3; end\n"
      "      end\n"
      "    endcase\n"
      "  end\n",
      req.c_str(), req.c_str(), req.c_str(), req.c_str(), req.c_str(),
      req.c_str(), req.c_str(), req.c_str(), req.c_str(), req.c_str(),
      req.c_str(), req.c_str(), req.c_str(), req.c_str(), req.c_str(),
      req.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n"
        "      %s <= 4'b0000;\n      last <= 2'd3;\n"
        "    end else begin\n"
        "      %s <= next_grant;\n      last <= next_last;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), grant.c_str(), grant.c_str());
  } else {
    os << format(
        "  wire any_req;\n  assign any_req = |%s;\n"
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n"
        "      %s <= 4'b0000;\n      last <= 2'd3;\n"
        "    end else begin\n"
        "      %s <= any_req ? next_grant : 4'b0000;\n"
        "      last <= any_req ? next_last : last;\n"
        "    end\n"
        "  end\n",
        req.c_str(), clk.c_str(), rst.c_str(), grant.c_str(),
        grant.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// moving_average — 4-sample moving average filter (2 styles).
// ---------------------------------------------------------------------------
std::string gen_moving_average(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string sample = h.name({"sample", "adc_in", "x_in"});
  const std::string avg = h.name({"avg", "filtered", "y_out"});
  const std::string mod = h.name({"mavg4", "boxcar_filter", "smoother"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s, %s, %s);\n"
      "  input %s;\n  input %s;\n  input [7:0] %s;\n  output [7:0] %s;\n",
      mod.c_str(), clk.c_str(), rst.c_str(), sample.c_str(), avg.c_str(),
      clk.c_str(), rst.c_str(), sample.c_str(), avg.c_str());
  os << "  reg [7:0] w0, w1, w2, w3;\n";
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) begin\n"
      "      w0 <= 8'h00;\n      w1 <= 8'h00;\n"
      "      w2 <= 8'h00;\n      w3 <= 8'h00;\n"
      "    end else begin\n"
      "      w0 <= %s;\n      w1 <= w0;\n      w2 <= w1;\n      w3 <= w2;\n"
      "    end\n"
      "  end\n",
      clk.c_str(), rst.c_str(), sample.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  wire [9:0] total;\n"
        "  assign total = {2'b00, w0} + {2'b00, w1} + {2'b00, w2} + "
        "{2'b00, w3};\n"
        "  assign %s = total[9:2];\n",
        avg.c_str());
  } else {
    os << format(
        "  wire [8:0] s01, s23;\n"
        "  assign s01 = {1'b0, w0} + {1'b0, w1};\n"
        "  assign s23 = {1'b0, w2} + {1'b0, w3};\n"
        "  wire [9:0] total;\n"
        "  assign total = {1'b0, s01} + {1'b0, s23};\n"
        "  assign %s = total >> 2;\n",
        avg.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// sqrt4 — integer square root of an 8-bit value (2 styles).
// ---------------------------------------------------------------------------
std::string gen_sqrt(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string x = h.name({"x", "radicand", "value"});
  const std::string root = h.name({"root", "sqrt_out", "isqrt"});
  const std::string mod = h.name({"sqrt8", "isqrt_unit", "root_calc"});
  std::ostringstream os;
  os << format(
      "module %s (%s, %s);\n"
      "  input [7:0] %s;\n  output [3:0] %s;\n",
      mod.c_str(), x.c_str(), root.c_str(), x.c_str(), root.c_str());
  if (v.style % 2 == 0) {
    // Comparison ladder against the 16 perfect squares.
    os << format(
        "  assign %s = (%s >= 8'd225) ? 4'd15 :\n"
        "              (%s >= 8'd196) ? 4'd14 :\n"
        "              (%s >= 8'd169) ? 4'd13 :\n"
        "              (%s >= 8'd144) ? 4'd12 :\n"
        "              (%s >= 8'd121) ? 4'd11 :\n"
        "              (%s >= 8'd100) ? 4'd10 :\n"
        "              (%s >= 8'd81) ? 4'd9 :\n"
        "              (%s >= 8'd64) ? 4'd8 :\n"
        "              (%s >= 8'd49) ? 4'd7 :\n"
        "              (%s >= 8'd36) ? 4'd6 :\n"
        "              (%s >= 8'd25) ? 4'd5 :\n"
        "              (%s >= 8'd16) ? 4'd4 :\n"
        "              (%s >= 8'd9) ? 4'd3 :\n"
        "              (%s >= 8'd4) ? 4'd2 :\n"
        "              (%s >= 8'd1) ? 4'd1 : 4'd0;\n",
        root.c_str(), x.c_str(), x.c_str(), x.c_str(), x.c_str(), x.c_str(),
        x.c_str(), x.c_str(), x.c_str(), x.c_str(), x.c_str(), x.c_str(),
        x.c_str(), x.c_str(), x.c_str(), x.c_str());
  } else {
    // Bit-by-bit non-restoring method, unrolled for 4 result bits.
    os << format(
        "  wire [3:0] g3, g2, g1, g0;\n"
        "  assign g3 = 4'b1000;\n"
        "  wire ok3;\n  assign ok3 = ({4'b0000, g3} * {4'b0000, g3} <= "
        "{8'b00000000, %s});\n"
        "  assign g2 = (ok3 ? g3 : 4'b0000) | 4'b0100;\n"
        "  wire ok2;\n  assign ok2 = ({4'b0000, g2} * {4'b0000, g2} <= "
        "{8'b00000000, %s});\n"
        "  assign g1 = (ok2 ? g2 : (ok3 ? g3 : 4'b0000)) | 4'b0010;\n"
        "  wire ok1;\n  assign ok1 = ({4'b0000, g1} * {4'b0000, g1} <= "
        "{8'b00000000, %s});\n"
        "  assign g0 = (ok1 ? g1 : (ok2 ? g2 : (ok3 ? g3 : 4'b0000))) | "
        "4'b0001;\n"
        "  wire ok0;\n  assign ok0 = ({4'b0000, g0} * {4'b0000, g0} <= "
        "{8'b00000000, %s});\n"
        "  assign %s = ok0 ? g0 : (ok1 ? g1 : (ok2 ? g2 : (ok3 ? g3 : "
        "4'b0000)));\n",
        x.c_str(), x.c_str(), x.c_str(), x.c_str(), root.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace gnn4ip::data
