// Generators for the combinational, sequential, coding, and
// communication RTL families (processor families live in
// rtl_processors.cpp). Every generator must stay inside the Verilog
// subset of src/verilog (no for loops, no memories, no functions).
#include "data/rtl_designs.h"

#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace gnn4ip::data {

using util::format;

namespace {

/// ANSI vs non-ANSI module header for extra lexical diversity.
std::string module_header(VariantHelper& h, const std::string& mod_name,
                          const std::vector<std::string>& ansi_ports,
                          const std::vector<std::string>& plain_names,
                          const std::vector<std::string>& body_decls) {
  std::ostringstream os;
  if (h.flip()) {
    os << "module " << mod_name << " (\n  " << util::join(ansi_ports, ",\n  ")
       << "\n);\n";
  } else {
    os << "module " << mod_name << " (" << util::join(plain_names, ", ")
       << ");\n";
    for (const std::string& d : body_decls) os << "  " << d << ";\n";
  }
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// adder — the paper's Fig. 1 motivational design (3 styles).
// ---------------------------------------------------------------------------
std::string gen_adder(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string a = h.name({"A", "Num1", "opa", "x_in"});
  const std::string b = h.name({"B", "Num2", "opb", "y_in"});
  const std::string cin = h.name({"Cin", "carry_in", "ci"});
  const std::string sum = h.name({"Sum", "total", "s_out"});
  const std::string cout = h.name({"Cout", "carry_out", "co"});
  const std::string mod = h.name({"adder", "full_adder4", "add4"});
  std::ostringstream os;
  const int style = v.style % 3;
  if (style == 0) {
    // Behavioral, always block (paper "Adder1").
    os << module_header(
        h, mod,
        {format("input [3:0] %s", a.c_str()),
         format("input [3:0] %s", b.c_str()), format("input %s", cin.c_str()),
         format("output reg [3:0] %s", sum.c_str()),
         format("output reg %s", cout.c_str())},
        {a, b, cin, sum, cout},
        {format("input [3:0] %s", a.c_str()),
         format("input [3:0] %s", b.c_str()), format("input %s", cin.c_str()),
         format("output reg [3:0] %s", sum.c_str()),
         format("output reg %s", cout.c_str())});
    const auto [x, y] = h.commute(a, b);
    os << format("  always @(%s, %s, %s) begin\n", a.c_str(), b.c_str(),
                 cin.c_str());
    os << format("    {%s, %s} = %s + %s + {3'b000, %s};\n", cout.c_str(),
                 sum.c_str(), x.c_str(), y.c_str(), cin.c_str());
    os << "  end\n";
  } else if (style == 1) {
    // Dataflow: explicit carry chain with assigns.
    os << module_header(
        h, mod,
        {format("input [3:0] %s", a.c_str()),
         format("input [3:0] %s", b.c_str()), format("input %s", cin.c_str()),
         format("output [3:0] %s", sum.c_str()),
         format("output %s", cout.c_str())},
        {a, b, cin, sum, cout},
        {format("input [3:0] %s", a.c_str()),
         format("input [3:0] %s", b.c_str()), format("input %s", cin.c_str()),
         format("output [3:0] %s", sum.c_str()),
         format("output %s", cout.c_str())});
    os << "  wire c0, c1, c2;\n";
    std::vector<std::string> stmts;
    const char* carries[5] = {cin.c_str(), "c0", "c1", "c2", cout.c_str()};
    for (int i = 0; i < 4; ++i) {
      stmts.push_back(format("  assign %s[%d] = (%s[%d] ^ %s[%d]) ^ %s;",
                             sum.c_str(), i, a.c_str(), i, b.c_str(), i,
                             carries[i]));
      stmts.push_back(format(
          "  assign %s = (%s[%d] & %s[%d]) | ((%s[%d] ^ %s[%d]) & %s);",
          carries[i + 1], a.c_str(), i, b.c_str(), i, a.c_str(), i, b.c_str(),
          i, carries[i]));
    }
    h.shuffle_statements(stmts);
    os << lines(stmts);
  } else {
    // Gate primitives (paper "Adder2").
    os << module_header(
        h, mod,
        {format("input [3:0] %s", a.c_str()),
         format("input [3:0] %s", b.c_str()), format("input %s", cin.c_str()),
         format("output [3:0] %s", sum.c_str()),
         format("output %s", cout.c_str())},
        {a, b, cin, sum, cout},
        {format("input [3:0] %s", a.c_str()),
         format("input [3:0] %s", b.c_str()), format("input %s", cin.c_str()),
         format("output [3:0] %s", sum.c_str()),
         format("output %s", cout.c_str())});
    os << "  wire c0, c1, c2;\n";
    std::vector<std::string> stmts;
    const char* carries[5] = {cin.c_str(), "c0", "c1", "c2", cout.c_str()};
    for (int i = 0; i < 4; ++i) {
      os << format("  wire t%d, g%d, p%d;\n", i, i, i);
      stmts.push_back(format("  xor (t%d, %s[%d], %s[%d]);", i, a.c_str(), i,
                             b.c_str(), i));
      stmts.push_back(format("  xor (%s[%d], t%d, %s);", sum.c_str(), i, i,
                             carries[i]));
      stmts.push_back(format("  and (g%d, %s[%d], %s[%d]);", i, a.c_str(), i,
                             b.c_str(), i));
      stmts.push_back(format("  and (p%d, t%d, %s);", i, i, carries[i]));
      stmts.push_back(format("  or (%s, g%d, p%d);", carries[i + 1], i, i));
    }
    h.shuffle_statements(stmts);
    os << lines(stmts);
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// alu — 8-bit, 3-bit opcode (2 styles). Shared with the MIPS families via
// gen_alu_core_module (rtl_processors.cpp re-uses the same structure).
// ---------------------------------------------------------------------------
std::string gen_alu(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string a = h.name({"a", "op1", "lhs", "src_a"});
  const std::string b = h.name({"b", "op2", "rhs", "src_b"});
  const std::string op = h.name({"op", "ctrl", "sel", "opcode"});
  const std::string y = h.name({"y", "result", "alu_out", "res"});
  const std::string zero = h.name({"zero", "z_flag", "is_zero"});
  const std::string mod = h.name({"alu8", "alu_unit", "arith_logic"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input [7:0] %s", a.c_str()),
       format("input [7:0] %s", b.c_str()),
       format("input [2:0] %s", op.c_str()),
       format("output reg [7:0] %s", y.c_str()),
       format("output %s", zero.c_str())},
      {a, b, op, y, zero},
      {format("input [7:0] %s", a.c_str()),
       format("input [7:0] %s", b.c_str()),
       format("input [2:0] %s", op.c_str()),
       format("output reg [7:0] %s", y.c_str()),
       format("output %s", zero.c_str())});
  if (v.style % 2 == 0) {
    os << format("  always @(*) begin\n    case (%s)\n", op.c_str());
    std::vector<std::string> arms = {
        format("      3'b000: %s = %s + %s;", y.c_str(), a.c_str(), b.c_str()),
        format("      3'b001: %s = %s - %s;", y.c_str(), a.c_str(), b.c_str()),
        format("      3'b010: %s = %s & %s;", y.c_str(), a.c_str(), b.c_str()),
        format("      3'b011: %s = %s | %s;", y.c_str(), a.c_str(), b.c_str()),
        format("      3'b100: %s = %s ^ %s;", y.c_str(), a.c_str(), b.c_str()),
        format("      3'b101: %s = {7'b0000000, %s < %s};", y.c_str(),
               a.c_str(), b.c_str()),
        format("      3'b110: %s = %s << 1;", y.c_str(), a.c_str()),
    };
    h.shuffle_statements(arms);
    os << lines(arms);
    os << format("      default: %s = %s >> 1;\n", y.c_str(), a.c_str());
    os << "    endcase\n  end\n";
  } else {
    os << format("  wire [7:0] add_r, sub_r, and_r, or_r, xor_r;\n");
    std::vector<std::string> stmts = {
        format("  assign add_r = %s + %s;", a.c_str(), b.c_str()),
        format("  assign sub_r = %s - %s;", a.c_str(), b.c_str()),
        format("  assign and_r = %s & %s;", a.c_str(), b.c_str()),
        format("  assign or_r = %s | %s;", a.c_str(), b.c_str()),
        format("  assign xor_r = %s ^ %s;", a.c_str(), b.c_str()),
    };
    h.shuffle_statements(stmts);
    os << lines(stmts);
    os << format(
        "  always @(*) begin\n"
        "    %s = (%s == 3'b000) ? add_r :\n"
        "         (%s == 3'b001) ? sub_r :\n"
        "         (%s == 3'b010) ? and_r :\n"
        "         (%s == 3'b011) ? or_r :\n"
        "         (%s == 3'b100) ? xor_r :\n"
        "         (%s == 3'b101) ? {7'b0000000, %s < %s} :\n"
        "         (%s == 3'b110) ? (%s << 1) : (%s >> 1);\n"
        "  end\n",
        y.c_str(), op.c_str(), op.c_str(), op.c_str(), op.c_str(), op.c_str(),
        op.c_str(), a.c_str(), b.c_str(), op.c_str(), a.c_str(), a.c_str());
  }
  os << format("  assign %s = (%s == 8'b00000000);\n", zero.c_str(),
               y.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// counter — 8-bit up/down with enable and load (2 styles).
// ---------------------------------------------------------------------------
std::string gen_counter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset", "rst_n"});
  const std::string en = h.name({"en", "enable", "ce"});
  const std::string dir = h.name({"up", "dir", "count_up"});
  const std::string load = h.name({"load", "ld"});
  const std::string din = h.name({"d", "load_val", "init"});
  const std::string q = h.name({"q", "count", "value", "cnt"});
  const std::string mod = h.name({"counter8", "updown_counter", "cnt_unit"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", en.c_str()), format("input %s", dir.c_str()),
       format("input %s", load.c_str()),
       format("input [7:0] %s", din.c_str()),
       format("output reg [7:0] %s", q.c_str())},
      {clk, rst, en, dir, load, din, q},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", en.c_str()), format("input %s", dir.c_str()),
       format("input %s", load.c_str()),
       format("input [7:0] %s", din.c_str()),
       format("output reg [7:0] %s", q.c_str())});
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h00;\n"
        "    else if (%s) %s <= %s;\n"
        "    else if (%s) begin\n"
        "      if (%s) %s <= %s + 8'h01;\n"
        "      else %s <= %s - 8'h01;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), q.c_str(), load.c_str(), q.c_str(),
        din.c_str(), en.c_str(), dir.c_str(), q.c_str(), q.c_str(), q.c_str(),
        q.c_str());
  } else {
    os << format("  wire [7:0] next_val;\n");
    os << format(
        "  assign next_val = %s ? %s : (%s ? (%s ? %s + 8'h01 : %s - 8'h01) "
        ": %s);\n",
        load.c_str(), din.c_str(), en.c_str(), dir.c_str(), q.c_str(),
        q.c_str(), q.c_str());
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h00;\n"
        "    else %s <= next_val;\n"
        "  end\n",
        clk.c_str(), rst.c_str(), q.c_str(), q.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// gray_counter — binary register + gray output (2 styles).
// ---------------------------------------------------------------------------
std::string gen_gray_counter(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string gray = h.name({"gray", "gray_out", "gout"});
  const std::string mod = h.name({"gray_counter", "gray_gen", "gcnt"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("output [7:0] %s", gray.c_str())},
      {clk, rst, gray},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("output [7:0] %s", gray.c_str())});
  os << "  reg [7:0] bin;\n";
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) bin <= 8'h00;\n"
      "    else bin <= bin + 8'h01;\n"
      "  end\n",
      clk.c_str(), rst.c_str());
  if (v.style % 2 == 0) {
    os << format("  assign %s = bin ^ (bin >> 1);\n", gray.c_str());
  } else {
    std::vector<std::string> stmts;
    stmts.push_back(format("  assign %s[7] = bin[7];", gray.c_str()));
    for (int i = 0; i < 7; ++i) {
      stmts.push_back(format("  assign %s[%d] = bin[%d] ^ bin[%d];",
                             gray.c_str(), i, i + 1, i));
    }
    h.shuffle_statements(stmts);
    os << lines(stmts);
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// lfsr — 8-bit Fibonacci LFSR, taps x^8+x^6+x^5+x^4+1 (2 styles).
// ---------------------------------------------------------------------------
std::string gen_lfsr(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string out = h.name({"r", "lfsr_out", "prbs", "state"});
  const std::string mod = h.name({"lfsr8", "prbs_gen", "rand_gen"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("output reg [7:0] %s", out.c_str())},
      {clk, rst, out},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("output reg [7:0] %s", out.c_str())});
  os << "  wire fb;\n";
  if (v.style % 2 == 0) {
    os << format("  assign fb = %s[7] ^ %s[5] ^ %s[4] ^ %s[3];\n",
                 out.c_str(), out.c_str(), out.c_str(), out.c_str());
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h01;\n"
        "    else %s <= {%s[6:0], fb};\n"
        "  end\n",
        clk.c_str(), rst.c_str(), out.c_str(), out.c_str(), out.c_str());
  } else {
    os << format("  wire t1, t2;\n");
    os << format("  assign t1 = %s[7] ^ %s[5];\n", out.c_str(), out.c_str());
    os << format("  assign t2 = %s[4] ^ %s[3];\n", out.c_str(), out.c_str());
    os << "  assign fb = t1 ^ t2;\n";
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h01;\n"
        "    else begin\n"
        "      %s <= %s << 1;\n"
        "      %s[0] <= fb;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), out.c_str(), out.c_str(), out.c_str(),
        out.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// crc8 — parallel CRC-8 (poly 0x07) over an 8-bit word (2 styles).
// ---------------------------------------------------------------------------
std::string gen_crc8(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string d = h.name({"d", "data", "din"});
  const std::string c = h.name({"c", "crc_in", "state"});
  const std::string n = h.name({"n", "crc_out", "next_crc"});
  const std::string mod = h.name({"crc8", "crc_unit", "checksum8"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input [7:0] %s", d.c_str()),
       format("input [7:0] %s", c.c_str()),
       format("output [7:0] %s", n.c_str())},
      {d, c, n},
      {format("input [7:0] %s", d.c_str()),
       format("input [7:0] %s", c.c_str()),
       format("output [7:0] %s", n.c_str())});
  // x = d ^ c, then each output bit is a fixed XOR combination (CRC-8/ATM).
  os << format("  wire [7:0] x;\n  assign x = %s ^ %s;\n", d.c_str(),
               c.c_str());
  std::vector<std::string> stmts;
  if (v.style % 2 == 0) {
    stmts = {
        format("  assign %s[0] = x[0] ^ x[6] ^ x[7];", n.c_str()),
        format("  assign %s[1] = x[0] ^ x[1] ^ x[6];", n.c_str()),
        format("  assign %s[2] = x[0] ^ x[1] ^ x[2] ^ x[6];", n.c_str()),
        format("  assign %s[3] = x[1] ^ x[2] ^ x[3] ^ x[7];", n.c_str()),
        format("  assign %s[4] = x[2] ^ x[3] ^ x[4];", n.c_str()),
        format("  assign %s[5] = x[3] ^ x[4] ^ x[5];", n.c_str()),
        format("  assign %s[6] = x[4] ^ x[5] ^ x[6];", n.c_str()),
        format("  assign %s[7] = x[5] ^ x[6] ^ x[7];", n.c_str()),
    };
  } else {
    os << "  wire p67, p06, p12, p23, p34, p45, p56;\n";
    stmts = {
        format("  assign p67 = x[6] ^ x[7];"),
        format("  assign p06 = x[0] ^ x[6];"),
        format("  assign p12 = x[1] ^ x[2];"),
        format("  assign p23 = x[2] ^ x[3];"),
        format("  assign p34 = x[3] ^ x[4];"),
        format("  assign p45 = x[4] ^ x[5];"),
        format("  assign p56 = x[5] ^ x[6];"),
        format("  assign %s[0] = x[0] ^ p67;", n.c_str()),
        format("  assign %s[1] = p06 ^ x[1];", n.c_str()),
        format("  assign %s[2] = p06 ^ p12;", n.c_str()),
        format("  assign %s[3] = p12 ^ x[3] ^ x[7];", n.c_str()),
        format("  assign %s[4] = p23 ^ x[4];", n.c_str()),
        format("  assign %s[5] = p34 ^ x[5];", n.c_str()),
        format("  assign %s[6] = p45 ^ x[6];", n.c_str()),
        format("  assign %s[7] = p56 ^ x[7];", n.c_str()),
    };
  }
  h.shuffle_statements(stmts);
  os << lines(stmts);
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// parity — 16-bit even/odd parity (2 styles).
// ---------------------------------------------------------------------------
std::string gen_parity(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string din = h.name({"data", "word", "in_bits"});
  const std::string even = h.name({"even", "p_even", "parity"});
  const std::string odd = h.name({"odd", "p_odd"});
  const std::string mod = h.name({"parity16", "parity_gen", "par_unit"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input [15:0] %s", din.c_str()),
       format("output %s", even.c_str()), format("output %s", odd.c_str())},
      {din, even, odd},
      {format("input [15:0] %s", din.c_str()),
       format("output %s", even.c_str()), format("output %s", odd.c_str())});
  // Both styles also emit per-byte parities and an all-ones detector so
  // the family's DFG is rich enough to learn from; the styles differ in
  // how the reductions are structured.
  os << "  wire lo_par, hi_par;\n";
  if (v.style % 2 == 0) {
    os << format("  assign lo_par = ^%s[7:0];\n", din.c_str());
    os << format("  assign hi_par = ^%s[15:8];\n", din.c_str());
    os << format("  assign %s = lo_par ^ hi_par;\n", even.c_str());
    os << format("  wire all_set;\n  assign all_set = &%s;\n", din.c_str());
  } else {
    os << "  wire n0, n1, n2, n3;\n";
    std::vector<std::string> stmts = {
        format("  assign n0 = %s[0] ^ %s[1] ^ %s[2] ^ %s[3];", din.c_str(),
               din.c_str(), din.c_str(), din.c_str()),
        format("  assign n1 = %s[4] ^ %s[5] ^ %s[6] ^ %s[7];", din.c_str(),
               din.c_str(), din.c_str(), din.c_str()),
        format("  assign n2 = %s[8] ^ %s[9] ^ %s[10] ^ %s[11];", din.c_str(),
               din.c_str(), din.c_str(), din.c_str()),
        format("  assign n3 = %s[12] ^ %s[13] ^ %s[14] ^ %s[15];",
               din.c_str(), din.c_str(), din.c_str(), din.c_str()),
    };
    h.shuffle_statements(stmts);
    os << lines(stmts);
    os << "  assign lo_par = n0 ^ n1;\n";
    os << "  assign hi_par = n2 ^ n3;\n";
    os << format("  assign %s = lo_par ^ hi_par;\n", even.c_str());
    os << format(
        "  wire all_set;\n"
        "  assign all_set = (%s[7:0] == 8'hFF) & (%s[15:8] == 8'hFF);\n",
        din.c_str(), din.c_str());
  }
  os << format("  assign %s = ~%s | (all_set & 1'b0);\n", odd.c_str(),
               even.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// shift_reg — 8-bit SIPO with enable (2 styles).
// ---------------------------------------------------------------------------
std::string gen_shift_reg(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string en = h.name({"en", "shift_en", "ce"});
  const std::string sin = h.name({"sin", "serial_in", "d_in"});
  const std::string q = h.name({"q", "par_out", "taps"});
  const std::string mod = h.name({"shift_reg8", "sipo8", "shifter"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", en.c_str()), format("input %s", sin.c_str()),
       format("output reg [7:0] %s", q.c_str())},
      {clk, rst, en, sin, q},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", en.c_str()), format("input %s", sin.c_str()),
       format("output reg [7:0] %s", q.c_str())});
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h00;\n"
        "    else if (%s) %s <= {%s[6:0], %s};\n"
        "  end\n",
        clk.c_str(), rst.c_str(), q.c_str(), en.c_str(), q.c_str(),
        q.c_str(), sin.c_str());
  } else {
    os << format(
        "  wire [7:0] shifted;\n"
        "  assign shifted = (%s << 1) | {7'b0000000, %s};\n"
        "  always @(posedge %s) begin\n"
        "    if (%s) %s <= 8'h00;\n"
        "    else begin\n"
        "      if (%s) %s <= shifted;\n"
        "      else %s <= %s;\n"
        "    end\n"
        "  end\n",
        q.c_str(), sin.c_str(), clk.c_str(), rst.c_str(), q.c_str(),
        en.c_str(), q.c_str(), q.c_str(), q.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// fifo_ctrl — pointer/count control logic for a depth-16 FIFO (2 styles).
// ---------------------------------------------------------------------------
std::string gen_fifo_ctrl(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string wr = h.name({"wr", "push", "wr_en"});
  const std::string rd = h.name({"rd", "pop", "rd_en"});
  const std::string full = h.name({"full", "fifo_full"});
  const std::string empty = h.name({"empty", "fifo_empty"});
  const std::string wptr = h.name({"wptr", "wr_ptr", "head"});
  const std::string rptr = h.name({"rptr", "rd_ptr", "tail"});
  const std::string mod = h.name({"fifo_ctrl16", "fifo_control", "queue_ctl"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", wr.c_str()), format("input %s", rd.c_str()),
       format("output %s", full.c_str()), format("output %s", empty.c_str()),
       format("output reg [3:0] %s", wptr.c_str()),
       format("output reg [3:0] %s", rptr.c_str())},
      {clk, rst, wr, rd, full, empty, wptr, rptr},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", wr.c_str()), format("input %s", rd.c_str()),
       format("output %s", full.c_str()), format("output %s", empty.c_str()),
       format("output reg [3:0] %s", wptr.c_str()),
       format("output reg [3:0] %s", rptr.c_str())});
  os << "  reg [4:0] count;\n";
  os << "  wire do_wr, do_rd;\n";
  os << format("  assign do_wr = %s & ~%s;\n", wr.c_str(), full.c_str());
  os << format("  assign do_rd = %s & ~%s;\n", rd.c_str(), empty.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n"
        "      %s <= 4'h0;\n      %s <= 4'h0;\n      count <= 5'h00;\n"
        "    end else begin\n"
        "      if (do_wr) %s <= %s + 4'h1;\n"
        "      if (do_rd) %s <= %s + 4'h1;\n"
        "      if (do_wr & ~do_rd) count <= count + 5'h01;\n"
        "      else if (do_rd & ~do_wr) count <= count - 5'h01;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), wptr.c_str(), rptr.c_str(), wptr.c_str(),
        wptr.c_str(), rptr.c_str(), rptr.c_str());
  } else {
    os << "  wire [4:0] count_next;\n";
    os << format(
        "  assign count_next = (do_wr & ~do_rd) ? count + 5'h01 :\n"
        "                      ((do_rd & ~do_wr) ? count - 5'h01 : count);\n");
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n"
        "      %s <= 4'h0;\n      %s <= 4'h0;\n      count <= 5'h00;\n"
        "    end else begin\n"
        "      %s <= do_wr ? %s + 4'h1 : %s;\n"
        "      %s <= do_rd ? %s + 4'h1 : %s;\n"
        "      count <= count_next;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), wptr.c_str(), rptr.c_str(), wptr.c_str(),
        wptr.c_str(), wptr.c_str(), rptr.c_str(), rptr.c_str(),
        rptr.c_str());
  }
  os << format("  assign %s = (count == 5'h10);\n", full.c_str());
  os << format("  assign %s = (count == 5'h00);\n", empty.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// uart_tx — RS232 transmitter (2 styles: flat case vs split next-state).
// ---------------------------------------------------------------------------
std::string gen_uart_tx(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string start = h.name({"start", "send", "tx_go"});
  const std::string din = h.name({"din", "tx_data", "byte_in"});
  const std::string tx = h.name({"tx", "txd", "serial_out"});
  const std::string busy = h.name({"busy", "tx_busy", "active"});
  const std::string mod = h.name({"uart_tx", "rs232_tx", "serial_tx"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", start.c_str()),
       format("input [7:0] %s", din.c_str()),
       format("output reg %s", tx.c_str()),
       format("output %s", busy.c_str())},
      {clk, rst, start, din, tx, busy},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", start.c_str()),
       format("input [7:0] %s", din.c_str()),
       format("output reg %s", tx.c_str()),
       format("output %s", busy.c_str())});
  os << "  reg [1:0] state;\n  reg [2:0] bit_idx;\n  reg [7:0] shifter;\n"
        "  reg [3:0] baud;\n  wire tick;\n";
  os << "  assign tick = (baud == 4'hF);\n";
  os << format("  assign %s = (state != 2'b00);\n", busy.c_str());
  if (v.style % 2 == 0) {
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n"
        "      state <= 2'b00;\n      %s <= 1'b1;\n      baud <= 4'h0;\n"
        "      bit_idx <= 3'b000;\n      shifter <= 8'h00;\n"
        "    end else begin\n"
        "      baud <= baud + 4'h1;\n"
        "      case (state)\n"
        "        2'b00: begin\n"
        "          %s <= 1'b1;\n"
        "          if (%s) begin\n"
        "            shifter <= %s;\n            state <= 2'b01;\n"
        "            baud <= 4'h0;\n"
        "          end\n"
        "        end\n"
        "        2'b01: begin\n"
        "          %s <= 1'b0;\n"
        "          if (tick) state <= 2'b10;\n"
        "        end\n"
        "        2'b10: begin\n"
        "          %s <= shifter[0];\n"
        "          if (tick) begin\n"
        "            shifter <= shifter >> 1;\n"
        "            bit_idx <= bit_idx + 3'b001;\n"
        "            if (bit_idx == 3'b111) state <= 2'b11;\n"
        "          end\n"
        "        end\n"
        "        default: begin\n"
        "          %s <= 1'b1;\n"
        "          if (tick) state <= 2'b00;\n"
        "        end\n"
        "      endcase\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), tx.c_str(), tx.c_str(), start.c_str(),
        din.c_str(), tx.c_str(), tx.c_str(), tx.c_str());
  } else {
    os << "  reg [1:0] state_next;\n";
    os << format(
        "  always @(*) begin\n"
        "    state_next = state;\n"
        "    case (state)\n"
        "      2'b00: if (%s) state_next = 2'b01;\n"
        "      2'b01: if (tick) state_next = 2'b10;\n"
        "      2'b10: if (tick & (bit_idx == 3'b111)) state_next = 2'b11;\n"
        "      default: if (tick) state_next = 2'b00;\n"
        "    endcase\n"
        "  end\n",
        start.c_str());
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) begin\n"
        "      state <= 2'b00;\n      %s <= 1'b1;\n      baud <= 4'h0;\n"
        "      bit_idx <= 3'b000;\n      shifter <= 8'h00;\n"
        "    end else begin\n"
        "      state <= state_next;\n"
        "      baud <= (state == 2'b00) ? 4'h0 : baud + 4'h1;\n"
        "      if ((state == 2'b00) & %s) shifter <= %s;\n"
        "      else if ((state == 2'b10) & tick) begin\n"
        "        shifter <= shifter >> 1;\n"
        "        bit_idx <= bit_idx + 3'b001;\n"
        "      end\n"
        "      %s <= (state == 2'b01) ? 1'b0 :\n"
        "            ((state == 2'b10) ? shifter[0] : 1'b1);\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), tx.c_str(), start.c_str(), din.c_str(),
        tx.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// uart_rx — RS232 receiver (2 styles).
// ---------------------------------------------------------------------------
std::string gen_uart_rx(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string rx = h.name({"rx", "rxd", "serial_in"});
  const std::string dout = h.name({"dout", "rx_data", "byte_out"});
  const std::string valid = h.name({"valid", "rx_done", "ready"});
  const std::string mod = h.name({"uart_rx", "rs232_rx", "serial_rx"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", rx.c_str()),
       format("output reg [7:0] %s", dout.c_str()),
       format("output reg %s", valid.c_str())},
      {clk, rst, rx, dout, valid},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", rx.c_str()),
       format("output reg [7:0] %s", dout.c_str()),
       format("output reg %s", valid.c_str())});
  os << "  reg [1:0] state;\n  reg [2:0] bit_idx;\n  reg [3:0] baud;\n"
        "  reg [7:0] shifter;\n  wire tick, half_tick;\n";
  os << "  assign tick = (baud == 4'hF);\n";
  os << "  assign half_tick = (baud == 4'h7);\n";
  const char* sample_expr = v.style % 2 == 0 ? "half_tick" : "tick";
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) begin\n"
      "      state <= 2'b00;\n      baud <= 4'h0;\n      bit_idx <= 3'b000;\n"
      "      shifter <= 8'h00;\n      %s <= 1'b0;\n      %s <= 8'h00;\n"
      "    end else begin\n"
      "      %s <= 1'b0;\n"
      "      baud <= baud + 4'h1;\n"
      "      case (state)\n"
      "        2'b00: if (~%s) begin state <= 2'b01; baud <= 4'h0; end\n"
      "        2'b01: if (%s) begin state <= 2'b10; baud <= 4'h0; end\n"
      "        2'b10: if (%s) begin\n"
      "          shifter <= {%s, shifter[7:1]};\n"
      "          bit_idx <= bit_idx + 3'b001;\n"
      "          if (bit_idx == 3'b111) state <= 2'b11;\n"
      "        end\n"
      "        default: if (%s) begin\n"
      "          state <= 2'b00;\n"
      "          %s <= shifter;\n"
      "          %s <= 1'b1;\n"
      "        end\n"
      "      endcase\n"
      "    end\n"
      "  end\n",
      clk.c_str(), rst.c_str(), valid.c_str(), dout.c_str(), valid.c_str(),
      rx.c_str(), sample_expr, "tick", rx.c_str(), "tick", dout.c_str(),
      valid.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// spi_master — mode-0 SPI shift engine (2 styles).
// ---------------------------------------------------------------------------
std::string gen_spi_master(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string go = h.name({"go", "start", "xfer"});
  const std::string din = h.name({"din", "mosi_data", "tx_byte"});
  const std::string miso = h.name({"miso", "sdi"});
  const std::string mosi = h.name({"mosi", "sdo"});
  const std::string sclk = h.name({"sclk", "spi_clk"});
  const std::string cs_n = h.name({"cs_n", "ss_n", "chip_sel_n"});
  const std::string dout = h.name({"dout", "rx_byte"});
  const std::string done = h.name({"done", "xfer_done"});
  const std::string mod = h.name({"spi_master", "spi_core", "spi_unit"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", go.c_str()), format("input [7:0] %s", din.c_str()),
       format("input %s", miso.c_str()), format("output %s", mosi.c_str()),
       format("output reg %s", sclk.c_str()),
       format("output reg %s", cs_n.c_str()),
       format("output reg [7:0] %s", dout.c_str()),
       format("output reg %s", done.c_str())},
      {clk, rst, go, din, miso, mosi, sclk, cs_n, dout, done},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", go.c_str()), format("input [7:0] %s", din.c_str()),
       format("input %s", miso.c_str()), format("output %s", mosi.c_str()),
       format("output reg %s", sclk.c_str()),
       format("output reg %s", cs_n.c_str()),
       format("output reg [7:0] %s", dout.c_str()),
       format("output reg %s", done.c_str())});
  os << "  reg active;\n  reg [2:0] nbits;\n  reg [7:0] sh;\n";
  os << format("  assign %s = sh[7];\n", mosi.c_str());
  if (v.style % 2 == 0) {
    os << format("  wire [7:0] sh_next;\n  assign sh_next = {sh[6:0], %s};\n",
                 miso.c_str());
  } else {
    os << format(
        "  wire [7:0] sh_next;\n"
        "  assign sh_next = (sh << 1) | {7'b0000000, %s};\n",
        miso.c_str());
  }
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) begin\n"
      "      active <= 1'b0;\n      %s <= 1'b1;\n      %s <= 1'b0;\n"
      "      nbits <= 3'b000;\n      sh <= 8'h00;\n      %s <= 1'b0;\n"
      "      %s <= 8'h00;\n"
      "    end else begin\n"
      "      %s <= 1'b0;\n"
      "      if (~active) begin\n"
      "        if (%s) begin\n"
      "          active <= 1'b1;\n          %s <= 1'b0;\n"
      "          sh <= %s;\n          nbits <= 3'b000;\n"
      "        end\n"
      "      end else begin\n"
      "        %s <= ~%s;\n"
      "        if (%s) begin\n"
      "          sh <= sh_next;\n"
      "          nbits <= nbits + 3'b001;\n"
      "          if (nbits == 3'b111) begin\n"
      "            active <= 1'b0;\n            %s <= 1'b1;\n"
      "            %s <= 1'b1;\n            %s <= sh_next;\n"
      "          end\n"
      "        end\n"
      "      end\n"
      "    end\n"
      "  end\n",
      clk.c_str(), rst.c_str(), cs_n.c_str(), sclk.c_str(), done.c_str(),
      dout.c_str(), done.c_str(), go.c_str(), cs_n.c_str(), din.c_str(),
      sclk.c_str(), sclk.c_str(), sclk.c_str(), cs_n.c_str(), done.c_str(),
      dout.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// pwm — counter/compare pulse-width modulator (2 styles).
// ---------------------------------------------------------------------------
std::string gen_pwm(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string duty = h.name({"duty", "threshold", "level"});
  const std::string out = h.name({"pwm", "pulse", "out_wave"});
  const std::string mod = h.name({"pwm_gen", "pwm_unit", "pulse_mod"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input [7:0] %s", duty.c_str()),
       format("output %s", out.c_str())},
      {clk, rst, duty, out},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input [7:0] %s", duty.c_str()),
       format("output %s", out.c_str())});
  os << "  reg [7:0] tick_count;\n";
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) tick_count <= 8'h00;\n"
      "    else tick_count <= tick_count + 8'h01;\n"
      "  end\n",
      clk.c_str(), rst.c_str());
  if (v.style % 2 == 0) {
    os << format("  assign %s = (tick_count < %s);\n", out.c_str(),
                 duty.c_str());
  } else {
    os << format(
        "  reg gated;\n"
        "  always @(*) begin\n"
        "    if (tick_count < %s) gated = 1'b1;\n"
        "    else gated = 1'b0;\n"
        "  end\n"
        "  assign %s = gated;\n",
        duty.c_str(), out.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// traffic_fsm — 3-phase traffic light controller (2 styles).
// ---------------------------------------------------------------------------
std::string gen_traffic_fsm(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string lights = h.name({"lights", "rgb", "signals"});
  const std::string mod = h.name({"traffic_ctl", "light_fsm", "intersection"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("output reg [2:0] %s", lights.c_str())},
      {clk, rst, lights},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("output reg [2:0] %s", lights.c_str())});
  os << "  reg [1:0] phase;\n  reg [3:0] timer;\n  wire expire;\n";
  if (v.style % 2 == 0) {
    os << "  assign expire = (phase == 2'b00) ? (timer == 4'hA) :\n"
          "                  ((phase == 2'b01) ? (timer == 4'h3) : (timer == "
          "4'hC));\n";
  } else {
    os << "  reg [3:0] limit;\n"
          "  always @(*) begin\n"
          "    case (phase)\n"
          "      2'b00: limit = 4'hA;\n"
          "      2'b01: limit = 4'h3;\n"
          "      default: limit = 4'hC;\n"
          "    endcase\n"
          "  end\n"
          "  assign expire = (timer == limit);\n";
  }
  os << format(
      "  always @(posedge %s) begin\n"
      "    if (%s) begin\n"
      "      phase <= 2'b00;\n      timer <= 4'h0;\n"
      "    end else begin\n"
      "      if (expire) begin\n"
      "        timer <= 4'h0;\n"
      "        phase <= (phase == 2'b10) ? 2'b00 : phase + 2'b01;\n"
      "      end else timer <= timer + 4'h1;\n"
      "    end\n"
      "  end\n",
      clk.c_str(), rst.c_str());
  os << format(
      "  always @(*) begin\n"
      "    case (phase)\n"
      "      2'b00: %s = 3'b001;\n"
      "      2'b01: %s = 3'b010;\n"
      "      default: %s = 3'b100;\n"
      "    endcase\n"
      "  end\n",
      lights.c_str(), lights.c_str(), lights.c_str());
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// seq_detector — Moore detector for pattern 1011 (binary vs one-hot
// state encoding — same behavior, different structure).
// ---------------------------------------------------------------------------
std::string gen_seq_detector(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string clk = h.name({"clk", "clock"});
  const std::string rst = h.name({"rst", "reset"});
  const std::string sin = h.name({"sin", "bit_in", "x"});
  const std::string hit = h.name({"hit", "found", "detected"});
  const std::string mod = h.name({"seq1011", "pattern_det", "bit_matcher"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", sin.c_str()), format("output %s", hit.c_str())},
      {clk, rst, sin, hit},
      {format("input %s", clk.c_str()), format("input %s", rst.c_str()),
       format("input %s", sin.c_str()), format("output %s", hit.c_str())});
  if (v.style % 2 == 0) {
    os << "  reg [2:0] st;\n";
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) st <= 3'b000;\n"
        "    else begin\n"
        "      case (st)\n"
        "        3'b000: st <= %s ? 3'b001 : 3'b000;\n"
        "        3'b001: st <= %s ? 3'b001 : 3'b010;\n"
        "        3'b010: st <= %s ? 3'b011 : 3'b000;\n"
        "        3'b011: st <= %s ? 3'b100 : 3'b010;\n"
        "        default: st <= %s ? 3'b001 : 3'b010;\n"
        "      endcase\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), sin.c_str(), sin.c_str(), sin.c_str(),
        sin.c_str(), sin.c_str());
    os << format("  assign %s = (st == 3'b100);\n", hit.c_str());
  } else {
    os << "  reg [4:0] st;\n";  // one-hot: S0..S4
    os << format(
        "  always @(posedge %s) begin\n"
        "    if (%s) st <= 5'b00001;\n"
        "    else begin\n"
        "      st[0] <= (st[0] & ~%s) | (st[2] & ~%s);\n"
        "      st[1] <= (st[0] & %s) | (st[1] & %s) | (st[4] & %s);\n"
        "      st[2] <= (st[1] & ~%s) | (st[3] & ~%s) | (st[4] & ~%s);\n"
        "      st[3] <= st[2] & %s;\n"
        "      st[4] <= st[3] & %s;\n"
        "    end\n"
        "  end\n",
        clk.c_str(), rst.c_str(), sin.c_str(), sin.c_str(), sin.c_str(),
        sin.c_str(), sin.c_str(), sin.c_str(), sin.c_str(), sin.c_str(),
        sin.c_str(), sin.c_str());
    os << format("  assign %s = st[4];\n", hit.c_str());
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// multiplier — 4×4 unsigned (behavioral * vs explicit partial products).
// ---------------------------------------------------------------------------
std::string gen_multiplier(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string a = h.name({"a", "mcand", "x"});
  const std::string b = h.name({"b", "mplier", "y"});
  const std::string p = h.name({"p", "prod", "result"});
  const std::string mod = h.name({"mult4", "multiplier", "mul_unit"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input [3:0] %s", a.c_str()),
       format("input [3:0] %s", b.c_str()),
       format("output [7:0] %s", p.c_str())},
      {a, b, p},
      {format("input [3:0] %s", a.c_str()),
       format("input [3:0] %s", b.c_str()),
       format("output [7:0] %s", p.c_str())});
  // Both styles: product plus zero/overflow observables (same function,
  // keeps the behavioral style's DFG from degenerating to one node).
  if (v.style % 2 == 0) {
    os << format("  wire [7:0] raw;\n  assign raw = %s * %s;\n", a.c_str(),
                 b.c_str());
    os << format("  assign %s = raw;\n", p.c_str());
    os << format("  wire is_zero;\n  assign is_zero = (raw == 8'h00);\n");
    os << format("  wire msb_set;\n  assign msb_set = raw[7] | is_zero;\n");
  } else {
    os << "  wire [7:0] pp0, pp1, pp2, pp3;\n";
    std::vector<std::string> stmts = {
        format("  assign pp0 = %s[0] ? {4'b0000, %s} : 8'h00;", b.c_str(),
               a.c_str()),
        format("  assign pp1 = %s[1] ? {3'b000, %s, 1'b0} : 8'h00;",
               b.c_str(), a.c_str()),
        format("  assign pp2 = %s[2] ? {2'b00, %s, 2'b00} : 8'h00;",
               b.c_str(), a.c_str()),
        format("  assign pp3 = %s[3] ? {1'b0, %s, 3'b000} : 8'h00;",
               b.c_str(), a.c_str()),
    };
    h.shuffle_statements(stmts);
    os << lines(stmts);
    os << format("  wire [7:0] raw;\n  assign raw = (pp0 + pp1) + (pp2 + pp3);\n");
    os << format("  assign %s = raw;\n", p.c_str());
    os << format("  wire is_zero;\n  assign is_zero = ~(|raw);\n");
    os << format("  wire msb_set;\n  assign msb_set = raw[7] | is_zero;\n");
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// hamming_enc — (12,8) Hamming encoder (2 styles).
// ---------------------------------------------------------------------------
std::string gen_hamming_enc(const RtlVariant& v) {
  VariantHelper h(v);
  const std::string d = h.name({"d", "data", "msg"});
  const std::string c = h.name({"code", "enc", "cw"});
  const std::string mod = h.name({"hamming128", "ecc_enc", "ham_encoder"});
  std::ostringstream os;
  os << module_header(
      h, mod,
      {format("input [7:0] %s", d.c_str()),
       format("output [11:0] %s", c.c_str())},
      {d, c},
      {format("input [7:0] %s", d.c_str()),
       format("output [11:0] %s", c.c_str())});
  os << "  wire p0, p1, p2, p3;\n";
  std::vector<std::string> stmts = {
      format("  assign p0 = %s[0] ^ %s[1] ^ %s[3] ^ %s[4] ^ %s[6];",
             d.c_str(), d.c_str(), d.c_str(), d.c_str(), d.c_str()),
      format("  assign p1 = %s[0] ^ %s[2] ^ %s[3] ^ %s[5] ^ %s[6];",
             d.c_str(), d.c_str(), d.c_str(), d.c_str(), d.c_str()),
      format("  assign p2 = %s[1] ^ %s[2] ^ %s[3] ^ %s[7];", d.c_str(),
             d.c_str(), d.c_str(), d.c_str()),
      format("  assign p3 = %s[4] ^ %s[5] ^ %s[6] ^ %s[7];", d.c_str(),
             d.c_str(), d.c_str(), d.c_str()),
  };
  h.shuffle_statements(stmts);
  os << lines(stmts);
  if (v.style % 2 == 0) {
    os << format(
        "  assign %s = {%s[7:4], p3, %s[3:1], p2, %s[0], p1, p0};\n",
        c.c_str(), d.c_str(), d.c_str(), d.c_str());
  } else {
    std::vector<std::string> bits = {
        format("  assign %s[0] = p0;", c.c_str()),
        format("  assign %s[1] = p1;", c.c_str()),
        format("  assign %s[2] = %s[0];", c.c_str(), d.c_str()),
        format("  assign %s[3] = p2;", c.c_str()),
        format("  assign %s[4] = %s[1];", c.c_str(), d.c_str()),
        format("  assign %s[5] = %s[2];", c.c_str(), d.c_str()),
        format("  assign %s[6] = %s[3];", c.c_str(), d.c_str()),
        format("  assign %s[7] = p3;", c.c_str()),
        format("  assign %s[8] = %s[4];", c.c_str(), d.c_str()),
        format("  assign %s[9] = %s[5];", c.c_str(), d.c_str()),
        format("  assign %s[10] = %s[6];", c.c_str(), d.c_str()),
        format("  assign %s[11] = %s[7];", c.c_str(), d.c_str()),
    };
    h.shuffle_statements(bits);
    os << lines(bits);
  }
  os << "endmodule\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------
const std::vector<RtlFamily>& rtl_families() {
  // The "alu" family is the alu_block wrapper around the same alu_core
  // the MIPS processors instantiate, so the corpus contains the exact
  // design-and-its-subset relation Table II case 3 measures. The
  // standalone flat ALU (gen_alu) stays available for tests.
  static const std::vector<RtlFamily> kFamilies = {
      {"adder", 3, gen_adder},
      {"alu", 2, gen_alu_block},
      {"counter", 2, gen_counter},
      {"gray_counter", 2, gen_gray_counter},
      {"lfsr", 2, gen_lfsr},
      {"crc8", 2, gen_crc8},
      {"parity", 2, gen_parity},
      {"shift_reg", 2, gen_shift_reg},
      {"fifo_ctrl", 2, gen_fifo_ctrl},
      {"uart_tx", 2, gen_uart_tx},
      {"uart_rx", 2, gen_uart_rx},
      {"spi_master", 2, gen_spi_master},
      {"pwm", 2, gen_pwm},
      {"traffic_fsm", 2, gen_traffic_fsm},
      {"seq_detector", 2, gen_seq_detector},
      {"multiplier", 2, gen_multiplier},
      {"hamming_enc", 2, gen_hamming_enc},
      {"fpa", 2, gen_fpa},
      {"aes_round", 2, gen_aes_round},
      {"mips_single", 2, gen_mips_single},
      {"mips_pipeline", 2, gen_mips_pipeline},
      {"mips_multicycle", 2, gen_mips_multicycle},
      {"barrel_shifter", 2, gen_barrel_shifter},
      {"bcd_counter", 2, gen_bcd_counter},
      {"johnson_counter", 2, gen_johnson_counter},
      {"clock_divider", 2, gen_clock_divider},
      {"debouncer", 2, gen_debouncer},
      {"majority_voter", 2, gen_majority_voter},
      {"popcount", 2, gen_popcount},
      {"divider", 2, gen_divider},
      {"rr_arbiter", 2, gen_rr_arbiter},
      {"moving_average", 2, gen_moving_average},
      {"sqrt", 2, gen_sqrt},
  };
  return kFamilies;
}

std::string generate_rtl(const std::string& family, const RtlVariant& variant) {
  for (const RtlFamily& f : rtl_families()) {
    if (f.name == family) return f.generate(variant);
  }
  throw std::invalid_argument("unknown RTL family '" + family + "'");
}

}  // namespace gnn4ip::data
