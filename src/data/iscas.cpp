#include "data/iscas.h"

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::data {
namespace {

/// XOR in AND-OR-NOT form: the structural relation between c1355 and
/// c499 (same function, expanded gate basis). Deliberately NOT the
/// 4-NAND expansion the obfuscator uses, so an obfuscated c499 does not
/// collapse onto c1355's structure.
Bit xor_expanded(NetlistBuilder& b, const Bit& x, const Bit& y) {
  const Bit nx = b.not1(x);
  const Bit ny = b.not1(y);
  const Bit t0 = b.and2(x, ny);
  const Bit t1 = b.and2(nx, y);
  return b.or2(t0, t1);
}

Bit make_xor(NetlistBuilder& b, const Bit& x, const Bit& y, bool nand_form) {
  return nand_form ? xor_expanded(b, x, y) : b.xor2(x, y);
}

/// Syndrome/parity membership for the 32-bit SEC code: data bit i maps to
/// codeword position i+1 shifted past the power-of-two parity slots.
std::size_t data_position(std::size_t i) {
  // Positions 1..38 skipping powers of two (1,2,4,8,16,32).
  std::size_t pos = 1;
  std::size_t seen = 0;
  while (true) {
    const bool is_pow2 = (pos & (pos - 1)) == 0;
    if (!is_pow2) {
      if (seen == i) return pos;
      ++seen;
    }
    ++pos;
  }
}

}  // namespace

Netlist build_c432_interrupt_controller() {
  NetlistBuilder b("c432_syn");
  const Bus a = b.input_bus("a", 9);   // bus A requests (highest priority)
  const Bus bb = b.input_bus("b", 9);  // bus B requests
  const Bus c = b.input_bus("c", 9);   // bus C requests
  const Bus e = b.input_bus("e", 9);   // per-channel enable mask

  // Masked requests per bus.
  Bus ra;
  Bus rb;
  Bus rc;
  for (std::size_t i = 0; i < 9; ++i) {
    ra.push_back(b.and2(a[i], e[i]));
    rb.push_back(b.and2(bb[i], e[i]));
    rc.push_back(b.and2(c[i], e[i]));
  }
  const Bit any_a = b.or_tree(ra);
  const Bit any_b = b.or_tree(rb);
  const Bit any_c = b.or_tree(rc);

  // Bus grants with fixed priority A > B > C.
  const Bit grant_a = b.buf1(any_a);
  const Bit grant_b = b.and2(any_b, b.not1(any_a));
  const Bit grant_c = b.and_tree({any_c, b.not1(any_a), b.not1(any_b)});
  b.output("pa", grant_a);
  b.output("pb", grant_b);
  b.output("pc", grant_c);

  // Channel select: requests of the granted bus, priority-encoded to 4
  // bits (channel 0 wins ties).
  Bus sel(9);
  for (std::size_t i = 0; i < 9; ++i) {
    const Bit from_a = b.and2(grant_a, ra[i]);
    const Bit from_b = b.and2(grant_b, rb[i]);
    const Bit from_c = b.and2(grant_c, rc[i]);
    sel[i] = b.or_tree({from_a, from_b, from_c});
  }
  // Priority chain: win_i = sel_i & ~sel_0..i-1.
  Bus win(9);
  Bit none_before;
  for (std::size_t i = 0; i < 9; ++i) {
    if (i == 0) {
      win[i] = b.buf1(sel[i]);
      none_before = b.not1(sel[i]);
    } else {
      win[i] = b.and2(sel[i], none_before);
      none_before = b.and2(none_before, b.not1(sel[i]));
    }
  }
  // Encode winner index (4 bits for 0..8).
  const Bit enc0 = b.or_tree({win[1], win[3], win[5], win[7]});
  const Bit enc1 = b.or_tree({win[2], win[3], win[6], win[7]});
  const Bit enc2 = b.or_tree({win[4], win[5], win[6], win[7]});
  const Bit enc3 = b.buf1(win[8]);
  b.output("ch_0", enc0);
  b.output("ch_1", enc1);
  b.output("ch_2", enc2);
  b.output("ch_3", enc3);
  return b.take();
}

Netlist build_c499_sec32(bool nand_form) {
  NetlistBuilder b(nand_form ? "c1355_syn" : "c499_syn");
  const Bus d = b.input_bus("d", 32);  // received data bits
  const Bus r = b.input_bus("r", 6);   // received check bits

  // c1355 expands every gate into the NAND/inverter basis (the real
  // benchmark is 546 gates vs c499's 202); AND trees follow suit.
  auto and_all = [&b, nand_form](const std::vector<Bit>& xs) {
    if (!nand_form) return b.and_tree(xs);
    std::vector<Bit> level = xs;
    while (level.size() > 1) {
      std::vector<Bit> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(b.not1(b.nand2(level[i], level[i + 1])));
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    return level.front();
  };

  // Recomputed check bits over the received data (Hamming positions).
  std::vector<std::vector<Bit>> groups(6);
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t pos = data_position(i);
    for (std::size_t j = 0; j < 6; ++j) {
      if ((pos >> j) & 1U) groups[j].push_back(d[i]);
    }
  }
  Bus syndrome(6);
  for (std::size_t j = 0; j < 6; ++j) {
    GNN4IP_ENSURE(!groups[j].empty(), "empty parity group");
    Bit parity = groups[j][0];
    for (std::size_t k = 1; k < groups[j].size(); ++k) {
      parity = make_xor(b, parity, groups[j][k], nand_form);
    }
    syndrome[j] = make_xor(b, parity, r[j], nand_form);
  }

  // Correct: flip data bit i when the syndrome equals its position.
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t pos = data_position(i);
    std::vector<Bit> match_bits;
    for (std::size_t j = 0; j < 6; ++j) {
      match_bits.push_back(((pos >> j) & 1U) != 0
                               ? syndrome[j]
                               : b.not1(syndrome[j]));
    }
    const Bit flip = and_all(match_bits);
    b.output(util::format("o_%zu", i), make_xor(b, d[i], flip, nand_form));
  }
  return b.take();
}

Netlist build_c880_alu8() {
  NetlistBuilder b("c880_syn");
  const Bus a = b.input_bus("a", 8);
  const Bus bb = b.input_bus("b", 8);
  const Bit cin = b.input("cin");
  const Bit s0 = b.input("s0");
  const Bit s1 = b.input("s1");

  const auto add = b.ripple_add(a, bb, cin);
  const Bus and_r = b.bitwise("and", a, bb);
  const Bus or_r = b.bitwise("or", a, bb);
  const Bus xor_r = b.bitwise("xor", a, bb);

  // f = s1 ? (s0 ? xor : or) : (s0 ? and : sum)
  const Bus inner1 = b.mux_bus(s0, xor_r, or_r);
  const Bus inner0 = b.mux_bus(s0, and_r, add.sum);
  const Bus f = b.mux_bus(s1, inner1, inner0);
  b.output_bus("f", f);
  b.output("cout", add.carry);
  // Zero flag (NOR over outputs) — extra observable, like c880's flags.
  Bus inv;
  for (const Bit& x : f) inv.push_back(b.not1(x));
  b.output("zf", b.and_tree(inv));
  return b.take();
}

Netlist build_c1908_secded16() {
  NetlistBuilder b("c1908_syn");
  const Bus d = b.input_bus("d", 16);
  const Bus r = b.input_bus("r", 5);
  const Bit rp = b.input("rp");  // received overall parity

  std::vector<std::vector<Bit>> groups(5);
  for (std::size_t i = 0; i < 16; ++i) {
    const std::size_t pos = data_position(i);
    for (std::size_t j = 0; j < 5; ++j) {
      if ((pos >> j) & 1U) groups[j].push_back(d[i]);
    }
  }
  Bus syndrome(5);
  for (std::size_t j = 0; j < 5; ++j) {
    Bit parity = groups[j][0];
    for (std::size_t k = 1; k < groups[j].size(); ++k) {
      parity = b.xor2(parity, groups[j][k]);
    }
    syndrome[j] = b.xor2(parity, r[j]);
  }
  // Overall parity across data + check bits vs received parity.
  std::vector<Bit> all_bits(d.begin(), d.end());
  all_bits.insert(all_bits.end(), r.begin(), r.end());
  const Bit overall = b.xor2(b.xor_tree(all_bits), rp);

  const Bit syndrome_nonzero = b.or_tree(
      {syndrome[0], syndrome[1], syndrome[2], syndrome[3], syndrome[4]});
  // single error: overall parity trips; double error: syndrome != 0 but
  // overall parity holds.
  const Bit single_err = b.and2(syndrome_nonzero, overall);
  const Bit double_err = b.and2(syndrome_nonzero, b.not1(overall));
  b.output("single_err", single_err);
  b.output("double_err", double_err);

  for (std::size_t i = 0; i < 16; ++i) {
    const std::size_t pos = data_position(i);
    std::vector<Bit> match_bits;
    for (std::size_t j = 0; j < 5; ++j) {
      match_bits.push_back(((pos >> j) & 1U) != 0 ? syndrome[j]
                                                  : b.not1(syndrome[j]));
    }
    match_bits.push_back(single_err);  // only correct single errors
    const Bit flip = b.and_tree(match_bits);
    b.output(util::format("o_%zu", i), b.xor2(d[i], flip));
  }
  return b.take();
}

Netlist build_c6288_mult16() {
  NetlistBuilder b("c6288_syn");
  const Bus a = b.input_bus("a", 16);
  const Bus bb = b.input_bus("b", 16);
  const Bus p = b.multiply(a, bb);
  b.output_bus("p", p);
  return b.take();
}

std::vector<IscasBenchmark> iscas_benchmarks() {
  std::vector<IscasBenchmark> list;
  list.push_back({"c432", "27-channel interrupt controller",
                  build_c432_interrupt_controller()});
  list.push_back(
      {"c499", "32-bit single error correcting", build_c499_sec32(false)});
  list.push_back({"c880", "8-bit ALU", build_c880_alu8()});
  list.push_back(
      {"c1355", "32-bit single error correcting", build_c499_sec32(true)});
  list.push_back({"c1908", "16-bit single/double error detecting",
                  build_c1908_secded16()});
  list.push_back({"c6288", "16 x 16 multiplier", build_c6288_mult16()});
  return list;
}

}  // namespace gnn4ip::data
