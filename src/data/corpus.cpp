#include "data/corpus.h"

#include <stdexcept>

#include "data/rtl_designs.h"
#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::data {

std::vector<CorpusItem> build_rtl_corpus(const RtlCorpusOptions& options) {
  std::vector<CorpusItem> items;
  util::Rng seeder(options.seed);
  for (const RtlFamily& family : rtl_families()) {
    if (!options.families.empty()) {
      bool wanted = false;
      for (const std::string& f : options.families) {
        if (f == family.name) wanted = true;
      }
      if (!wanted) continue;
    }
    for (int i = 0; i < options.instances_per_family; ++i) {
      RtlVariant variant;
      variant.style = i % family.num_styles;
      variant.seed = seeder.next_u64();
      CorpusItem item;
      item.name = util::format("%s#%d", family.name.c_str(), i);
      item.design = family.name;
      item.kind = "rtl";
      item.verilog = family.generate(variant);
      items.push_back(std::move(item));
    }
  }
  return items;
}

// ---------------------------------------------------------------------------
// Structural netlist families.
// ---------------------------------------------------------------------------
namespace {

Netlist nl_adder8() {
  NetlistBuilder b("nl_adder8");
  const Bus a = b.input_bus("a", 8);
  const Bus bb = b.input_bus("b", 8);
  const Bit cin = b.input("cin");
  const auto r = b.ripple_add(a, bb, cin);
  b.output_bus("s", r.sum);
  b.output("cout", r.carry);
  return b.take();
}

Netlist nl_subtractor8() {
  NetlistBuilder b("nl_sub8");
  const Bus a = b.input_bus("a", 8);
  const Bus bb = b.input_bus("b", 8);
  const auto r = b.subtract(a, bb);
  b.output_bus("d", r.sum);
  b.output("bout", r.carry);
  return b.take();
}

Netlist nl_alu4() {
  NetlistBuilder b("nl_alu4");
  const Bus a = b.input_bus("a", 4);
  const Bus bb = b.input_bus("b", 4);
  const Bit s0 = b.input("s0");
  const Bit s1 = b.input("s1");
  const auto sum = b.ripple_add(a, bb, Bit{});
  const Bus and_r = b.bitwise("and", a, bb);
  const Bus or_r = b.bitwise("or", a, bb);
  const Bus xor_r = b.bitwise("xor", a, bb);
  const Bus m1 = b.mux_bus(s0, xor_r, or_r);
  const Bus m0 = b.mux_bus(s0, and_r, sum.sum);
  b.output_bus("f", b.mux_bus(s1, m1, m0));
  return b.take();
}

Netlist nl_mult4() {
  NetlistBuilder b("nl_mult4");
  const Bus a = b.input_bus("a", 4);
  const Bus bb = b.input_bus("b", 4);
  b.output_bus("p", b.multiply(a, bb));
  return b.take();
}

Netlist nl_parity16() {
  NetlistBuilder b("nl_parity16");
  const Bus d = b.input_bus("d", 16);
  const Bit even = b.xor_tree(d);
  b.output("even", even);
  b.output("odd", b.not1(even));
  return b.take();
}

Netlist nl_comparator8() {
  NetlistBuilder b("nl_cmp8");
  const Bus a = b.input_bus("a", 8);
  const Bus bb = b.input_bus("b", 8);
  b.output("eq", b.equals(a, bb));
  // a < b via subtraction borrow: a - b underflows iff a < b. Using
  // two's-complement add: carry==0 means a < b.
  const auto diff = b.subtract(a, bb);
  b.output("lt", b.not1(diff.carry));
  return b.take();
}

Netlist nl_decoder3to8() {
  NetlistBuilder b("nl_dec3to8");
  const Bit s0 = b.input("s0");
  const Bit s1 = b.input("s1");
  const Bit s2 = b.input("s2");
  const Bit en = b.input("en");
  const Bit n0 = b.not1(s0);
  const Bit n1 = b.not1(s1);
  const Bit n2 = b.not1(s2);
  for (int i = 0; i < 8; ++i) {
    const Bit t0 = (i & 1) != 0 ? s0 : n0;
    const Bit t1 = (i & 2) != 0 ? s1 : n1;
    const Bit t2 = (i & 4) != 0 ? s2 : n2;
    b.output(util::format("y_%d", i), b.and_tree({t0, t1, t2, en}));
  }
  return b.take();
}

Netlist nl_mux8to1() {
  NetlistBuilder b("nl_mux8");
  const Bus d = b.input_bus("d", 8);
  const Bit s0 = b.input("s0");
  const Bit s1 = b.input("s1");
  const Bit s2 = b.input("s2");
  const Bus l0 = {b.mux2(s0, d[1], d[0]), b.mux2(s0, d[3], d[2]),
                  b.mux2(s0, d[5], d[4]), b.mux2(s0, d[7], d[6])};
  const Bus l1 = {b.mux2(s1, l0[1], l0[0]), b.mux2(s1, l0[3], l0[2])};
  b.output("y", b.mux2(s2, l1[1], l1[0]));
  return b.take();
}

Netlist nl_gray8() {
  NetlistBuilder b("nl_gray8");
  const Bus d = b.input_bus("bin", 8);
  Bus g(8);
  g[7] = b.buf1(d[7]);
  for (int i = 0; i < 7; ++i) {
    g[static_cast<std::size_t>(i)] =
        b.xor2(d[static_cast<std::size_t>(i)],
               d[static_cast<std::size_t>(i) + 1]);
  }
  b.output_bus("gray", g);
  return b.take();
}

Netlist nl_priority8() {
  NetlistBuilder b("nl_prio8");
  const Bus req = b.input_bus("req", 8);
  Bus win(8);
  Bit none_before;
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 0) {
      win[i] = b.buf1(req[i]);
      none_before = b.not1(req[i]);
    } else {
      win[i] = b.and2(req[i], none_before);
      none_before = b.and2(none_before, b.not1(req[i]));
    }
  }
  b.output("valid", b.or_tree(std::vector<Bit>(req.begin(), req.end())));
  b.output("y_0", b.or_tree({win[1], win[3], win[5], win[7]}));
  b.output("y_1", b.or_tree({win[2], win[3], win[6], win[7]}));
  b.output("y_2", b.or_tree({win[4], win[5], win[6], win[7]}));
  return b.take();
}

Netlist nl_hamming12() {
  NetlistBuilder b("nl_ham12");
  const Bus d = b.input_bus("d", 8);
  const Bit p0 = b.xor_tree({d[0], d[1], d[3], d[4], d[6]});
  const Bit p1 = b.xor_tree({d[0], d[2], d[3], d[5], d[6]});
  const Bit p2 = b.xor_tree({d[1], d[2], d[3], d[7]});
  const Bit p3 = b.xor_tree({d[4], d[5], d[6], d[7]});
  b.output("c_0", p0);
  b.output("c_1", p1);
  b.output("c_2", b.buf1(d[0]));
  b.output("c_3", p2);
  b.output("c_4", b.buf1(d[1]));
  b.output("c_5", b.buf1(d[2]));
  b.output("c_6", b.buf1(d[3]));
  b.output("c_7", p3);
  b.output("c_8", b.buf1(d[4]));
  b.output("c_9", b.buf1(d[5]));
  b.output("c_10", b.buf1(d[6]));
  b.output("c_11", b.buf1(d[7]));
  return b.take();
}

struct NetlistFamilyDef {
  const char* name;
  Netlist (*build)();
};

const NetlistFamilyDef kNetlistFamilies[] = {
    {"nl_adder8", nl_adder8},         {"nl_sub8", nl_subtractor8},
    {"nl_alu4", nl_alu4},             {"nl_mult4", nl_mult4},
    {"nl_parity16", nl_parity16},     {"nl_cmp8", nl_comparator8},
    {"nl_dec3to8", nl_decoder3to8},   {"nl_mux8", nl_mux8to1},
    {"nl_gray8", nl_gray8},           {"nl_prio8", nl_priority8},
    {"nl_ham12", nl_hamming12},
};

}  // namespace

std::vector<std::string> netlist_family_names() {
  std::vector<std::string> names;
  for (const NetlistFamilyDef& def : kNetlistFamilies) {
    names.emplace_back(def.name);
  }
  return names;
}

Netlist build_netlist_family(const std::string& family) {
  for (const NetlistFamilyDef& def : kNetlistFamilies) {
    if (family == def.name) return def.build();
  }
  throw std::invalid_argument("unknown netlist family '" + family + "'");
}

std::vector<CorpusItem> build_netlist_corpus(
    const NetlistCorpusOptions& options) {
  std::vector<CorpusItem> items;
  util::Rng rng(options.seed);
  for (const NetlistFamilyDef& def : kNetlistFamilies) {
    const Netlist base = def.build();
    for (int i = 0; i < options.instances_per_family; ++i) {
      CorpusItem item;
      item.name = util::format("%s#%d", def.name, i);
      item.design = def.name;
      item.kind = "netlist";
      if (i == 0) {
        item.verilog = base.to_verilog();
      } else {
        util::Rng child = rng.fork();
        item.verilog = restructure(base, child).to_verilog();
      }
      items.push_back(std::move(item));
    }
  }
  if (options.include_iscas) {
    for (const IscasBenchmark& bench : iscas_benchmarks()) {
      CorpusItem original;
      original.name = bench.name;
      original.design = bench.name;
      original.kind = "netlist";
      original.verilog = bench.netlist.to_verilog();
      items.push_back(std::move(original));
      for (int i = 0; i < options.iscas_obfuscated_per_benchmark; ++i) {
        util::Rng child = rng.fork();
        CorpusItem item;
        item.name = util::format("%s_obf#%d", bench.name.c_str(), i);
        item.design = bench.name;
        item.kind = "netlist";
        item.verilog =
            obfuscate(bench.netlist, options.iscas_obfuscation, child)
                .to_verilog();
        items.push_back(std::move(item));
      }
    }
  }
  return items;
}

std::vector<CorpusItem> build_iscas_originals() {
  std::vector<CorpusItem> items;
  for (const IscasBenchmark& bench : iscas_benchmarks()) {
    CorpusItem item;
    item.name = bench.name;
    item.design = bench.name;
    item.kind = "netlist";
    item.verilog = bench.netlist.to_verilog();
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<CorpusItem> build_iscas_obfuscated(
    const IscasCorpusOptions& options) {
  std::vector<CorpusItem> items;
  util::Rng rng(options.seed);
  for (const IscasBenchmark& bench : iscas_benchmarks()) {
    for (int i = 0; i < options.obfuscated_per_benchmark; ++i) {
      util::Rng child = rng.fork();
      CorpusItem item;
      item.name = util::format("%s_obf%d", bench.name.c_str(), i);
      item.design = bench.name;
      item.kind = "netlist";
      item.verilog =
          obfuscate(bench.netlist, options.obfuscation, child).to_verilog();
      items.push_back(std::move(item));
    }
  }
  return items;
}

std::vector<CorpusItem> build_mips_visualization_corpus(int per_design,
                                                        std::uint64_t seed) {
  std::vector<CorpusItem> items;
  util::Rng seeder(seed);
  const struct {
    const char* family;
    std::string (*gen)(const RtlVariant&);
  } kDesigns[] = {
      {"mips_pipeline", gen_mips_pipeline},
      {"mips_single", gen_mips_single},
  };
  for (const auto& design : kDesigns) {
    for (int i = 0; i < per_design; ++i) {
      RtlVariant variant;
      variant.style = i % 2;
      variant.seed = seeder.next_u64();
      CorpusItem item;
      item.name = util::format("%s#%d", design.family, i);
      item.design = design.family;
      item.kind = "rtl";
      item.verilog = design.gen(variant);
      items.push_back(std::move(item));
    }
  }
  return items;
}

}  // namespace gnn4ip::data
