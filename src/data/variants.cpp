#include "data/variants.h"

#include <sstream>

#include "util/string_util.h"

namespace gnn4ip::data {

std::string VariantHelper::name(const std::vector<std::string>& synonyms) {
  if (synonyms.empty()) return "sig";
  std::string base = synonyms[pick(synonyms.size())];
  // A third of the time, add a deterministic suffix so that even
  // same-synonym picks across variants differ lexically.
  if (rng_.flip(0.33)) {
    base += util::format("_%zu", static_cast<std::size_t>(rng_.next_below(8)));
  }
  return base;
}

std::pair<std::string, std::string> VariantHelper::commute(std::string a,
                                                           std::string b) {
  if (flip()) return {std::move(b), std::move(a)};
  return {std::move(a), std::move(b)};
}

std::string lines(const std::vector<std::string>& statements) {
  std::ostringstream os;
  for (const std::string& s : statements) os << s << '\n';
  return os.str();
}

}  // namespace gnn4ip::data
