#include "dist/shard_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cosine_kernels.h"
#include "core/snapshot_format.h"
#include "net/wire_format.h"
#include "tensor/matrix.h"

namespace gnn4ip::dist {

namespace {

using core::cosine_cell;
using core::CosineBounds;
using core::EmbeddingStore;
using core::KernelOps;
using core::make_quant_gate;
using core::make_sweep_query;
using core::QuantGate;
using core::QuantRowView;
using core::QuantStatsSoa;
using core::QuantSweepQuery;
using net::FrameBuilder;
using net::FrameCursor;
using net::MsgType;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One shard-local match (the wire's result unit — the front end owns
/// the local→global mapping).
struct Match {
  std::uint64_t local = 0;
  float similarity = 0.0F;
};

/// Materialize a request's probe block as a throwaway EmbeddingStore:
/// add() runs the exact same quantization/norm arithmetic the original
/// corpus ran on these float bytes, so probe gates and norms here are
/// bit-identical to the in-process query gates — the server never
/// reimplements (or risks drifting from) the quant tier.
EmbeddingStore make_probe_store(FrameCursor& cur, std::size_t nrows,
                                std::size_t dim, const char* field) {
  const float* block = cur.get_f32_array(nrows * dim, field);
  EmbeddingStore probes;
  tensor::Matrix row(1, dim);
  for (std::size_t r = 0; r < nrows; ++r) {
    // memcpy, not a float* cast read: the block sits behind a 5-byte
    // frame header and may be unaligned.
    std::memcpy(row.row(0).data(), block + r * dim, dim * sizeof(float));
    probes.add("probe" + std::to_string(r), row);
  }
  return probes;
}

/// The ranking comparator of ShardedCorpus::top_k, on shard-local
/// indices — within one shard, local order equals global order, so the
/// tie-breaks agree with the in-process ones.
bool closer(const Match& x, const Match& y) {
  if (x.similarity != y.similarity) return x.similarity > y.similarity;
  return x.local < y.local;
}

}  // namespace

ShardServer::ShardServer(std::uint16_t port, ShardServerOptions options)
    : options_(std::move(options)), listener_(port) {}

void ShardServer::load_shard(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw core::SnapshotIoError("cannot open shard file '" + path + "'");
  }
  store_ = EmbeddingStore::load(is);
}

void ShardServer::serve() {
  // The acceptor owns the blocking accept; serve() owns connections.
  // Both poll stop_ on a poll_ms cadence, so stop() lands within one
  // interval of whichever wait is in progress.
  std::thread acceptor([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      std::optional<net::Socket> conn = listener_.accept(options_.poll_ms);
      if (conn) (void)pending_.try_push(std::move(*conn));
    }
  });
  while (!stop_.load(std::memory_order_relaxed)) {
    std::optional<net::Socket> conn =
        pending_.pop_for(std::chrono::milliseconds(options_.poll_ms));
    if (conn) handle_connection(std::move(*conn));
  }
  acceptor.join();
}

void ShardServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  pending_.close();
}

void ShardServer::handle_connection(net::Socket socket) {
  std::vector<std::uint8_t> out;
  const auto answer_error = [&](net::WireErrorCode code,
                                const std::string& message) {
    out.clear();
    net::build_error_frame(out, code, message);
    try {
      socket.write_all(out.data(), out.size());
    } catch (const net::WireError&) {
      // The peer is gone; nothing left to tell it.
    }
  };
  try {
    const net::Frame hello = net::read_frame(socket);
    if (hello.type != MsgType::kHello) {
      answer_error(net::WireErrorCode::kProtocol,
                   "first frame must be Hello, not type " +
                       std::to_string(static_cast<unsigned>(hello.type)));
      return;
    }
    FrameCursor cur(hello.payload);
    char magic[sizeof(net::kWireMagic)];
    cur.get_bytes(magic, sizeof(magic), "magic");
    if (std::memcmp(magic, net::kWireMagic, sizeof(magic)) != 0) {
      answer_error(net::WireErrorCode::kMagic,
                   "Hello does not open with the G4IPWIRE magic");
      return;
    }
    const std::uint32_t version = cur.get_u32("version");
    if (version != net::kWireVersion) {
      answer_error(net::WireErrorCode::kVersion,
                   "peer speaks wire version " + std::to_string(version) +
                       "; this shard speaks " +
                       std::to_string(net::kWireVersion));
      return;
    }
    const std::uint32_t bom = cur.get_u32("byte-order mark");
    if (bom != net::kWireByteOrderMark) {
      answer_error(net::WireErrorCode::kByteOrder,
                   "byte-order mark read back scrambled — peer runs on a "
                   "foreign-endian host");
      return;
    }
    const std::uint32_t dim = cur.get_u32("dim");
    if (dim != 0 && store_.dim() != 0 && dim != store_.dim()) {
      answer_error(net::WireErrorCode::kDim,
                   "client embeds at dim " + std::to_string(dim) +
                       " but this shard holds dim " +
                       std::to_string(store_.dim()));
      return;
    }
    const std::string fingerprint = cur.get_string("model fingerprint");
    cur.done("Hello");
    if (!options_.fingerprint.empty() && !fingerprint.empty() &&
        fingerprint != options_.fingerprint) {
      answer_error(net::WireErrorCode::kFingerprint,
                   "this shard serves model " + options_.fingerprint +
                       " but the client embeds with " + fingerprint);
      return;
    }
    if (options_.fingerprint.empty()) options_.fingerprint = fingerprint;
    out.clear();
    {
      FrameBuilder ack(out, MsgType::kHelloAck);
      ack.put_u32(static_cast<std::uint32_t>(store_.dim()));
      ack.put_u64(store_.size());
      ack.put_u64(store_.live_count());
      ack.put_string(options_.fingerprint);
      ack.finish();
    }
    socket.write_all(out.data(), out.size());

    while (!stop_.load(std::memory_order_relaxed)) {
      if (!socket.wait_readable(options_.poll_ms)) continue;
      const net::Frame frame = net::read_frame(socket);
      if (!dispatch(socket, static_cast<std::uint8_t>(frame.type),
                    frame.payload)) {
        return;
      }
    }
  } catch (const net::WireConnectionError&) {
    // A hang-up at a frame boundary is the legal end of a conversation.
  } catch (const net::WireError& e) {
    answer_error(net::wire_error_code(e), e.what());
  } catch (const core::SnapshotError& e) {
    // SaveShard / load-path failures: disk trouble crossing the wire.
    answer_error(net::WireErrorCode::kIo, e.what());
  }
}

bool ShardServer::dispatch(net::Socket& socket, std::uint8_t type,
                           const std::vector<std::uint8_t>& payload) {
  FrameCursor cur(payload);
  std::vector<std::uint8_t> out;
  const KernelOps& ops = core::kernel_ops(options_.kernel);
  const auto check_dim = [&](std::uint32_t dim) {
    if (dim == 0) {
      throw net::WireProtocolError("request declares dim 0");
    }
    if (store_.dim() != 0 && dim != store_.dim()) {
      throw net::WireDimError("request carries dim " + std::to_string(dim) +
                              " rows but this shard holds dim " +
                              std::to_string(store_.dim()));
    }
  };
  const auto check_limit = [&](std::uint64_t limit) {
    if (limit > store_.size()) {
      throw net::WireProtocolError(
          "candidate limit " + std::to_string(limit) + " exceeds the " +
          std::to_string(store_.size()) +
          " rows resident here — front end and shard have drifted apart");
    }
  };

  switch (static_cast<MsgType>(type)) {
    case MsgType::kAdmitRows: {
      const std::uint32_t dim = cur.get_u32("dim");
      check_dim(dim);
      const std::uint32_t count = cur.get_u32("row count");
      tensor::Matrix row(1, dim);
      for (std::uint32_t r = 0; r < count; ++r) {
        std::string name = cur.get_string("row name");
        const float* values = cur.get_f32_array(dim, "row floats");
        std::memcpy(row.row(0).data(), values, dim * sizeof(float));
        (void)store_.add(std::move(name), row);
      }
      cur.done("AdmitRows");
      return true;
    }

    case MsgType::kRemove: {
      const std::uint64_t local = cur.get_u64("local index");
      cur.done("Remove");
      if (local >= store_.size()) {
        throw net::WireProtocolError(
            "Remove of local row " + std::to_string(local) + " but only " +
            std::to_string(store_.size()) + " rows are resident");
      }
      if (!store_.live(local)) {
        throw net::WireProtocolError("Remove of already-removed local row " +
                                     std::to_string(local));
      }
      store_.remove(local);
      return true;
    }

    case MsgType::kCompact: {
      cur.done("Compact");
      (void)store_.compact();
      return true;
    }

    case MsgType::kReset: {
      cur.done("Reset");
      store_ = EmbeddingStore();
      return true;
    }

    case MsgType::kScreen: {
      const std::uint32_t dim = cur.get_u32("dim");
      check_dim(dim);
      const std::uint32_t nrows = cur.get_u32("probe count");
      if (nrows == 0) throw net::WireProtocolError("Screen with 0 probes");
      const float delta = cur.get_f32("delta");
      const bool prefilter = cur.get_u8("prefilter") != 0;
      const std::uint64_t limit64 = cur.get_u64("candidate limit");
      check_limit(limit64);
      const std::size_t limit = static_cast<std::size_t>(limit64);
      const std::size_t d = dim;
      const EmbeddingStore probes =
          make_probe_store(cur, nrows, d, "probe rows");
      cur.done("Screen");

      // This is ShardedCorpus::screen_new_rows's run_shard on the local
      // store, with one addition: the pruned band resolves HERE (sorted
      // by upper bound, same break/skip/update rules as the in-process
      // merge), so what crosses back is the shard's true exact
      // first-max. Merging per-shard true first-maxes under the fixed
      // (sim desc, index asc) order reproduces the in-process best bit
      // for bit. `rescored` can differ from the in-process tally (the
      // local band seeds from a weaker shard-local best) — diagnostics
      // only, documented in docs/ARCHITECTURE.md.
      struct RowPartial {
        std::vector<Match> flagged;
        std::optional<Match> best;
        std::uint64_t scanned = 0;
        std::uint64_t rescored = 0;
      };
      std::vector<RowPartial> partials(nrows);
      if (!prefilter) {
        for (std::size_t local = 0; local < limit; ++local) {
          if (!store_.live(local)) continue;
          const float* rb = store_.row(local).data();
          const float norm_b = store_.norm(local);
          for (std::size_t r = 0; r < nrows; ++r) {
            RowPartial& p = partials[r];
            ++p.scanned;
            ++p.rescored;
            const float sim = cosine_cell(probes.row(r).data(), rb, d,
                                          probes.norm(r) * norm_b);
            if (sim > delta) p.flagged.push_back({local, sim});
            if (!p.best || sim > p.best->similarity) {
              p.best = Match{local, sim};
            }
          }
        }
      } else {
        const QuantStatsSoa soa = store_.quant_stats();
        std::size_t live_n = 0;
        for (std::size_t local = 0; local < limit; ++local) {
          live_n += store_.live(local) ? 1 : 0;
        }
        const auto dots =
            std::make_unique_for_overwrite<std::int32_t[]>(limit);
        const auto num = std::make_unique_for_overwrite<double[]>(limit);
        const auto den = std::make_unique_for_overwrite<double[]>(limit);
        const auto hits =
            std::make_unique_for_overwrite<std::uint32_t[]>(limit);
        const std::int8_t* qbase = limit > 0 ? store_.qrow(0).data() : nullptr;
        const double prune_max =
            delta >= -1.0F ? static_cast<double>(delta) : -kInf;
        struct Pruned {
          std::size_t local = 0;
          float ub = 0.0F;
        };
        for (std::size_t r = 0; r < nrows; ++r) {
          RowPartial& p = partials[r];
          p.scanned += live_n;
          if (limit == 0) continue;
          const QuantGate ga = make_quant_gate(probes.quant_view(r), d);
          const QuantSweepQuery qc = make_sweep_query(ga);
          const float* qrow = probes.row(r).data();
          const float qnorm = probes.norm(r);
          const std::size_t n_rescore = ops.quant_screen_sweep(
              qc, ga.q, qbase, d, soa, limit, prune_max, dots.get(),
              num.get(), den.get(), hits.get());
          float best_lb = -2.0F;
          for (std::size_t h = 0; h < n_rescore; ++h) {
            const std::size_t local = hits[h];
            if (!store_.live(local)) continue;
            ++p.rescored;
            const float sim = cosine_cell(qrow, store_.row(local).data(), d,
                                          qnorm * soa.normf[local]);
            if (sim > delta) p.flagged.push_back({local, sim});
            if (!p.best || sim > p.best->similarity) p.best = Match{local, sim};
            if (sim > best_lb) best_lb = sim;
          }
          const double keep_lb = best_lb > -1.0F ? best_lb : -kInf;
          double best_lb_d = best_lb;
          const std::size_t n_band = ops.quant_survivor_scan(
              num.get(), den.get(), limit, keep_lb, hits.get());
          std::vector<Pruned> pruned;
          for (std::size_t h = 0; h < n_band; ++h) {
            const std::size_t local = hits[h];
            if (!store_.live(local)) continue;
            const double nm = num[local];
            const double dn = den[local];
            if (nm > prune_max * dn) continue;
            if (best_lb > -1.0F && nm < best_lb_d * dn) continue;
            const CosineBounds bounds = core::quant_gate_bounds(
                ga, make_quant_gate(store_.quant_view(local), d),
                dots[local]);
            pruned.push_back({local, bounds.ub});
            if (bounds.lb > best_lb) {
              best_lb = bounds.lb;
              best_lb_d = bounds.lb;
            }
          }
          std::sort(pruned.begin(), pruned.end(),
                    [](const Pruned& x, const Pruned& y) {
                      if (x.ub != y.ub) return x.ub > y.ub;
                      return x.local < y.local;
                    });
          for (const Pruned& c : pruned) {
            if (p.best) {
              if (c.ub < p.best->similarity) break;
              if (c.ub == p.best->similarity && c.local > p.best->local) {
                continue;
              }
            }
            ++p.rescored;
            const float sim = cosine_cell(qrow, store_.row(c.local).data(), d,
                                          qnorm * store_.norm(c.local));
            if (!p.best || sim > p.best->similarity ||
                (sim == p.best->similarity && c.local < p.best->local)) {
              p.best = Match{c.local, sim};
            }
          }
        }
      }

      FrameBuilder b(out, MsgType::kScreenResult);
      for (const RowPartial& p : partials) {
        b.put_u32(static_cast<std::uint32_t>(p.flagged.size()));
        for (const Match& m : p.flagged) {
          b.put_u64(m.local);
          b.put_f32(m.similarity);
        }
        b.put_u8(p.best ? 1 : 0);
        if (p.best) {
          b.put_u64(p.best->local);
          b.put_f32(p.best->similarity);
        }
        b.put_u64(p.scanned);
        b.put_u64(p.rescored);
      }
      b.finish();
      socket.write_all(out.data(), out.size());
      return true;
    }

    case MsgType::kTopK: {
      const std::uint32_t dim = cur.get_u32("dim");
      check_dim(dim);
      const std::uint64_t k = cur.get_u64("k");
      const std::uint64_t limit64 = cur.get_u64("candidate limit");
      check_limit(limit64);
      const std::uint64_t exclude = cur.get_u64("excluded local index");
      const bool prefilter = cur.get_u8("prefilter") != 0;
      const std::size_t d = dim;
      const EmbeddingStore probes = make_probe_store(cur, 1, d, "probe row");
      cur.done("TopK");
      const std::size_t limit = static_cast<std::size_t>(limit64);
      const float* query = probes.row(0).data();
      const float query_norm = probes.norm(0);

      std::vector<Match> result;
      if (prefilter) {
        // Bound every candidate, then exact-rescore in descending-bound
        // order until the k-th exact value beats every remaining bound
        // — ShardedCorpus::top_k's walk on one shard.
        struct Cand {
          std::size_t local = 0;
          float ub = 0.0F;
        };
        const QuantRowView query_view = probes.quant_view(0);
        std::vector<Cand> cands;
        for (std::size_t local = 0; local < limit; ++local) {
          if (local == exclude || !store_.live(local)) continue;
          const QuantRowView qv = store_.quant_view(local);
          const std::int32_t dot = ops.dot_i8(query_view.q, qv.q, d);
          const CosineBounds bounds =
              core::quantized_cosine_bounds(query_view, qv, dot, d);
          cands.push_back({local, bounds.ub});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand& x, const Cand& y) {
                    if (x.ub != y.ub) return x.ub > y.ub;
                    return x.local < y.local;
                  });
        const std::size_t keep =
            std::min(static_cast<std::size_t>(k), cands.size());
        if (keep > 0) {
          result.reserve(keep + 1);
          for (const Cand& c : cands) {
            if (result.size() == keep &&
                c.ub < result.back().similarity) {
              break;
            }
            const Match scored{
                c.local, cosine_cell(query, store_.row(c.local).data(), d,
                                     query_norm * store_.norm(c.local))};
            const auto pos =
                std::lower_bound(result.begin(), result.end(), scored, closer);
            result.insert(pos, scored);
            if (result.size() > keep) result.pop_back();
          }
        }
      } else {
        std::vector<Match> cands;
        for (std::size_t local = 0; local < limit; ++local) {
          if (local == exclude || !store_.live(local)) continue;
          cands.push_back(
              {local, cosine_cell(query, store_.row(local).data(), d,
                                  query_norm * store_.norm(local))});
        }
        const std::size_t keep =
            std::min(static_cast<std::size_t>(k), cands.size());
        std::partial_sort(cands.begin(),
                          cands.begin() + static_cast<std::ptrdiff_t>(keep),
                          cands.end(), closer);
        cands.resize(keep);
        result = std::move(cands);
      }

      FrameBuilder b(out, MsgType::kTopKResult);
      b.put_u32(static_cast<std::uint32_t>(result.size()));
      for (const Match& m : result) {
        b.put_u64(m.local);
        b.put_f32(m.similarity);
      }
      b.finish();
      socket.write_all(out.data(), out.size());
      return true;
    }

    case MsgType::kFlag: {
      const float delta = cur.get_f32("delta");
      const bool prefilter = cur.get_u8("prefilter") != 0;
      const std::uint64_t limit64 = cur.get_u64("candidate limit");
      check_limit(limit64);
      cur.done("Flag");
      const std::size_t limit = static_cast<std::size_t>(limit64);
      const std::size_t d = store_.dim();

      std::vector<std::size_t> live;
      for (std::size_t local = 0; local < limit; ++local) {
        if (store_.live(local)) live.push_back(local);
      }
      const std::size_t kept = live.size();

      struct Pair {
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        float similarity = 0.0F;
      };
      std::vector<Pair> pairs;
      if (!prefilter) {
        for (std::size_t x = 0; x < kept; ++x) {
          const float* ra = store_.row(live[x]).data();
          const float na = store_.norm(live[x]);
          for (std::size_t y = x + 1; y < kept; ++y) {
            const float sim = cosine_cell(ra, store_.row(live[y]).data(), d,
                                          na * store_.norm(live[y]));
            if (sim > delta) pairs.push_back({live[x], live[y], sim});
          }
        }
      } else if (kept > 0) {
        // ShardedCorpus::flag_prefiltered on one shard: gate each tail
        // with the vectorized margin sweep, exact-rescore survivors.
        // The gate is sound (skips only provable sim ≤ delta) and the
        // output passes the exact `sim > delta` filter, so the flagged
        // set matches the exact path's no matter how the gate decides.
        std::vector<QuantGate> gates(kept);
        std::vector<double> cd_scale(kept), cd_sq(kept), cd_e(kept),
            cd_norm(kept);
        std::vector<float> norms(kept);
        for (std::size_t x = 0; x < kept; ++x) {
          gates[x] = make_quant_gate(store_.quant_view(live[x]), d);
          cd_scale[x] = gates[x].scale;
          cd_sq[x] = gates[x].sq;
          cd_e[x] = gates[x].e;
          cd_norm[x] = gates[x].norm;
          norms[x] = store_.norm(live[x]);
        }
        const QuantStatsSoa soa{cd_scale.data(), cd_sq.data(), cd_e.data(),
                                cd_norm.data(), norms.data()};
        const double prune_max =
            delta >= -1.0F ? static_cast<double>(delta) : -kInf;
        std::vector<std::int32_t> dots(kept);
        std::vector<double> num(kept);
        std::vector<double> den(kept);
        std::vector<std::uint32_t> hits(kept);
        for (std::size_t x = 0; x < kept; ++x) {
          const std::size_t tail = kept - x - 1;
          if (tail == 0) break;
          const QuantGate& ga = gates[x];
          const float* ra = store_.row(live[x]).data();
          for (std::size_t y = x + 1; y < kept; ++y) {
            dots[y - x - 1] = ops.dot_i8(ga.q, gates[y].q, d);
          }
          const QuantStatsSoa tail_soa{soa.scale + x + 1, soa.sq + x + 1,
                                       soa.e + x + 1, soa.normd + x + 1,
                                       soa.normf + x + 1};
          const std::size_t n_hits = ops.quant_margin_sweep(
              make_sweep_query(ga), tail_soa, dots.data(), tail, prune_max,
              num.data(), den.data(), hits.data());
          for (std::size_t h = 0; h < n_hits; ++h) {
            const std::size_t y = x + 1 + hits[h];
            const float sim = cosine_cell(ra, store_.row(live[y]).data(), d,
                                          norms[x] * norms[y]);
            if (sim > delta) pairs.push_back({live[x], live[y], sim});
          }
        }
      }

      FrameBuilder b(out, MsgType::kFlagResult);
      b.put_u32(static_cast<std::uint32_t>(pairs.size()));
      for (const Pair& p : pairs) {
        b.put_u64(p.a);
        b.put_u64(p.b);
        b.put_f32(p.similarity);
      }
      b.finish();
      socket.write_all(out.data(), out.size());
      return true;
    }

    case MsgType::kCrossFlag: {
      const std::uint32_t dim = cur.get_u32("dim");
      check_dim(dim);
      const std::uint32_t nprobes = cur.get_u32("probe count");
      const float delta = cur.get_f32("delta");
      const bool prefilter = cur.get_u8("prefilter") != 0;
      const std::uint64_t limit64 = cur.get_u64("candidate limit");
      check_limit(limit64);
      const std::size_t d = dim;
      const EmbeddingStore probes =
          make_probe_store(cur, nprobes, d, "probe rows");
      cur.done("CrossFlag");
      const std::size_t limit = static_cast<std::size_t>(limit64);

      std::vector<std::size_t> live;
      for (std::size_t local = 0; local < limit; ++local) {
        if (store_.live(local)) live.push_back(local);
      }
      const std::size_t kept = live.size();

      struct Hit {
        std::uint32_t probe = 0;
        std::uint64_t local = 0;
        float similarity = 0.0F;
      };
      std::vector<Hit> result;
      if (!prefilter) {
        for (std::uint32_t r = 0; r < nprobes; ++r) {
          const float* ra = probes.row(r).data();
          const float na = probes.norm(r);
          for (std::size_t y = 0; y < kept; ++y) {
            const float sim = cosine_cell(ra, store_.row(live[y]).data(), d,
                                          na * store_.norm(live[y]));
            if (sim > delta) result.push_back({r, live[y], sim});
          }
        }
      } else if (kept > 0) {
        std::vector<QuantGate> cand_gates(kept);
        std::vector<double> cd_scale(kept), cd_sq(kept), cd_e(kept),
            cd_norm(kept);
        std::vector<float> norms(kept);
        for (std::size_t y = 0; y < kept; ++y) {
          cand_gates[y] = make_quant_gate(store_.quant_view(live[y]), d);
          cd_scale[y] = cand_gates[y].scale;
          cd_sq[y] = cand_gates[y].sq;
          cd_e[y] = cand_gates[y].e;
          cd_norm[y] = cand_gates[y].norm;
          norms[y] = store_.norm(live[y]);
        }
        const QuantStatsSoa soa{cd_scale.data(), cd_sq.data(), cd_e.data(),
                                cd_norm.data(), norms.data()};
        const double prune_max =
            delta >= -1.0F ? static_cast<double>(delta) : -kInf;
        std::vector<std::int32_t> dots(kept);
        std::vector<double> num(kept);
        std::vector<double> den(kept);
        std::vector<std::uint32_t> hits(kept);
        for (std::uint32_t r = 0; r < nprobes; ++r) {
          const QuantGate ga = make_quant_gate(probes.quant_view(r), d);
          const float* ra = probes.row(r).data();
          const float na = probes.norm(r);
          for (std::size_t y = 0; y < kept; ++y) {
            dots[y] = ops.dot_i8(ga.q, cand_gates[y].q, d);
          }
          const std::size_t n_hits = ops.quant_margin_sweep(
              make_sweep_query(ga), soa, dots.data(), kept, prune_max,
              num.data(), den.data(), hits.data());
          for (std::size_t h = 0; h < n_hits; ++h) {
            const std::size_t y = hits[h];
            const float sim = cosine_cell(ra, store_.row(live[y]).data(), d,
                                          na * norms[y]);
            if (sim > delta) result.push_back({r, live[y], sim});
          }
        }
      }

      FrameBuilder b(out, MsgType::kCrossFlagResult);
      b.put_u32(static_cast<std::uint32_t>(result.size()));
      for (const Hit& h : result) {
        b.put_u32(h.probe);
        b.put_u64(h.local);
        b.put_f32(h.similarity);
      }
      b.finish();
      socket.write_all(out.data(), out.size());
      return true;
    }

    case MsgType::kSaveShard: {
      const std::string dir = cur.get_string("snapshot directory");
      const std::uint64_t shard = cur.get_u64("shard id");
      cur.done("SaveShard");
      const std::filesystem::path root(dir);
      std::error_code ec;
      std::filesystem::create_directories(root, ec);
      if (ec) {
        throw core::SnapshotIoError("cannot create snapshot directory '" +
                                    dir + "': " + ec.message());
      }
      const std::filesystem::path path =
          root / core::shard_file_name(static_cast<std::size_t>(shard));
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw core::SnapshotIoError("cannot open '" + path.string() +
                                    "' for writing");
      }
      store_.save(os);
      if (!os) {
        throw core::SnapshotIoError("short write to '" + path.string() + "'");
      }
      FrameBuilder b(out, MsgType::kSaveAck);
      b.put_u64(store_.size());
      b.put_u64(store_.live_count());
      b.finish();
      socket.write_all(out.data(), out.size());
      return true;
    }

    case MsgType::kInfo: {
      cur.done("Info");
      FrameBuilder b(out, MsgType::kInfoAck);
      b.put_u32(static_cast<std::uint32_t>(store_.dim()));
      b.put_u64(store_.size());
      b.put_u64(store_.live_count());
      b.finish();
      socket.write_all(out.data(), out.size());
      return true;
    }

    default:
      throw net::WireProtocolError("unknown or misdirected frame type " +
                                   std::to_string(type));
  }
}

}  // namespace gnn4ip::dist
