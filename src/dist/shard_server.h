// dist::ShardServer — one corpus shard behind a G4IPWIRE socket.
//
// A shard server owns exactly one core::EmbeddingStore and speaks for
// it over the wire: the front end (dist::DistCorpus) admits rows into
// it, and screening requests run the SAME sweep arithmetic the
// in-process ShardedCorpus runs per shard — int8 prefilter, exact
// scalar rescoring, per-shard first-max best resolution — so what
// crosses the wire back is only the shard's exact *partials* (flagged
// matches, the shard-local best, top-k prefix), never raw rows or
// bound-approximate values. That server-side resolution is both the
// perf point (a 10k-row shard screen returns a handful of matches, not
// 10k floats) and the determinism point: every similarity a server
// reports is the scalar cosine_cell of the same row bytes the
// in-process path would read, so the front end's fixed-tie-break
// merges reproduce in-process verdicts bit for bit
// (docs/ARCHITECTURE.md, "Distributed screening").
//
// Addressing: the wire speaks shard-LOCAL row indices only. The front
// end owns the global index space and the placement map; within one
// shard, local insertion order equals global insertion order (the
// ShardedCorpus invariant), so local-index tie-breaks map 1:1 onto
// global ones.
//
// Threading: one acceptor thread feeds accepted connections into a
// util::BoundedQueue; serve() drains it (pop_for-bounded, so stop() is
// honoured within one poll interval) and services one connection at a
// time — a shard has one front end, so connection concurrency buys
// nothing but locks. The store itself is therefore entirely
// unsynchronized here.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/embedding_store.h"
#include "core/simd_dispatch.h"
#include "net/socket.h"
#include "util/bounded_queue.h"

namespace gnn4ip::dist {

struct ShardServerOptions {
  /// Model fingerprint this shard serves rows for. Empty = adopt the
  /// first client's fingerprint at Hello time; non-empty = reject any
  /// client whose Hello carries a different one (WireFingerprintError).
  std::string fingerprint;
  /// Kernel backend for the int8 prefilter sweeps. Integer kernels are
  /// bit-identical across backends and every reported float is a scalar
  /// rescore, so this is a pure perf knob.
  core::KernelBackend kernel = core::KernelBackend::kAuto;
  /// Accept/drain poll granularity — the upper bound on how long stop()
  /// takes to be observed.
  unsigned poll_ms = 100;
};

class ShardServer {
 public:
  /// Bind 127.0.0.1:`port` (0 = ephemeral; port() reports the choice).
  /// Throws net::WireConnectionError when the bind fails.
  explicit ShardServer(std::uint16_t port,
                       ShardServerOptions options = {});

  /// Pre-load the store from one binary shard file written by
  /// ShardedCorpus::save / the SaveShard command (the `--load-shard`
  /// path). Call before serve(). Throws the typed core::SnapshotError
  /// taxonomy on a damaged file.
  void load_shard(const std::string& path);

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Accept and service connections until stop(). Blocks the calling
  /// thread; run it in a dedicated thread (tests) or let it own main()
  /// (gnn4ip_shardd). A protocol error on one connection answers with a
  /// typed kError frame and closes that connection — the server keeps
  /// serving.
  void serve();

  /// Ask serve() to return (honoured within ~poll_ms). Safe from any
  /// thread and from signal-ish contexts (atomic flag + queue close).
  void stop();

 private:
  void handle_connection(net::Socket socket);
  /// Dispatch one request frame on an established connection. Returns
  /// false when the connection should close (peer gone).
  bool dispatch(net::Socket& socket, std::uint8_t type,
                const std::vector<std::uint8_t>& payload);

  ShardServerOptions options_;
  net::TcpListener listener_;
  core::EmbeddingStore store_;
  std::atomic<bool> stop_{false};
  util::BoundedQueue<net::Socket> pending_{16};
};

}  // namespace gnn4ip::dist
