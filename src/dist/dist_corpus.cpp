#include "dist/dist_corpus.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include "core/sharded_corpus.h"
#include "core/snapshot_format.h"
#include "net/wire_format.h"
#include "util/contract.h"

namespace gnn4ip::dist {

namespace {

using core::PairScore;
using core::ScreenMatch;
using core::ScreenRow;
using net::FrameBuilder;
using net::FrameCursor;
using net::MsgType;

constexpr std::uint64_t kNoLocal = std::numeric_limits<std::uint64_t>::max();

/// The top_k merge comparator of ShardedCorpus (similarity desc, global
/// index asc) — a total order over candidates with distinct globals.
bool closer(const PairScore& x, const PairScore& y) {
  if (x.similarity != y.similarity) return x.similarity > y.similarity;
  return x.b < y.b;
}

}  // namespace

std::vector<Endpoint> parse_endpoints(std::string_view spec) {
  std::vector<Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == item.size()) {
      throw net::WireConnectionError("malformed endpoint '" +
                                     std::string(item) +
                                     "' (expected host:port)");
    }
    Endpoint ep;
    ep.host = std::string(item.substr(0, colon));
    unsigned long port = 0;
    const std::string port_text(item.substr(colon + 1));
    try {
      std::size_t used = 0;
      port = std::stoul(port_text, &used);
      if (used != port_text.size()) port = 0;
    } catch (const std::exception&) {
      port = 0;
    }
    if (port == 0 || port > 65535) {
      throw net::WireConnectionError("endpoint '" + std::string(item) +
                                     "' has no valid port (1..65535)");
    }
    ep.port = static_cast<std::uint16_t>(port);
    endpoints.push_back(std::move(ep));
  }
  if (endpoints.empty()) {
    throw net::WireConnectionError(
        "empty endpoint list (expected host:port[,host:port...])");
  }
  return endpoints;
}

std::unique_ptr<DistCorpus> DistCorpus::connect(
    const std::vector<Endpoint>& endpoints, std::string model_fingerprint,
    const core::ScorerOptions& options, std::size_t shard_budget,
    bool allow_resident) {
  GNN4IP_ENSURE(!endpoints.empty(), "DistCorpus: need at least one shard");
  bool any_resident = false;
  auto shared = std::make_shared<ChannelSet>();
  {
    util::MutexLock lock(shared->mu);
    std::vector<std::uint8_t> buf;
    for (const Endpoint& ep : endpoints) {
      Channel ch;
      ch.endpoint = ep;
      ch.sock = net::Socket::connect_to(ep.host, ep.port);
      buf.clear();
      FrameBuilder hello(buf, MsgType::kHello);
      hello.put_bytes(net::kWireMagic, sizeof(net::kWireMagic));
      hello.put_u32(net::kWireVersion);
      hello.put_u32(net::kWireByteOrderMark);
      hello.put_u32(0);  // dim unknown until the first admission
      hello.put_string(model_fingerprint);
      hello.finish();
      ch.sock.write_all(buf.data(), buf.size());
      const net::Frame ack = net::expect_frame(ch.sock, MsgType::kHelloAck);
      FrameCursor cur(ack.payload);
      (void)cur.get_u32("shard dim");
      const std::uint64_t rows = cur.get_u64("shard rows");
      (void)cur.get_u64("shard live rows");
      const std::string server_fp = cur.get_string("shard fingerprint");
      cur.done("HelloAck");
      if (!model_fingerprint.empty() && !server_fp.empty() &&
          server_fp != model_fingerprint) {
        throw net::WireFingerprintError(
            "shard " + ep.host + ":" + std::to_string(ep.port) +
            " serves model " + server_fp + " but this client embeds with " +
            model_fingerprint);
      }
      if (rows != 0) {
        if (!allow_resident) {
          throw net::WireProtocolError(
              "shard " + ep.host + ":" + std::to_string(ep.port) +
              " already holds " + std::to_string(rows) +
              " rows — a fresh DistCorpus owns its cluster's contents; "
              "restore a snapshot to adopt pre-loaded shards");
        }
        any_resident = true;
      }
      shared->channels.push_back(std::move(ch));
    }
  }
  auto corpus = std::unique_ptr<DistCorpus>(
      new DistCorpus(std::move(shared), options, shard_budget,
                     std::move(model_fingerprint)));
  {
    util::MutexLock lock(corpus->shared_->mu);
    corpus->unreconciled_ = any_resident;
  }
  return corpus;
}

void DistCorpus::check_reconciled_locked() const {
  if (unreconciled_) {
    throw net::WireProtocolError(
        "the shard servers hold resident rows this corpus has not "
        "adopted; restore their snapshot (--load-corpus) before using it");
  }
}

DistCorpus::DistCorpus(std::shared_ptr<ChannelSet> channels,
                       const core::ScorerOptions& options,
                       std::size_t shard_budget, std::string fingerprint)
    : options_(options),
      shard_budget_(shard_budget),
      fingerprint_(std::move(fingerprint)),
      shared_(std::move(channels)) {
  util::MutexLock lock(shared_->mu);
  globals_.resize(shared_->channels.size());
  shard_live_.assign(shared_->channels.size(), 0);
}

DistCorpus::~DistCorpus() {
  // Push any still-buffered one-way mutations out — a shard restarted
  // from its own SaveShard file must not be missing the tail of an
  // admission batch. A dead peer here is not worth terminating over.
  util::MutexLock lock(shared_->mu);
  for (Channel& ch : shared_->channels) {
    try {
      flush_locked(ch);
    } catch (const net::WireError&) {
    }
  }
}

void DistCorpus::flush_locked(Channel& ch) const {
  if (ch.sendbuf.empty()) return;
  ch.sock.write_all(ch.sendbuf.data(), ch.sendbuf.size());
  ch.sendbuf.clear();
}

void DistCorpus::buffer_flush_locked(Channel& ch) const {
  if (ch.sendbuf.size() > net::kFlushThresholdBytes) flush_locked(ch);
}

std::size_t DistCorpus::admit_mirror_locked(std::string name,
                                            std::span<const float> row) {
  const std::size_t s =
      core::ShardedCorpus::placement(name, globals_.size());
  const std::size_t g = entries_.size();
  entries_.push_back({s, globals_[s].size()});
  globals_[s].push_back(g);
  rows_.insert(rows_.end(), row.begin(), row.end());
  names_.push_back(std::move(name));
  live_.push_back(1);
  ++live_count_;
  ++shard_live_[s];
  return g;
}

std::size_t DistCorpus::add(std::string name,
                            const tensor::Matrix& embedding) {
  GNN4IP_ENSURE(!embedding.empty(), "DistCorpus: empty embedding");
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  const std::span<const float> flat = embedding.data();
  if (dim_ == 0) {
    dim_ = flat.size();
  } else {
    GNN4IP_ENSURE(flat.size() == dim_,
                  "DistCorpus: embedding dim " + std::to_string(flat.size()) +
                      " != corpus dim " + std::to_string(dim_));
  }
  const std::size_t g = admit_mirror_locked(std::move(name), flat);
  Channel& ch = shared_->channels[entries_[g].shard];
  FrameBuilder b(ch.sendbuf, MsgType::kAdmitRows);
  b.put_u32(static_cast<std::uint32_t>(dim_));
  b.put_u32(1);
  b.put_string(names_[g]);
  b.put_bytes(flat.data(), flat.size() * sizeof(float));
  b.finish();
  buffer_flush_locked(ch);
  return g;
}

void DistCorpus::remove(std::size_t i) {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  GNN4IP_ENSURE(i < entries_.size(), "DistCorpus: remove out of range");
  GNN4IP_ENSURE(live_[i] != 0, "DistCorpus: row already removed");
  const EntryRef e = entries_[i];
  live_[i] = 0;
  --live_count_;
  --shard_live_[e.shard];
  Channel& ch = shared_->channels[e.shard];
  FrameBuilder b(ch.sendbuf, MsgType::kRemove);
  b.put_u64(e.local);
  b.finish();
  buffer_flush_locked(ch);
}

std::vector<std::size_t> DistCorpus::compact() {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  const std::size_t shard_count = globals_.size();
  // Per-shard dense local renumbering from the mirror's liveness —
  // exactly the mapping each server's EmbeddingStore::compact derives
  // from its own tombstones, then the same global renumbering as
  // ShardedCorpus::compact (insertion order, shard-count-invariant).
  std::vector<std::vector<std::size_t>> local_maps(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    local_maps[s].assign(globals_[s].size(), kNoIndex);
    std::size_t next = 0;
    for (std::size_t local = 0; local < globals_[s].size(); ++local) {
      if (live_[globals_[s][local]] != 0) local_maps[s][local] = next++;
    }
  }
  std::vector<std::size_t> mapping(entries_.size(), kNoIndex);
  std::vector<EntryRef> survivors;
  survivors.reserve(live_count_);
  std::vector<float> new_rows;
  new_rows.reserve(live_count_ * dim_);
  std::deque<std::string> new_names;
  for (std::size_t g = 0; g < entries_.size(); ++g) {
    const EntryRef& e = entries_[g];
    const std::size_t new_local = local_maps[e.shard][e.local];
    if (new_local == kNoIndex) continue;
    mapping[g] = survivors.size();
    survivors.push_back({e.shard, new_local});
    new_rows.insert(new_rows.end(),
                    rows_.begin() + static_cast<std::ptrdiff_t>(g * dim_),
                    rows_.begin() +
                        static_cast<std::ptrdiff_t>((g + 1) * dim_));
    new_names.push_back(std::move(names_[g]));
  }
  entries_ = std::move(survivors);
  rows_ = std::move(new_rows);
  names_ = std::move(new_names);
  live_.assign(entries_.size(), 1);
  live_count_ = entries_.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::size_t kept = 0;
    for (const std::size_t nl : local_maps[s]) kept += nl != kNoIndex ? 1 : 0;
    globals_[s].assign(kept, kNoIndex);
  }
  for (std::size_t g = 0; g < entries_.size(); ++g) {
    globals_[entries_[g].shard][entries_[g].local] = g;
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_live_[s] = globals_[s].size();
  }
  for (Channel& ch : shared_->channels) {
    FrameBuilder b(ch.sendbuf, MsgType::kCompact);
    b.finish();
    buffer_flush_locked(ch);
  }
  return mapping;
}

std::size_t DistCorpus::size() const {
  util::MutexLock lock(shared_->mu);
  return entries_.size();
}

std::size_t DistCorpus::dim() const {
  util::MutexLock lock(shared_->mu);
  return dim_;
}

std::size_t DistCorpus::live_count() const {
  util::MutexLock lock(shared_->mu);
  return live_count_;
}

bool DistCorpus::live(std::size_t i) const {
  util::MutexLock lock(shared_->mu);
  GNN4IP_ENSURE(i < entries_.size(), "DistCorpus: index out of range");
  return live_[i] != 0;
}

const std::string& DistCorpus::name(std::size_t i) const {
  util::MutexLock lock(shared_->mu);
  GNN4IP_ENSURE(i < entries_.size(), "DistCorpus: index out of range");
  // Deque references are stable across admissions; compact() rebuilds
  // the deque — the same invalidation contract as ShardedCorpus.
  return names_[i];
}

std::size_t DistCorpus::num_shards() const {
  util::MutexLock lock(shared_->mu);
  return globals_.size();
}

std::size_t DistCorpus::shard_of(std::size_t i) const {
  util::MutexLock lock(shared_->mu);
  GNN4IP_ENSURE(i < entries_.size(), "DistCorpus: index out of range");
  return entries_[i].shard;
}

std::size_t DistCorpus::shard_live_count(std::size_t s) const {
  util::MutexLock lock(shared_->mu);
  GNN4IP_ENSURE(s < shard_live_.size(), "DistCorpus: shard out of range");
  return shard_live_[s];
}

float DistCorpus::score(std::size_t i, std::size_t j) const {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  GNN4IP_ENSURE(i < entries_.size() && j < entries_.size(),
                "DistCorpus: pair index out of range");
  // Single pairs score off the mirror — same bytes, same cosine_pair
  // arithmetic as in-process, and no round trip.
  const std::span<const float> a(rows_.data() + i * dim_, dim_);
  const std::span<const float> b(rows_.data() + j * dim_, dim_);
  return core::cosine_pair(a, b);
}

std::vector<ScreenRow> DistCorpus::screen_new_rows(std::size_t first_new,
                                                   float delta) const {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  GNN4IP_ENSURE(first_new <= entries_.size(),
                "screen_new_rows: first_new past the corpus end");
  const std::size_t new_rows = entries_.size() - first_new;
  std::vector<ScreenRow> result(new_rows);
  if (new_rows == 0) return result;
  const std::size_t d = dim_;
  const std::size_t shard_count = globals_.size();
  const std::size_t tail_bytes = new_rows * d * sizeof(float);
  const float* probe_block = rows_.data() + first_new * d;

  // Pipelined fan-out: write every shard's request (header from the
  // send buffer, the N×D probe slab as a writev tail straight out of
  // the mirror — no copy), then read responses in shard order. The
  // shard processes overlap their sweeps while we wait on the first.
  std::vector<std::size_t> limits(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    // Candidates are this shard's rows admitted before first_new — an
    // ascending prefix of its local order.
    limits[s] = static_cast<std::size_t>(
        std::lower_bound(globals_[s].begin(), globals_[s].end(), first_new) -
        globals_[s].begin());
    Channel& ch = shared_->channels[s];
    flush_locked(ch);
    FrameBuilder b(ch.sendbuf, MsgType::kScreen);
    b.put_u32(static_cast<std::uint32_t>(d));
    b.put_u32(static_cast<std::uint32_t>(new_rows));
    b.put_f32(delta);
    b.put_u8(options_.int8_prefilter ? 1 : 0);
    b.put_u64(limits[s]);
    b.finish(tail_bytes);
    ch.sock.write_vectored({{ch.sendbuf.data(), ch.sendbuf.size()},
                            {probe_block, tail_bytes}});
    ch.sendbuf.clear();
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    Channel& ch = shared_->channels[s];
    const net::Frame frame =
        net::expect_frame(ch.sock, MsgType::kScreenResult);
    FrameCursor cur(frame.payload);
    const auto to_global = [&](std::uint64_t local) {
      if (local >= limits[s]) {
        throw net::WireProtocolError(
            "shard " + std::to_string(s) + " reported local row " +
            std::to_string(local) + " beyond its candidate limit " +
            std::to_string(limits[s]));
      }
      return globals_[s][static_cast<std::size_t>(local)];
    };
    for (std::size_t r = 0; r < new_rows; ++r) {
      ScreenRow& out = result[r];
      const std::uint32_t flag_count = cur.get_u32("flag count");
      for (std::uint32_t f = 0; f < flag_count; ++f) {
        const std::uint64_t local = cur.get_u64("flagged local");
        const float sim = cur.get_f32("flagged similarity");
        out.flagged.push_back({to_global(local), sim});
      }
      if (cur.get_u8("has best") != 0) {
        const std::size_t g = to_global(cur.get_u64("best local"));
        const float sim = cur.get_f32("best similarity");
        // The fixed merge: similarity desc, then ascending global index
        // — same rule, hence same winner, as the in-process merge.
        if (!out.best || sim > out.best->similarity ||
            (sim == out.best->similarity && g < out.best->index)) {
          out.best = ScreenMatch{g, sim};
        }
      }
      out.scanned += static_cast<std::size_t>(cur.get_u64("scanned"));
      out.rescored += static_cast<std::size_t>(cur.get_u64("rescored"));
    }
    cur.done("ScreenResult");
  }
  for (ScreenRow& out : result) {
    std::sort(out.flagged.begin(), out.flagged.end(),
              [](const ScreenMatch& x, const ScreenMatch& y) {
                return x.index < y.index;
              });
  }
  return result;
}

std::vector<PairScore> DistCorpus::top_k(std::size_t i, std::size_t k) const {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  GNN4IP_ENSURE(i < entries_.size(), "top_k: row index out of range");
  GNN4IP_ENSURE(live_[i] != 0, "top_k: row has been removed");
  const std::size_t d = dim_;
  const std::size_t shard_count = globals_.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    Channel& ch = shared_->channels[s];
    flush_locked(ch);
    FrameBuilder b(ch.sendbuf, MsgType::kTopK);
    b.put_u32(static_cast<std::uint32_t>(d));
    b.put_u64(k);
    b.put_u64(globals_[s].size());
    b.put_u64(entries_[i].shard == s ? entries_[i].local : kNoLocal);
    b.put_u8(options_.int8_prefilter ? 1 : 0);
    b.put_bytes(rows_.data() + i * d, d * sizeof(float));
    b.finish();
    flush_locked(ch);
  }
  // Each shard returns its true top-min(k, ·) prefix; the global top-k
  // is a subset of their union, so merging under the same total order
  // and truncating reproduces the in-process ranking exactly.
  std::vector<PairScore> merged;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const net::Frame frame =
        net::expect_frame(shared_->channels[s].sock, MsgType::kTopKResult);
    FrameCursor cur(frame.payload);
    const std::uint32_t count = cur.get_u32("match count");
    for (std::uint32_t m = 0; m < count; ++m) {
      const std::uint64_t local = cur.get_u64("match local");
      const float sim = cur.get_f32("match similarity");
      if (local >= globals_[s].size()) {
        throw net::WireProtocolError("shard " + std::to_string(s) +
                                     " reported unknown local row " +
                                     std::to_string(local));
      }
      merged.push_back({i, globals_[s][static_cast<std::size_t>(local)], sim});
    }
    cur.done("TopKResult");
  }
  std::sort(merged.begin(), merged.end(), closer);
  merged.resize(std::min(k, merged.size()));
  return merged;
}

std::vector<PairScore> DistCorpus::flag(float delta) const {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  const std::size_t d = dim_;
  const std::size_t shard_count = globals_.size();
  const std::uint8_t prefilter = options_.int8_prefilter ? 1 : 0;
  std::vector<PairScore> pairs;

  // Round 1 — within-shard pairs, one request per shard, pipelined.
  for (std::size_t s = 0; s < shard_count; ++s) {
    Channel& ch = shared_->channels[s];
    flush_locked(ch);
    FrameBuilder b(ch.sendbuf, MsgType::kFlag);
    b.put_f32(delta);
    b.put_u8(prefilter);
    b.put_u64(globals_[s].size());
    b.finish();
    flush_locked(ch);
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    const net::Frame frame =
        net::expect_frame(shared_->channels[s].sock, MsgType::kFlagResult);
    FrameCursor cur(frame.payload);
    const std::uint32_t count = cur.get_u32("pair count");
    for (std::uint32_t m = 0; m < count; ++m) {
      const std::uint64_t la = cur.get_u64("pair local a");
      const std::uint64_t lb = cur.get_u64("pair local b");
      const float sim = cur.get_f32("pair similarity");
      if (la >= globals_[s].size() || lb >= globals_[s].size()) {
        throw net::WireProtocolError("shard " + std::to_string(s) +
                                     " flagged an unknown local pair");
      }
      // Within one shard local order equals global order, so (la < lb)
      // already gives ascending global (a, b).
      pairs.push_back({globals_[s][static_cast<std::size_t>(la)],
                       globals_[s][static_cast<std::size_t>(lb)], sim});
    }
    cur.done("FlagResult");
  }

  // Rounds 2..S — cross-shard pairs: shard s's live rows travel once to
  // every shard t > s. Each round sends at most one request per
  // connection (all distinct t), so requests pipeline across servers
  // without ever queueing two bulk payloads on one socket.
  std::vector<float> scratch;
  std::vector<std::size_t> probe_globals;
  for (std::size_t s = 0; s + 1 < shard_count; ++s) {
    probe_globals.clear();
    for (const std::size_t g : globals_[s]) {
      if (live_[g] != 0) probe_globals.push_back(g);
    }
    if (probe_globals.empty()) continue;
    scratch.resize(probe_globals.size() * d);
    for (std::size_t p = 0; p < probe_globals.size(); ++p) {
      std::memcpy(scratch.data() + p * d,
                  rows_.data() + probe_globals[p] * d, d * sizeof(float));
    }
    const std::size_t tail_bytes = scratch.size() * sizeof(float);
    for (std::size_t t = s + 1; t < shard_count; ++t) {
      Channel& ch = shared_->channels[t];
      flush_locked(ch);
      FrameBuilder b(ch.sendbuf, MsgType::kCrossFlag);
      b.put_u32(static_cast<std::uint32_t>(d));
      b.put_u32(static_cast<std::uint32_t>(probe_globals.size()));
      b.put_f32(delta);
      b.put_u8(prefilter);
      b.put_u64(globals_[t].size());
      b.finish(tail_bytes);
      ch.sock.write_vectored({{ch.sendbuf.data(), ch.sendbuf.size()},
                              {scratch.data(), tail_bytes}});
      ch.sendbuf.clear();
    }
    for (std::size_t t = s + 1; t < shard_count; ++t) {
      const net::Frame frame = net::expect_frame(
          shared_->channels[t].sock, MsgType::kCrossFlagResult);
      FrameCursor cur(frame.payload);
      const std::uint32_t count = cur.get_u32("hit count");
      for (std::uint32_t m = 0; m < count; ++m) {
        const std::uint32_t p = cur.get_u32("hit probe");
        const std::uint64_t local = cur.get_u64("hit local");
        const float sim = cur.get_f32("hit similarity");
        if (p >= probe_globals.size() || local >= globals_[t].size()) {
          throw net::WireProtocolError("shard " + std::to_string(t) +
                                       " flagged an unknown cross pair");
        }
        const std::size_t ga = probe_globals[p];
        const std::size_t gb = globals_[t][static_cast<std::size_t>(local)];
        // Cosine is bit-symmetric (commutative multiplies, same
        // ascending-k sum), so orienting the pair ascending matches the
        // in-process (a < b) enumeration exactly.
        pairs.push_back({std::min(ga, gb), std::max(ga, gb), sim});
      }
      cur.done("CrossFlagResult");
    }
  }
  std::sort(pairs.begin(), pairs.end(), core::flag_order);
  return pairs;
}

void DistCorpus::save(const std::string& dir,
                      std::string_view model_fingerprint) const {
  util::MutexLock lock(shared_->mu);
  check_reconciled_locked();
  const std::filesystem::path root(dir);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    throw core::SnapshotIoError("cannot create snapshot directory '" + dir +
                                "': " + ec.message());
  }
  const std::size_t shard_count = globals_.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    Channel& ch = shared_->channels[s];
    flush_locked(ch);
    FrameBuilder b(ch.sendbuf, MsgType::kSaveShard);
    b.put_string(dir);
    b.put_u64(s);
    b.finish();
    flush_locked(ch);
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    const net::Frame frame =
        net::expect_frame(shared_->channels[s].sock, MsgType::kSaveAck);
    FrameCursor cur(frame.payload);
    const std::uint64_t rows = cur.get_u64("saved rows");
    const std::uint64_t live_rows = cur.get_u64("saved live rows");
    cur.done("SaveAck");
    if (rows != globals_[s].size() || live_rows != shard_live_[s]) {
      throw net::WireProtocolError(
          "shard " + std::to_string(s) + " saved " + std::to_string(rows) +
          " rows (" + std::to_string(live_rows) + " live) but the front end "
          "expected " + std::to_string(globals_[s].size()) + " (" +
          std::to_string(shard_live_[s]) + " live) — state has drifted");
    }
  }
  // The manifest comes from the mirror — the same lines, in the same
  // order, as ShardedCorpus::save, so either implementation restores
  // the other's snapshots.
  const std::filesystem::path manifest_path = root / core::kManifestFileName;
  std::ofstream os(manifest_path, std::ios::trunc);
  if (!os) {
    throw core::SnapshotIoError("cannot open '" + manifest_path.string() +
                                "' for writing");
  }
  os << core::kManifestMagic << " v" << core::kManifestFormatVersion << '\n';
  os << "model " << model_fingerprint << '\n';
  os << "placement " << core::kPlacementScheme << '\n';
  os << "dim " << dim_ << '\n';
  os << "shards " << shard_count << '\n';
  os << "entries " << entries_.size() << '\n';
  os << "order";
  for (const EntryRef& e : entries_) os << ' ' << e.shard;
  os << '\n';
  os << "end\n";
  if (!os) {
    throw core::SnapshotIoError("short write to '" + manifest_path.string() +
                                "'");
  }
}

std::unique_ptr<core::CorpusBackend> DistCorpus::restored(
    const std::string& dir, std::string_view expected_fingerprint) const {
  // Parse + validate entirely in-process first: ShardedCorpus::restore
  // throws every typed SnapshotError before anything is pushed, and the
  // restored probe hands us validated rows, names, and tombstones (it
  // adopts the snapshot's own shard count, which is also what
  // `gnn4ip_shardd --load-shard` servers hold).
  core::ShardedCorpus probe(1, options_, shard_budget_);
  probe.restore(dir, expected_fingerprint);

  auto fresh = std::unique_ptr<DistCorpus>(
      new DistCorpus(shared_, options_, shard_budget_, fingerprint_));
  util::MutexLock lock(shared_->mu);
  const std::size_t shard_count = shared_->channels.size();
  fresh->dim_ = probe.dim();
  for (std::size_t g = 0; g < probe.size(); ++g) {
    const std::size_t mg =
        fresh->admit_mirror_locked(probe.name(g), probe.row(g));
    GNN4IP_ENSURE(mg == g, "DistCorpus: restore renumbered a global id");
    if (!probe.live(g)) {
      fresh->live_[g] = 0;
      --fresh->live_count_;
      --fresh->shard_live_[fresh->entries_[g].shard];
    }
  }

  // Adopt without pushing when the cluster already holds this snapshot:
  // the shard count matches and every server's resident tallies equal
  // the mirror's. The operator contract (docs/ARCHITECTURE.md) is that
  // matching servers were started with --load-shard on THIS snapshot's
  // shard files; the tally check catches the honest mistakes (wrong
  // file, wrong order, stale snapshot), not a malicious server.
  bool adopt = probe.num_shards() == shard_count;
  std::vector<std::uint8_t> buf;
  if (adopt) {
    for (Channel& ch : shared_->channels) {
      flush_locked(ch);
      buf.clear();
      FrameBuilder b(buf, MsgType::kInfo);
      b.finish();
      ch.sock.write_all(buf.data(), buf.size());
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
      const net::Frame frame =
          net::expect_frame(shared_->channels[s].sock, MsgType::kInfoAck);
      FrameCursor cur(frame.payload);
      const std::uint32_t sdim = cur.get_u32("shard dim");
      const std::uint64_t rows = cur.get_u64("shard rows");
      const std::uint64_t live_rows = cur.get_u64("shard live rows");
      cur.done("InfoAck");
      adopt = adopt && rows == fresh->globals_[s].size() &&
              live_rows == fresh->shard_live_[s] &&
              (rows == 0 || sdim == fresh->dim_);
    }
  }
  if (!adopt) {
    // Reset and re-push in global insertion order: AdmitRows frames
    // aggregate in the send buffers (threshold flushes), dead rows are
    // re-admitted then tombstoned so local indices line up with the
    // snapshot's.
    for (Channel& ch : shared_->channels) {
      FrameBuilder b(ch.sendbuf, MsgType::kReset);
      b.finish();
    }
    for (std::size_t g = 0; g < fresh->entries_.size(); ++g) {
      const EntryRef& e = fresh->entries_[g];
      Channel& ch = shared_->channels[e.shard];
      FrameBuilder b(ch.sendbuf, MsgType::kAdmitRows);
      b.put_u32(static_cast<std::uint32_t>(fresh->dim_));
      b.put_u32(1);
      b.put_string(fresh->names_[g]);
      b.put_bytes(fresh->rows_.data() + g * fresh->dim_,
                  fresh->dim_ * sizeof(float));
      b.finish();
      buffer_flush_locked(ch);
    }
    for (std::size_t g = 0; g < fresh->entries_.size(); ++g) {
      if (fresh->live_[g] != 0) continue;
      Channel& ch = shared_->channels[fresh->entries_[g].shard];
      FrameBuilder b(ch.sendbuf, MsgType::kRemove);
      b.put_u64(fresh->entries_[g].local);
      b.finish();
      buffer_flush_locked(ch);
    }
    // Cross-check the push landed exactly (and flush the tails).
    for (Channel& ch : shared_->channels) {
      FrameBuilder b(ch.sendbuf, MsgType::kInfo);
      b.finish();
      flush_locked(ch);
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
      const net::Frame frame =
          net::expect_frame(shared_->channels[s].sock, MsgType::kInfoAck);
      FrameCursor cur(frame.payload);
      (void)cur.get_u32("shard dim");
      const std::uint64_t rows = cur.get_u64("shard rows");
      const std::uint64_t live_rows = cur.get_u64("shard live rows");
      cur.done("InfoAck");
      if (rows != fresh->globals_[s].size() ||
          live_rows != fresh->shard_live_[s]) {
        throw net::WireProtocolError(
            "shard " + std::to_string(s) + " holds " + std::to_string(rows) +
            " rows (" + std::to_string(live_rows) +
            " live) after the restore push; the mirror expects " +
            std::to_string(fresh->globals_[s].size()) + " (" +
            std::to_string(fresh->shard_live_[s]) + " live)");
      }
    }
  }
  return fresh;
}

void DistCorpus::fan_out(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  // Same worker resolution as ShardedCorpus: explicit num_threads > 1
  // spawns one lazily-created owned pool, 0 uses the shared pool, 1
  // runs inline.
  if (options_.num_threads > 1) {
    util::ThreadPool* pool = nullptr;
    {
      util::MutexLock lock(pool_mu_);
      if (!pool_) {
        pool_ = std::make_unique<util::ThreadPool>(options_.num_threads);
      }
      pool = pool_.get();
    }
    pool->parallel_for(count, fn);
    return;
  }
  util::parallel_for(count, options_.num_threads, fn);
}

}  // namespace gnn4ip::dist
