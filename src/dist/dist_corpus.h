// dist::DistCorpus — the distributed CorpusBackend: K shard-server
// processes behind one global index.
//
// The front end keeps the authoritative global index space as a local
// MIRROR — entries (shard, local), names, the float rows themselves,
// and liveness — and uses ShardedCorpus::placement() as the partition
// map, so a design lands on the same shard id whether the corpus is
// in-process or distributed. Shard servers hold the same rows and run
// the same per-shard sweep arithmetic (dist::ShardServer); every float
// that crosses the wire back is a scalar cosine_cell value, and the
// front end applies the same fixed tie-break merges as ShardedCorpus
// (flag_order; descending similarity then ascending global index), so
// verdicts are bit-identical to the in-process path for any shard-
// process count — the dist test suite asserts this cell by cell.
//
// Perf shape (Galois NetworkInterfaceBuffered):
//   * one-way mutations (AdmitRows/Remove/Compact) append frames to a
//     per-connection send buffer, flushed when it crosses
//     kFlushThresholdBytes or at the latest before the next request on
//     that connection — many small admissions ride one send(2);
//   * bulk probe blocks (Screen's N×D new-rows slab, CrossFlag's
//     gathered rows) go out as a writev tail straight from the mirror,
//     never copied into the buffer;
//   * fan-out requests are pipelined: every shard's request is written
//     before any response is read, so shard processes compute
//     concurrently (at most one in-flight request per connection, which
//     keeps both peers' socket buffers drainable — no pipelining
//     deadlock).
//
// Concurrency: one mutex (lock_rank::kDist, above the audit service
// state rank) serializes every operation — frames on a connection must
// not interleave, and the lock lives in the *shared* ChannelSet so a
// restored() replacement and its predecessor serialize on the same
// lock. The audit layer's external locking already provides the
// multi-reader discipline; this corpus trades reader overlap for a
// protocol that cannot be corrupted by a racing caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/corpus_backend.h"
#include "core/cosine_kernels.h"
#include "net/socket.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace gnn4ip::dist {

/// One shard server's address.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parse "host:port,host:port,..." (the --connect vocabulary). Throws
/// net::WireConnectionError on a malformed list.
[[nodiscard]] std::vector<Endpoint> parse_endpoints(std::string_view spec);

class DistCorpus final : public core::CorpusBackend {
 public:
  /// Connect to one shard server per endpoint, handshake (magic,
  /// version, byte order, model fingerprint), and require every server
  /// to be EMPTY — a fresh DistCorpus owns its cluster's contents.
  /// `allow_resident` (the CLI's --load-corpus + --connect path)
  /// tolerates pre-loaded servers (`gnn4ip_shardd --load-shard`), but
  /// every mutation throws until restored() has reconciled the resident
  /// rows against a snapshot — the mirror must never drift from what
  /// the servers hold. Throws the typed net::WireError taxonomy on any
  /// refusal.
  [[nodiscard]] static std::unique_ptr<DistCorpus> connect(
      const std::vector<Endpoint>& endpoints, std::string model_fingerprint,
      const core::ScorerOptions& options = {}, std::size_t shard_budget = 0,
      bool allow_resident = false);

  ~DistCorpus() override;

  // ---- Global index space (mirror-authoritative) ------------------------
  std::size_t add(std::string name, const tensor::Matrix& embedding) override;
  void remove(std::size_t i) override;
  std::vector<std::size_t> compact() override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t dim() const override;
  [[nodiscard]] std::size_t live_count() const override;
  [[nodiscard]] bool live(std::size_t i) const override;
  [[nodiscard]] const std::string& name(std::size_t i) const override;

  // ---- Shard introspection ----------------------------------------------
  [[nodiscard]] std::size_t num_shards() const override;
  [[nodiscard]] std::size_t shard_of(std::size_t i) const override;
  [[nodiscard]] std::size_t shard_live_count(std::size_t s) const override;
  [[nodiscard]] std::size_t shard_budget() const override {
    return shard_budget_;
  }

  // ---- Scoring (bit-identical to ShardedCorpus) -------------------------
  [[nodiscard]] float score(std::size_t i, std::size_t j) const override;
  [[nodiscard]] std::vector<core::ScreenRow> screen_new_rows(
      std::size_t first_new, float delta) const override;
  [[nodiscard]] std::vector<core::PairScore> top_k(std::size_t i,
                                                   std::size_t k)
      const override;
  [[nodiscard]] std::vector<core::PairScore> flag(float delta) const override;

  // ---- Persistence ------------------------------------------------------
  /// Each server writes its own shard file into `dir` (v1 assumes a
  /// directory all processes can reach — localhost or shared storage);
  /// the front end writes the manifest from the mirror and cross-checks
  /// every SaveAck's row tallies against it.
  void save(const std::string& dir,
            std::string_view model_fingerprint) const override;

  /// A fresh DistCorpus on the SAME shard connections, loaded from a
  /// snapshot directory. The snapshot is first parsed and fully
  /// validated in-process (every malformed case throws its typed
  /// SnapshotError with nothing pushed); then, if the snapshot's shard
  /// count matches the server count AND every server already reports
  /// exactly the matching per-shard row/live/dim tallies (the
  /// `gnn4ip_shardd --load-shard` warm path — the operator contract is
  /// that those servers loaded files of THIS snapshot), the resident
  /// rows are adopted without a push; otherwise every server is Reset
  /// and the rows are re-pushed in global insertion order.
  [[nodiscard]] std::unique_ptr<core::CorpusBackend> restored(
      const std::string& dir,
      std::string_view expected_fingerprint) const override;

  void fan_out(std::size_t count,
               const std::function<void(std::size_t)>& fn) const override;

 private:
  /// One shard connection plus its aggregation buffer.
  struct Channel {
    net::Socket sock;
    std::vector<std::uint8_t> sendbuf;
    Endpoint endpoint;  // for error messages
  };
  /// The connections and the one mutex serializing all use of them.
  /// Held by shared_ptr so restored() can hand the SAME channels (and
  /// the same lock) to the replacement corpus — a caller still reading
  /// through the old instance serializes against the new one instead of
  /// interleaving frames mid-conversation. `channels` is guarded by
  /// `mu` (unannotated for the same cross-instance reason as the
  /// mirror fields below).
  struct ChannelSet {
    mutable util::Mutex mu{util::lock_rank::kDist};
    std::vector<Channel> channels;
  };

  struct EntryRef {
    std::size_t shard = 0;
    std::size_t local = 0;
  };

  DistCorpus(std::shared_ptr<ChannelSet> channels,
             const core::ScorerOptions& options, std::size_t shard_budget,
             std::string fingerprint);

  // All helpers below assume the caller holds shared_->mu (they speak
  // on the wire and/or touch the mirror).
  void flush_locked(Channel& ch) const;
  void buffer_flush_locked(Channel& ch) const;
  /// Throws WireProtocolError while unreconciled_ — mutating or scoring
  /// against servers whose resident rows the mirror has not adopted
  /// would silently drift or silently ignore them.
  void check_reconciled_locked() const;
  /// Mirror-side admit: updates every mirror structure, returns the
  /// global id. The caller sends the matching AdmitRows frame.
  std::size_t admit_mirror_locked(std::string name, std::span<const float> row);

  core::ScorerOptions options_;
  std::size_t shard_budget_ = 0;
  std::string fingerprint_;

  std::shared_ptr<ChannelSet> shared_;

  // ---- The mirror -------------------------------------------------------
  // Everything below is guarded by shared_->mu. That capability lives
  // behind a shared_ptr the analysis cannot unify across instances
  // (restored() fills the replacement's mirror under the predecessor's
  // hold of the SAME mutex), so these stay unannotated per the
  // thread_annotations.h convention — the runtime lock-order validator
  // still covers the mutex itself (rank kDist).
  /// True when connect(allow_resident) found rows already on a server:
  /// the servers hold state the mirror does not, so mutations and
  /// scoring refuse until restored() reconciles (adopt or reset).
  bool unreconciled_ = false;
  std::size_t dim_ = 0;
  std::size_t live_count_ = 0;
  std::vector<EntryRef> entries_;
  /// Per shard: local index -> global index, ascending.
  std::vector<std::vector<std::size_t>> globals_;
  /// Row-major size()×dim() float mirror — probe source for every
  /// request, and the bytes score() reads.
  std::vector<float> rows_;
  /// Names in a deque: name(i) hands out references that stay valid
  /// across admissions (invalidated only by compact, like ShardedCorpus).
  std::deque<std::string> names_;
  std::vector<char> live_;
  std::vector<std::size_t> shard_live_;

  /// Worker resolution for fan_out — same lazy-pool shape as
  /// ShardedCorpus (the audit layer's batch fan-outs ride it).
  mutable util::Mutex pool_mu_{util::lock_rank::kPoolSpawn};
  mutable std::unique_ptr<util::ThreadPool> pool_ GNN4IP_GUARDED_BY(pool_mu_);
};

}  // namespace gnn4ip::dist
