#include "dfg/trim.h"

#include <algorithm>
#include <vector>

#include "dfg/node_kind.h"
#include "graph/algorithms.h"

namespace gnn4ip::dfg {

TrimStats trim(graph::Digraph& g, const TrimOptions& options) {
  using graph::NodeId;
  TrimStats stats;

  if (options.drop_dead_constants) {
    std::vector<NodeId> dead;
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      const auto id = static_cast<NodeId>(v);
      if (g.node(id).kind == static_cast<int>(NodeKind::kConstant) &&
          g.in_degree(id) == 0) {
        dead.push_back(id);
      }
    }
    stats.removed_constants = dead.size();
    if (!dead.empty()) g.remove_nodes(dead);
  }

  if (options.drop_isolated) {
    std::vector<NodeId> isolated;
    for (std::size_t v = 0; v < g.num_nodes(); ++v) {
      const auto id = static_cast<NodeId>(v);
      if (g.in_degree(id) == 0 && g.out_degree(id) == 0) {
        isolated.push_back(id);
      }
    }
    stats.removed_isolated = isolated.size();
    if (!isolated.empty()) g.remove_nodes(isolated);
  }

  if (options.drop_componentless_outputs && g.num_nodes() > 0) {
    const std::vector<int> component = graph::weakly_connected_components(g);
    const int num_components =
        1 + *std::max_element(component.begin(), component.end());
    if (num_components > 1) {
      std::vector<bool> keep_component(
          static_cast<std::size_t>(num_components), false);
      std::vector<int> component_size(
          static_cast<std::size_t>(num_components), 0);
      bool any_output = false;
      for (std::size_t v = 0; v < g.num_nodes(); ++v) {
        const auto c = static_cast<std::size_t>(component[v]);
        ++component_size[c];
        if (g.node(static_cast<NodeId>(v)).kind ==
            static_cast<int>(NodeKind::kOutput)) {
          keep_component[c] = true;
          any_output = true;
        }
      }
      if (!any_output) {
        // Pathological design without outputs: keep the largest component.
        const std::size_t biggest = static_cast<std::size_t>(
            std::max_element(component_size.begin(), component_size.end()) -
            component_size.begin());
        keep_component[biggest] = true;
      }
      std::vector<NodeId> to_remove;
      for (std::size_t v = 0; v < g.num_nodes(); ++v) {
        if (!keep_component[static_cast<std::size_t>(component[v])]) {
          to_remove.push_back(static_cast<NodeId>(v));
        }
      }
      stats.removed_disconnected = to_remove.size();
      if (!to_remove.empty()) g.remove_nodes(to_remove);
    }
  }

  return stats;
}

}  // namespace gnn4ip::dfg
