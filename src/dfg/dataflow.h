// Phase 3 of the Fig. 2 pipeline: per-signal data-flow analysis.
//
// The analyzer walks a *flattened* module (see verilog::elaborate) and
// produces one driver expression tree per driven signal.  Procedural
// blocks are executed symbolically: blocking assignments update the
// running symbolic environment, non-blocking assignments are scheduled
// against the pre-block values, and if/case statements merge branch
// values through ternary (mux) expressions — giving the "signal DFGs"
// that the merge phase later unions into the final graph.
#pragma once

#include <string>
#include <vector>

#include "verilog/ast.h"

namespace gnn4ip::dfg {

/// One signal's data-flow tree. `tree` is an AST expression whose
/// identifiers refer to other signals; control flow has been lowered to
/// ternaries (`is_case_merge` marks trees produced by case statements so
/// merge can label them kBranch instead of kMux).
struct SignalDriver {
  std::string signal;
  verilog::ExprPtr tree;
  bool is_register = false;  // assigned under posedge/negedge sensitivity
};

/// Analyze a flattened module. Throws verilog::ParseError on constructs
/// the analyzer cannot handle (e.g. assignments to non-lvalues).
[[nodiscard]] std::vector<SignalDriver> analyze_dataflow(
    const verilog::Module& flat);

}  // namespace gnn4ip::dfg
