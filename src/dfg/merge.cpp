#include "dfg/merge.h"

#include <map>
#include <set>
#include <string>

#include "dfg/node_kind.h"
#include "util/contract.h"

namespace gnn4ip::dfg {
namespace {

using graph::Digraph;
using graph::NodeId;
using verilog::Expr;
using verilog::ExprKind;
using verilog::ExprPtr;

class Merger {
 public:
  Merger(const verilog::Module& flat,
         const std::vector<SignalDriver>& drivers)
      : flat_(flat), drivers_(drivers) {}

  Digraph run() {
    // Pre-create signal nodes for everything declared or driven so that
    // identifier references resolve to shared vertices.
    for (const verilog::NetDecl& net : flat_.nets) {
      (void)signal_node(net.name);
    }
    for (const SignalDriver& driver : drivers_) {
      if (driver.is_register) registers_.insert(driver.signal);
    }
    // Register kinds are finalized after the scan above.
    for (auto& [name, id] : signals_) {
      g_.node(id).kind = static_cast<int>(classify_signal(name));
    }
    for (const SignalDriver& driver : drivers_) {
      const NodeId sig = signal_node(driver.signal);
      const NodeId root = convert(*driver.tree);
      g_.add_edge(sig, root);
    }
    return std::move(g_);
  }

 private:
  NodeKind classify_signal(const std::string& name) const {
    const verilog::NetDecl* net = flat_.find_net(name);
    if (net != nullptr && net->direction.has_value()) {
      switch (*net->direction) {
        case verilog::PortDirection::kInput:
          return NodeKind::kInput;
        case verilog::PortDirection::kOutput:
          return NodeKind::kOutput;
        case verilog::PortDirection::kInout:
          return NodeKind::kSignal;
      }
    }
    if (registers_.count(name) > 0) return NodeKind::kRegister;
    return NodeKind::kSignal;
  }

  NodeId signal_node(const std::string& name) {
    const auto it = signals_.find(name);
    if (it != signals_.end()) return it->second;
    const NodeId id =
        g_.add_node(name, static_cast<int>(classify_signal(name)));
    signals_.emplace(name, id);
    return id;
  }

  NodeId constant_node(const std::string& literal) {
    const auto it = constants_.find(literal);
    if (it != constants_.end()) return it->second;
    const NodeId id =
        g_.add_node(literal, static_cast<int>(NodeKind::kConstant));
    constants_.emplace(literal, id);
    return id;
  }

  NodeId operator_node(NodeKind kind) {
    return g_.add_node(to_string(kind), static_cast<int>(kind));
  }

  /// Convert an expression tree to DFG nodes; returns the root node.
  NodeId convert(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdentifier:
        return signal_node(e.text);
      case ExprKind::kNumber:
      case ExprKind::kString:
        return constant_node(e.text);
      case ExprKind::kUnary: {
        // Unary plus is a no-op: skip the node entirely.
        if (e.op_unary == verilog::UnaryOp::kPlus) {
          return convert(*e.operands[0]);
        }
        const NodeId op = operator_node(kind_of(e.op_unary));
        g_.add_edge(op, convert(*e.operands[0]));
        return op;
      }
      case ExprKind::kBinary: {
        const NodeId op = operator_node(kind_of(e.op_binary));
        g_.add_edge(op, convert(*e.operands[0]));
        g_.add_edge(op, convert(*e.operands[1]));
        return op;
      }
      case ExprKind::kTernary: {
        const NodeId op = operator_node(NodeKind::kMux);
        for (const ExprPtr& child : e.operands) {
          g_.add_edge(op, convert(*child));
        }
        return op;
      }
      case ExprKind::kConcat: {
        const NodeId op = operator_node(NodeKind::kConcat);
        for (const ExprPtr& child : e.operands) {
          g_.add_edge(op, convert(*child));
        }
        return op;
      }
      case ExprKind::kRepeat: {
        const NodeId op = operator_node(NodeKind::kRepeat);
        for (const ExprPtr& child : e.operands) {
          g_.add_edge(op, convert(*child));
        }
        return op;
      }
      case ExprKind::kBitSelect: {
        const NodeId op = operator_node(NodeKind::kBitSelect);
        g_.add_edge(op, convert(*e.operands[0]));
        g_.add_edge(op, convert(*e.operands[1]));
        return op;
      }
      case ExprKind::kPartSelect: {
        const NodeId op = operator_node(NodeKind::kPartSelect);
        for (const ExprPtr& child : e.operands) {
          g_.add_edge(op, convert(*child));
        }
        return op;
      }
      case ExprKind::kGateOp: {
        const NodeId op = operator_node(kind_of_gate(e.text, e.loc));
        for (const ExprPtr& child : e.operands) {
          g_.add_edge(op, convert(*child));
        }
        return op;
      }
    }
    GNN4IP_ENSURE(false, "unhandled expression kind in merge");
    return graph::kInvalidNode;
  }

  const verilog::Module& flat_;
  const std::vector<SignalDriver>& drivers_;
  Digraph g_;
  std::map<std::string, NodeId> signals_;
  std::map<std::string, NodeId> constants_;
  std::set<std::string> registers_;
};

}  // namespace

graph::Digraph merge_drivers(const verilog::Module& flat,
                             const std::vector<SignalDriver>& drivers) {
  Merger merger(flat, drivers);
  return merger.run();
}

}  // namespace gnn4ip::dfg
