// Phase 4 of the Fig. 2 pipeline: union the per-signal data-flow trees
// into one graph for the whole design.
//
// Signal nodes are shared across trees (keyed by hierarchical name);
// every operator occurrence becomes its own node; constant literals are
// shared per spelling. Edges run from consumer to producer, so output
// signals are the DFG roots and input signals / constants the leaves.
#pragma once

#include <vector>

#include "dfg/dataflow.h"
#include "graph/digraph.h"
#include "verilog/ast.h"

namespace gnn4ip::dfg {

/// Merge signal driver trees into the design DFG. `flat` supplies port
/// directions and net types for classifying signal nodes.
[[nodiscard]] graph::Digraph merge_drivers(
    const verilog::Module& flat, const std::vector<SignalDriver>& drivers);

}  // namespace gnn4ip::dfg
