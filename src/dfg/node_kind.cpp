#include "dfg/node_kind.h"

namespace gnn4ip::dfg {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kInput: return "input";
    case NodeKind::kOutput: return "output";
    case NodeKind::kSignal: return "signal";
    case NodeKind::kRegister: return "register";
    case NodeKind::kConstant: return "const";
    case NodeKind::kAdd: return "add";
    case NodeKind::kSub: return "sub";
    case NodeKind::kNeg: return "neg";
    case NodeKind::kMul: return "mul";
    case NodeKind::kDiv: return "div";
    case NodeKind::kMod: return "mod";
    case NodeKind::kPow: return "pow";
    case NodeKind::kAnd: return "and";
    case NodeKind::kOr: return "or";
    case NodeKind::kXor: return "xor";
    case NodeKind::kXnor: return "xnor";
    case NodeKind::kNand: return "nand";
    case NodeKind::kNor: return "nor";
    case NodeKind::kNot: return "not";
    case NodeKind::kBuf: return "buf";
    case NodeKind::kLogAnd: return "land";
    case NodeKind::kLogOr: return "lor";
    case NodeKind::kLogNot: return "lnot";
    case NodeKind::kRedAnd: return "rand";
    case NodeKind::kRedOr: return "ror";
    case NodeKind::kRedXor: return "rxor";
    case NodeKind::kRedNand: return "rnand";
    case NodeKind::kRedNor: return "rnor";
    case NodeKind::kRedXnor: return "rxnor";
    case NodeKind::kEq: return "eq";
    case NodeKind::kNeq: return "neq";
    case NodeKind::kLt: return "lt";
    case NodeKind::kLe: return "le";
    case NodeKind::kGt: return "gt";
    case NodeKind::kGe: return "ge";
    case NodeKind::kShl: return "shl";
    case NodeKind::kShr: return "shr";
    case NodeKind::kConcat: return "concat";
    case NodeKind::kRepeat: return "repeat";
    case NodeKind::kBitSelect: return "bitsel";
    case NodeKind::kPartSelect: return "partsel";
    case NodeKind::kMux: return "mux";
    case NodeKind::kBranch: return "branch";
    case NodeKind::kCount_: return "?";
  }
  return "?";
}

NodeKind kind_of(verilog::UnaryOp op) {
  using verilog::UnaryOp;
  switch (op) {
    case UnaryOp::kPlus: return NodeKind::kBuf;
    case UnaryOp::kMinus: return NodeKind::kNeg;
    case UnaryOp::kBitNot: return NodeKind::kNot;
    case UnaryOp::kLogNot: return NodeKind::kLogNot;
    case UnaryOp::kRedAnd: return NodeKind::kRedAnd;
    case UnaryOp::kRedOr: return NodeKind::kRedOr;
    case UnaryOp::kRedXor: return NodeKind::kRedXor;
    case UnaryOp::kRedNand: return NodeKind::kRedNand;
    case UnaryOp::kRedNor: return NodeKind::kRedNor;
    case UnaryOp::kRedXnor: return NodeKind::kRedXnor;
  }
  return NodeKind::kBuf;
}

NodeKind kind_of(verilog::BinaryOp op) {
  using verilog::BinaryOp;
  switch (op) {
    case BinaryOp::kAdd: return NodeKind::kAdd;
    case BinaryOp::kSub: return NodeKind::kSub;
    case BinaryOp::kMul: return NodeKind::kMul;
    case BinaryOp::kDiv: return NodeKind::kDiv;
    case BinaryOp::kMod: return NodeKind::kMod;
    case BinaryOp::kPow: return NodeKind::kPow;
    case BinaryOp::kBitAnd: return NodeKind::kAnd;
    case BinaryOp::kBitOr: return NodeKind::kOr;
    case BinaryOp::kBitXor: return NodeKind::kXor;
    case BinaryOp::kBitXnor: return NodeKind::kXnor;
    case BinaryOp::kLogAnd: return NodeKind::kLogAnd;
    case BinaryOp::kLogOr: return NodeKind::kLogOr;
    case BinaryOp::kEq: case BinaryOp::kCaseEq: return NodeKind::kEq;
    case BinaryOp::kNeq: case BinaryOp::kCaseNeq: return NodeKind::kNeq;
    case BinaryOp::kLt: return NodeKind::kLt;
    case BinaryOp::kLe: return NodeKind::kLe;
    case BinaryOp::kGt: return NodeKind::kGt;
    case BinaryOp::kGe: return NodeKind::kGe;
    case BinaryOp::kShl: case BinaryOp::kAShl: return NodeKind::kShl;
    case BinaryOp::kShr: case BinaryOp::kAShr: return NodeKind::kShr;
  }
  return NodeKind::kAdd;
}

NodeKind kind_of_gate(const std::string& gate_type,
                      verilog::SourceLocation loc) {
  if (gate_type == "and") return NodeKind::kAnd;
  if (gate_type == "or") return NodeKind::kOr;
  if (gate_type == "xor") return NodeKind::kXor;
  if (gate_type == "xnor") return NodeKind::kXnor;
  if (gate_type == "nand") return NodeKind::kNand;
  if (gate_type == "nor") return NodeKind::kNor;
  if (gate_type == "not") return NodeKind::kNot;
  if (gate_type == "buf") return NodeKind::kBuf;
  throw verilog::ParseError("unknown gate primitive '" + gate_type + "'",
                            loc);
}

bool is_signal_kind(NodeKind kind) {
  switch (kind) {
    case NodeKind::kInput:
    case NodeKind::kOutput:
    case NodeKind::kSignal:
    case NodeKind::kRegister:
    case NodeKind::kConstant:
      return true;
    default:
      return false;
  }
}

}  // namespace gnn4ip::dfg
