// Phase 5 of the Fig. 2 pipeline: trim redundant nodes and disconnected
// subgraphs from the merged DFG.
#pragma once

#include "graph/digraph.h"

namespace gnn4ip::dfg {

struct TrimOptions {
  /// Drop weakly-connected components that contain no output node. When a
  /// graph has no output node at all, the largest component is kept.
  bool drop_componentless_outputs = true;
  /// Remove isolated nodes (degree zero) — typically declared-but-unused
  /// nets.
  bool drop_isolated = true;
  /// Remove constant nodes that feed nothing (can appear when a driver
  /// tree was rewritten away).
  bool drop_dead_constants = true;
};

/// Statistics returned by trim for logging/tests.
struct TrimStats {
  std::size_t removed_isolated = 0;
  std::size_t removed_disconnected = 0;
  std::size_t removed_constants = 0;
};

/// Trim `g` in place; returns what was removed.
TrimStats trim(graph::Digraph& g, const TrimOptions& options = {});

}  // namespace gnn4ip::dfg
