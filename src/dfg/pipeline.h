// End-to-end DFG generation pipeline (Fig. 2 of the paper):
//   preprocess → parse HDL → data-flow analysis → merge graphs → trim.
//
// Works for both RTL code and gate-level netlists in Verilog format.
#pragma once

#include <string>

#include "dfg/trim.h"
#include "graph/digraph.h"
#include "verilog/preprocess.h"

namespace gnn4ip::dfg {

struct PipelineOptions {
  /// Top module name; empty = infer (unique uninstantiated module).
  std::string top;
  verilog::PreprocessOptions preprocess;
  bool run_trim = true;
  TrimOptions trim;
};

/// Extract the final DFG for a Verilog source buffer. Throws
/// verilog::ParseError on malformed input.
[[nodiscard]] graph::Digraph extract_dfg(const std::string& verilog_source,
                                         const PipelineOptions& options = {});

/// Summary counters useful for Table-I style reporting.
struct DfgSummary {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_operators = 0;
};

[[nodiscard]] DfgSummary summarize(const graph::Digraph& g);

}  // namespace gnn4ip::dfg
