// Node vocabulary of the hardware data-flow graph.
//
// Each DFG vertex "represents a signal, constant value, or operations
// such as concatenation, branch, Boolean operators, etc." (paper §III-B).
// The enum doubles as the one-hot feature index for the GNN: hw2vec
// initializes node embedding X⁽⁰⁾ᵢ as the one-hot vector of the node's
// vocabulary entry.
#pragma once

#include <string>

#include "verilog/ast.h"

namespace gnn4ip::dfg {

enum class NodeKind : int {
  // Signal categories.
  kInput = 0,
  kOutput,
  kSignal,    // internal wire
  kRegister,  // sequential element
  kConstant,
  // Arithmetic.
  kAdd, kSub, kNeg, kMul, kDiv, kMod, kPow,
  // Bitwise / gate-level.
  kAnd, kOr, kXor, kXnor, kNand, kNor, kNot, kBuf,
  // Logical.
  kLogAnd, kLogOr, kLogNot,
  // Reductions.
  kRedAnd, kRedOr, kRedXor, kRedNand, kRedNor, kRedXnor,
  // Relational.
  kEq, kNeq, kLt, kLe, kGt, kGe,
  // Shifts.
  kShl, kShr,
  // Structural.
  kConcat, kRepeat, kBitSelect, kPartSelect,
  // Control merge points.
  kMux,     // ternary / if-else merge
  kBranch,  // case merge
  kCount_,  // sentinel: vocabulary size
};

/// Vocabulary size (one-hot feature dimension).
inline constexpr int kNodeKindCount = static_cast<int>(NodeKind::kCount_);

[[nodiscard]] const char* to_string(NodeKind kind);

/// Mapping from AST operators to DFG vocabulary entries.
[[nodiscard]] NodeKind kind_of(verilog::UnaryOp op);
[[nodiscard]] NodeKind kind_of(verilog::BinaryOp op);

/// Mapping from gate primitive names ("and", "nor", ...). Throws
/// verilog::ParseError for unknown gates.
[[nodiscard]] NodeKind kind_of_gate(const std::string& gate_type,
                                    verilog::SourceLocation loc);

/// True for the signal-category kinds (kInput..kConstant).
[[nodiscard]] bool is_signal_kind(NodeKind kind);

/// True for operator kinds (everything that is not a signal category).
[[nodiscard]] inline bool is_operator_kind(NodeKind kind) {
  return !is_signal_kind(kind);
}

}  // namespace gnn4ip::dfg
