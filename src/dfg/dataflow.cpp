#include "dfg/dataflow.h"

#include <map>
#include <set>

#include "util/contract.h"

namespace gnn4ip::dfg {
namespace {

using verilog::CaseItem;
using verilog::Expr;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::GateInstance;
using verilog::Module;
using verilog::ParseError;
using verilog::Stmt;
using verilog::StmtKind;
using verilog::StmtPtr;

/// Symbolic value environment for one procedural block.
struct ProcEnv {
  // Current values as seen by *blocking* reads.
  std::map<std::string, ExprPtr> blocking;
  // Values scheduled by non-blocking assignments (committed at block end).
  std::map<std::string, ExprPtr> nonblocking;

  [[nodiscard]] ProcEnv clone() const {
    ProcEnv copy;
    for (const auto& [k, v] : blocking) copy.blocking[k] = v->clone();
    for (const auto& [k, v] : nonblocking) copy.nonblocking[k] = v->clone();
    return copy;
  }
};

/// Substitute blocking-assigned signals with their current trees so later
/// reads inside the same block see updated values.
ExprPtr subst(const Expr& e, const std::map<std::string, ExprPtr>& env) {
  if (e.kind == ExprKind::kIdentifier) {
    const auto it = env.find(e.text);
    if (it != env.end()) return it->second->clone();
    return e.clone();
  }
  auto copy = std::make_unique<Expr>();
  copy->kind = e.kind;
  copy->text = e.text;
  copy->op_unary = e.op_unary;
  copy->op_binary = e.op_binary;
  copy->loc = e.loc;
  for (const ExprPtr& child : e.operands) {
    copy->operands.push_back(child == nullptr ? nullptr : subst(*child, env));
  }
  return copy;
}

ExprPtr make_ternary(ExprPtr cond, ExprPtr when_true, ExprPtr when_false) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kTernary;
  e->loc = cond->loc;
  e->operands.push_back(std::move(cond));
  e->operands.push_back(std::move(when_true));
  e->operands.push_back(std::move(when_false));
  return e;
}

/// Names assigned anywhere in `lhs` (handles concat/select lvalues).
void lvalue_targets(const Expr& lhs, std::vector<const Expr*>& out) {
  switch (lhs.kind) {
    case ExprKind::kIdentifier:
      out.push_back(&lhs);
      return;
    case ExprKind::kBitSelect:
    case ExprKind::kPartSelect:
      // Base of the select is the driven signal; index expressions add
      // data dependencies handled by the caller.
      lvalue_targets(*lhs.operands[0], out);
      return;
    case ExprKind::kConcat:
      for (const ExprPtr& part : lhs.operands) {
        lvalue_targets(*part, out);
      }
      return;
    default:
      throw ParseError("unsupported lvalue in assignment", lhs.loc);
  }
}

/// Collect index expressions on the LHS (they are data dependencies of the
/// driven signal even though they are not the "value").
void lvalue_index_exprs(const Expr& lhs, std::vector<const Expr*>& out) {
  switch (lhs.kind) {
    case ExprKind::kBitSelect:
      out.push_back(lhs.operands[1].get());
      lvalue_index_exprs(*lhs.operands[0], out);
      return;
    case ExprKind::kPartSelect:
      out.push_back(lhs.operands[1].get());
      out.push_back(lhs.operands[2].get());
      lvalue_index_exprs(*lhs.operands[0], out);
      return;
    case ExprKind::kConcat:
      for (const ExprPtr& part : lhs.operands) {
        lvalue_index_exprs(*part, out);
      }
      return;
    default:
      return;
  }
}

class ProceduralAnalyzer {
 public:
  void exec(const Stmt& s, ProcEnv& env) {
    switch (s.kind) {
      case StmtKind::kNull:
        return;
      case StmtKind::kBlock:
        for (const StmtPtr& child : s.children) {
          if (child != nullptr) exec(*child, env);
        }
        return;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNonblockingAssign:
        exec_assign(s, env);
        return;
      case StmtKind::kIf:
        exec_if(s, env);
        return;
      case StmtKind::kCase:
        exec_case(s, env);
        return;
    }
  }

 private:
  void exec_assign(const Stmt& s, ProcEnv& env) {
    GNN4IP_ENSURE(s.lhs != nullptr && s.rhs != nullptr,
                  "assignment missing operands");
    ExprPtr value = subst(*s.rhs, env.blocking);
    std::vector<const Expr*> targets;
    lvalue_targets(*s.lhs, targets);
    std::vector<const Expr*> indices;
    lvalue_index_exprs(*s.lhs, indices);
    // Index expressions on the LHS become extra dependencies: wrap the
    // value in a concat so they stay attached to the driven signal.
    if (!indices.empty()) {
      auto wrapper = std::make_unique<Expr>();
      wrapper->kind = ExprKind::kConcat;
      wrapper->loc = s.loc;
      wrapper->operands.push_back(std::move(value));
      for (const Expr* idx : indices) {
        wrapper->operands.push_back(subst(*idx, env.blocking));
      }
      value = std::move(wrapper);
    }
    auto& store = s.kind == StmtKind::kBlockingAssign ? env.blocking
                                                      : env.nonblocking;
    const bool partial_write = !indices.empty();
    for (std::size_t i = 0; i < targets.size(); ++i) {
      // Concat lvalues: every target depends on the full RHS value.
      auto it = store.find(targets[i]->text);
      if (it != store.end() && partial_write) {
        // Partial (indexed) writes update only a slice, so earlier
        // assignments to other bits remain live: merge both trees.
        auto merged = std::make_unique<Expr>();
        merged->kind = ExprKind::kConcat;
        merged->loc = s.loc;
        merged->operands.push_back(std::move(it->second));
        merged->operands.push_back(value->clone());
        it->second = std::move(merged);
      } else {
        store[targets[i]->text] = value->clone();
      }
    }
  }

  static ExprPtr current_value(const ProcEnv& env, const std::string& name,
                               const std::map<std::string, ExprPtr>& store) {
    const auto it = store.find(name);
    if (it != store.end()) return it->second->clone();
    (void)env;
    // Not assigned on this path: the signal holds its previous value.
    return verilog::make_identifier(name);
  }

  void merge_branches(ProcEnv& env, const Expr& cond, const ProcEnv& then_env,
                      const ProcEnv& else_env) {
    auto merge_store = [&cond](std::map<std::string, ExprPtr>& base,
                               const std::map<std::string, ExprPtr>& then_s,
                               const std::map<std::string, ExprPtr>& else_s) {
      std::set<std::string> touched;
      for (const auto& [k, v] : then_s) touched.insert(k);
      for (const auto& [k, v] : else_s) touched.insert(k);
      for (const std::string& name : touched) {
        auto value_in = [&name](const std::map<std::string, ExprPtr>& store,
                                const std::map<std::string, ExprPtr>& fallback)
            -> ExprPtr {
          const auto it = store.find(name);
          if (it != store.end()) return it->second->clone();
          const auto fb = fallback.find(name);
          if (fb != fallback.end()) return fb->second->clone();
          return verilog::make_identifier(name);
        };
        base[name] = make_ternary(cond.clone(), value_in(then_s, base),
                                  value_in(else_s, base));
      }
    };
    merge_store(env.blocking, then_env.blocking, else_env.blocking);
    merge_store(env.nonblocking, then_env.nonblocking, else_env.nonblocking);
  }

  void exec_if(const Stmt& s, ProcEnv& env) {
    GNN4IP_ENSURE(s.cond != nullptr && s.children.size() == 2,
                  "malformed if statement");
    ExprPtr cond = subst(*s.cond, env.blocking);
    ProcEnv then_env = env.clone();
    if (s.children[0] != nullptr) exec(*s.children[0], then_env);
    ProcEnv else_env = env.clone();
    if (s.children[1] != nullptr) exec(*s.children[1], else_env);
    merge_branches(env, *cond, then_env, else_env);
  }

  void exec_case(const Stmt& s, ProcEnv& env) {
    GNN4IP_ENSURE(s.cond != nullptr, "case without subject");
    const ExprPtr subject = subst(*s.cond, env.blocking);

    // Execute every arm against a copy of the incoming environment.
    struct Arm {
      ExprPtr condition;  // null for default
      ProcEnv env;
    };
    std::vector<Arm> arms;
    const CaseItem* default_item = nullptr;
    for (const CaseItem& item : s.case_items) {
      if (item.labels.empty()) {
        default_item = &item;
        continue;
      }
      Arm arm;
      // Multi-label arms: subject == l1 || subject == l2 || ...
      for (const ExprPtr& label : item.labels) {
        ExprPtr eq = verilog::make_binary(verilog::BinaryOp::kEq,
                                          subject->clone(),
                                          subst(*label, env.blocking));
        arm.condition = arm.condition == nullptr
                            ? std::move(eq)
                            : verilog::make_binary(verilog::BinaryOp::kLogOr,
                                                   std::move(arm.condition),
                                                   std::move(eq));
      }
      arm.env = env.clone();
      if (item.body != nullptr) exec(*item.body, arm.env);
      arms.push_back(std::move(arm));
    }
    ProcEnv default_env = env.clone();
    if (default_item != nullptr && default_item->body != nullptr) {
      exec(*default_item->body, default_env);
    }

    // Fold arms from the bottom (priority order): result starts as the
    // default branch and each arm wraps it in a mux.
    ProcEnv result = std::move(default_env);
    for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
      ProcEnv merged = env.clone();
      merge_branches(merged, *it->condition, it->env, result);
      result = std::move(merged);
    }
    env = std::move(result);
  }
};

}  // namespace

std::vector<SignalDriver> analyze_dataflow(const Module& flat) {
  GNN4IP_ENSURE(flat.instances.empty(),
                "analyze_dataflow requires an elaborated (flattened) module");
  std::vector<SignalDriver> drivers;

  // Continuous assigns.
  for (const verilog::ContinuousAssign& ca : flat.assigns) {
    std::vector<const Expr*> targets;
    lvalue_targets(*ca.lhs, targets);
    std::vector<const Expr*> indices;
    lvalue_index_exprs(*ca.lhs, indices);
    for (const Expr* target : targets) {
      SignalDriver driver;
      driver.signal = target->text;
      if (indices.empty()) {
        driver.tree = ca.rhs->clone();
      } else {
        auto wrapper = std::make_unique<Expr>();
        wrapper->kind = ExprKind::kConcat;
        wrapper->loc = ca.loc;
        wrapper->operands.push_back(ca.rhs->clone());
        for (const Expr* idx : indices) {
          wrapper->operands.push_back(idx->clone());
        }
        driver.tree = std::move(wrapper);
      }
      drivers.push_back(std::move(driver));
    }
  }

  // Gate primitives.
  for (const GateInstance& gate : flat.gates) {
    const bool inverterish =
        gate.gate_type == "not" || gate.gate_type == "buf";
    // not/buf: (out1 [, out2, ...], in); others: (out, in1, in2, ...).
    std::vector<const Expr*> outputs;
    std::vector<const Expr*> inputs;
    if (inverterish) {
      for (std::size_t i = 0; i + 1 < gate.terminals.size(); ++i) {
        outputs.push_back(gate.terminals[i].get());
      }
      inputs.push_back(gate.terminals.back().get());
    } else {
      outputs.push_back(gate.terminals.front().get());
      for (std::size_t i = 1; i < gate.terminals.size(); ++i) {
        inputs.push_back(gate.terminals[i].get());
      }
    }
    for (const Expr* out : outputs) {
      std::vector<const Expr*> targets;
      lvalue_targets(*out, targets);
      for (const Expr* target : targets) {
        SignalDriver driver;
        driver.signal = target->text;
        auto op_expr = std::make_unique<Expr>();
        op_expr->loc = gate.loc;
        op_expr->kind = ExprKind::kGateOp;
        op_expr->text = gate.gate_type;
        for (const Expr* in : inputs) {
          op_expr->operands.push_back(in->clone());
        }
        driver.tree = std::move(op_expr);
        drivers.push_back(std::move(driver));
      }
    }
  }

  // Procedural blocks.
  for (const verilog::AlwaysBlock& ab : flat.always_blocks) {
    if (ab.is_initial || ab.body == nullptr) continue;
    bool edge_triggered = false;
    for (const verilog::SensitivityItem& item : ab.sensitivity) {
      if (item.edge != verilog::EdgeKind::kNone) edge_triggered = true;
    }
    ProceduralAnalyzer analyzer;
    ProcEnv env;
    analyzer.exec(*ab.body, env);
    auto emit = [&drivers, edge_triggered](
                    const std::map<std::string, ExprPtr>& store) {
      for (const auto& [name, tree] : store) {
        SignalDriver driver;
        driver.signal = name;
        driver.tree = tree->clone();
        driver.is_register = edge_triggered;
        drivers.push_back(std::move(driver));
      }
    };
    emit(env.blocking);
    emit(env.nonblocking);
  }

  return drivers;
}

}  // namespace gnn4ip::dfg
