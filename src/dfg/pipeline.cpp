#include "dfg/pipeline.h"

#include "dfg/dataflow.h"
#include "dfg/merge.h"
#include "dfg/node_kind.h"
#include "verilog/elaborate.h"
#include "verilog/parser.h"

namespace gnn4ip::dfg {

graph::Digraph extract_dfg(const std::string& verilog_source,
                           const PipelineOptions& options) {
  const verilog::Design design =
      verilog::parse(verilog_source, options.preprocess);
  const std::string top =
      options.top.empty() ? verilog::infer_top_module(design) : options.top;
  const verilog::Module flat = verilog::elaborate(design, top);
  const std::vector<SignalDriver> drivers = analyze_dataflow(flat);
  graph::Digraph g = merge_drivers(flat, drivers);
  if (options.run_trim) {
    trim(g, options.trim);
  }
  return g;
}

DfgSummary summarize(const graph::Digraph& g) {
  DfgSummary s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto kind =
        static_cast<NodeKind>(g.node(static_cast<graph::NodeId>(v)).kind);
    if (kind == NodeKind::kInput) ++s.num_inputs;
    if (kind == NodeKind::kOutput) ++s.num_outputs;
    if (is_operator_kind(kind)) ++s.num_operators;
  }
  return s;
}

}  // namespace gnn4ip::dfg
