#include "baseline/graph_similarity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/contract.h"

namespace gnn4ip::baseline {
namespace {

/// Greedy max-weight matching over a similarity matrix: repeatedly take
/// the best remaining (i, j) pair. Returns the matched weight sum.
double greedy_assignment(const std::vector<double>& s, std::size_t na,
                         std::size_t nb) {
  struct Cell {
    double value;
    std::size_t i;
    std::size_t j;
  };
  std::vector<Cell> cells;
  cells.reserve(na * nb);
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      cells.push_back({s[i * nb + j], i, j});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& x, const Cell& y) {
    return x.value > y.value;
  });
  std::vector<bool> used_a(na, false);
  std::vector<bool> used_b(nb, false);
  double total = 0.0;
  std::size_t matched = 0;
  const std::size_t target = std::min(na, nb);
  for (const Cell& cell : cells) {
    if (matched == target) break;
    if (used_a[cell.i] || used_b[cell.j]) continue;
    used_a[cell.i] = true;
    used_b[cell.j] = true;
    total += cell.value;
    ++matched;
  }
  return total;
}

}  // namespace

double neighbor_matching_similarity(const graph::Digraph& a,
                                    const graph::Digraph& b,
                                    const NeighborMatchingOptions& options) {
  const std::size_t na = a.num_nodes();
  const std::size_t nb = b.num_nodes();
  GNN4IP_ENSURE(na > 0 && nb > 0, "similarity of empty graph");

  // Initialize with kind agreement.
  std::vector<double> s(na * nb, 0.0);
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      s[i * nb + j] =
          a.node(static_cast<graph::NodeId>(i)).kind ==
                  b.node(static_cast<graph::NodeId>(j)).kind
              ? 1.0
              : 0.0;
    }
  }

  std::vector<double> next(na * nb, 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < na; ++i) {
      const auto in_a = a.in_neighbors(static_cast<graph::NodeId>(i));
      const auto out_a = a.out_neighbors(static_cast<graph::NodeId>(i));
      for (std::size_t j = 0; j < nb; ++j) {
        const auto in_b = b.in_neighbors(static_cast<graph::NodeId>(j));
        const auto out_b = b.out_neighbors(static_cast<graph::NodeId>(j));
        // Couple in-neighborhoods and out-neighborhoods separately via
        // greedy matching of neighbor similarities.
        double in_score = 0.0;
        if (!in_a.empty() && !in_b.empty()) {
          std::vector<double> local(in_a.size() * in_b.size());
          for (std::size_t p = 0; p < in_a.size(); ++p) {
            for (std::size_t q = 0; q < in_b.size(); ++q) {
              local[p * in_b.size() + q] =
                  s[static_cast<std::size_t>(in_a[p]) * nb +
                    static_cast<std::size_t>(in_b[q])];
            }
          }
          in_score = greedy_assignment(local, in_a.size(), in_b.size()) /
                     static_cast<double>(std::max(in_a.size(), in_b.size()));
        } else if (in_a.empty() && in_b.empty()) {
          in_score = 1.0;
        }
        double out_score = 0.0;
        if (!out_a.empty() && !out_b.empty()) {
          std::vector<double> local(out_a.size() * out_b.size());
          for (std::size_t p = 0; p < out_a.size(); ++p) {
            for (std::size_t q = 0; q < out_b.size(); ++q) {
              local[p * out_b.size() + q] =
                  s[static_cast<std::size_t>(out_a[p]) * nb +
                    static_cast<std::size_t>(out_b[q])];
            }
          }
          out_score =
              greedy_assignment(local, out_a.size(), out_b.size()) /
              static_cast<double>(std::max(out_a.size(), out_b.size()));
        } else if (out_a.empty() && out_b.empty()) {
          out_score = 1.0;
        }
        const bool kind_match =
            a.node(static_cast<graph::NodeId>(i)).kind ==
            b.node(static_cast<graph::NodeId>(j)).kind;
        const double updated =
            (kind_match ? 1.0 : 0.25) * 0.5 * (in_score + out_score);
        max_delta = std::max(max_delta, std::fabs(updated - s[i * nb + j]));
        next[i * nb + j] = updated;
      }
    }
    s.swap(next);
    if (max_delta < options.epsilon) break;
  }

  const double matched = greedy_assignment(s, na, nb);
  return matched / static_cast<double>(std::max(na, nb));
}

double wl_histogram_similarity(const graph::Digraph& a,
                               const graph::Digraph& b,
                               const WlOptions& options) {
  auto histogram = [&options](const graph::Digraph& g) {
    std::map<std::uint64_t, double> hist;
    const std::size_t n = g.num_nodes();
    std::vector<std::uint64_t> color(n);
    for (std::size_t v = 0; v < n; ++v) {
      color[v] = static_cast<std::uint64_t>(
          g.node(static_cast<graph::NodeId>(v)).kind);
      hist[color[v]] += 1.0;
    }
    std::vector<std::uint64_t> next(n);
    for (int round = 0; round < options.rounds; ++round) {
      for (std::size_t v = 0; v < n; ++v) {
        std::uint64_t in_acc = 0;
        std::uint64_t out_acc = 0;
        for (graph::NodeId u : g.in_neighbors(static_cast<graph::NodeId>(v))) {
          in_acc += color[static_cast<std::size_t>(u)] * 0x9E3779B97F4A7C15ULL;
        }
        for (graph::NodeId u :
             g.out_neighbors(static_cast<graph::NodeId>(v))) {
          out_acc += color[static_cast<std::size_t>(u)] * 0xC2B2AE3D27D4EB4FULL;
        }
        std::uint64_t h = color[v] * 0x165667B19E3779F9ULL;
        h ^= in_acc + 0x27220A95ULL + (h << 6) + (h >> 2);
        h ^= out_acc + 0x52DCE729ULL + (h << 6) + (h >> 2);
        next[v] = h;
        hist[h] += 1.0;
      }
      color.swap(next);
    }
    return hist;
  };

  const auto ha = histogram(a);
  const auto hb = histogram(b);
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [key, value] : ha) {
    norm_a += value * value;
    const auto it = hb.find(key);
    if (it != hb.end()) dot += value * it->second;
  }
  for (const auto& [key, value] : hb) norm_b += value * value;
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / std::sqrt(norm_a * norm_b);
}

}  // namespace gnn4ip::baseline
