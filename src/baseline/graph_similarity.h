// Classical graph-similarity baselines — the rival method class of
// §IV-F (Fyrbiak et al., "Graph Similarity and its Applications to
// Hardware Security"). Two algorithms:
//
//  * neighbor_matching_similarity — iterative node-similarity fixpoint
//    (Zager/Blondel style coupled in/out-neighbor scores) followed by a
//    greedy assignment; O(|Va|·|Vb|·d) per iteration, which is what makes
//    the classical approach minutes-slow on realistic DFGs.
//  * wl_histogram_similarity — Weisfeiler–Lehman subtree-label histogram
//    cosine; the cheap end of the classical spectrum.
//
// Both return a similarity in [0, 1].
#pragma once

#include "graph/digraph.h"

namespace gnn4ip::baseline {

struct NeighborMatchingOptions {
  int iterations = 16;
  double epsilon = 1e-4;  // early stop when max delta falls below
};

[[nodiscard]] double neighbor_matching_similarity(
    const graph::Digraph& a, const graph::Digraph& b,
    const NeighborMatchingOptions& options = {});

struct WlOptions {
  int rounds = 3;
};

[[nodiscard]] double wl_histogram_similarity(const graph::Digraph& a,
                                             const graph::Digraph& b,
                                             const WlOptions& options = {});

}  // namespace gnn4ip::baseline
