// Graph import/export: GraphViz DOT for human inspection and a simple
// line-oriented text format for persisting extracted DFGs between runs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.h"

namespace gnn4ip::graph {

/// Render as GraphViz DOT; node labels are "name : kind".
[[nodiscard]] std::string to_dot(const Digraph& g,
                                 const std::string& graph_name = "dfg");

/// Text format:
///   gnn4ip-graph v1
///   nodes <n>
///   <kind> <name>        (n lines; name may contain no newline)
///   edges <m>
///   <src> <dst>          (m lines)
void write_text(std::ostream& os, const Digraph& g);

/// Parse the text format; throws std::runtime_error on malformed input.
[[nodiscard]] Digraph read_text(std::istream& is);

}  // namespace gnn4ip::graph
