#include "graph/digraph.h"

#include <algorithm>

#include "util/contract.h"
#include "util/string_util.h"

namespace gnn4ip::graph {

NodeId Digraph::add_node(std::string name, int kind) {
  nodes_.push_back(Node{std::move(name), kind});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Digraph::check_id(NodeId id) const {
  GNN4IP_ENSURE(valid(id),
                util::format("node id %d out of range [0, %zu)", id,
                             nodes_.size()));
}

void Digraph::add_edge(NodeId src, NodeId dst, bool allow_self_loop) {
  check_id(src);
  check_id(dst);
  if (src == dst && !allow_self_loop) return;
  if (has_edge(src, dst)) return;
  out_[static_cast<std::size_t>(src)].push_back(dst);
  in_[static_cast<std::size_t>(dst)].push_back(src);
  ++num_edges_;
}

bool Digraph::has_edge(NodeId src, NodeId dst) const {
  check_id(src);
  check_id(dst);
  const auto& row = out_[static_cast<std::size_t>(src)];
  return std::find(row.begin(), row.end(), dst) != row.end();
}

const Node& Digraph::node(NodeId id) const {
  check_id(id);
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Digraph::node(NodeId id) {
  check_id(id);
  return nodes_[static_cast<std::size_t>(id)];
}

std::span<const NodeId> Digraph::out_neighbors(NodeId id) const {
  check_id(id);
  return out_[static_cast<std::size_t>(id)];
}

std::span<const NodeId> Digraph::in_neighbors(NodeId id) const {
  check_id(id);
  return in_[static_cast<std::size_t>(id)];
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(num_edges_);
  for (std::size_t s = 0; s < out_.size(); ++s) {
    for (NodeId d : out_[s]) {
      result.emplace_back(static_cast<NodeId>(s), d);
    }
  }
  return result;
}

std::vector<NodeId> Digraph::remove_nodes(const std::vector<NodeId>& to_remove) {
  std::vector<bool> removed(nodes_.size(), false);
  for (NodeId id : to_remove) {
    check_id(id);
    removed[static_cast<std::size_t>(id)] = true;
  }
  std::vector<NodeId> remap(nodes_.size(), kInvalidNode);
  NodeId next = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!removed[i]) remap[i] = next++;
  }

  Digraph rebuilt;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!removed[i]) {
      rebuilt.add_node(std::move(nodes_[i].name), nodes_[i].kind);
    }
  }
  for (std::size_t s = 0; s < out_.size(); ++s) {
    if (removed[s]) continue;
    for (NodeId d : out_[s]) {
      if (!removed[static_cast<std::size_t>(d)]) {
        rebuilt.add_edge(remap[s], remap[static_cast<std::size_t>(d)]);
      }
    }
  }
  *this = std::move(rebuilt);
  return remap;
}

Digraph Digraph::induced_subgraph(const std::vector<NodeId>& keep) const {
  std::vector<NodeId> remap(nodes_.size(), kInvalidNode);
  Digraph sub;
  for (std::size_t pos = 0; pos < keep.size(); ++pos) {
    const NodeId id = keep[pos];
    check_id(id);
    GNN4IP_ENSURE(remap[static_cast<std::size_t>(id)] == kInvalidNode,
                  "duplicate node in induced_subgraph keep list");
    remap[static_cast<std::size_t>(id)] =
        sub.add_node(nodes_[static_cast<std::size_t>(id)].name,
                     nodes_[static_cast<std::size_t>(id)].kind);
  }
  for (NodeId src : keep) {
    for (NodeId dst : out_[static_cast<std::size_t>(src)]) {
      const NodeId new_dst = remap[static_cast<std::size_t>(dst)];
      if (new_dst != kInvalidNode) {
        sub.add_edge(remap[static_cast<std::size_t>(src)], new_dst);
      }
    }
  }
  return sub;
}

NodeId Digraph::find_by_name(std::string_view name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

}  // namespace gnn4ip::graph
