// Directed graph with typed, named nodes.
//
// This is the common substrate below the DFG pipeline and the GNN: the
// DFG extractor builds a Digraph whose node kinds come from the DFG
// vocabulary, and the GNN featurizes node kinds into one-hot rows and the
// edge list into a normalized sparse adjacency.
//
// Mutations (adding nodes/edges, removing node subsets) are supported so
// the trim pass can rewrite graphs in place; `compact()` renumbers node
// ids densely after removals.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gnn4ip::graph {

using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// One vertex: a display name plus an opaque kind id whose meaning is
/// defined by the producing layer (for DFGs: dfg::NodeKind).
struct Node {
  std::string name;
  int kind = 0;
};

/// Mutable directed multigraph-free graph (parallel edges are collapsed).
class Digraph {
 public:
  Digraph() = default;

  /// Append a node; returns its id.
  NodeId add_node(std::string name, int kind);

  /// Add edge src -> dst. Duplicate edges are ignored. Self-loops allowed
  /// only when `allow_self_loop` (DFGs for sequential logic contain
  /// register feedback loops).
  void add_edge(NodeId src, NodeId dst, bool allow_self_loop = true);

  [[nodiscard]] bool has_edge(NodeId src, NodeId dst) const;

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);

  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId id) const;
  [[nodiscard]] std::span<const NodeId> in_neighbors(NodeId id) const;

  [[nodiscard]] std::size_t out_degree(NodeId id) const {
    return out_neighbors(id).size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId id) const {
    return in_neighbors(id).size();
  }

  /// All edges as (src, dst) pairs, ordered by src then insertion.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Remove the given nodes (and incident edges), then renumber ids
  /// densely preserving relative order. Returns old-id -> new-id map
  /// (kInvalidNode for removed entries).
  std::vector<NodeId> remove_nodes(const std::vector<NodeId>& to_remove);

  /// Subgraph induced on `keep` (order preserved); node ids in the result
  /// are positions within `keep`.
  [[nodiscard]] Digraph induced_subgraph(const std::vector<NodeId>& keep) const;

  /// Find first node with the given name, or kInvalidNode.
  [[nodiscard]] NodeId find_by_name(std::string_view name) const;

  /// Check id validity (debugging aid).
  [[nodiscard]] bool valid(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < nodes_.size();
  }

 private:
  void check_id(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t num_edges_ = 0;
};

}  // namespace gnn4ip::graph
