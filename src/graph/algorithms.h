// Graph algorithms used by the DFG trim pass, the baseline similarity
// methods, and test invariants.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace gnn4ip::graph {

/// Weakly-connected component label per node (labels are 0-based,
/// contiguous, ordered by first-seen node).
[[nodiscard]] std::vector<int> weakly_connected_components(const Digraph& g);

/// Number of weakly-connected components.
[[nodiscard]] int num_weak_components(const Digraph& g);

enum class Direction { kForward, kBackward };

/// Nodes reachable from `roots` following out-edges (kForward) or
/// in-edges (kBackward); includes the roots themselves.
[[nodiscard]] std::vector<bool> reachable(const Digraph& g,
                                          const std::vector<NodeId>& roots,
                                          Direction dir);

/// True if the graph has a directed cycle (self-loops count).
[[nodiscard]] bool has_cycle(const Digraph& g);

/// Topological order (throws util::ContractViolation if cyclic).
[[nodiscard]] std::vector<NodeId> topological_order(const Digraph& g);

/// Deterministic structural hash: invariant under node renaming but
/// sensitive to kinds and wiring (1-WL style color refinement, `rounds`
/// iterations). Used in tests to check that behavior-preserving source
/// transforms still change/preserve what we expect, and by the dataset
/// builder to detect accidentally identical instances.
[[nodiscard]] std::uint64_t structural_hash(const Digraph& g, int rounds = 3);

/// Histogram of node kinds, indexed by kind id (size = max kind + 1).
[[nodiscard]] std::vector<int> kind_histogram(const Digraph& g);

}  // namespace gnn4ip::graph
