#include "graph/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace gnn4ip::graph {

std::string to_dot(const Digraph& g, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=BT;\n";
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const Node& node = g.node(static_cast<NodeId>(v));
    std::string label = node.name;
    label = util::replace_all(std::move(label), "\\", "\\\\");
    label = util::replace_all(std::move(label), "\"", "\\\"");
    os << "  n" << v << " [label=\"" << label << " : " << node.kind
       << "\"];\n";
  }
  for (const auto& [src, dst] : g.edges()) {
    os << "  n" << src << " -> n" << dst << ";\n";
  }
  os << "}\n";
  return os.str();
}

void write_text(std::ostream& os, const Digraph& g) {
  os << "gnn4ip-graph v1\n";
  os << "nodes " << g.num_nodes() << '\n';
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const Node& node = g.node(static_cast<NodeId>(v));
    os << node.kind << ' ' << node.name << '\n';
  }
  const auto edge_list = g.edges();
  os << "edges " << edge_list.size() << '\n';
  for (const auto& [src, dst] : edge_list) {
    os << src << ' ' << dst << '\n';
  }
}

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error("malformed gnn4ip-graph stream: " + detail);
}

}  // namespace

Digraph read_text(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || util::trim(line) != "gnn4ip-graph v1") {
    malformed("missing header");
  }
  std::size_t n = 0;
  if (!std::getline(is, line)) malformed("missing node count");
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> n) || tag != "nodes") malformed("bad node count line");
  }
  Digraph g;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(is, line)) malformed("truncated node list");
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) malformed("bad node line");
    int kind = 0;
    try {
      kind = std::stoi(line.substr(0, space));
    } catch (const std::exception&) {
      malformed("bad node kind");
    }
    g.add_node(line.substr(space + 1), kind);
  }
  std::size_t m = 0;
  if (!std::getline(is, line)) malformed("missing edge count");
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> m) || tag != "edges") malformed("bad edge count line");
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!std::getline(is, line)) malformed("truncated edge list");
    std::istringstream ls(line);
    NodeId src = 0;
    NodeId dst = 0;
    if (!(ls >> src >> dst)) malformed("bad edge line");
    if (!g.valid(src) || !g.valid(dst)) malformed("edge endpoint out of range");
    g.add_edge(src, dst);
  }
  return g;
}

}  // namespace gnn4ip::graph
