#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "util/contract.h"

namespace gnn4ip::graph {

std::vector<int> weakly_connected_components(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<int> label(n, -1);
  int next_label = 0;
  std::deque<NodeId> queue;
  for (std::size_t start = 0; start < n; ++start) {
    if (label[start] != -1) continue;
    label[start] = next_label;
    queue.push_back(static_cast<NodeId>(start));
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      auto visit = [&](NodeId u) {
        if (label[static_cast<std::size_t>(u)] == -1) {
          label[static_cast<std::size_t>(u)] = next_label;
          queue.push_back(u);
        }
      };
      for (NodeId u : g.out_neighbors(v)) visit(u);
      for (NodeId u : g.in_neighbors(v)) visit(u);
    }
    ++next_label;
  }
  return label;
}

int num_weak_components(const Digraph& g) {
  const auto labels = weakly_connected_components(g);
  return labels.empty() ? 0 : 1 + *std::max_element(labels.begin(), labels.end());
}

std::vector<bool> reachable(const Digraph& g, const std::vector<NodeId>& roots,
                            Direction dir) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<NodeId> queue;
  for (NodeId r : roots) {
    GNN4IP_ENSURE(g.valid(r), "reachable: invalid root id");
    if (!seen[static_cast<std::size_t>(r)]) {
      seen[static_cast<std::size_t>(r)] = true;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const auto next = dir == Direction::kForward ? g.out_neighbors(v)
                                                 : g.in_neighbors(v);
    for (NodeId u : next) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        queue.push_back(u);
      }
    }
  }
  return seen;
}

namespace {

enum class VisitState : std::uint8_t { kUnvisited, kInProgress, kDone };

bool dfs_cycle(const Digraph& g, NodeId v, std::vector<VisitState>& state,
               std::vector<NodeId>* order) {
  state[static_cast<std::size_t>(v)] = VisitState::kInProgress;
  for (NodeId u : g.out_neighbors(v)) {
    const auto s = state[static_cast<std::size_t>(u)];
    if (s == VisitState::kInProgress) return true;
    if (s == VisitState::kUnvisited && dfs_cycle(g, u, state, order)) {
      return true;
    }
  }
  state[static_cast<std::size_t>(v)] = VisitState::kDone;
  if (order != nullptr) order->push_back(v);
  return false;
}

}  // namespace

bool has_cycle(const Digraph& g) {
  std::vector<VisitState> state(g.num_nodes(), VisitState::kUnvisited);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (state[v] == VisitState::kUnvisited &&
        dfs_cycle(g, static_cast<NodeId>(v), state, nullptr)) {
      return true;
    }
  }
  return false;
}

std::vector<NodeId> topological_order(const Digraph& g) {
  std::vector<VisitState> state(g.num_nodes(), VisitState::kUnvisited);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (state[v] == VisitState::kUnvisited) {
      const bool cyclic = dfs_cycle(g, static_cast<NodeId>(v), state, &order);
      GNN4IP_ENSURE(!cyclic, "topological_order called on a cyclic graph");
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::uint64_t structural_hash(const Digraph& g, int rounds) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint64_t> color(n);
  for (std::size_t v = 0; v < n; ++v) {
    color[v] = mix(0x243F6A8885A308D3ULL,
                   static_cast<std::uint64_t>(g.node(static_cast<NodeId>(v)).kind));
  }
  std::vector<std::uint64_t> next(n);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      // Order-independent aggregation over neighbors: sum/xor of mixed
      // colors so the hash does not depend on adjacency list order.
      std::uint64_t in_acc = 0;
      std::uint64_t out_acc = 0;
      for (NodeId u : g.in_neighbors(static_cast<NodeId>(v))) {
        in_acc += mix(0x452821E638D01377ULL, color[static_cast<std::size_t>(u)]);
      }
      for (NodeId u : g.out_neighbors(static_cast<NodeId>(v))) {
        out_acc += mix(0x13198A2E03707344ULL, color[static_cast<std::size_t>(u)]);
      }
      next[v] = mix(mix(color[v], in_acc), out_acc);
    }
    color.swap(next);
  }
  // Order-independent final combine (sorted).
  std::sort(color.begin(), color.end());
  std::uint64_t h = mix(0xA4093822299F31D0ULL, static_cast<std::uint64_t>(n));
  for (std::uint64_t c : color) h = mix(h, c);
  return h;
}

std::vector<int> kind_histogram(const Digraph& g) {
  std::vector<int> hist;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const int k = g.node(static_cast<NodeId>(v)).kind;
    GNN4IP_ENSURE(k >= 0, "kind_histogram requires non-negative kinds");
    if (static_cast<std::size_t>(k) >= hist.size()) {
      hist.resize(static_cast<std::size_t>(k) + 1, 0);
    }
    ++hist[static_cast<std::size_t>(k)];
  }
  return hist;
}

}  // namespace gnn4ip::graph
