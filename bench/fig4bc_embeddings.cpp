// Reproduces Fig. 4(b) and Fig. 4(c): hw2vec embedding visualization of
// pipeline-MIPS vs single-cycle-MIPS instances via PCA (2-D) and t-SNE
// (3-D).
//
// The paper plots 250 instances of the two processors and reports two
// well-separated clusters. A plot cannot be asserted in text, so this
// bench prints the quantitative separation statistics (silhouette,
// centroid separation, leave-one-out 1-NN label accuracy) plus sample
// coordinates, and writes full CSVs (fig4b_pca.csv / fig4c_tsne.csv)
// next to the binary for external plotting.
#include <cstdio>
#include <fstream>

#include "analysis/cluster_stats.h"
#include "analysis/pca.h"
#include "analysis/tsne.h"
#include "common.h"
#include "data/corpus.h"

int main() {
  using namespace gnn4ip;
  bench::print_header(
      "Fig. 4(b,c): hw2vec embedding visualization (PCA / t-SNE)");

  // Train on the full RTL corpus (includes both MIPS families).
  data::RtlCorpusOptions corpus_options;
  corpus_options.instances_per_family =
      bench::scale().rtl_instances_per_family;
  bench::TrainSetup setup;
  setup.epochs = bench::scale().epochs;
  const bench::TrainedModel tm = bench::train_model(
      make_graph_entries(data::build_rtl_corpus(corpus_options)), setup);
  std::printf("trained on %zu RTL graphs — held-out accuracy %.2f%%\n",
              tm.dataset->graphs().size(),
              100.0 * tm.eval.confusion.accuracy());

  // Fresh MIPS instances — "250 hardware instances for two distinct
  // processor designs" (paper §IV-C); scaled by bench scale.
  const int per_design = bench::scale().viz_instances_per_design;
  const auto viz_items =
      data::build_mips_visualization_corpus(per_design, /*seed=*/101);
  const auto viz_entries = make_graph_entries(viz_items);

  tensor::Matrix embeddings(viz_entries.size(),
                            tm.model->config().hidden_dim);
  std::vector<int> labels;
  for (std::size_t i = 0; i < viz_entries.size(); ++i) {
    const tensor::Matrix h = tm.embed(viz_entries[i]);
    for (std::size_t c = 0; c < h.cols(); ++c) {
      embeddings.at(i, c) = h.at(0, c);
    }
    labels.push_back(viz_entries[i].design == "mips_pipeline" ? 0 : 1);
  }
  std::printf("embedded %zu MIPS instances (%d pipeline + %d single-cycle)\n",
              viz_entries.size(), per_design, per_design);

  // --- Fig 4(b): PCA to 2-D -------------------------------------------------
  const analysis::PcaResult pca_result = analysis::pca(embeddings, 2);
  std::printf("\nFig. 4(b) — PCA projection (first two components)\n");
  std::printf("  explained variance: PC1 %.1f%%  PC2 %.1f%%\n",
              100.0F * pca_result.explained_variance_ratio[0],
              100.0F * pca_result.explained_variance_ratio[1]);
  std::printf("  silhouette          %.3f\n",
              analysis::silhouette_score(pca_result.projected, labels));
  std::printf("  centroid separation %.3f (×  mean intra-cluster spread)\n",
              analysis::centroid_separation(pca_result.projected, labels));
  std::printf("  1-NN label accuracy %.3f\n",
              analysis::nn_label_accuracy(pca_result.projected, labels));

  // --- Fig 4(c): t-SNE to 3-D -----------------------------------------------
  analysis::TsneOptions tsne_options;
  tsne_options.out_dims = 3;
  const tensor::Matrix tsne_result = analysis::tsne(embeddings, tsne_options);
  std::printf("\nFig. 4(c) — t-SNE 3-D projection\n");
  std::printf("  silhouette          %.3f\n",
              analysis::silhouette_score(tsne_result, labels));
  std::printf("  1-NN label accuracy %.3f\n",
              analysis::nn_label_accuracy(tsne_result, labels));

  std::printf("\nsample coordinates (first 3 per design):\n");
  std::printf("  %-18s %-22s %-30s\n", "design", "PCA (x, y)",
              "t-SNE (x, y, z)");
  int shown_pipeline = 0;
  int shown_single = 0;
  for (std::size_t i = 0; i < viz_entries.size(); ++i) {
    int& shown = labels[i] == 0 ? shown_pipeline : shown_single;
    if (shown >= 3) continue;
    ++shown;
    std::printf("  %-18s (%+7.3f, %+7.3f)     (%+8.2f, %+8.2f, %+8.2f)\n",
                viz_entries[i].design.c_str(),
                pca_result.projected.at(i, 0), pca_result.projected.at(i, 1),
                tsne_result.at(i, 0), tsne_result.at(i, 1),
                tsne_result.at(i, 2));
  }

  // Full CSVs for plotting.
  {
    std::ofstream pca_csv("fig4b_pca.csv");
    pca_csv << "design,pc1,pc2\n";
    std::ofstream tsne_csv("fig4c_tsne.csv");
    tsne_csv << "design,x,y,z\n";
    for (std::size_t i = 0; i < viz_entries.size(); ++i) {
      pca_csv << viz_entries[i].design << ','
              << pca_result.projected.at(i, 0) << ','
              << pca_result.projected.at(i, 1) << '\n';
      tsne_csv << viz_entries[i].design << ',' << tsne_result.at(i, 0) << ','
               << tsne_result.at(i, 1) << ',' << tsne_result.at(i, 2) << '\n';
    }
  }
  std::printf(
      "\nwrote fig4b_pca.csv and fig4c_tsne.csv\n"
      "Shape check: the paper reports two well-separated clusters — here\n"
      "that corresponds to 1-NN accuracy near 1.0 and positive silhouette.\n");
  return 0;
}
