// Shared utilities for the experiment harnesses.
//
// Every bench binary reproduces one table or figure from the paper and
// prints rows in the paper's format. Scale is controlled by the
// GNN4IP_BENCH_SCALE environment variable:
//   fast    — smoke-test sizes (seconds per bench)
//   default — reduced but representative corpus (default)
//   paper   — instance counts close to the publication (minutes)
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/gnn4ip.h"

namespace gnn4ip::bench {

struct Scale {
  const char* name;
  int rtl_instances_per_family;
  int netlist_instances_per_family;
  int epochs;
  int viz_instances_per_design;  // Fig. 4(b,c)
  int obfuscated_per_benchmark;  // Table III
  int table2_examples;           // per case
};

/// Resolve the scale from GNN4IP_BENCH_SCALE (fast|default|paper).
[[nodiscard]] const Scale& scale();

/// Print a boxed section header.
void print_header(const std::string& title);

/// Everything needed to query a trained hw2vec model.
struct TrainedModel {
  std::unique_ptr<gnn::Hw2Vec> model;
  std::unique_ptr<train::PairDataset> dataset;
  std::unique_ptr<train::Trainer> trainer;
  train::EvalResult eval;
  double train_seconds = 0.0;        // wall clock of the fit loop
  std::size_t train_pair_samples = 0;  // pair-loss evaluations during fit

  /// Embed by dataset graph index.
  [[nodiscard]] tensor::Matrix embed(std::size_t graph_index) const;
  /// Embed an out-of-corpus entry.
  [[nodiscard]] tensor::Matrix embed(const train::GraphEntry& entry) const;
};

/// Cosine similarity of two embedding rows.
[[nodiscard]] float cosine(const tensor::Matrix& a, const tensor::Matrix& b);

struct TrainSetup {
  int epochs = 120;
  std::size_t batch_graphs = 32;
  /// The paper trains batch gradient descent at 1e-3; with Adam on the
  /// smaller synthetic corpus 3e-3 reaches the paper's accuracy band
  /// (EXPERIMENTS.md records the sweep).
  float learning_rate = 3e-3F;
  /// Negative:positive pair ratio, matching the paper's corpus
  /// construction (66631 different / 19094 similar ≈ 3.49).
  double negative_ratio = 3.49;
  std::uint64_t seed = 7;
  gnn::Hw2VecConfig model;      // paper §IV defaults

  TrainSetup() {
    // Weight-init seed chosen by a small stability scan (see
    // EXPERIMENTS.md); benches share it so results are reproducible.
    model.seed = 5;
  }
};

/// Build pair dataset from entries, train, evaluate on the held-out 20%.
[[nodiscard]] TrainedModel train_model(std::vector<train::GraphEntry> entries,
                                       const TrainSetup& setup);

/// Mean DFG node count over a set of entries (for Table I commentary).
[[nodiscard]] double mean_nodes(const std::vector<train::GraphEntry>& entries);

}  // namespace gnn4ip::bench
