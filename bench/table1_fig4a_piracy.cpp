// Reproduces Table I (IP piracy detection accuracy and timing) and
// Fig. 4(a) (confusion matrices) for both the RTL and the netlist
// dataset.
//
// Paper reference values:
//   RTL:     dataset 75855 pairs / 390 graphs, accuracy 97.21%,
//            0.577 ms train and 0.566 ms test per sample
//   Netlist: dataset 9870 pairs / 143 graphs, accuracy 94.61%,
//            ~6 ms per sample
//   Fig 4a RTL:     TP 3464  FP 10  FN 190  TN 11352
//   Fig 4a Netlist: TP 328   FP 0   FN 108  TN 1567
// Shape expectations for this reproduction: accuracy well above 90% on
// both corpora, per-sample times in the millisecond range, and netlist
// timing slower than RTL because netlist DFGs are larger.
#include <cstdio>

#include "common.h"
#include "data/corpus.h"

namespace {

using namespace gnn4ip;

void run_dataset(const char* label, std::vector<train::GraphEntry> entries,
                 const char* paper_row) {
  const double avg_nodes = bench::mean_nodes(entries);
  bench::TrainSetup setup;
  setup.epochs = bench::scale().epochs;
  const bench::TrainedModel tm =
      bench::train_model(std::move(entries), setup);

  const double train_ms_per_sample =
      tm.train_pair_samples == 0
          ? 0.0
          : 1e3 * tm.train_seconds /
                static_cast<double>(tm.train_pair_samples);
  const double test_ms_per_sample = 1e3 * tm.eval.seconds_per_sample;

  std::printf("\nTable I row — %s dataset\n", label);
  std::printf("  %-22s %10s %10s %12s %16s %15s\n", "", "pairs", "#graphs",
              "accuracy", "train ms/sample", "test ms/sample");
  std::printf("  %-22s %10zu %10zu %11.2f%% %16.3f %15.3f\n", label,
              tm.dataset->pairs().size(), tm.dataset->graphs().size(),
              100.0 * tm.eval.confusion.accuracy(), train_ms_per_sample,
              test_ms_per_sample);
  std::printf("  paper:                %s\n", paper_row);
  std::printf("  mean DFG nodes: %.0f   tuned delta: %+.3f\n", avg_nodes,
              static_cast<double>(tm.eval.delta));

  const train::ConfusionMatrix& cm = tm.eval.confusion;
  std::printf("\nFig. 4(a) — %s confusion matrix (held-out pairs)\n", label);
  std::printf("                     predicted+   predicted-\n");
  std::printf("  actual piracy      TP: %-8zu FN: %-8zu\n", cm.tp, cm.fn);
  std::printf("  actual no-piracy   FP: %-8zu TN: %-8zu\n", cm.fp, cm.tn);
  std::printf("  precision %.4f  recall %.4f  f1 %.4f  FNR %.2e\n",
              cm.precision(), cm.recall(), cm.f1(),
              cm.false_negative_rate());
}

}  // namespace

int main() {
  bench::print_header(
      "Table I + Fig. 4(a): IP piracy detection accuracy & timing");

  data::RtlCorpusOptions rtl_options;
  rtl_options.instances_per_family =
      bench::scale().rtl_instances_per_family;
  const auto rtl_items = data::build_rtl_corpus(rtl_options);
  run_dataset("RTL", make_graph_entries(rtl_items),
              "75855 pairs, 390 graphs, 97.21%, 0.577 ms, 0.566 ms");

  data::NetlistCorpusOptions nl_options;
  nl_options.instances_per_family =
      bench::scale().netlist_instances_per_family;
  const auto nl_items = data::build_netlist_corpus(nl_options);
  run_dataset("Netlist", make_graph_entries(nl_items),
              "9870 pairs, 143 graphs, 94.61%, 5.999 ms, 5.918 ms");

  std::printf(
      "\nShape check: both accuracies should exceed 90%%, timings are in\n"
      "milliseconds, and netlist per-sample time exceeds RTL because the\n"
      "netlist DFGs are larger (paper §IV-B).\n");
  return 0;
}
