// Reproduces Table I (IP piracy detection accuracy and timing) and
// Fig. 4(a) (confusion matrices) for both the RTL and the netlist
// dataset.
//
// Paper reference values:
//   RTL:     dataset 75855 pairs / 390 graphs, accuracy 97.21%,
//            0.577 ms train and 0.566 ms test per sample
//   Netlist: dataset 9870 pairs / 143 graphs, accuracy 94.61%,
//            ~6 ms per sample
//   Fig 4a RTL:     TP 3464  FP 10  FN 190  TN 11352
//   Fig 4a Netlist: TP 328   FP 0   FN 108  TN 1567
// Shape expectations for this reproduction: accuracy well above 90% on
// both corpora, per-sample times in the millisecond range, and netlist
// timing slower than RTL because netlist DFGs are larger.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/pairwise_scorer.h"
#include "data/corpus.h"

namespace {

using namespace gnn4ip;

void run_dataset(const char* label, std::vector<train::GraphEntry> entries,
                 const char* paper_row) {
  const double avg_nodes = bench::mean_nodes(entries);
  bench::TrainSetup setup;
  setup.epochs = bench::scale().epochs;
  const bench::TrainedModel tm =
      bench::train_model(std::move(entries), setup);

  const double train_ms_per_sample =
      tm.train_pair_samples == 0
          ? 0.0
          : 1e3 * tm.train_seconds /
                static_cast<double>(tm.train_pair_samples);
  const double test_ms_per_sample = 1e3 * tm.eval.seconds_per_sample;

  std::printf("\nTable I row — %s dataset\n", label);
  std::printf("  %-22s %10s %10s %12s %16s %15s\n", "", "pairs", "#graphs",
              "accuracy", "train ms/sample", "test ms/sample");
  std::printf("  %-22s %10zu %10zu %11.2f%% %16.3f %15.3f\n", label,
              tm.dataset->pairs().size(), tm.dataset->graphs().size(),
              100.0 * tm.eval.confusion.accuracy(), train_ms_per_sample,
              test_ms_per_sample);
  std::printf("  paper:                %s\n", paper_row);
  std::printf("  mean DFG nodes: %.0f   tuned delta: %+.3f\n", avg_nodes,
              static_cast<double>(tm.eval.delta));

  // Batched corpus scoring: embed once per graph, then score every pair
  // from the cached embedding matrix (the naive path re-embeds both
  // members per pair — that is what seconds_per_sample above measures,
  // matching the paper's timing protocol).
  const auto b0 = std::chrono::steady_clock::now();
  const core::PairwiseScorer scorer = core::PairwiseScorer::from_entries(
      *tm.model, tm.dataset->graphs());
  const tensor::Matrix all_scores = scorer.score_matrix();
  const auto b1 = std::chrono::steady_clock::now();
  const std::size_t n_graphs = tm.dataset->graphs().size();
  const std::size_t all_pairs = n_graphs * (n_graphs - 1) / 2;
  const double batched_ms_per_sample =
      all_pairs == 0 ? 0.0
                     : 1e3 *
                           std::chrono::duration<double>(b1 - b0).count() /
                           static_cast<double>(all_pairs);

  // Consistency: the batched scores must reproduce the evaluation's
  // per-pair scores (both use inference-mode embeddings).
  float max_diff = 0.0F;
  const auto& test_indices = tm.trainer->split().test;
  for (std::size_t k = 0; k < test_indices.size(); ++k) {
    const train::PairSample& p = tm.dataset->pairs()[test_indices[k]];
    max_diff = std::max(
        max_diff, std::fabs(all_scores.at(p.a, p.b) - tm.eval.scores[k]));
  }
  std::printf(
      "  batched scoring: %zu graphs -> %zu pairs in %.1f ms "
      "(%.4f ms/sample, %.1fx vs per-pair; max score diff %.2e)\n",
      n_graphs, all_pairs,
      1e3 * std::chrono::duration<double>(b1 - b0).count(),
      batched_ms_per_sample,
      batched_ms_per_sample > 0.0 ? test_ms_per_sample / batched_ms_per_sample
                                  : 0.0,
      static_cast<double>(max_diff));

  const train::ConfusionMatrix& cm = tm.eval.confusion;
  std::printf("\nFig. 4(a) — %s confusion matrix (held-out pairs)\n", label);
  std::printf("                     predicted+   predicted-\n");
  std::printf("  actual piracy      TP: %-8zu FN: %-8zu\n", cm.tp, cm.fn);
  std::printf("  actual no-piracy   FP: %-8zu TN: %-8zu\n", cm.fp, cm.tn);
  std::printf("  precision %.4f  recall %.4f  f1 %.4f  FNR %.2e\n",
              cm.precision(), cm.recall(), cm.f1(),
              cm.false_negative_rate());
}

}  // namespace

int main() {
  bench::print_header(
      "Table I + Fig. 4(a): IP piracy detection accuracy & timing");

  data::RtlCorpusOptions rtl_options;
  rtl_options.instances_per_family =
      bench::scale().rtl_instances_per_family;
  const auto rtl_items = data::build_rtl_corpus(rtl_options);
  run_dataset("RTL", make_graph_entries(rtl_items),
              "75855 pairs, 390 graphs, 97.21%, 0.577 ms, 0.566 ms");

  data::NetlistCorpusOptions nl_options;
  nl_options.instances_per_family =
      bench::scale().netlist_instances_per_family;
  const auto nl_items = data::build_netlist_corpus(nl_options);
  run_dataset("Netlist", make_graph_entries(nl_items),
              "9870 pairs, 143 graphs, 94.61%, 5.999 ms, 5.918 ms");

  std::printf(
      "\nShape check: both accuracies should exceed 90%%, timings are in\n"
      "milliseconds, and netlist per-sample time exceeds RTL because the\n"
      "netlist DFGs are larger (paper §IV-B).\n");
  return 0;
}
