// Reproduces Table II: similarity scores for three classes of hardware
// design pairs.
//
//   Case 1 — different designs            (paper mean −0.0831)
//   Case 2 — different codes, same design (paper mean +0.9571)
//   Case 3 — a design and its subset      (paper mean +0.5342,
//             MIPS processors vs the ALU block they instantiate)
//
// Shape expectation: case2 ≫ case3 ≫ case1, with case1 near/below zero
// and case3 clearly intermediate.
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "data/corpus.h"
#include "data/rtl_designs.h"

namespace {

using namespace gnn4ip;

struct ScoredPair {
  std::string label;
  float score;
};

void print_case(const char* title, const std::vector<ScoredPair>& examples,
                double mean, int mean_count, double paper_mean) {
  std::printf("\n%s\n", title);
  for (const auto& sp : examples) {
    std::printf("  %-28s %+7.4f\n", sp.label.c_str(), sp.score);
  }
  std::printf("  %-28s %+7.4f   (paper mean %+.4f, over %d pairs here)\n",
              "Mean", mean, paper_mean, mean_count);
}

}  // namespace

int main() {
  using namespace gnn4ip;
  bench::print_header("Table II: similarity scores for design-pair classes");

  // Full corpus, including the "alu" family — which is the very ALU
  // block the MIPS cores instantiate. Case-3 pairs are therefore trained
  // negatives whose shared subgraph resists separation: the hinge loss
  // stops pushing at the margin (0.5), which is where the paper's case-3
  // scores sit.
  data::RtlCorpusOptions corpus_options;
  corpus_options.instances_per_family =
      bench::scale().rtl_instances_per_family;
  bench::TrainSetup setup;
  setup.epochs = bench::scale().epochs;
  const bench::TrainedModel tm = bench::train_model(
      make_graph_entries(data::build_rtl_corpus(corpus_options)), setup);
  std::printf("trained on %zu RTL graphs — held-out accuracy %.2f%%\n",
              tm.dataset->graphs().size(),
              100.0 * tm.eval.confusion.accuracy());

  // Fresh (unseen-seed) instances of the Table II subjects.
  auto entry_of = [&](const std::string& family,
                      std::string (*gen)(const data::RtlVariant&), int style,
                      std::uint64_t seed) {
    data::CorpusItem item;
    item.name = family + "@" + std::to_string(seed);
    item.design = family;
    item.kind = "rtl";
    item.verilog = gen(data::RtlVariant{style, seed});
    return make_graph_entry(item);
  };

  const int kInstances = 4;
  std::vector<train::GraphEntry> aes;
  std::vector<train::GraphEntry> fpa;
  std::vector<train::GraphEntry> rs232;
  std::vector<train::GraphEntry> pmips;
  std::vector<train::GraphEntry> smips;
  std::vector<train::GraphEntry> mmips;
  std::vector<train::GraphEntry> alu;
  for (int i = 0; i < kInstances; ++i) {
    const auto seed = static_cast<std::uint64_t>(500 + i);
    aes.push_back(entry_of("aes_round", data::gen_aes_round, i % 2, seed));
    fpa.push_back(entry_of("fpa", data::gen_fpa, i % 2, seed));
    rs232.push_back(entry_of("uart_tx", data::gen_uart_tx, i % 2, seed));
    pmips.push_back(
        entry_of("mips_pipeline", data::gen_mips_pipeline, i % 2, seed));
    smips.push_back(
        entry_of("mips_single", data::gen_mips_single, i % 2, seed));
    mmips.push_back(
        entry_of("mips_multicycle", data::gen_mips_multicycle, i % 2, seed));
    alu.push_back(entry_of("alu_block", data::gen_alu_block, i % 2, seed));
  }

  auto score = [&](const train::GraphEntry& a, const train::GraphEntry& b) {
    return bench::cosine(tm.embed(a), tm.embed(b));
  };

  // --- Case 1: different designs ---------------------------------------------
  std::vector<ScoredPair> case1 = {
      {"AES / FPA", score(aes[0], fpa[0])},
      {"AES / RS232", score(aes[0], rs232[0])},
      {"AES / MIPS", score(aes[0], smips[0])},
      {"FPA / MIPS", score(fpa[0], smips[0])},
  };
  double case1_sum = 0.0;
  int case1_count = 0;
  const std::vector<const std::vector<train::GraphEntry>*> families = {
      &aes, &fpa, &rs232, &pmips, &smips, &mmips};
  for (std::size_t f = 0; f < families.size(); ++f) {
    for (std::size_t g = f + 1; g < families.size(); ++g) {
      for (int i = 0; i < kInstances; ++i) {
        case1_sum += score((*families[f])[static_cast<std::size_t>(i)],
                           (*families[g])[static_cast<std::size_t>(i)]);
        ++case1_count;
      }
    }
  }
  print_case("Case 1 — different designs", case1,
             case1_sum / case1_count, case1_count, -0.0831);

  // --- Case 2: different codes, same design -----------------------------------
  std::vector<ScoredPair> case2 = {
      {"AES1 / AES2", score(aes[0], aes[1])},
      {"P.MIPS1 / P.MIPS2", score(pmips[0], pmips[1])},
      {"M.MIPS1 / M.MIPS2", score(mmips[0], mmips[1])},
      {"S.MIPS1 / S.MIPS2", score(smips[0], smips[1])},
  };
  double case2_sum = 0.0;
  int case2_count = 0;
  for (const auto* fam : families) {
    for (int i = 0; i < kInstances; ++i) {
      for (int j = i + 1; j < kInstances; ++j) {
        case2_sum += score((*fam)[static_cast<std::size_t>(i)],
                           (*fam)[static_cast<std::size_t>(j)]);
        ++case2_count;
      }
    }
  }
  print_case("Case 2 — different codes with the same design", case2,
             case2_sum / case2_count, case2_count, 0.9571);

  // --- Case 3: a design and its subset ----------------------------------------
  // Every MIPS core instantiates the alu_core block that alu_block wraps.
  std::vector<ScoredPair> case3;
  double case3_sum = 0.0;
  int case3_count = 0;
  for (int i = 0; i < kInstances; ++i) {
    const float s = score(pmips[static_cast<std::size_t>(i)],
                          alu[static_cast<std::size_t>(i)]);
    case3.push_back({"P.MIPS" + std::to_string(i + 1) + " / ALU" +
                         std::to_string(i + 1),
                     s});
  }
  const std::vector<const std::vector<train::GraphEntry>*> mips_all = {
      &pmips, &smips, &mmips};
  for (const auto* fam : mips_all) {
    for (int i = 0; i < kInstances; ++i) {
      for (int j = 0; j < kInstances; ++j) {
        case3_sum += score((*fam)[static_cast<std::size_t>(i)],
                           alu[static_cast<std::size_t>(j)]);
        ++case3_count;
      }
    }
  }
  print_case("Case 3 — a design and its subset (MIPS vs its ALU)", case3,
             case3_sum / case3_count, case3_count, 0.5342);

  std::printf(
      "\nShape check: case2 mean ≫ case3 mean ≫ case1 mean; case1 near or\n"
      "below zero; case3 intermediate (the ALU is a proper subset of each\n"
      "MIPS design, as in the paper).\n");
  return 0;
}
