// Ablation benches for the design choices DESIGN.md §5 calls out:
//   1. readout operator (max vs mean vs sum)      — paper §IV uses max
//   2. pooling ratio (0.25 / 0.5 / 0.75 / 1.0)    — paper §IV uses 0.5
//   3. GCN depth (1 / 2 / 3 layers)               — paper §IV uses 2
//   4. DFG trim pass on/off                        — paper Fig. 2 phase 5
// Each configuration trains on the same reduced RTL corpus and reports
// held-out accuracy, so the table shows the sensitivity of the paper's
// hyperparameter choices.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "data/corpus.h"

namespace {

using namespace gnn4ip;

std::vector<data::CorpusItem> ablation_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family =
      std::max(3, bench::scale().rtl_instances_per_family / 2);
  options.families = {"adder",    "alu",     "counter",  "crc8",
                      "lfsr",     "parity",  "fifo_ctrl", "uart_tx",
                      "multiplier", "gray_counter"};
  return build_rtl_corpus(options);
}

bench::TrainSetup reduced_setup() {
  bench::TrainSetup setup;
  setup.epochs = std::max(8, bench::scale().epochs / 2);
  return setup;
}

double run_config(const std::vector<data::CorpusItem>& items,
                  const gnn::Hw2VecConfig& config, bool run_trim) {
  dfg::PipelineOptions pipeline;
  pipeline.run_trim = run_trim;
  bench::TrainSetup setup = reduced_setup();
  setup.model = config;
  const bench::TrainedModel tm =
      bench::train_model(make_graph_entries(items, pipeline), setup);
  return tm.eval.confusion.accuracy();
}

}  // namespace

int main() {
  bench::print_header("Ablations: readout / pooling ratio / depth / trim");
  const auto items = ablation_corpus();
  std::printf("corpus: %zu RTL instances over 10 families\n", items.size());

  {
    std::printf("\nAblation 1 — readout operator (paper: max)\n");
    std::printf("  %-10s %10s\n", "readout", "accuracy");
    for (const gnn::Readout r :
         {gnn::Readout::kMax, gnn::Readout::kMean, gnn::Readout::kSum}) {
      gnn::Hw2VecConfig config;
      config.readout = r;
      std::printf("  %-10s %9.2f%%\n", to_string(r),
                  100.0 * run_config(items, config, true));
    }
  }

  {
    std::printf("\nAblation 2 — pooling ratio (paper: 0.5)\n");
    std::printf("  %-10s %10s\n", "ratio", "accuracy");
    for (const float ratio : {0.25F, 0.5F, 0.75F, 1.0F}) {
      gnn::Hw2VecConfig config;
      config.pool_ratio = ratio;
      std::printf("  %-10.2f %9.2f%%\n", static_cast<double>(ratio),
                  100.0 * run_config(items, config, true));
    }
  }

  {
    std::printf("\nAblation 3 — GCN depth (paper: 2 layers)\n");
    std::printf("  %-10s %10s\n", "layers", "accuracy");
    for (const std::size_t layers : {1u, 2u, 3u}) {
      gnn::Hw2VecConfig config;
      config.num_layers = layers;
      std::printf("  %-10zu %9.2f%%\n", layers,
                  100.0 * run_config(items, config, true));
    }
  }

  {
    std::printf("\nAblation 4 — DFG trim pass (paper: on, Fig. 2 phase 5)\n");
    std::printf("  %-10s %10s\n", "trim", "accuracy");
    for (const bool run_trim : {true, false}) {
      gnn::Hw2VecConfig config;
      std::printf("  %-10s %9.2f%%\n", run_trim ? "on" : "off",
                  100.0 * run_config(items, config, run_trim));
    }
  }

  std::printf(
      "\nShape check: the paper's settings (max readout, ratio 0.5, two\n"
      "layers, trim on) should be at or near the best cell of each sweep.\n");
  return 0;
}
