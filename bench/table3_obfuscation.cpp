// Reproduces Table III: similarity scores for obfuscated ISCAS'85
// benchmarks (stand-ins regenerated from each benchmark's documented
// function — see DESIGN.md §1).
//
// Paper values: per-benchmark original-vs-obfuscated means of +0.99…+1.0,
// overall +0.9976, cross-benchmark mean −0.1606, and 100% recognition of
// the original IP inside its obfuscated versions.
#include <cstdio>
#include <map>
#include <vector>

#include "common.h"
#include "data/corpus.h"

int main() {
  using namespace gnn4ip;
  bench::print_header(
      "Table III: piracy detection in obfuscated ISCAS'85 netlists");

  // Train on the netlist corpus, which — like the paper's 143-netlist
  // dataset — contains the ISCAS benchmarks and TrustHub-style obfuscated
  // instances of them. The evaluation below uses *freshly generated*
  // obfuscated instances (different obfuscation seeds), so every scored
  // pair is unseen.
  data::NetlistCorpusOptions nl_options;
  nl_options.instances_per_family =
      bench::scale().netlist_instances_per_family;
  nl_options.iscas_obfuscated_per_benchmark =
      bench::scale().obfuscated_per_benchmark;
  bench::TrainSetup setup;
  // The c499/c1355 twin pair (identical function, different gate basis)
  // is the hardest discrimination in this table; it needs the longest
  // training of all benches to resolve.
  setup.epochs = bench::scale().epochs * 2;
  const bench::TrainedModel tm = bench::train_model(
      make_graph_entries(data::build_netlist_corpus(nl_options)), setup);
  std::printf("trained on %zu netlist graphs — held-out accuracy %.2f%%\n",
              tm.dataset->graphs().size(),
              100.0 * tm.eval.confusion.accuracy());

  const auto originals = make_graph_entries(data::build_iscas_originals());
  data::IscasCorpusOptions iscas_options;
  iscas_options.obfuscated_per_benchmark =
      bench::scale().obfuscated_per_benchmark;
  iscas_options.seed = 7777;  // disjoint from the training corpus seeds
  const auto obfuscated =
      make_graph_entries(data::build_iscas_obfuscated(iscas_options));

  // Precompute embeddings.
  std::map<std::string, tensor::Matrix> original_embedding;
  for (const auto& e : originals) {
    original_embedding.emplace(e.design, tm.embed(e));
  }
  std::vector<tensor::Matrix> obf_embeddings;
  obf_embeddings.reserve(obfuscated.size());
  for (const auto& e : obfuscated) {
    obf_embeddings.push_back(tm.embed(e));
  }

  // Per-benchmark mean similarity between the original and its
  // obfuscated instances + recognition (argmax over originals).
  const char* kFunctions[] = {
      "27-channel interrupt controller", "32-bit single error correcting",
      "8-bit ALU", "32-bit single error correcting",
      "16-bit single/double error detecting", "16 x 16 multiplier"};
  const char* kNames[] = {"c432", "c499", "c880", "c1355", "c1908", "c6288"};
  const double kPaperScores[] = {0.9998, 0.9928, 0.9996, 0.9993,
                                 0.9999, 0.9945};

  std::printf("\n  %-7s %-38s %9s %9s %7s\n", "circuit", "function",
              "#circuits", "score", "paper");
  double overall_sum = 0.0;
  int overall_count = 0;
  int recognized = 0;
  int total_obf = 0;
  for (int b = 0; b < 6; ++b) {
    double sum = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < obfuscated.size(); ++i) {
      if (obfuscated[i].design != kNames[b]) continue;
      const float s = bench::cosine(original_embedding.at(kNames[b]),
                                    obf_embeddings[i]);
      sum += s;
      ++count;
      // Recognition: the true original must be the best match.
      float best = -2.0F;
      std::string best_name;
      for (const auto& [name, emb] : original_embedding) {
        const float cand = bench::cosine(emb, obf_embeddings[i]);
        if (cand > best) {
          best = cand;
          best_name = name;
        }
      }
      if (best_name == kNames[b]) {
        ++recognized;
      } else {
        std::printf("    miss: %s matched %s (score %+.4f vs own %+.4f)\n",
                    obfuscated[i].name.c_str(), best_name.c_str(), best, s);
      }
      ++total_obf;
    }
    overall_sum += sum;
    overall_count += count;
    std::printf("  %-7s %-38s %9d %+9.4f %+7.4f\n", kNames[b], kFunctions[b],
                count, count > 0 ? sum / count : 0.0, kPaperScores[b]);
  }
  std::printf("\n  between benchmarks and their obfuscated instances: %+7.4f"
              "  (paper +0.9976)\n",
              overall_count > 0 ? overall_sum / overall_count : 0.0);

  // Cross-benchmark similarity (different designs at netlist level).
  double cross_sum = 0.0;
  int cross_count = 0;
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      cross_sum += bench::cosine(original_embedding.at(kNames[a]),
                                 original_embedding.at(kNames[b]));
      ++cross_count;
    }
  }
  std::printf("  between different benchmarks:                      %+7.4f"
              "  (paper -0.1606)\n",
              cross_sum / cross_count);
  std::printf("  original-IP recognition in obfuscated instances:  %d/%d"
              "  (paper 100%%)\n",
              recognized, total_obf);

  std::printf(
      "\nShape check: per-benchmark scores near +1, cross-benchmark mean\n"
      "far below, and recognition at or near 100%% — obfuscation does not\n"
      "hide the original IP from the model.\n");
  return 0;
}
